//! Critical/forbidden regions and the either-hand rule (§4).
//!
//! Contribution (a) of the paper: "According to
//! `E_i(v) : [x_v : x_{v^{(1)}}, y_v : y_{v^{(2)}}]`, `Q_i(v)` is divided
//! by the ray `(x_v, y_v)(x_{v^{(1)}}, y_{v^{(2)}})` into two parts. The
//! region with `d` is called critical region and the other is called
//! forbidden region … The access of forbidden region will be avoided when
//! the destination is inside the critical region."
//!
//! The same ray decides the *either-hand rule*: the packet routes around
//! `E_i(v)` on the destination's side of the blockage, by committing to a
//! left- or right-hand traversal and sticking with it (Algo. 3 steps
//! 3–5). Our deterministic realisation compares the two around-the-
//! rectangle detour costs (`DESIGN.md` §2 item 5).

use crate::ShapeEstimate;
use sp_geom::{AngularSweep, Point, Quadrant, Ray, Side};

/// A committed traversal direction for the either-hand rule.
///
/// `Ccw` rotates the search ray counter-clockwise from `ud` — the
/// "right-hand rule" of the paper's perimeter phase (Algo. 1 step 4) —
/// and `Cw` is its mirror, the "left-hand rule".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Hand {
    /// Rotate candidates counter-clockwise from the destination ray
    /// (right-hand rule).
    Ccw,
    /// Rotate candidates clockwise from the destination ray (left-hand
    /// rule).
    Cw,
}

impl Hand {
    /// The mirrored hand.
    pub fn opposite(self) -> Hand {
        match self {
            Hand::Ccw => Hand::Cw,
            Hand::Cw => Hand::Ccw,
        }
    }
}

impl std::fmt::Display for Hand {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Hand::Ccw => "right-hand (ccw)",
            Hand::Cw => "left-hand (cw)",
        })
    }
}

/// The split of `Q_i(v)` into critical (destination-side) and forbidden
/// regions, anchored at unsafe node `v`.
#[derive(Debug, Clone, Copy)]
pub struct RegionSplit {
    anchor: Point,
    quadrant: Quadrant,
    ray: Ray,
    critical_side: Side,
}

impl RegionSplit {
    /// Builds the split for the estimate `E_q(v)` of unsafe node `v` at
    /// `anchor`, with destination `d`.
    ///
    /// Returns `None` when the split constrains nothing:
    /// * `d` is outside `Q_q(v)` (the estimate does not block this
    ///   routing),
    /// * the estimate is degenerate (`v^{(1)} = v^{(2)} = v`), or
    /// * `d` lies exactly on the dividing ray.
    pub fn new(anchor: Point, q: Quadrant, est: &ShapeEstimate, d: Point) -> Option<RegionSplit> {
        if Quadrant::of(anchor, d) != Some(q) {
            return None;
        }
        let ray = Ray::through(anchor, est.far_corner)?;
        let critical_side = match ray.side_of(d) {
            Side::On => return None,
            side => side,
        };
        Some(RegionSplit {
            anchor,
            quadrant: q,
            ray,
            critical_side,
        })
    }

    /// Is `p` inside the critical region (the destination's side of the
    /// dividing ray, within `Q_q(v)`)?
    pub fn in_critical(&self, p: Point) -> bool {
        Quadrant::of(self.anchor, p) == Some(self.quadrant)
            && self.ray.side_of(p) == self.critical_side
    }

    /// Is `p` inside the forbidden region?
    pub fn in_forbidden(&self, p: Point) -> bool {
        Quadrant::of(self.anchor, p) == Some(self.quadrant)
            && self.ray.side_of(p) == self.critical_side.opposite()
    }

    /// Which side of the dividing ray the destination occupies.
    pub fn critical_side(&self) -> Side {
        self.critical_side
    }
}

/// Deterministic either-hand choice at `u` against blocking estimate
/// `est`, heading for `d`: compare the detour cost around the
/// x-extent corner of `E` with the cost around the y-extent corner, and
/// rotate toward the cheaper corner's side of the ray `ud`.
///
/// Falls back to [`Hand::Ccw`] (the right-hand tradition of Algo. 1) when
/// the geometry is degenerate.
pub fn choose_hand(u: Point, d: Point, est: &ShapeEstimate) -> Hand {
    let Some(ray) = Ray::through(u, d) else {
        return Hand::Ccw;
    };
    // The estimate's anchor corner is the rect corner diagonally opposite
    // `far_corner` (the unsafe node the estimate was collected from).
    let far = est.far_corner;
    let anchor = Point::new(
        if far.x == est.rect.min().x {
            est.rect.max().x
        } else {
            est.rect.min().x
        },
        if far.y == est.rect.min().y {
            est.rect.max().y
        } else {
            est.rect.min().y
        },
    );
    // The two rectangle corners adjacent to the anchor corner of E.
    let corner_x = Point::new(far.x, anchor.y);
    let corner_y = Point::new(anchor.x, far.y);
    let cost_x = u.distance(corner_x) + corner_x.distance(d);
    let cost_y = u.distance(corner_y) + corner_y.distance(d);
    let cheaper = if cost_x <= cost_y { corner_x } else { corner_y };
    match ray.side_of(cheaper) {
        Side::Left => Hand::Ccw,
        Side::Right => Hand::Cw,
        Side::On => Hand::Ccw,
    }
}

/// Candidates ordered by the committed hand: rotating the ray `u -> d`
/// counter-clockwise (`Hand::Ccw`) or clockwise (`Hand::Cw`), nearest
/// rotation first. Returns candidate ids in traversal order.
pub fn hand_order(
    u: Point,
    d: Point,
    hand: Hand,
    candidates: impl IntoIterator<Item = (usize, Point)>,
) -> Vec<usize> {
    let dir = d - u;
    match hand {
        Hand::Ccw => AngularSweep::new(u, dir, candidates).ids().collect(),
        Hand::Cw => {
            // Mirror the plane about the horizontal through u: a CW sweep
            // of the original is a CCW sweep of the mirror.
            let mirrored: Vec<(usize, Point)> = candidates
                .into_iter()
                .map(|(id, p)| (id, Point::new(p.x, 2.0 * u.y - p.y)))
                .collect();
            let mdir = sp_geom::Vec2::new(dir.x, -dir.y);
            AngularSweep::new(u, mdir, mirrored).ids().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::Rect;
    use sp_net::NodeId;

    fn ne_estimate(v: Point, far: Point) -> ShapeEstimate {
        ShapeEstimate {
            first_far: NodeId(1),
            last_far: NodeId(2),
            rect: Rect::from_corners(v, far),
            far_corner: far,
        }
    }

    #[test]
    fn split_identifies_critical_and_forbidden() {
        // v at origin, E_1(v) = [0:10, 0:10]; destination high up north.
        let v = Point::new(0.0, 0.0);
        let est = ne_estimate(v, Point::new(10.0, 10.0));
        let d = Point::new(5.0, 30.0); // above the diagonal -> Left side
        let split = RegionSplit::new(v, Quadrant::I, &est, d).unwrap();
        assert_eq!(split.critical_side(), Side::Left);
        // A candidate east of the diagonal is forbidden.
        assert!(split.in_forbidden(Point::new(20.0, 3.0)));
        assert!(!split.in_critical(Point::new(20.0, 3.0)));
        // A candidate north of the diagonal is critical.
        assert!(split.in_critical(Point::new(3.0, 20.0)));
        // Points outside Q1(v) are in neither region.
        assert!(!split.in_forbidden(Point::new(-5.0, 5.0)));
        assert!(!split.in_critical(Point::new(-5.0, 5.0)));
    }

    #[test]
    fn split_inactive_when_destination_elsewhere() {
        let v = Point::new(0.0, 0.0);
        let est = ne_estimate(v, Point::new(10.0, 10.0));
        // d southwest: the NE estimate does not constrain this routing.
        assert!(RegionSplit::new(v, Quadrant::I, &est, Point::new(-5.0, -5.0)).is_none());
        // d exactly on the dividing ray: no constraint either.
        assert!(RegionSplit::new(v, Quadrant::I, &est, Point::new(20.0, 20.0)).is_none());
        // Degenerate estimate (far corner == v).
        let degenerate = ne_estimate(v, v);
        assert!(RegionSplit::new(v, Quadrant::I, &degenerate, Point::new(5.0, 30.0)).is_none());
    }

    #[test]
    fn hand_choice_follows_cheaper_corner() {
        let u = Point::new(0.0, 0.0);
        let est = ne_estimate(u, Point::new(10.0, 10.0));
        // Destination far north: going around the y-extent corner (0,10)
        // is cheaper; that corner is Left of ray ud? d = (5,30):
        // ray dir (5,30); corner (0,10): cross = 5*10 - 30*0 = 50 > 0 Left
        // -> CCW.
        assert_eq!(choose_hand(u, Point::new(5.0, 30.0), &est), Hand::Ccw);
        // Destination far east: corner (10,0) cheaper; cross of dir
        // (30,5) with (10,0): 30*0 - 5*10 = -50 Right -> CW.
        assert_eq!(choose_hand(u, Point::new(30.0, 5.0), &est), Hand::Cw);
    }

    #[test]
    fn hand_choice_degenerate_destination() {
        let u = Point::new(0.0, 0.0);
        let est = ne_estimate(u, Point::new(10.0, 10.0));
        assert_eq!(choose_hand(u, u, &est), Hand::Ccw);
    }

    #[test]
    fn hand_order_ccw_and_cw_mirror() {
        let u = Point::new(0.0, 0.0);
        let d = Point::new(10.0, 0.0); // east
        let cands = vec![
            (0, Point::new(5.0, 5.0)),  // NE, 45° CCW
            (1, Point::new(5.0, -5.0)), // SE, 45° CW (=315° CCW)
            (2, Point::new(-5.0, 0.0)), // W, 180°
        ];
        let ccw = hand_order(u, d, Hand::Ccw, cands.clone());
        assert_eq!(ccw, vec![0, 2, 1]);
        let cw = hand_order(u, d, Hand::Cw, cands);
        assert_eq!(cw, vec![1, 2, 0]);
    }

    #[test]
    fn hand_opposite_is_involution() {
        assert_eq!(Hand::Ccw.opposite(), Hand::Cw);
        assert_eq!(Hand::Cw.opposite().opposite(), Hand::Cw);
        assert_ne!(Hand::Ccw.to_string(), Hand::Cw.to_string());
    }
}
