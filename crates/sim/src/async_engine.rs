//! Event-driven asynchronous executor.
//!
//! §3 of the paper: "All the schemes presented in this paper can be
//! extended easily to an asynchronous round based system." This engine
//! makes that claim testable: the same [`NodeProcess`] state machines run
//! with **per-message random delivery delays** instead of lock-step
//! rounds. Messages are delivered one at a time in virtual-time order;
//! each copy of a broadcast takes its own independently-sampled delay, so
//! no two nodes ever observe a synchronized "round".
//!
//! Two scale features keep large runs cheap: broadcast payloads are
//! stored once behind an [`Arc`] and every queued copy shares the
//! handle (one allocation per transmission, not per edge), and the
//! event loop drains all heap entries sharing the minimal timestamp in
//! one batch — equal-time events are delivered in enqueue (`seq`)
//! order, exactly as repeated single pops would, so trajectories are
//! unchanged.
//!
//! The equivalence tests in `sp-core::distributed` run the Algorithm-2
//! labeling protocol on this engine and verify the stabilized information
//! is **identical** to the synchronous and centralized constructions for
//! every seed — the protocol is self-stabilizing under reordering because
//! statuses flip monotonically and recomputation is idempotent over the
//! cached neighbor view.

use crate::{ChaosPlan, Ctx, NodeProcess, SimError};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_net::{Network, NodeId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Delivery-delay configuration of the asynchronous engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AsyncConfig {
    /// RNG seed for delay sampling (runs are reproducible per seed).
    pub seed: u64,
    /// Smallest per-message delivery delay (virtual time units).
    pub min_delay: f64,
    /// Largest per-message delivery delay.
    pub max_delay: f64,
}

impl AsyncConfig {
    /// A widely-jittered default: delays uniform in `[0.5, 3.5)`, so a
    /// message sent later routinely overtakes one sent earlier.
    pub fn jittered(seed: u64) -> AsyncConfig {
        AsyncConfig {
            seed,
            min_delay: 0.5,
            max_delay: 3.5,
        }
    }

    fn validate(&self) {
        assert!(
            self.min_delay > 0.0 && self.max_delay >= self.min_delay,
            "delays must satisfy 0 < min <= max"
        );
    }
}

impl Default for AsyncConfig {
    fn default() -> AsyncConfig {
        AsyncConfig::jittered(0)
    }
}

/// Counters of one asynchronous run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AsyncStats {
    /// Messages delivered (each broadcast copy counts once).
    pub deliveries: usize,
    /// Broadcast transmissions.
    pub broadcasts: usize,
    /// Unicast transmissions.
    pub unicasts: usize,
    /// Virtual time of the last delivery.
    pub virtual_time: f64,
    /// Whether the run drained its event queue (vs hitting the limit).
    pub quiesced: bool,
}

impl AsyncStats {
    /// Total transmissions of any kind.
    pub fn transmissions(&self) -> usize {
        self.broadcasts + self.unicasts
    }
}

/// An event's message payload: unicasts move the message inline (no
/// extra allocation over the pre-sharing engine), broadcast copies
/// share one `Arc` so the payload is allocated once per transmission
/// regardless of degree.
enum Payload<M> {
    Owned(M),
    Shared(Arc<M>),
}

impl<M> Payload<M> {
    fn get(&self) -> &M {
        match self {
            Payload::Owned(m) => m,
            Payload::Shared(m) => m,
        }
    }
}

struct Event<M> {
    time: f64,
    seq: u64,
    to: NodeId,
    from: NodeId,
    msg: Payload<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest-first.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Asynchronous executor of one [`NodeProcess`] per node.
///
/// Each queued message is delivered alone, at its own randomly-delayed
/// virtual time; the receiving process sees an inbox of exactly one
/// message. Quiescence is an empty event queue.
///
/// ```
/// use sp_net::{Network, NodeId};
/// use sp_sim::{AsyncConfig, AsyncEngine, Ctx, NodeProcess};
/// use sp_geom::{Point, Rect};
///
/// struct Flood { seen: bool }
/// impl NodeProcess for Flood {
///     type Msg = ();
///     fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
///         if ctx.id() == NodeId(0) {
///             self.seen = true;
///             ctx.broadcast(());
///         }
///     }
///     fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {
///         if !self.seen {
///             self.seen = true;
///             ctx.broadcast(());
///         }
///     }
/// }
///
/// let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
/// let net = Network::from_positions(
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)],
///     15.0,
///     area,
/// );
/// let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(7), |_| Flood { seen: false });
/// let stats = engine.run_until_quiescent(10_000).unwrap();
/// assert!(stats.quiesced);
/// assert!(engine.nodes().iter().all(|n| n.seen));
/// ```
pub struct AsyncEngine<'n, P: NodeProcess> {
    net: &'n Network,
    nodes: Vec<P>,
    alive: Vec<bool>,
    queue: BinaryHeap<Event<P::Msg>>,
    /// Scratch for the equal-timestamp batch drained per step.
    batch: Vec<Event<P::Msg>>,
    neighbor_scratch: Vec<NodeId>,
    /// `kill_node`'s own neighbor scratch — it dispatches outboxes
    /// mid-iteration, which clobbers `neighbor_scratch`.
    kill_scratch: Vec<NodeId>,
    /// Recycled outbox buffers handed to `Ctx` (one delivery at a time,
    /// so the pool stays tiny).
    outbox_pool: Vec<Vec<(Option<NodeId>, P::Msg)>>,
    rng: StdRng,
    /// Link-chaos state: the plan's drop/jitter/cut classes, sampled
    /// from a dedicated RNG so the base delay stream (`rng`) is
    /// untouched — a quiet plan is bit-identical to no plan.
    chaos: ChaosPlan,
    chaos_rng: Option<StdRng>,
    cfg: AsyncConfig,
    stats: AsyncStats,
    seq: u64,
    now: f64,
    initialized: bool,
}

impl<'n, P: NodeProcess> AsyncEngine<'n, P> {
    /// Creates one process per node.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has non-positive or inverted delays.
    pub fn new(net: &'n Network, cfg: AsyncConfig, mut make: impl FnMut(NodeId) -> P) -> Self {
        cfg.validate();
        let n = net.len();
        AsyncEngine {
            net,
            nodes: (0..n).map(|i| make(NodeId::new(i))).collect(),
            alive: vec![true; n],
            queue: BinaryHeap::new(),
            batch: Vec::new(),
            neighbor_scratch: Vec::new(),
            kill_scratch: Vec::new(),
            outbox_pool: Vec::new(),
            rng: StdRng::seed_from_u64(cfg.seed),
            chaos: ChaosPlan::new(),
            chaos_rng: None,
            cfg,
            stats: AsyncStats::default(),
            seq: 0,
            now: 0.0,
            initialized: false,
        }
    }

    /// Immutable access to the per-node processes.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The process running on one node.
    pub fn node(&self, u: NodeId) -> &P {
        &self.nodes[u.index()]
    }

    /// Whether a node is alive.
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// Statistics so far.
    pub fn stats(&self) -> AsyncStats {
        self.stats
    }

    /// Current virtual time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Installs a chaos plan. The asynchronous engine honors the **link
    /// classes**: per-copy Bernoulli drops, extra delay jitter (uniform
    /// in `[0, jitter]`, added on top of the config's base delay), and
    /// partition cuts — whose round window is interpreted in **virtual
    /// time units** (`from_round <= now < until_round`). Node kills and
    /// revivals are driven explicitly via [`AsyncEngine::kill_node`] /
    /// [`AsyncEngine::revive_node`] since the engine has no round clock.
    pub fn set_chaos_plan(&mut self, plan: ChaosPlan) {
        self.chaos_rng = if plan.drop_p() > 0.0 || plan.jitter() > 0.0 {
            Some(StdRng::seed_from_u64(plan.seed() ^ 0xc4a0_5eed))
        } else {
            None
        };
        self.chaos = plan;
    }

    /// The installed chaos plan (quiet by default).
    pub fn chaos_plan(&self) -> &ChaosPlan {
        &self.chaos
    }

    fn sample_delay(&mut self) -> f64 {
        if self.cfg.min_delay == self.cfg.max_delay {
            self.cfg.min_delay
        } else {
            self.rng
                .random_range(self.cfg.min_delay..self.cfg.max_delay)
        }
    }

    /// Whether link chaos swallows a copy addressed `from -> to` right
    /// now: an active cut severing the link, or a Bernoulli drop. Quiet
    /// plans short-circuit without touching any RNG.
    fn chaos_blocks(&mut self, from: NodeId, to: NodeId) -> bool {
        let tick = self.now as usize;
        if !self.chaos.links_perturbed_at(tick) {
            return false;
        }
        if self
            .chaos
            .severed_at(tick, self.net.position(from), self.net.position(to))
        {
            return true;
        }
        let p = self.chaos.drop_p();
        p > 0.0
            && self
                .chaos_rng
                .as_mut()
                .is_some_and(|rng| rng.random_bool(p))
    }

    fn enqueue(&mut self, from: NodeId, to: NodeId, msg: Payload<P::Msg>) {
        if self.chaos_blocks(from, to) {
            return;
        }
        let mut delay = self.sample_delay();
        let jitter = self.chaos.jitter();
        if jitter > 0.0 {
            if let Some(rng) = self.chaos_rng.as_mut() {
                delay += rng.random_range(0.0..jitter);
            }
        }
        self.seq += 1;
        self.queue.push(Event {
            time: self.now + delay,
            seq: self.seq,
            to,
            from,
            msg,
        });
    }

    /// Drains `outbox` into the event queue; the caller returns the
    /// emptied buffer to `outbox_pool`.
    fn dispatch_outbox(&mut self, from: NodeId, outbox: &mut Vec<(Option<NodeId>, P::Msg)>) {
        for (to, msg) in outbox.drain(..) {
            match to {
                None => {
                    self.stats.broadcasts += 1;
                    // One shared payload allocation per broadcast; every
                    // copy still takes its own delay — the defining
                    // difference from the synchronous engine.
                    let msg = Arc::new(msg);
                    self.neighbor_scratch.clear();
                    self.neighbor_scratch.extend(
                        self.net
                            .neighbors(from)
                            .iter()
                            .copied()
                            .filter(|v| self.alive[v.index()]),
                    );
                    for k in 0..self.neighbor_scratch.len() {
                        let v = self.neighbor_scratch[k];
                        self.enqueue(from, v, Payload::Shared(Arc::clone(&msg)));
                    }
                }
                Some(v) => {
                    self.stats.unicasts += 1;
                    if self.alive[v.index()] && self.net.has_edge(from, v) {
                        self.enqueue(from, v, Payload::Owned(msg));
                    }
                }
            }
        }
    }

    /// Kills a node immediately: its queued deliveries are dropped and
    /// live neighbors get [`NodeProcess::on_neighbor_failed`].
    pub fn kill_node(&mut self, victim: NodeId) {
        if !self.alive[victim.index()] {
            return;
        }
        self.alive[victim.index()] = false;
        let keep: Vec<Event<P::Msg>> = self
            .queue
            .drain()
            .filter(|e| e.to != victim && e.from != victim)
            .collect();
        self.queue = keep.into_iter().collect();
        self.kill_scratch.clear();
        self.kill_scratch
            .extend_from_slice(self.net.neighbors(victim));
        for k in 0..self.kill_scratch.len() {
            let v = self.kill_scratch[k];
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[v.index()].on_neighbor_failed(&mut ctx, victim);
            let mut outbox = ctx.outbox;
            self.dispatch_outbox(v, &mut outbox);
            self.outbox_pool.push(outbox);
        }
    }

    /// Revives a previously-killed node (flapping recovery): the node
    /// runs [`NodeProcess::on_rejoin`], then its live neighbors run
    /// [`NodeProcess::on_neighbor_recovered`]. Reviving a live node is
    /// a no-op.
    pub fn revive_node(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = true;
        let mut ctx = Ctx {
            id: node,
            net: self.net,
            alive: &self.alive,
            outbox: self.outbox_pool.pop().unwrap_or_default(),
        };
        self.nodes[node.index()].on_rejoin(&mut ctx);
        let mut outbox = ctx.outbox;
        self.dispatch_outbox(node, &mut outbox);
        self.outbox_pool.push(outbox);
        self.kill_scratch.clear();
        self.kill_scratch
            .extend_from_slice(self.net.neighbors(node));
        for k in 0..self.kill_scratch.len() {
            let v = self.kill_scratch[k];
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[v.index()].on_neighbor_recovered(&mut ctx, node);
            let mut outbox = ctx.outbox;
            self.dispatch_outbox(v, &mut outbox);
            self.outbox_pool.push(outbox);
        }
    }

    /// Runs [`NodeProcess::on_init`] on every node (idempotent).
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.nodes.len() {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Ctx {
                id: NodeId::new(i),
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[i].on_init(&mut ctx);
            let mut outbox = ctx.outbox;
            self.dispatch_outbox(NodeId::new(i), &mut outbox);
            self.outbox_pool.push(outbox);
        }
    }

    /// Delivers every event at the next pending timestamp (usually one;
    /// several under fixed-delay configs). Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        self.step_batch(usize::MAX) > 0
    }

    /// Drains up to `budget` heap entries sharing the minimal timestamp
    /// and delivers them in `seq` order — the exact order repeated
    /// single pops would produce, minus the per-event heap rebalances.
    /// Events beyond the budget stay queued (they resume at the same
    /// timestamp on the next call), so delivery budgets are honored to
    /// the event, not to the batch. Returns the number of events
    /// popped.
    fn step_batch(&mut self, budget: usize) -> usize {
        if budget == 0 {
            return 0;
        }
        self.init();
        let Some(ev) = self.queue.pop() else {
            return 0;
        };
        let time = ev.time;
        self.batch.clear();
        self.batch.push(ev);
        while self.batch.len() < budget && self.queue.peek().is_some_and(|next| next.time == time) {
            let next = self.queue.pop().expect("peeked event exists"); // sp-analyze: allow(panic, pop follows a successful peek under exclusive access)
            self.batch.push(next);
        }
        self.now = time;
        self.stats.virtual_time = time;
        let popped = self.batch.len();
        let mut batch = std::mem::take(&mut self.batch);
        for ev in batch.drain(..) {
            if !self.alive[ev.to.index()] {
                continue; // message into the void
            }
            self.stats.deliveries += 1;
            let inbox = [(ev.from, ev.msg.get())];
            let mut ctx = Ctx {
                id: ev.to,
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[ev.to.index()].on_round(&mut ctx, &inbox);
            let mut outbox = ctx.outbox;
            self.dispatch_outbox(ev.to, &mut outbox);
            self.outbox_pool.push(outbox);
        }
        self.batch = batch;
        popped
    }

    /// Runs until the event queue drains or `max_events` deliveries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::EventLimitExceeded`] when the protocol is
    /// still exchanging messages after `max_events` deliveries.
    pub fn run_until_quiescent(&mut self, max_events: usize) -> Result<AsyncStats, SimError> {
        self.init();
        let mut delivered = 0usize;
        while !self.queue.is_empty() {
            if delivered >= max_events {
                return Err(SimError::EventLimitExceeded { limit: max_events });
            }
            delivered += self.step_batch(max_events - delivered);
        }
        self.stats.quiesced = true;
        Ok(self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn line_net(n: usize) -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1000.0, 10.0));
        Network::from_positions(
            (0..n).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
            15.0,
            area,
        )
    }

    struct Gossip {
        value: u64,
    }

    impl NodeProcess for Gossip {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(self.value);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, &u64)]) {
            let best = inbox.iter().map(|&(_, &v)| v).max().unwrap_or(0);
            if best > self.value {
                self.value = best;
                ctx.broadcast(best);
            }
        }
    }

    #[test]
    fn max_gossip_converges_despite_reordering() {
        let net = line_net(8);
        for seed in 0..5 {
            let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(seed), |id| Gossip {
                value: (id.index() as u64) * 10,
            });
            let stats = engine.run_until_quiescent(100_000).unwrap();
            assert!(stats.quiesced);
            assert!(stats.virtual_time > 0.0);
            for n in engine.nodes() {
                assert_eq!(n.value, 70, "seed {seed}");
            }
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let net = line_net(6);
        let run = |seed| {
            let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(seed), |id| Gossip {
                value: id.index() as u64,
            });
            engine.run_until_quiescent(100_000).unwrap()
        };
        assert_eq!(run(3), run(3));
        // Different seeds almost surely deliver in different orders;
        // final state is the same but the trace differs.
        let a = run(1);
        let b = run(2);
        assert_ne!(
            (a.deliveries, a.virtual_time),
            (b.deliveries, b.virtual_time)
        );
    }

    #[test]
    fn event_limit_detects_livelock() {
        struct Chatterbox;
        impl NodeProcess for Chatterbox {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.broadcast(());
            }
            fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {
                ctx.broadcast(());
            }
        }
        let net = line_net(3);
        let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(0), |_| Chatterbox);
        let err = engine.run_until_quiescent(50).unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 50 });
        assert!(err.to_string().contains("50"));
    }

    #[test]
    fn killed_node_stops_receiving_and_notifies() {
        struct Watcher {
            lost: Vec<NodeId>,
        }
        impl NodeProcess for Watcher {
            type Msg = ();
            fn on_init(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {}
            fn on_neighbor_failed(&mut self, _ctx: &mut Ctx<'_, ()>, failed: NodeId) {
                self.lost.push(failed);
            }
        }
        let net = line_net(3);
        let mut engine =
            AsyncEngine::new(&net, AsyncConfig::jittered(1), |_| Watcher { lost: vec![] });
        engine.init();
        engine.kill_node(NodeId(1));
        assert!(!engine.is_alive(NodeId(1)));
        assert_eq!(engine.node(NodeId(0)).lost, vec![NodeId(1)]);
        assert_eq!(engine.node(NodeId(2)).lost, vec![NodeId(1)]);
        let stats = engine.run_until_quiescent(1000).unwrap();
        assert!(stats.quiesced);
    }

    #[test]
    fn fixed_delay_behaves_like_fifo_per_link() {
        // With equal delays, per-sender order is preserved (seq ties
        // break by enqueue order): gossip converges with the same final
        // state and the engine stays deterministic. This is also the
        // config where per-timestamp batching actually batches: every
        // wave of messages shares one delivery instant.
        let net = line_net(5);
        let cfg = AsyncConfig {
            seed: 9,
            min_delay: 1.0,
            max_delay: 1.0,
        };
        let mut engine = AsyncEngine::new(&net, cfg, |id| Gossip {
            value: id.index() as u64,
        });
        let stats = engine.run_until_quiescent(100_000).unwrap();
        assert!(stats.quiesced);
        for n in engine.nodes() {
            assert_eq!(n.value, 4);
        }
    }

    #[test]
    fn batched_step_counts_every_equal_time_event() {
        // Fixed delays: the init wave of 3 broadcasts lands as one
        // batch of 4 same-time deliveries (2 + 2 line endpoints share
        // middles...), and one `step` call consumes the whole instant.
        let net = line_net(3);
        let cfg = AsyncConfig {
            seed: 1,
            min_delay: 2.0,
            max_delay: 2.0,
        };
        let mut engine = AsyncEngine::new(&net, cfg, |id| Gossip {
            value: id.index() as u64,
        });
        engine.init();
        assert!(engine.step(), "first instant delivers");
        // All init-wave copies share time 2.0: 0->1, 1->0, 1->2, 2->1.
        assert_eq!(engine.stats().deliveries, 4);
        assert_eq!(engine.now(), 2.0);
    }

    #[test]
    fn event_budget_is_exact_even_under_fixed_delay_batches() {
        // Fixed delays make whole waves share a timestamp; the budget
        // must still be honored to the event, exactly like the
        // pre-batching engine: one event short of the true total errs,
        // the true total succeeds.
        let net = line_net(4);
        let cfg = AsyncConfig {
            seed: 5,
            min_delay: 1.0,
            max_delay: 1.0,
        };
        let total = {
            let mut engine = AsyncEngine::new(&net, cfg, |id| Gossip {
                value: id.index() as u64,
            });
            let stats = engine.run_until_quiescent(100_000).unwrap();
            // `deliveries` excludes messages into the void; with no
            // failures every popped event is delivered, so the count
            // equals the events the run needs.
            stats.deliveries
        };
        let run = |budget| {
            let mut engine = AsyncEngine::new(&net, cfg, |id| Gossip {
                value: id.index() as u64,
            });
            engine.run_until_quiescent(budget)
        };
        assert_eq!(
            run(total - 1).unwrap_err(),
            SimError::EventLimitExceeded { limit: total - 1 }
        );
        assert!(run(total).unwrap().quiesced);
    }

    #[test]
    fn quiet_chaos_plan_is_bit_identical_to_no_plan() {
        let net = line_net(12);
        let run = |plan: Option<ChaosPlan>| {
            let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(17), |id| Gossip {
                value: id.index() as u64,
            });
            if let Some(plan) = plan {
                engine.set_chaos_plan(plan);
            }
            let stats = engine.run_until_quiescent(100_000).unwrap();
            let values: Vec<u64> = engine.nodes().iter().map(|n| n.value).collect();
            (stats, values)
        };
        // A seeded but eventless plan must not perturb the delay stream.
        assert_eq!(run(None), run(Some(ChaosPlan::new().with_seed(99))));
    }

    #[test]
    fn async_drop_probability_one_swallows_every_copy() {
        let net = line_net(6);
        let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(3), |id| Gossip {
            value: id.index() as u64,
        });
        engine.set_chaos_plan(ChaosPlan::new().with_seed(8).with_drop(1.0));
        let stats = engine.run_until_quiescent(100_000).unwrap();
        assert!(stats.quiesced);
        assert_eq!(stats.deliveries, 0, "every copy drops at enqueue");
        for (i, n) in engine.nodes().iter().enumerate() {
            assert_eq!(n.value, i as u64, "nobody ever heard a neighbor");
        }
    }

    #[test]
    fn async_cut_window_severs_in_virtual_time() {
        // A vertical cut through the middle of the line for the whole
        // run: the halves converge independently.
        let net = line_net(6);
        let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(5), |id| Gossip {
            value: id.index() as u64,
        });
        let mut plan = ChaosPlan::new().with_seed(2);
        plan.add_cut(crate::CutWindow {
            a: Point::new(25.0, -5.0),
            b: Point::new(25.0, 15.0),
            from_round: 0,
            until_round: usize::MAX,
        });
        engine.set_chaos_plan(plan);
        let stats = engine.run_until_quiescent(100_000).unwrap();
        assert!(stats.quiesced);
        // Left half (0..=2) gossips to 2; right half (3..=5) to 5.
        let values: Vec<u64> = engine.nodes().iter().map(|n| n.value).collect();
        assert_eq!(values, vec![2, 2, 2, 5, 5, 5]);
    }

    #[test]
    fn async_jitter_changes_the_trace_but_not_convergence() {
        let net = line_net(8);
        let run = |jitter: f64| {
            let mut engine = AsyncEngine::new(&net, AsyncConfig::jittered(11), |id| Gossip {
                value: id.index() as u64,
            });
            if jitter > 0.0 {
                engine.set_chaos_plan(ChaosPlan::new().with_seed(4).with_jitter(jitter));
            }
            let stats = engine.run_until_quiescent(100_000).unwrap();
            assert!(stats.quiesced);
            for n in engine.nodes() {
                assert_eq!(n.value, 7);
            }
            stats.virtual_time
        };
        assert_ne!(run(0.0), run(3.0), "jitter stretches the schedule");
    }

    #[test]
    #[should_panic(expected = "delays must satisfy")]
    fn invalid_delay_config_panics() {
        let net = line_net(2);
        let cfg = AsyncConfig {
            seed: 0,
            min_delay: 2.0,
            max_delay: 1.0,
        };
        let _ = AsyncEngine::new(&net, cfg, |_| Gossip { value: 0 });
    }
}
