//! A hand-rolled Rust lexer, just deep enough for rule scanning.
//!
//! Produces a line-numbered token stream (identifiers, punctuation,
//! literals, lifetimes) with comments lifted out separately — rules
//! match token shapes, the allow-comment grammar matches comments.
//! The tricky corners a naive scanner gets wrong are handled:
//! nested block comments, raw strings with arbitrary `#` fences,
//! escape sequences inside string/char literals, and the `'a` char
//! literal vs `'a` lifetime ambiguity.

/// What a token is, as coarsely as the rules need.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// An identifier or keyword.
    Ident,
    /// One punctuation character (`.`, `:`, `!`, `[`, `{`, …).
    Punct,
    /// A string literal (regular, raw, byte, or byte-raw), with quotes
    /// and fences stripped but escapes left as written.
    Str,
    /// A char or byte literal, quotes kept out of `text`.
    Char,
    /// A lifetime (`'a`), without the leading quote.
    Lifetime,
    /// A numeric literal.
    Num,
}

/// One token with its 1-indexed source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: Kind,
    pub text: String,
    pub line: usize,
}

/// One comment (line or block) with the 1-indexed line it *starts* on
/// and its text without the delimiters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    pub line: usize,
    pub text: String,
}

/// The lexed file: tokens in order, comments in order.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

/// Lexes `src`. Unterminated constructs (a string or block comment
/// running off the end of the file) terminate the scan quietly — the
/// compiler is the syntax checker; the linter only needs to never
/// misclassify what it saw before the error.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b if b.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'r' | b'b' if self.raw_string_ahead() => self.raw_string(),
                b'b' if self.peek(1) == Some(b'\'') => {
                    self.pos += 1;
                    self.char_literal();
                }
                b'b' if self.peek(1) == Some(b'"') => {
                    self.pos += 1;
                    self.string();
                }
                b'"' => self.string(),
                b'\'' => self.quote(),
                b if b.is_ascii_digit() => self.number(),
                b if b == b'_' || b.is_ascii_alphabetic() => self.ident(),
                _ => {
                    self.push(Kind::Punct, (b as char).to_string());
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn push(&mut self, kind: Kind, text: String) {
        self.out.toks.push(Tok {
            kind,
            text,
            line: self.line,
        });
    }

    fn line_comment(&mut self) {
        let start = self.pos + 2;
        let mut end = start;
        while end < self.bytes.len() && self.bytes[end] != b'\n' {
            end += 1;
        }
        self.out.comments.push(Comment {
            line: self.line,
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
        });
        self.pos = end;
    }

    fn block_comment(&mut self) {
        let comment_line = self.line;
        let start = self.pos + 2;
        self.pos = start;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() && depth > 0 {
            match (self.bytes[self.pos], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.pos += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.pos += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.pos += 1;
                }
                _ => self.pos += 1,
            }
        }
        let end = self.pos.saturating_sub(2).max(start);
        self.out.comments.push(Comment {
            line: comment_line,
            text: String::from_utf8_lossy(&self.bytes[start..end]).into_owned(),
        });
    }

    /// True at `r"`, `r#`, `br"`, or `br#` — a raw string opener, as
    /// opposed to an identifier starting with `r`/`b`.
    fn raw_string_ahead(&self) -> bool {
        let mut k = 0;
        if self.peek(0) == Some(b'b') {
            k = 1;
        }
        if self.bytes.get(self.pos + k) != Some(&b'r') {
            return false;
        }
        matches!(self.peek(k + 1), Some(b'"') | Some(b'#'))
    }

    fn raw_string(&mut self) {
        let start_line = self.line;
        if self.peek(0) == Some(b'b') {
            self.pos += 1;
        }
        self.pos += 1; // the `r`
        let mut fences = 0usize;
        while self.peek(0) == Some(b'#') {
            fences += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            return; // `r#foo` raw identifier: re-lex the rest as idents
        }
        self.pos += 1;
        let body_start = self.pos;
        loop {
            match self.peek(0) {
                None => break,
                Some(b'\n') => {
                    self.line += 1;
                    self.pos += 1;
                }
                Some(b'"') => {
                    let closes = (0..fences).all(|k| self.peek(1 + k) == Some(b'#'));
                    if closes {
                        let text =
                            String::from_utf8_lossy(&self.bytes[body_start..self.pos]).into_owned();
                        self.out.toks.push(Tok {
                            kind: Kind::Str,
                            text,
                            line: start_line,
                        });
                        self.pos += 1 + fences;
                        return;
                    }
                    self.pos += 1;
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn string(&mut self) {
        let start_line = self.line;
        self.pos += 1; // opening quote
        let body_start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                b'"' => {
                    let text =
                        String::from_utf8_lossy(&self.bytes[body_start..self.pos]).into_owned();
                    self.out.toks.push(Tok {
                        kind: Kind::Str,
                        text,
                        line: start_line,
                    });
                    self.pos += 1;
                    return;
                }
                _ => self.pos += 1,
            }
        }
    }

    /// A `'`: either a char literal (`'x'`, `'\n'`) or a lifetime
    /// (`'a`, `'static`). A quote followed by an identifier char is a
    /// char literal only if a closing quote follows the (possibly
    /// escaped) content.
    fn quote(&mut self) {
        if self.peek(1) == Some(b'\\')
            || (self.peek(1).is_some() && self.peek(2) == Some(b'\''))
            || self.peek(1) == Some(b'\'')
        {
            self.char_literal();
        } else {
            self.pos += 1;
            let start = self.pos;
            while self
                .peek(0)
                .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
            {
                self.pos += 1;
            }
            let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
            self.push(Kind::Lifetime, text);
        }
    }

    fn char_literal(&mut self) {
        self.pos += 1; // opening quote
        let start = self.pos;
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.pos += 2,
                b'\'' => {
                    let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                    self.push(Kind::Char, text);
                    self.pos += 1;
                    return;
                }
                b'\n' => return, // malformed; let rustc complain
                _ => self.pos += 1,
            }
        }
    }

    fn number(&mut self) {
        let start = self.pos;
        while self.peek(0).is_some_and(|b| {
            b.is_ascii_alphanumeric() || b == b'_' || b == b'.' && self.peek(1) != Some(b'.')
        }) {
            // `1..n` must stay Num(1) Punct(.) Punct(.) Ident(n); a
            // trailing method call `1.max(2)` keeps the dot out too —
            // only digit-adjacent dots belong to the number.
            if self.bytes[self.pos] == b'.' && !self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Kind::Num, text);
    }

    fn ident(&mut self) {
        let start = self.pos;
        while self
            .peek(0)
            .is_some_and(|b| b == b'_' || b.is_ascii_alphanumeric())
        {
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
        self.push(Kind::Ident, text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn comments_are_lifted_not_tokenized() {
        let l = lex("let a = 1; // trailing note\n/* block\nspanning */ let b;");
        assert_eq!(l.comments.len(), 2);
        assert_eq!(l.comments[0].text, " trailing note");
        assert_eq!(l.comments[0].line, 1);
        assert_eq!(l.comments[1].line, 2);
        assert!(idents("// only a comment\n").is_empty());
    }

    #[test]
    fn nested_block_comments_do_not_leak_tokens() {
        assert_eq!(idents("/* a /* nested */ still comment */ real"), ["real"]);
    }

    #[test]
    fn strings_swallow_their_contents() {
        let l = lex(r#"let s = "fn fake() { panic!() }"; real"#);
        assert_eq!(
            l.toks
                .iter()
                .filter(|t| t.kind == Kind::Ident)
                .map(|t| t.text.as_str())
                .collect::<Vec<_>>(),
            ["let", "s", "real"]
        );
        assert_eq!(l.toks.iter().filter(|t| t.kind == Kind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_fences_and_inner_quotes() {
        let l = lex("let s = r#\"quote \" and // not a comment\"#; after");
        assert!(l.comments.is_empty());
        let s = l.toks.iter().find(|t| t.kind == Kind::Str).unwrap();
        assert_eq!(s.text, "quote \" and // not a comment");
        assert_eq!(l.toks.last().unwrap().text, "after");
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let l = lex("let c = 'x'; fn f<'a>(v: &'a str) {} let nl = '\\n';");
        let chars: Vec<_> = l.toks.iter().filter(|t| t.kind == Kind::Char).collect();
        let lifetimes: Vec<_> = l.toks.iter().filter(|t| t.kind == Kind::Lifetime).collect();
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].text, "x");
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "a"));
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "line1\n\"str\nspans\"\nlast";
        let l = lex(src);
        assert_eq!(l.toks.last().unwrap().line, 4);
    }

    #[test]
    fn numbers_do_not_eat_range_or_method_dots() {
        let l = lex("for i in 0..10 { x = 1.5; y = 2.max(3); }");
        let nums: Vec<_> = l
            .toks
            .iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, ["0", "10", "1.5", "2", "3"]);
        assert!(l.toks.iter().any(|t| t.text == "max"));
    }
}
