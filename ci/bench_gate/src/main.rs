//! The CI perf-regression gate over the workspace's `BENCH_*.json`
//! artifacts.
//!
//! Usage:
//!
//! ```sh
//! bench_gate [--tolerance 0.25] [--slack 0.002] [--latency-slack 0.000025] \
//!     [--allow-missing] [--history <dir> --branch <name>] \
//!     <baseline.json> <current.json> [<baseline2.json> <current2.json> ...]
//! ```
//!
//! For every file pair, result rows are matched by position; a row's
//! string-valued fields (scenario / case names) must agree, and every
//! `*_seconds` median in the baseline is compared against the fresh
//! measurement. A metric **regresses** when
//!
//! ```text
//! current > baseline * (1 + tolerance) + slack
//! ```
//!
//! `tolerance` (default 0.25, i.e. 25%) absorbs machine-relative drift;
//! `slack` (default 2 ms, absolute seconds) keeps microsecond-scale
//! metrics — whose stddev rivals their median — from tripping the gate
//! on scheduler noise. **Percentile metrics** (`*_p50_seconds`,
//! `*_p95_seconds`, `*_p99_seconds` — per-event tail latencies, e.g.
//! the `service_latency` rows) use `latency-slack` (default 25 µs)
//! instead: a per-query tail lives three orders of magnitude below the
//! wall-clock metrics, so the 2 ms slack would swallow any real tail
//! regression whole (a doubled p99 would still read "within
//! tolerance"), while 25 µs still absorbs scheduler jitter on the
//! single-digit-microsecond p50s. Informational fields (`*_samples`, `*_stddev`,
//! `speedup*`, thread counts) are never gated. Exit code is non-zero
//! when any metric regresses, so the CI job fails loudly.
//!
//! A metric present in the baseline but **absent from the fresh run**
//! is a named `MISSING` gate failure (exit 1) pointing at the row and
//! key — a bench writer that silently dropped a metric must not pass.
//! `--allow-missing` downgrades those findings to warnings for the one
//! legitimate case: a PR that deliberately retires a metric, gated
//! against a baseline that still carries it.
//!
//! ## Per-branch baseline history
//!
//! With `--history <dir> --branch <name>`, the gate keeps a rolling
//! baseline **per branch** instead of relying solely on the committed
//! files: each pair is gated against
//! `<dir>/<branch-slug>/<basename(current)>` when that file exists
//! (a branch with no history of its own inherits `main`'s; with
//! neither, the committed baseline gates alone), and after a fully
//! green gate the fresh measurements are stored as the branch's next
//! baselines, with one summary line appended to its `history.jsonl`.
//! A regressing run leaves the stored baselines untouched, so a slow
//! branch cannot ratchet its own bar down — and a metric only fails
//! the gate when it regresses against the rolling baseline **and**
//! the committed one, so refreshing `BENCH_*.json` in a PR (the
//! documented escape hatch for legitimate perf changes) still
//! unblocks a branch with stale-fast history.
//!
//! The parser is a tiny recursive-descent JSON reader for the schema
//! our bench writers emit — the workspace deliberately has no serde.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The JSON subset the bench artifacts use.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(BTreeMap<String, Value>),
}

impl Value {
    fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_owned())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| format!("bad number at offset {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or("unterminated string")?
            {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        c => c as char, // \" \\ \/ and friends
                    });
                    self.pos += 1;
                }
                c => {
                    out.push(c as char);
                    self.pos += 1;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("bad object at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("bad array at offset {}", self.pos)),
            }
        }
    }
}

/// One gate verdict line.
#[derive(Debug, Clone, PartialEq)]
struct Finding {
    row: String,
    metric: String,
    baseline: f64,
    /// `None` when the metric is in the baseline but absent from the
    /// fresh run.
    current: Option<f64>,
    regressed: bool,
}

/// The gate's thresholds and escape hatches.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Gate {
    /// Relative headroom every gated metric gets (0.25 = +25%).
    tolerance: f64,
    /// Absolute headroom (seconds / bytes-per-node) for wall-clock
    /// medians and memory metrics.
    slack: f64,
    /// Absolute headroom (seconds) for per-event percentile metrics
    /// (`*_p50/_p95/_p99_seconds`), which live at microsecond scale.
    latency_slack: f64,
    /// Downgrade baseline-metric-missing-from-current findings from
    /// gate failures to warnings.
    allow_missing: bool,
}

impl Gate {
    fn new(tolerance: f64, slack: f64) -> Gate {
        Gate {
            tolerance,
            slack,
            latency_slack: 0.000025,
            allow_missing: false,
        }
    }

    /// The absolute headroom for metric key `k`.
    fn slack_for(&self, k: &str) -> f64 {
        if is_percentile_metric(k) {
            self.latency_slack
        } else {
            self.slack
        }
    }
}

/// True for the per-event tail-latency keys the `--latency-slack`
/// floor applies to.
fn is_percentile_metric(key: &str) -> bool {
    key.ends_with("_p50_seconds") || key.ends_with("_p95_seconds") || key.ends_with("_p99_seconds")
}

/// Compares one parsed baseline/current artifact pair.
fn compare(baseline: &Value, current: &Value, gate: &Gate) -> Result<Vec<Finding>, String> {
    let (b, c) = (
        baseline.as_object().ok_or("baseline is not an object")?,
        current.as_object().ok_or("current is not an object")?,
    );
    let name = |o: &BTreeMap<String, Value>| {
        o.get("benchmark")
            .and_then(Value::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let (bn, cn) = (name(b), name(c));
    if bn != cn {
        return Err(format!(
            "benchmark mismatch: baseline '{bn}' vs current '{cn}'"
        ));
    }
    let rows = |o: &BTreeMap<String, Value>| -> Result<Vec<Value>, String> {
        Ok(o.get("results")
            .and_then(Value::as_array)
            .ok_or("missing results array")?
            .to_vec())
    };
    let (brows, crows) = (rows(b)?, rows(c)?);
    if brows.len() != crows.len() {
        return Err(format!(
            "{bn}: baseline has {} result rows, current has {}",
            brows.len(),
            crows.len()
        ));
    }
    let mut findings = Vec::new();
    for (i, (br, cr)) in brows.iter().zip(&crows).enumerate() {
        let (br, cr) = (
            br.as_object().ok_or("baseline row is not an object")?,
            cr.as_object().ok_or("current row is not an object")?,
        );
        // Identity: every string field (scenario / case tag) must agree,
        // so a reordered or renamed row can never be compared silently.
        let label = br
            .iter()
            .filter_map(|(k, v)| v.as_str().map(|s| format!("{k}={s}")))
            .collect::<Vec<_>>()
            .join(",");
        for (k, v) in br {
            if let Some(want) = v.as_str() {
                let got = cr.get(k).and_then(Value::as_str);
                if got != Some(want) {
                    return Err(format!(
                        "{bn} row {i}: field '{k}' is '{want}' in baseline but {:?} in current",
                        got
                    ));
                }
            }
        }
        let row_tag = if label.is_empty() {
            format!("{bn}[{i}]")
        } else {
            format!("{bn}[{label}]")
        };
        for (k, v) in br {
            if !k.ends_with("_seconds") && !k.ends_with("_bytes_per_node") {
                continue;
            }
            let base = v
                .as_number()
                .ok_or_else(|| format!("{row_tag}: baseline '{k}' is not a number"))?;
            // A gated metric the fresh run no longer reports is a
            // first-class finding, not a parse error: the gate names
            // the row and key, fails (unless --allow-missing), and
            // still prints every other verdict.
            let cur = match cr.get(k) {
                Some(v) => Some(
                    v.as_number()
                        .ok_or_else(|| format!("{row_tag}: current '{k}' is not a number"))?,
                ),
                None => None,
            };
            findings.push(Finding {
                row: row_tag.clone(),
                metric: k.clone(),
                baseline: base,
                current: cur,
                regressed: match cur {
                    Some(cur) => cur > base * (1.0 + gate.tolerance) + gate.slack_for(k),
                    None => !gate.allow_missing,
                },
            });
        }
    }
    Ok(findings)
}

/// The branch whose history seeds a branch that has none of its own.
const DEFAULT_BRANCH: &str = "main";

/// A branch name as a path-safe directory slug (`/` and anything
/// exotic become `-`, so `feat/route-buffer` and `feat-route-buffer`
/// share history — close enough for a cache key).
fn branch_slug(branch: &str) -> String {
    let slug: String = branch
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '.' || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect();
    if slug.is_empty() {
        "unnamed".to_owned()
    } else {
        slug
    }
}

/// Where `current`'s rolling baseline lives for this branch.
fn history_path(dir: &Path, branch: &str, current: &str) -> PathBuf {
    let name = Path::new(current)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| current.to_owned());
    dir.join(branch_slug(branch)).join(name)
}

/// After a green gate: store each fresh artifact as the branch's next
/// baseline and append a summary line to its `history.jsonl`.
fn update_history(dir: &Path, branch: &str, currents: &[&String]) -> Result<(), String> {
    let branch_dir = dir.join(branch_slug(branch));
    std::fs::create_dir_all(&branch_dir)
        .map_err(|e| format!("cannot create {}: {e}", branch_dir.display()))?;
    let stamp = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let mut log_entries = Vec::new();
    for cur in currents {
        let dest = history_path(dir, branch, cur);
        std::fs::copy(cur, &dest)
            .map_err(|e| format!("cannot store {} as {}: {e}", cur, dest.display()))?;
        log_entries.push(format!(
            "{{\"unix_seconds\": {stamp}, \"artifact\": \"{}\"}}",
            dest.file_name().unwrap_or_default().to_string_lossy()
        ));
    }
    let log = branch_dir.join("history.jsonl");
    let mut body = log_entries.join("\n");
    body.push('\n');
    use std::io::Write;
    std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&log)
        .and_then(|mut f| f.write_all(body.as_bytes()))
        .map_err(|e| format!("cannot append {}: {e}", log.display()))
}

fn run(args: &[String]) -> Result<Vec<Finding>, String> {
    let mut gate = Gate::new(0.25, 0.002);
    let mut history: Option<PathBuf> = None;
    let mut branch: Option<String> = None;
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--tolerance" => {
                gate.tolerance = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--tolerance needs a number")?
            }
            "--slack" => {
                gate.slack = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--slack needs a number (seconds)")?
            }
            "--latency-slack" => {
                gate.latency_slack = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--latency-slack needs a number (seconds)")?
            }
            "--allow-missing" => gate.allow_missing = true,
            "--history" => {
                history = Some(PathBuf::from(
                    it.next().ok_or("--history needs a directory")?,
                ))
            }
            "--branch" => branch = Some(it.next().ok_or("--branch needs a name")?.clone()),
            _ => paths.push(a),
        }
    }
    if paths.is_empty() || !paths.len().is_multiple_of(2) {
        return Err(
            "usage: bench_gate [--tolerance T] [--slack S] [--latency-slack S] [--allow-missing] [--history DIR --branch NAME] <baseline.json> <current.json> ..."
                .to_owned(),
        );
    }
    let history = match (history, branch) {
        (Some(dir), Some(branch)) => Some((dir, branch)),
        (None, None) => None,
        _ => return Err("--history and --branch must be given together".to_owned()),
    };
    let mut findings = Vec::new();
    for pair in paths.chunks(2) {
        let read =
            |p: &str| std::fs::read_to_string(p).map_err(|e| format!("cannot read {p}: {e}"));
        let committed = Parser::parse(&read(pair[0])?).map_err(|e| format!("{}: {e}", pair[0]))?;
        let cur = Parser::parse(&read(pair[1])?).map_err(|e| format!("{}: {e}", pair[1]))?;
        let committed_findings = compare(&committed, &cur, &gate)?;
        // The rolling baseline: this branch's, else the default
        // branch's (a fresh branch inherits main's bar).
        let rolling_path = history.as_ref().and_then(|(dir, branch)| {
            [branch.as_str(), DEFAULT_BRANCH]
                .iter()
                .map(|b| history_path(dir, b, pair[1]))
                .find(|p| p.is_file())
        });
        let Some(rolling_path) = rolling_path else {
            findings.extend(committed_findings);
            continue;
        };
        // Gate against the rolling baseline, but a metric only REALLY
        // regresses when it is worse than the committed baseline too:
        // refreshing BENCH_*.json in a PR (the documented escape hatch
        // for legitimate perf changes) must override stale-fast branch
        // history, and a branch with a deliberately different perf
        // profile can run on its own history without touching the
        // committed files.
        let rp = rolling_path.to_string_lossy().into_owned();
        println!(
            "using rolling baseline {rp} (committed {} as the floor)",
            pair[0]
        );
        // A rolling baseline written before a bench gained rows or
        // metrics (or the reverse) can't be zipped against the fresh
        // run; fall back to the committed baseline for this gate — the
        // next green run rewrites the branch history with the new
        // metric set, so history picks up new metrics without anyone
        // deleting cache entries by hand.
        let rolling_findings = Parser::parse(&read(&rp)?)
            .map_err(|e| format!("{rp}: {e}"))
            .and_then(|rolling| compare(&rolling, &cur, &gate));
        let mut rolling_findings = match rolling_findings {
            Ok(f)
                if f.len() == committed_findings.len()
                    && f.iter()
                        .zip(&committed_findings)
                        .all(|(r, c)| r.metric == c.metric && r.row == c.row) =>
            {
                f
            }
            Ok(_) | Err(_) => {
                println!(
                    "rolling baseline {rp} does not match the current metric set; \
                     gating against committed {} only (a green run refreshes history)",
                    pair[0]
                );
                findings.extend(committed_findings);
                continue;
            }
        };
        for (r, c) in rolling_findings.iter_mut().zip(&committed_findings) {
            r.regressed = r.regressed && c.regressed;
        }
        findings.extend(rolling_findings);
    }
    if let Some((dir, branch)) = &history {
        if findings.iter().all(|f| !f.regressed) {
            let currents: Vec<&String> = paths.chunks(2).map(|p| p[1]).collect();
            update_history(dir, branch, &currents)?;
            println!(
                "stored {} fresh baseline(s) under {}",
                currents.len(),
                dir.join(branch_slug(branch)).display()
            );
        } else {
            println!("regression found: branch baselines left untouched");
        }
    }
    Ok(findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Err(e) => {
            eprintln!("bench_gate: {e}");
            ExitCode::from(2)
        }
        Ok(findings) => {
            let mut failed = 0usize;
            for f in &findings {
                let Some(cur) = f.current else {
                    let verdict = if f.regressed { "MISSING" } else { "missing-ok" };
                    println!(
                        "{verdict:>9}  {} {}: {:.6}s -> (absent from current run)",
                        f.row, f.metric, f.baseline
                    );
                    failed += usize::from(f.regressed);
                    continue;
                };
                let ratio = if f.baseline > 0.0 {
                    cur / f.baseline
                } else {
                    f64::INFINITY
                };
                let verdict = if f.regressed { "REGRESSED" } else { "ok" };
                println!(
                    "{verdict:>9}  {} {}: {:.6}s -> {:.6}s ({ratio:.2}x)",
                    f.row, f.metric, f.baseline, cur
                );
                failed += usize::from(f.regressed);
            }
            if failed > 0 {
                eprintln!("bench_gate: {failed}/{} metrics regressed", findings.len());
                ExitCode::FAILURE
            } else {
                println!(
                    "bench_gate: all {} metrics within tolerance",
                    findings.len()
                );
                ExitCode::SUCCESS
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASE: &str = r#"{
  "benchmark": "demo",
  "unit": "seconds (median over samples)",
  "results": [
    {"case": "fast", "n": 100, "samples": 5, "time_seconds": 0.100000, "time_stddev": 0.001000},
    {"case": "slow", "n": 100, "samples": 5, "time_seconds": 0.500000, "time_stddev": 0.002000}
  ]
}"#;

    fn with_time(case_times: &[(&str, f64)]) -> Value {
        let rows: Vec<String> = case_times
            .iter()
            .map(|(c, t)| {
                format!(
                    "{{\"case\": \"{c}\", \"n\": 100, \"samples\": 5, \"time_seconds\": {t:.6}, \"time_stddev\": 0.001}}"
                )
            })
            .collect();
        Parser::parse(&format!(
            "{{\"benchmark\": \"demo\", \"results\": [{}]}}",
            rows.join(",")
        ))
        .unwrap()
    }

    #[test]
    fn parses_real_artifact_shape() {
        let v = Parser::parse(BASE).unwrap();
        let rows = v.as_object().unwrap()["results"].as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0].as_object().unwrap()["time_seconds"].as_number(),
            Some(0.1)
        );
        assert_eq!(rows[1].as_object().unwrap()["case"].as_str(), Some("slow"));
    }

    #[test]
    fn unchanged_medians_pass() {
        let base = Parser::parse(BASE).unwrap();
        let cur = with_time(&[("fast", 0.1), ("slow", 0.5)]);
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| !x.regressed));
    }

    #[test]
    fn synthetic_2x_slowdown_fails() {
        let base = Parser::parse(BASE).unwrap();
        let cur = with_time(&[("fast", 0.2), ("slow", 1.0)]);
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert!(
            f.iter().all(|x| x.regressed),
            "2x slowdown must trip the gate"
        );
    }

    #[test]
    fn slack_absorbs_noise_floor_micro_metrics() {
        // 1 µs baseline jumping to 1 ms stays inside the 2 ms slack;
        // with 25% tolerance alone it would regress.
        let base = with_time(&[("fast", 0.000001)]);
        let cur = with_time(&[("fast", 0.001)]);
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert!(!f[0].regressed);
        let f = compare(&base, &cur, &Gate::new(0.25, 0.0)).unwrap();
        assert!(f[0].regressed);
    }

    #[test]
    fn just_inside_tolerance_passes_and_just_outside_fails() {
        let base = with_time(&[("slow", 0.5)]);
        let ok = with_time(&[("slow", 0.624)]); // 0.5 * 1.25 + slack > this
        let bad = with_time(&[("slow", 0.628)]);
        assert!(!compare(&base, &ok, &Gate::new(0.25, 0.002)).unwrap()[0].regressed);
        assert!(compare(&base, &bad, &Gate::new(0.25, 0.002)).unwrap()[0].regressed);
    }

    #[test]
    fn renamed_row_is_an_error_not_a_pass() {
        let base = with_time(&[("fast", 0.1)]);
        let cur = with_time(&[("other", 0.1)]);
        assert!(compare(&base, &cur, &Gate::new(0.25, 0.002)).is_err());
    }

    #[test]
    fn row_count_mismatch_is_an_error() {
        let base = with_time(&[("fast", 0.1)]);
        let cur = with_time(&[("fast", 0.1), ("extra", 0.1)]);
        assert!(compare(&base, &cur, &Gate::new(0.25, 0.002)).is_err());
    }

    #[test]
    fn missing_metric_in_current_is_a_named_gate_failure() {
        // A bench writer that silently dropped a metric must fail the
        // gate with a finding naming the row and key — not pass, and
        // not die as an opaque parse-level error that hides the rest
        // of the report.
        let base = with_time(&[("fast", 0.1)]);
        let cur = Parser::parse(
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"n\": 100}]}",
        )
        .unwrap();
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].metric, "time_seconds");
        assert_eq!(f[0].current, None);
        assert!(f[0].regressed, "a vanished metric must fail the gate");
        assert!(
            f[0].row.contains("fast"),
            "finding names the row: {}",
            f[0].row
        );
    }

    #[test]
    fn allow_missing_downgrades_vanished_metrics_only() {
        let base = with_time(&[("fast", 0.1)]);
        let cur = Parser::parse(
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"n\": 100}]}",
        )
        .unwrap();
        let allow = Gate {
            allow_missing: true,
            ..Gate::new(0.25, 0.002)
        };
        let f = compare(&base, &cur, &allow).unwrap();
        assert_eq!((f[0].current, f[0].regressed), (None, false));
        // The escape hatch never excuses a real slowdown.
        let slow = with_time(&[("fast", 0.9)]);
        let f = compare(&base, &slow, &allow).unwrap();
        assert!(
            f[0].regressed,
            "--allow-missing must not forgive regressions"
        );
    }

    #[test]
    fn allow_missing_flag_reaches_the_gate_through_run() {
        let work = temp_dir("allowmissing");
        let committed = write_artifact(&work, "base.json", 0.1);
        let gutted = work.join("cur.json");
        std::fs::write(
            &gutted,
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"n\": 100}]}",
        )
        .unwrap();
        let cur = gutted.to_string_lossy().into_owned();
        // Without the flag: a failing MISSING finding (exit 1 path).
        let f = run(&[committed.clone(), cur.clone()]).unwrap();
        assert!(f[0].regressed && f[0].current.is_none());
        // With it: the same finding, downgraded.
        let f = run(&["--allow-missing".into(), committed, cur]).unwrap();
        assert!(!f[0].regressed && f[0].current.is_none());
        let _ = std::fs::remove_dir_all(&work);
    }

    #[test]
    fn percentile_metrics_are_gated_with_the_latency_slack() {
        let row = |p50: f64, p99: f64| {
            Parser::parse(&format!(
                "{{\"benchmark\": \"demo\", \"results\": [{{\"case\": \"churn\", \"run_seconds\": 0.4, \"query_p50_seconds\": {p50:.9}, \"query_p99_seconds\": {p99:.9}}}]}}"
            ))
            .unwrap()
        };
        // Microsecond-scale tails: a 2x p99 regression (144 µs -> 288
        // µs) must trip the gate even though it is far inside the 2 ms
        // wall-clock slack that gates run_seconds.
        let base = row(0.000006, 0.000144);
        let f = compare(&base, &row(0.000006, 0.000288), &Gate::new(0.25, 0.002)).unwrap();
        let p99 = f.iter().find(|x| x.metric == "query_p99_seconds").unwrap();
        assert!(p99.regressed, "2x p99 regression must trip the gate");
        assert!(
            f.iter().filter(|x| x.regressed).count() == 1,
            "only the p99 regressed: {f:?}"
        );
        // Sub-latency-slack jitter on a tiny p50 never trips.
        let f = compare(&base, &row(0.000030, 0.000144), &Gate::new(0.25, 0.002)).unwrap();
        assert!(
            f.iter().all(|x| !x.regressed),
            "25 µs floor absorbs micro-jitter"
        );
        // And --latency-slack widens the floor like --slack does.
        let wide = Gate {
            latency_slack: 0.001,
            ..Gate::new(0.25, 0.002)
        };
        let f = compare(&base, &row(0.000006, 0.000288), &wide).unwrap();
        assert!(f.iter().all(|x| !x.regressed));
    }

    #[test]
    fn percentile_key_detection_is_suffix_exact() {
        assert!(is_percentile_metric("query_p50_seconds"));
        assert!(is_percentile_metric("query_p95_seconds"));
        assert!(is_percentile_metric("query_p99_seconds"));
        assert!(!is_percentile_metric("run_seconds"));
        assert!(!is_percentile_metric("p99_stddev"));
        assert!(!is_percentile_metric("query_p90_seconds"));
    }

    #[test]
    fn truncated_artifact_is_a_parse_error() {
        // A build that dies mid-write leaves a half artifact; the gate
        // must refuse it (exit 2 via run's Err), never compare it.
        let cut = &BASE[..BASE.len() / 2];
        assert!(Parser::parse(cut).is_err());
        let dir = temp_dir("truncated");
        let good = write_artifact(&dir, "base.json", 0.1);
        let bad = dir.join("cur.json");
        std::fs::write(&bad, cut).unwrap();
        let err = run(&[good, bad.to_string_lossy().into_owned()]).unwrap_err();
        assert!(err.contains("cur.json"), "error names the bad file: {err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn nan_median_is_a_parse_error_not_a_silent_pass() {
        // `NaN > bar` is false for every bar, so a NaN median that
        // slipped through comparison would read as "within tolerance".
        // The JSON grammar has no NaN literal and the parser must say
        // so rather than improvise one.
        let nan =
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"time_seconds\": NaN}]}";
        assert!(Parser::parse(nan).is_err());
        // Neither can it hide as a non-numeric stand-in: parsing
        // succeeds but comparison refuses the row (the stringly metric
        // trips the identity check before the number check can).
        let stringly =
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"time_seconds\": \"NaN\"}]}";
        let base = Parser::parse(stringly).unwrap();
        let cur = with_time(&[("fast", 0.1)]);
        let err = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap_err();
        assert!(err.contains("time_seconds"), "got: {err}");
    }

    #[test]
    fn missing_samples_field_is_informational_not_fatal() {
        // `samples` (like `*_stddev`) is bookkeeping, not a gated
        // metric: an artifact from an older bench writer without it
        // still gates on its medians.
        let no_samples =
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"time_seconds\": 0.1}]}";
        let base = Parser::parse(no_samples).unwrap();
        let cur = with_time(&[("fast", 0.3)]);
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert_eq!(f.len(), 1, "the median is still gated");
        assert!(f[0].regressed, "3x slowdown still trips without samples");
    }

    #[test]
    fn missing_results_array_is_an_error() {
        let empty = Parser::parse("{\"benchmark\": \"demo\"}").unwrap();
        let cur = with_time(&[("fast", 0.1)]);
        let err = compare(&empty, &cur, &Gate::new(0.25, 0.002)).unwrap_err();
        assert!(err.contains("results"), "got: {err}");
    }

    #[test]
    fn benchmark_name_mismatch_is_an_error() {
        let base = Parser::parse("{\"benchmark\": \"a\", \"results\": []}").unwrap();
        let cur = Parser::parse("{\"benchmark\": \"b\", \"results\": []}").unwrap();
        assert!(compare(&base, &cur, &Gate::new(0.25, 0.002)).is_err());
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("bench_gate_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_artifact(dir: &std::path::Path, name: &str, time: f64) -> String {
        let path = dir.join(name);
        std::fs::write(
            &path,
            format!(
                "{{\"benchmark\": \"demo\", \"results\": [{{\"case\": \"fast\", \"time_seconds\": {time:.6}}}]}}"
            ),
        )
        .unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn branch_slug_is_path_safe() {
        assert_eq!(branch_slug("feat/route-buffer"), "feat-route-buffer");
        assert_eq!(branch_slug("main"), "main");
        assert_eq!(branch_slug(""), "unnamed");
        assert_eq!(branch_slug("a b:c"), "a-b-c");
    }

    #[test]
    fn history_mode_rolls_per_branch_baselines() {
        let work = temp_dir("roll");
        let hist = work.join("history");
        let committed = write_artifact(&work, "BENCH_demo_base.json", 0.100);
        let current = write_artifact(&work, "BENCH_demo.json", 0.080);
        let args = |base: &str, cur: &str| -> Vec<String> {
            vec![
                "--history".into(),
                hist.to_string_lossy().into_owned(),
                "--branch".into(),
                "feat/fast".into(),
                base.into(),
                cur.into(),
            ]
        };

        // First run: no branch history yet -> gates against the
        // committed baseline, then stores the 0.080 measurement.
        let f = run(&args(&committed, &current)).unwrap();
        assert!(f.iter().all(|x| !x.regressed));
        let stored = hist.join("feat-fast").join("BENCH_demo.json");
        assert!(stored.is_file(), "first green run must store a baseline");
        assert!(hist.join("feat-fast").join("history.jsonl").is_file());

        // Second run at 0.095: within 25% of the committed 0.100 but a
        // >25% regression against the branch's own rolling 0.080 + the
        // 2 ms slack... (0.080 * 1.25 + 0.002 = 0.102) -> still ok.
        let current2 = write_artifact(&work, "BENCH_demo.json", 0.095);
        let f = run(&args(&committed, &current2)).unwrap();
        assert!(f.iter().all(|x| !x.regressed));
        assert_eq!(f[0].baseline, 0.080, "must gate against branch history");

        // Third run at 0.200 regresses against the rolling baseline AND
        // the committed one -> fails, and must NOT ratchet the stored
        // file.
        let current3 = write_artifact(&work, "BENCH_demo.json", 0.200);
        let f = run(&args(&committed, &current3)).unwrap();
        assert!(f[0].regressed);
        let kept = std::fs::read_to_string(&stored).unwrap();
        assert!(
            kept.contains("0.095000"),
            "regressing run must not overwrite the baseline: {kept}"
        );

        // The escape hatch: the same 0.200 run passes once the
        // committed baseline is refreshed for a legitimate perf change,
        // even though the branch's rolling history is still fast.
        let refreshed = write_artifact(&work, "BENCH_demo_base.json", 0.190);
        let f = run(&args(&refreshed, &current3)).unwrap();
        assert!(
            !f[0].regressed,
            "refreshed committed baseline must override stale-fast history"
        );
        let _ = std::fs::remove_dir_all(&work);
    }

    #[test]
    fn new_branch_inherits_mains_history() {
        let work = temp_dir("inherit");
        let hist = work.join("history");
        let committed = write_artifact(&work, "BENCH_demo_base.json", 0.500);
        // main's stored baseline is much faster than the committed one…
        std::fs::create_dir_all(hist.join("main")).unwrap();
        let _ = write_artifact(&hist.join("main"), "BENCH_demo.json", 0.100);
        // …and the fresh branch's 0.200 regresses against it, but not
        // against the committed 0.500 floor -> passes (and the pass is
        // gated on main's numbers, proving the fallback was read).
        let current = write_artifact(&work, "BENCH_demo.json", 0.200);
        let f = run(&[
            "--history".to_owned(),
            hist.to_string_lossy().into_owned(),
            "--branch".to_owned(),
            "brand/new".to_owned(),
            committed,
            current,
        ])
        .unwrap();
        assert_eq!(f[0].baseline, 0.100, "must gate against main's history");
        assert!(!f[0].regressed, "committed floor keeps the branch green");
        // The green run seeds the new branch's own history.
        assert!(hist.join("brand-new").join("BENCH_demo.json").is_file());
        let _ = std::fs::remove_dir_all(&work);
    }

    #[test]
    fn history_requires_both_flags() {
        let work = temp_dir("flags");
        let a = write_artifact(&work, "a.json", 0.1);
        let b = write_artifact(&work, "b.json", 0.1);
        let err = run(&["--history".into(), "h".into(), a, b]).unwrap_err();
        assert!(err.contains("--branch"), "{err}");
        let _ = std::fs::remove_dir_all(&work);
    }

    #[test]
    fn bytes_per_node_metrics_are_gated() {
        let row = |bytes: f64| {
            Parser::parse(&format!(
                "{{\"benchmark\": \"demo\", \"results\": [{{\"case\": \"p\", \"time_seconds\": 0.1, \"csr_bytes_per_node\": {bytes:.1}, \"adjacency_compression\": 2.5}}]}}"
            ))
            .unwrap()
        };
        let base = row(80.0);
        let f = compare(&base, &row(82.0), &Gate::new(0.25, 0.002)).unwrap();
        assert_eq!(f.len(), 2, "seconds + bytes must both be gated");
        assert!(f.iter().all(|x| !x.regressed));
        let f = compare(&base, &row(160.0), &Gate::new(0.25, 0.002)).unwrap();
        assert!(
            f.iter()
                .any(|x| x.metric == "csr_bytes_per_node" && x.regressed),
            "2x memory growth must trip the gate"
        );
    }

    #[test]
    fn stale_rolling_history_falls_back_to_committed_and_refreshes() {
        let work = temp_dir("newmetrics");
        let hist = work.join("history");
        let committed = work.join("BENCH_demo_base.json");
        let current = work.join("BENCH_demo.json");
        // Committed + current carry a bytes metric the old rolling
        // baseline (from before the metric existed) does not.
        let with_bytes = "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"fast\", \"time_seconds\": 0.100000, \"csr_bytes_per_node\": 80.0}]}";
        std::fs::write(&committed, with_bytes).unwrap();
        std::fs::write(&current, with_bytes).unwrap();
        std::fs::create_dir_all(hist.join("main")).unwrap();
        let _ = write_artifact(&hist.join("main"), "BENCH_demo.json", 0.100);
        let args: Vec<String> = vec![
            "--history".into(),
            hist.to_string_lossy().into_owned(),
            "--branch".into(),
            "main".into(),
            committed.to_string_lossy().into_owned(),
            current.to_string_lossy().into_owned(),
        ];
        let f = run(&args).unwrap();
        assert_eq!(f.len(), 2, "committed baseline must gate both metrics");
        assert!(f.iter().all(|x| !x.regressed));
        // The green run rewrote main's history with the new metric set.
        let stored = std::fs::read_to_string(hist.join("main").join("BENCH_demo.json")).unwrap();
        assert!(stored.contains("csr_bytes_per_node"), "{stored}");
        let _ = std::fs::remove_dir_all(&work);
    }

    #[test]
    fn numeric_non_second_fields_are_not_gated() {
        // Thread counts and speedups may differ across machines.
        let base = Parser::parse(
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"p\", \"threads\": 1, \"time_seconds\": 0.1, \"speedup\": 1.0}]}",
        )
        .unwrap();
        let cur = Parser::parse(
            "{\"benchmark\": \"demo\", \"results\": [{\"case\": \"p\", \"threads\": 8, \"time_seconds\": 0.05, \"speedup\": 4.0}]}",
        )
        .unwrap();
        let f = compare(&base, &cur, &Gate::new(0.25, 0.002)).unwrap();
        assert_eq!(f.len(), 1);
        assert!(!f[0].regressed);
    }
}
