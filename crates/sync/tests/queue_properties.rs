//! Refactor-parity property tests: [`sp_sync::WorkQueue`] must
//! reproduce the five inline atomic-cursor loops it replaced **bit for
//! bit**.
//!
//! The reference implementations below are the pre-refactor loop
//! shapes, kept verbatim (shared `AtomicUsize` cursor, per-worker
//! `(chunk, outputs)` buffers, merge in chunk order): the flow-chunked
//! scan that lived in `sp_core::TrafficEngine::run_map`, and the
//! one-index-per-claim scan that lived in `sp_experiments::run_jobs`
//! and `sp_net`'s grid/repair scans. Every property drives queue and
//! reference over random inputs at thread counts {1, 2, 3, 8} and
//! compares outputs exactly — f64 payloads by bit pattern, so `-0.0`
//! vs `0.0` or NaN-payload drift would fail, not pass by `==`.

use proptest::prelude::*;
use sp_sync::WorkQueue;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Thread counts every property is held at (the set the refactor's
/// call sites actually use: serial, small, odd, and oversubscribed).
const THREADS: [usize; 4] = [1, 2, 3, 8];

/// The pre-refactor chunked cursor loop, verbatim: workers claim
/// `chunk`-sized index ranges off an atomic cursor, map them with a
/// worker-local state, and the chunks reassemble in index order.
fn inline_reference<S, T, G, F>(
    threads: usize,
    chunk: usize,
    count: usize,
    init: G,
    work: F,
) -> Vec<T>
where
    T: Send,
    G: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    let chunks = count.div_ceil(chunk);
    let workers = threads.min(chunks);
    if workers <= 1 {
        let mut state = init();
        return (0..count).map(|i| work(&mut state, i)).collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut merged: Vec<Option<Vec<T>>> = (0..chunks).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= chunks {
                            break;
                        }
                        let lo = c * chunk;
                        let hi = (lo + chunk).min(count);
                        let mut out = Vec::with_capacity(hi - lo);
                        for i in lo..hi {
                            out.push(work(&mut state, i));
                        }
                        mine.push((c, out));
                    }
                    mine
                })
            })
            .collect();
        for h in handles {
            for (c, out) in h.join().expect("reference worker panicked") {
                merged[c] = Some(out);
            }
        }
    });
    merged
        .into_iter()
        .flat_map(|c| c.expect("every chunk claimed"))
        .collect()
}

/// A deterministic, index-dependent f64 whose bit pattern is sensitive
/// to any change in evaluation: transcendental mixing of the input
/// value and index.
fn payload(x: f64, i: usize) -> f64 {
    (x * (i as f64 + 0.5)).sin() * 1e6 + (i as f64).sqrt()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `run` (one index per claim — the sweep-runner / repair-scan
    /// shape) equals both the serial map and the inline reference loop
    /// at every thread count, bit for bit.
    #[test]
    fn run_matches_inline_reference(
        inputs in prop::collection::vec(-1e3f64..1e3, 0..200),
    ) {
        let n = inputs.len();
        let work = |i: usize| payload(inputs[i], i);
        let serial: Vec<f64> = (0..n).map(work).collect();
        for threads in THREADS {
            let reference = inline_reference(threads, 1, n, || (), |_, i| work(i));
            let queued = WorkQueue::new().run(threads, n, work);
            prop_assert_eq!(bits(&reference), bits(&serial), "reference vs serial, {} threads", threads);
            prop_assert_eq!(bits(&queued), bits(&serial), "queue vs serial, {} threads", threads);
        }
    }

    /// `run_with` under flow-style chunking (the `TrafficEngine`
    /// shape, worker-local scratch buffer included) equals the inline
    /// reference loop for every chunk size, bit for bit.
    #[test]
    fn chunked_run_with_matches_inline_reference(
        inputs in prop::collection::vec(-1e3f64..1e3, 0..200),
        chunk in 1usize..=96,
    ) {
        let n = inputs.len();
        // Scratch-buffer work: fill a reusable worker-local buffer per
        // unit and fold it — the shape of routing into a warm
        // RouteBuffer. Output depends only on the index, never on
        // which worker's buffer computed it.
        let work = |buf: &mut Vec<f64>, i: usize| {
            buf.clear();
            for k in 0..(i % 7) + 1 {
                buf.push(payload(inputs[i], k));
            }
            buf.iter().sum::<f64>()
        };
        let serial: Vec<f64> = {
            let mut buf = Vec::new();
            (0..n).map(|i| work(&mut buf, i)).collect()
        };
        for threads in THREADS {
            let reference = inline_reference(threads, chunk, n, Vec::new, work);
            let queued = WorkQueue::chunked(chunk).run_with(threads, n, Vec::new, work);
            prop_assert_eq!(bits(&reference), bits(&serial), "reference vs serial, {} threads, chunk {}", threads, chunk);
            prop_assert_eq!(bits(&queued), bits(&serial), "queue vs serial, {} threads, chunk {}", threads, chunk);
        }
    }

    /// `run_owned` over pre-split `&mut` slices (the simulation
    /// engine's frontier shape) leaves the underlying array and the
    /// collected outputs identical to serial execution.
    #[test]
    fn run_owned_slices_match_serial(
        inputs in prop::collection::vec(0u64..1_000_000, 0..200),
        split in 1usize..=32,
    ) {
        let transform = |x: u64, k: usize| x.wrapping_mul(2654435761).rotate_left((k % 64) as u32);
        // Serial: transform in place, record one checksum per slice.
        let mut serial_data = inputs.clone();
        let mut serial_sums = Vec::new();
        for chunk in serial_data.chunks_mut(split) {
            for (k, x) in chunk.iter_mut().enumerate() {
                *x = transform(*x, k);
            }
            serial_sums.push(chunk.iter().fold(0u64, |a, &x| a ^ x.wrapping_add(0x9e3779b9)));
        }
        for threads in THREADS {
            let mut data = inputs.clone();
            let chunks: Vec<&mut [u64]> = data.chunks_mut(split).collect();
            let sums = WorkQueue::new().run_owned(threads, chunks, |chunk| {
                for (k, x) in chunk.iter_mut().enumerate() {
                    *x = transform(*x, k);
                }
                chunk.iter().fold(0u64, |a, &x| a ^ x.wrapping_add(0x9e3779b9))
            });
            prop_assert_eq!(&sums, &serial_sums, "checksums diverged at {} threads", threads);
            prop_assert_eq!(&data, &serial_data, "in-place mutation diverged at {} threads", threads);
        }
    }

    /// Claim granularity is invisible: any chunk size produces the
    /// same output vector as chunk size 1.
    #[test]
    fn chunk_size_never_changes_output(
        n in 0usize..300,
        chunk in 1usize..=64,
        threads in prop::sample::select(THREADS.to_vec()),
    ) {
        let work = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let fine = WorkQueue::new().run(threads, n, work);
        let coarse = WorkQueue::chunked(chunk).run(threads, n, work);
        prop_assert_eq!(fine, coarse);
    }
}
