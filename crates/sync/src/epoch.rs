//! The epoch-versioned snapshot cell — the publish/subscribe primitive
//! behind `sp_core`'s `RoutingService`.
//!
//! A long-lived serving process owns one logical value (a topology
//! snapshot) that a writer replaces wholesale while many readers keep
//! querying. The safe way to do that without ever blocking a reader
//! mid-query is the fill-then-publish discipline: the writer builds the
//! **entire** next value off to the side, then swaps one `Arc` pointer;
//! readers that loaded the old pointer keep a fully-formed value alive
//! for as long as they hold it.
//!
//! [`EpochCell`] packages that discipline plus the bookkeeping serving
//! needs on top:
//!
//! * a monotonic **epoch counter** ([`EpochCell::epoch`], one atomic
//!   load) stamped on every published value, so answers computed
//!   against a snapshot can carry provenance and consistency tests can
//!   assert `answer.epoch <= service.epoch()` at all times;
//! * a consistent [`EpochCell::load`] returning the `(epoch, Arc)`
//!   pair together, so a pinned snapshot can never be attributed to the
//!   wrong epoch;
//! * publication ordering that keeps the counter invariant: the epoch
//!   number is advanced **before** the pointer swap (both inside the
//!   writer-side critical section), so no reader can observe a value
//!   stamped later than the counter it reads.
//!
//! Readers sharing one session cache the [`Pinned`] pair and re-load
//! only when [`EpochCell::epoch`] moved — the steady-state query path
//! is one relaxed-ordering-free atomic load, no lock. The swap protocol
//! itself (fill → bump → publish, and the seeded publish-before-fill
//! bug the explorer must catch) is model-checked schedule-exhaustively
//! in this crate's `interleavings` test suite.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// One loaded `(epoch, value)` pair: the snapshot a reader pinned and
/// the epoch it was published at. Cloning clones the `Arc`, not the
/// value.
#[derive(Debug)]
pub struct Pinned<T> {
    /// The epoch `value` was published at.
    pub epoch: u64,
    /// The published value; fully formed before it became reachable.
    pub value: Arc<T>,
}

impl<T> Clone for Pinned<T> {
    fn clone(&self) -> Pinned<T> {
        Pinned {
            epoch: self.epoch,
            value: Arc::clone(&self.value),
        }
    }
}

/// An epoch-versioned `Arc` snapshot slot: writers publish fully-formed
/// values, readers pin `(epoch, Arc)` pairs and never observe a torn or
/// future-stamped snapshot.
///
/// ```
/// use sp_sync::EpochCell;
///
/// let cell = EpochCell::new(vec![1, 2, 3]);
/// assert_eq!(cell.epoch(), 0);
/// let pinned = cell.load(); // readers pin the current snapshot…
/// let e = cell.publish(vec![4, 5, 6]); // …while a writer swaps in the next
/// assert_eq!(e, 1);
/// assert_eq!(*pinned.value, vec![1, 2, 3]); // the pin stays fully intact
/// assert_eq!(*cell.load().value, vec![4, 5, 6]);
/// ```
#[derive(Debug)]
pub struct EpochCell<T> {
    /// Last published epoch. Advanced inside the write critical section
    /// *before* the slot swap, so `epoch()` is always >= the stamp of
    /// any loadable snapshot.
    epoch: AtomicU64,
    /// The published snapshot. The lock is held only to swap or clone
    /// the `Arc` — never while a snapshot is being built or queried.
    slot: RwLock<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// A cell holding `value` at epoch 0.
    pub fn new(value: T) -> EpochCell<T> {
        EpochCell {
            epoch: AtomicU64::new(0),
            slot: RwLock::new(Arc::new(value)),
        }
    }

    /// The last published epoch — one atomic load, the wait-free
    /// staleness probe sessions use before deciding to re-pin.
    pub fn epoch(&self) -> u64 {
        // sp-analyze: allow(concurrency, single-word epoch counter is the primitive this module exists to own)
        self.epoch.load(Ordering::Acquire)
    }

    /// Pins the current snapshot: the `(epoch, Arc)` pair read together
    /// under the read lock, so the stamp always matches the value. The
    /// lock is held only for the `Arc` clone.
    pub fn load(&self) -> Pinned<T> {
        let slot = self.slot.read().unwrap_or_else(PoisonError::into_inner);
        // Reading the counter inside the read lock keeps the pair
        // consistent: publish holds the write lock across bump + swap.
        Pinned {
            // sp-analyze: allow(concurrency, single-word epoch counter is the primitive this module exists to own)
            epoch: self.epoch.load(Ordering::Acquire),
            value: Arc::clone(&slot),
        }
    }

    /// Publishes a fully-formed `value` as the next epoch and returns
    /// its epoch number. Concurrent publishers serialize on the write
    /// lock; readers holding earlier pins are unaffected — their `Arc`
    /// keeps the old snapshot alive.
    ///
    /// Build the value **before** calling this (the fill-then-publish
    /// discipline): the write lock is held only for the counter bump
    /// and the pointer swap.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_arc(Arc::new(value))
    }

    /// [`EpochCell::publish`] for a value the caller already wrapped in
    /// an `Arc` (e.g. one shared with bookkeeping outside the cell).
    pub fn publish_arc(&self, value: Arc<T>) -> u64 {
        let mut slot = self.slot.write().unwrap_or_else(PoisonError::into_inner);
        // Bump first, then swap: a reader that observes the new value
        // (reachable only after the swap) therefore also observes a
        // counter >= its stamp. The reverse order would let an answer
        // carry an epoch the service does not admit to yet.
        // sp-analyze: allow(concurrency, single-word epoch counter is the primitive this module exists to own)
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        // sp-analyze: allow(concurrency, single-word epoch counter is the primitive this module exists to own)
        self.epoch.store(epoch, Ordering::Release);
        *slot = value;
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cell_is_epoch_zero() {
        let cell = EpochCell::new(41);
        assert_eq!(cell.epoch(), 0);
        let p = cell.load();
        assert_eq!((p.epoch, *p.value), (0, 41));
    }

    #[test]
    fn publish_bumps_the_epoch_and_swaps_the_value() {
        let cell = EpochCell::new(String::from("a"));
        assert_eq!(cell.publish(String::from("b")), 1);
        assert_eq!(cell.publish(String::from("c")), 2);
        let p = cell.load();
        assert_eq!((p.epoch, p.value.as_str()), (2, "c"));
        assert_eq!(cell.epoch(), 2);
    }

    #[test]
    fn pinned_snapshots_survive_later_publishes() {
        let cell = EpochCell::new(vec![0u8; 4]);
        let old = cell.load();
        cell.publish(vec![1u8; 4]);
        cell.publish(vec![2u8; 4]);
        assert_eq!((old.epoch, old.value.as_slice()), (0, &[0u8; 4][..]));
        let new = cell.load();
        assert_eq!((new.epoch, new.value.as_slice()), (2, &[2u8; 4][..]));
    }

    #[test]
    fn loaded_stamp_never_exceeds_the_counter() {
        // Racing readers against a publisher: every pinned stamp must
        // be <= the counter read *afterwards* (monotonic admission).
        let cell = Arc::new(EpochCell::new(0u64));
        let writer = {
            let cell = Arc::clone(&cell);
            std::thread::spawn(move || {
                for i in 1..=200u64 {
                    cell.publish(i);
                }
            })
        };
        for _ in 0..2000 {
            let p = cell.load();
            assert!(p.epoch <= cell.epoch(), "stamp ran ahead of the counter");
            assert_eq!(*p.value, p.epoch, "value torn from its stamp");
        }
        writer.join().unwrap();
        assert_eq!(cell.epoch(), 200);
    }

    #[test]
    fn pinned_clone_shares_the_arc() {
        let cell = EpochCell::new([7u64; 8]);
        let a = cell.load();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.value, &b.value));
        assert_eq!(a.epoch, b.epoch);
    }
}
