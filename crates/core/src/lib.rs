//! The paper's contribution: the **safety information model** and the
//! **SLGF2** routing family for wireless ad hoc sensor networks.
//!
//! Reproduces "A Straightforward Path Routing in Wireless Ad Hoc Sensor
//! Networks" (Jiang, Ma, Lou, Wu — ICDCS Workshops 2009):
//!
//! * [`SafetyTuple`] / [`SafetyMap`] — the four-type safe/unsafe labels
//!   of Definition 1, computed to their greatest fixed point;
//! * [`ShapeMap`] / [`ShapeEstimate`] — the unsafe-area rectangles
//!   `E_i(u)` built from the `u^{(1)}`/`u^{(2)}` chains of Algorithm 2;
//! * [`SafetyInfo`] — the combined per-node information, buildable
//!   centrally ([`SafetyInfo::build`]) or by the faithful distributed
//!   protocol ([`construct_distributed`]) with message-cost accounting;
//! * [`RegionSplit`] / [`Hand`] — the critical/forbidden split and the
//!   either-hand rule of §4;
//! * [`LgfRouter`] (Algorithm 1), [`SlgfRouter`] (the earlier work \[7\])
//!   and [`Slgf2Router`] (Algorithm 3) — all exposing the common
//!   [`Routing`] trait used by the benchmark harness;
//! * [`RoutingService`] — the serving shape: an epoch-versioned
//!   snapshot owner answering sustained query streams while mobility
//!   churns the topology underneath (see [`service`]).
//!
//! # Quickstart
//!
//! ```
//! use sp_core::{Routing, SafetyInfo, Slgf2Router};
//! use sp_net::{deploy::DeploymentConfig, Network, NodeId};
//!
//! // The paper's setup: 200m x 200m, radius 20m.
//! let cfg = DeploymentConfig::paper_default(500);
//! let net = Network::from_positions(cfg.deploy_uniform(7), cfg.radius, cfg.area);
//!
//! // Build the safety information (Definition 1 + Algorithm 2)...
//! let info = SafetyInfo::build(&net);
//!
//! // ...and route with SLGF2 (Algorithm 3).
//! let result = Slgf2Router::new(&info).route(&net, NodeId(0), NodeId(499));
//! println!("delivered={} hops={}", result.delivered(), result.hops());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distributed;
pub mod explain;
pub mod info;
pub mod labeling;
pub mod lgf;
pub mod maintenance;
pub mod packet;
pub mod regions;
pub mod router;
pub mod service;
pub mod shape;
pub mod slgf;
pub mod slgf2;
pub mod status;
pub mod traffic;

pub use distributed::{
    construct_async, construct_async_with, construct_distributed, construct_legacy, construct_with,
    construct_with_chaos, construct_with_threads, AsyncConstructionRun, ChainInfo, ConstructionRun,
    LabelingProcess,
};
pub use explain::explain_route;
pub use info::SafetyInfo;
pub use labeling::SafetyMap;
pub use lgf::LgfRouter;
pub use maintenance::{InfoMaintainer, RepairReport};
pub use packet::{
    FaceState, HopScratch, Mode, PacketState, RouteOutcome, RoutePhase, RouteResult, VisitedSet,
};
pub use regions::{choose_hand, hand_order, Hand, RegionSplit};
pub use router::{
    closer_than_entry, default_ttl, greedy_pick, perimeter_sweep, set_phase, walk, walk_into,
    zone_candidates, zone_type, HopPolicy, RouteBuffer, RouteRef, Routing,
};
pub use service::{
    RoutingService, ServiceAnswer, ServiceBatch, ServiceScheme, ServiceSession, ServiceSnapshot,
    SERVICE_THREADS_ENV,
};
pub use shape::{greedy_region, ShapeEstimate, ShapeMap};
pub use slgf::SlgfRouter;
pub use slgf2::Slgf2Router;
pub use status::SafetyTuple;
pub use traffic::{
    RouteRecord, RouteSession, TrafficEngine, TrafficReport, TrafficStats, TRAFFIC_THREADS_ENV,
};
