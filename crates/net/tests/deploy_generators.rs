//! Property tests for the structured deployment generators (clustered,
//! corridor, city-block): every generator emits exactly `node_count`
//! points inside the interest area, is deterministic per seed, and
//! produces topologies that differ structurally from uniform scatter.

use proptest::prelude::*;
use sp_geom::Point;
use sp_net::{deploy::DeploymentConfig, CityBlockModel, ClusterModel, CorridorModel, Network};

fn paper_cfg(n: usize) -> DeploymentConfig {
    DeploymentConfig::paper_default(n)
}

/// All structured generators behind one dispatch, for the shared
/// containment/determinism properties.
fn generate(cfg: &DeploymentConfig, which: usize, seed: u64) -> Vec<Point> {
    match which {
        0 => cfg.deploy_clustered(&ClusterModel::paper_default(), seed),
        1 => cfg.deploy_corridor(&CorridorModel::paper_default(), seed),
        _ => cfg.deploy_city_block(&CityBlockModel::paper_default(), seed),
    }
}

/// Population variance of the degree sequence.
fn degree_variance(net: &Network) -> f64 {
    let degrees: Vec<f64> = net.node_ids().map(|u| net.degree(u) as f64).collect();
    let mean = degrees.iter().sum::<f64>() / degrees.len() as f64;
    degrees.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / degrees.len() as f64
}

fn mean_degree(net: &Network) -> f64 {
    2.0 * net.edge_count() as f64 / net.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generators_emit_exactly_n_points_inside_the_area(
        seed in 0u64..500,
        n in 50usize..400,
        which in 0usize..3,
    ) {
        let cfg = paper_cfg(n);
        let pts = generate(&cfg, which, seed);
        prop_assert_eq!(pts.len(), n);
        for p in &pts {
            prop_assert!(cfg.area.contains(*p), "{p} escapes the area");
        }
    }

    #[test]
    fn generators_are_deterministic_per_seed(seed in 0u64..500, which in 0usize..3) {
        let cfg = paper_cfg(200);
        let a = generate(&cfg, which, seed);
        let b = generate(&cfg, which, seed);
        prop_assert_eq!(&a, &b, "same seed must replay identically");
        let c = generate(&cfg, which, seed ^ 0x5eed);
        prop_assert_ne!(&a, &c, "different seeds must differ");
    }

    #[test]
    fn clustered_has_higher_degree_variance_than_uniform(seed in 0u64..64) {
        // Cluster cores are dense and inter-cluster gaps are empty, so
        // the degree spread must beat uniform scatter's.
        let cfg = paper_cfg(400);
        let uniform = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let clustered = Network::from_positions(
            cfg.deploy_clustered(&ClusterModel::paper_default(), seed),
            cfg.radius,
            cfg.area,
        );
        prop_assert!(
            degree_variance(&clustered) > degree_variance(&uniform),
            "clustered {:.1} <= uniform {:.1}",
            degree_variance(&clustered),
            degree_variance(&uniform)
        );
    }

    #[test]
    fn corridor_is_denser_than_uniform(seed in 0u64..64) {
        // Same node count squeezed into the corridor's fraction of the
        // area: mean degree must rise well above uniform's.
        let cfg = paper_cfg(400);
        let uniform = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let corridor = Network::from_positions(
            cfg.deploy_corridor(&CorridorModel::paper_default(), seed),
            cfg.radius,
            cfg.area,
        );
        prop_assert!(
            mean_degree(&corridor) > 1.5 * mean_degree(&uniform),
            "corridor {:.1} not denser than uniform {:.1}",
            mean_degree(&corridor),
            mean_degree(&uniform)
        );
    }

    #[test]
    fn city_blocks_are_empty(seed in 0u64..64) {
        // No node may land strictly inside a block: every point sits
        // within a street width of some grid line.
        let cfg = paper_cfg(300);
        let model = CityBlockModel::paper_default();
        let period = model.block_radii * cfg.radius;
        let street = model.street_radii * cfg.radius;
        for p in cfg.deploy_city_block(&model, seed) {
            let fx = (p.x - cfg.area.min().x) % period;
            let fy = (p.y - cfg.area.min().y) % period;
            prop_assert!(
                fx <= street || fy <= street,
                "{p} is inside a block (fx={fx:.1}, fy={fy:.1})"
            );
        }
    }
}
