//! Routing as a service: a long-lived `RoutingService` answering a
//! sustained query stream while the topology churns underneath.
//!
//! Worker threads each hold a `ServiceSession` (pinned snapshot + one
//! reused route buffer) and drain a shared query list; a churner thread
//! keeps applying mobility batches, each publishing a new epoch with
//! one `Arc` swap. The example doubles as the CI `service-smoke` step:
//! it serves ~10k queries under live churn and asserts the service
//! invariant on every single answer — the stamped epoch never exceeds
//! the epoch the service admits to (`answer.epoch <= service.epoch()`).
//!
//! ```sh
//! cargo run --release --example routing_service
//! ```

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use straightpath::prelude::*;

const NODES: usize = 2_000;
const QUERIES: usize = 10_000;
const MOVERS: usize = 40;

fn main() {
    let cfg = DeploymentConfig::paper_density(NODES);
    let net = Network::from_positions(cfg.deploy_uniform(11), cfg.radius, cfg.area);
    let area = net.area();

    // Queries over the largest component of the epoch-0 deployment.
    let comp = net.largest_component();
    let queries: Vec<(NodeId, NodeId)> = (0..QUERIES)
        .map(|k| {
            (
                comp[(k * 53) % comp.len()],
                comp[(k * 101 + 17) % comp.len()],
            )
        })
        .filter(|(s, d)| s != d)
        .collect();

    let service = RoutingService::new(net);
    // At least two reader threads so the smoke test actually races the
    // churner, whatever the host's parallelism.
    let workers = service.threads().max(2);
    println!(
        "serving {} queries over n={NODES} with {workers} workers under churn ({MOVERS} movers/epoch)",
        queries.len()
    );

    let stop = AtomicBool::new(false);
    let cursor = AtomicUsize::new(0);
    let mut delivered = 0usize;
    let mut served = 0usize;
    let mut max_seen_epoch = 0u64;
    std::thread::scope(|s| {
        let churner = s.spawn(|| {
            let mut round = 0usize;
            while !stop.load(Ordering::Relaxed) {
                let snap = service.snapshot();
                let net = snap.value.network();
                let delta = if round.is_multiple_of(2) { 1.5 } else { -1.5 };
                let moves: Vec<(NodeId, Point)> = (0..MOVERS)
                    .map(|j| {
                        let u = NodeId::new((round * MOVERS + j) % net.len());
                        let p = net.position(u);
                        let q = Point::new(
                            (p.x + delta).clamp(0.0, area.max().x),
                            (p.y + delta * 0.5).clamp(0.0, area.max().y),
                        );
                        (u, q)
                    })
                    .collect();
                service.apply_moves(&moves);
                round += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            round
        });

        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut session = service.session();
                    let mut delivered = 0usize;
                    let mut served = 0usize;
                    let mut max_epoch = 0u64;
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&(src, dst)) = queries.get(i) else {
                            break;
                        };
                        let a = session.route(src, dst);
                        // The invariant this smoke test exists to hold
                        // under real scheduling: an answer can never be
                        // stamped with an epoch the service has not
                        // admitted yet.
                        assert!(
                            a.epoch <= service.epoch(),
                            "query {i}: answer epoch {} > service epoch {}",
                            a.epoch,
                            service.epoch()
                        );
                        served += 1;
                        delivered += usize::from(a.delivered());
                        max_epoch = max_epoch.max(a.epoch);
                    }
                    (served, delivered, max_epoch)
                })
            })
            .collect();
        for h in handles {
            let (s, d, e) = h.join().expect("worker panicked");
            served += s;
            delivered += d;
            max_seen_epoch = max_seen_epoch.max(e);
        }
        stop.store(true, Ordering::Relaxed);
        let rounds = churner.join().expect("churner panicked");
        println!(
            "churner published {rounds} epochs; workers saw up to epoch {max_seen_epoch} (service at {})",
            service.epoch()
        );
    });

    assert_eq!(served, queries.len(), "every query must be answered");
    let ratio = delivered as f64 / served as f64;
    println!(
        "served {served} queries, delivered {delivered} ({:.1}%)",
        ratio * 100.0
    );
    assert!(ratio > 0.95, "delivery collapsed under churn: {ratio:.3}");
    println!("service smoke test passed: zero panics, epoch invariant held on every answer");
}
