//! The declarative-experiment acceptance test: a parameterized scheme
//! family and a custom scenario register in one place each, and the
//! spec-string front end resolves both straight into `run_sweep` — no
//! edits anywhere but the registration site.

use sp_core::Slgf2Router;
use sp_experiments::{Scenario, Scheme, SchemeFamily, SweepSpec};
use sp_net::deploy::{CorridorModel, DeploymentConfig};

#[test]
fn spec_drives_a_registered_family_and_scenario_end_to_end() {
    // === The registration site (the ONLY edit an experimenter makes) ===
    // A TTL-policy ablation family: three variants, one call.
    let family = SchemeFamily::new("E2E-SLGF2")
        .sweep(
            [("ttl=1n", 1.0), ("ttl=2n", 2.0), ("ttl=4n", 4.0)],
            |&m, ctx| Box::new(Slgf2Router::new(ctx.info).with_ttl_multiplier(m)),
        )
        .register();
    assert_eq!(family.len(), 3);
    // A custom deployment: a wide corridor, its model captured by the
    // generator closure.
    let wide = CorridorModel { width_radii: 4.0 };
    let scenario = Scenario::register("E2E-wide-corridor", move |cfg: &DeploymentConfig, seed| {
        cfg.deploy_corridor(&wide, seed)
    });
    // ===================================================================

    // A one-line spec resolves the runtime registrations by name…
    let spec = SweepSpec::parse(
        "scenario=E2E-wide-corridor;nodes=400,500;nets=3;seed=77;\
         schemes=E2E-SLGF2[ttl=1n]+E2E-SLGF2[ttl=2n]+E2E-SLGF2[ttl=4n]+SLGF2",
    )
    .expect("runtime registrations are addressable from a spec");
    assert_eq!(spec.config.deployment, scenario);
    assert_eq!(spec.schemes.len(), 4);
    assert_eq!(spec.schemes[..3], family[..]);

    // …and the resolved sweep runs through the ordinary parallel
    // runner: every variant routed on every instance of the custom
    // deployment.
    let results = spec.run();
    assert_eq!(results.deployment_tag, "E2E-wide-corridor");
    assert_eq!(results.points.len(), 2);
    for point in &results.points {
        assert_eq!(point.schemes.len(), 4);
        for sp in &point.schemes {
            assert_eq!(sp.total, 3, "{}", sp.scheme);
        }
    }

    // The captured payloads are live, not decorative: a 1n hop budget
    // can only lose routes relative to 4n, never gain, and the 4n
    // variant must agree with the stock SLGF2 (same multiplier).
    for point in &results.points {
        let d1 = point.schemes[0].delivered;
        let d4 = point.schemes[2].delivered;
        let stock = point.schemes[3].delivered;
        assert!(d1 <= d4, "ttl=1n delivered {d1} > ttl=4n {d4}");
        assert_eq!(d4, stock, "ttl=4n must match stock SLGF2");
        assert_eq!(point.schemes[2].hops, point.schemes[3].hops);
    }

    // Determinism holds through the spec path too.
    let again = SweepSpec::parse(
        "scenario=E2E-wide-corridor;nodes=400,500;nets=3;seed=77;schemes=E2E-SLGF2[ttl=2n]",
    )
    .unwrap()
    .run();
    assert_eq!(
        again.points[0].schemes[0].hops,
        results.points[0]
            .scheme(family[1])
            .expect("ttl=2n in first run")
            .hops
    );
}

#[test]
fn family_collisions_surface_through_try_register() {
    let first = SchemeFamily::new("E2E-collide")
        .variant("a", |ctx| Box::new(Slgf2Router::new(ctx.info)))
        .try_register()
        .expect("fresh name registers");
    assert_eq!(first.len(), 1);
    let err = SchemeFamily::new("E2E-collide")
        .variant("a", |ctx| Box::new(Slgf2Router::new(ctx.info)))
        .variant("b", |ctx| Box::new(Slgf2Router::new(ctx.info)))
        .try_register()
        .expect_err("colliding family is rejected whole");
    assert!(err.contains("registered twice"), "{err}");
    assert_eq!(
        Scheme::by_name("E2E-collide[b]"),
        None,
        "no partial registration"
    );
}
