//! A vendored mini-loom: a deterministic, exhaustive interleaving
//! explorer for the workspace's lock-free idioms.
//!
//! Real-thread tests only ever sample a handful of schedules; the bugs
//! that matter (a chunk claimed twice, a reader observing a
//! half-published snapshot, a generation stamp surviving an epoch
//! wrap) live in the schedules the OS rarely produces. This module
//! explores **all** of them: a model implements [`Interleave`] —
//! cloneable state plus a `step` function advancing one modeled thread
//! by one atomic action — and [`explore`] drives a depth-first
//! cooperative scheduler over every interleaving, checking
//! [`Interleave::invariants`] at every reachable state.
//!
//! Like loom, exploration is sequentially consistent: it proves the
//! *protocol* (claim/merge/publish ordering) correct, while the
//! `Ordering` arguments on the real atomics are reviewed by hand — the
//! single-cursor and single-publisher shapes used here are insensitive
//! to reordering weaker than SC for the invariants checked.
//!
//! The models for [`crate::WorkQueue`] chunk claiming, the routing
//! layer's `VisitedSet` generation-stamp wraparound, and the
//! epoch-versioned `Arc` copy-on-write snapshot swap live in this
//! crate's `interleavings` integration tests.

/// A model of a small concurrent program, explored one atomic step at
/// a time.
///
/// Cloning must snapshot the *entire* modeled state (thread program
/// counters included): the explorer clones at every branch point to
/// walk sibling schedules.
pub trait Interleave: Clone {
    /// Ids of modeled threads currently able to take a step. Return an
    /// empty list only when the execution is [`done`](Self::done) —
    /// otherwise the explorer reports a deadlock. Blocking (e.g. a
    /// modeled lock) is expressed by omitting the blocked thread here.
    fn runnable(&self) -> Vec<usize>;

    /// Advances thread `tid` by exactly one atomic action. Called only
    /// with ids returned by [`runnable`](Self::runnable).
    fn step(&mut self, tid: usize);

    /// True when every modeled thread has finished.
    fn done(&self) -> bool;

    /// Safety invariants, checked at **every** reachable state (and
    /// once more at every completed schedule). Return the violation
    /// message to fail exploration with the offending schedule.
    fn invariants(&self) -> Result<(), String>;
}

/// Exploration statistics from a successful [`explore`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Report {
    /// Complete schedules (maximal interleavings) explored.
    pub schedules: usize,
    /// Individual modeled steps executed across all schedules.
    pub steps: usize,
    /// Longest schedule, in steps.
    pub deepest: usize,
}

/// An invariant violation (or deadlock), with the exact schedule — the
/// sequence of thread ids stepped — that reaches it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Thread ids in step order reproducing the failure.
    pub schedule: Vec<usize>,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (schedule {:?})", self.message, self.schedule)
    }
}

/// Hard ceiling on explored steps: a model whose state space exceeds
/// this is a modeling bug (too many threads or too-fine steps), not
/// something CI should grind through.
pub const MAX_STEPS: usize = 50_000_000;

/// Exhaustively explores every schedule of `initial`, failing on the
/// first invariant violation or deadlock.
///
/// # Errors
///
/// Returns the [`Violation`] (with its reproducing schedule) when a
/// state fails [`Interleave::invariants`], when no thread is runnable
/// before [`Interleave::done`], or when exploration exceeds
/// [`MAX_STEPS`].
pub fn explore<M: Interleave>(initial: &M) -> Result<Report, Violation> {
    let mut report = Report::default();
    let mut trace = Vec::new();
    dfs(initial, &mut trace, &mut report)?;
    Ok(report)
}

fn dfs<M: Interleave>(
    state: &M,
    trace: &mut Vec<usize>,
    report: &mut Report,
) -> Result<(), Violation> {
    if let Err(message) = state.invariants() {
        return Err(Violation {
            schedule: trace.clone(),
            message,
        });
    }
    if state.done() {
        report.schedules += 1;
        return Ok(());
    }
    let runnable = state.runnable();
    if runnable.is_empty() {
        return Err(Violation {
            schedule: trace.clone(),
            message: "deadlock: no runnable thread before completion".to_owned(),
        });
    }
    for tid in runnable {
        if report.steps >= MAX_STEPS {
            return Err(Violation {
                schedule: trace.clone(),
                message: format!("state space exceeds {MAX_STEPS} steps; coarsen the model"),
            });
        }
        report.steps += 1;
        let mut next = state.clone();
        next.step(tid);
        trace.push(tid);
        report.deepest = report.deepest.max(trace.len());
        dfs(&next, trace, report)?;
        trace.pop();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// N independent threads of `len` no-op steps each: schedule count
    /// is the multinomial coefficient, a closed form to validate the
    /// explorer against.
    #[derive(Clone)]
    struct Independent {
        pcs: Vec<usize>,
        len: usize,
    }

    impl Interleave for Independent {
        fn runnable(&self) -> Vec<usize> {
            (0..self.pcs.len())
                .filter(|&t| self.pcs[t] < self.len)
                .collect()
        }
        fn step(&mut self, tid: usize) {
            self.pcs[tid] += 1;
        }
        fn done(&self) -> bool {
            self.pcs.iter().all(|&pc| pc == self.len)
        }
        fn invariants(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn counts_interleavings_of_independent_threads() {
        // Two threads of 2 steps: C(4,2) = 6 schedules.
        let r = explore(&Independent {
            pcs: vec![0, 0],
            len: 2,
        })
        .unwrap();
        assert_eq!(r.schedules, 6);
        assert_eq!(r.deepest, 4);
        // Three threads of 2 steps: 6!/(2!2!2!) = 90 schedules.
        let r = explore(&Independent {
            pcs: vec![0, 0, 0],
            len: 2,
        })
        .unwrap();
        assert_eq!(r.schedules, 90);
    }

    /// A deliberately broken snapshot publication: the writer bumps the
    /// published epoch *before* writing the data; a reader stepping in
    /// between observes a torn snapshot. The explorer must find it.
    #[derive(Clone)]
    struct PublishBeforeInit {
        epoch: usize,
        data: usize,
        writer_pc: usize,
        reader_done: bool,
        observed: Option<(usize, usize)>,
    }

    impl Interleave for PublishBeforeInit {
        fn runnable(&self) -> Vec<usize> {
            let mut r = Vec::new();
            if self.writer_pc < 2 {
                r.push(0);
            }
            if !self.reader_done {
                r.push(1);
            }
            r
        }
        fn step(&mut self, tid: usize) {
            if tid == 0 {
                // BUG: publish (pc 0) precedes the data write (pc 1).
                match self.writer_pc {
                    0 => self.epoch = 1,
                    _ => self.data = 1,
                }
                self.writer_pc += 1;
            } else {
                self.observed = Some((self.epoch, self.data));
                self.reader_done = true;
            }
        }
        fn done(&self) -> bool {
            self.writer_pc == 2 && self.reader_done
        }
        fn invariants(&self) -> Result<(), String> {
            match self.observed {
                Some((epoch, data)) if epoch == 1 && data == 0 => {
                    Err("reader observed published epoch with unwritten data".to_owned())
                }
                _ => Ok(()),
            }
        }
    }

    #[test]
    fn finds_publish_before_init_bug() {
        let err = explore(&PublishBeforeInit {
            epoch: 0,
            data: 0,
            writer_pc: 0,
            reader_done: false,
            observed: None,
        })
        .unwrap_err();
        assert!(err.message.contains("unwritten data"), "{err}");
        // The minimal witness: writer publishes, reader loads.
        assert_eq!(err.schedule, vec![0, 1]);
    }

    /// Two threads each waiting for the other to finish first.
    #[derive(Clone)]
    struct MutualWait {
        finished: [bool; 2],
    }

    impl Interleave for MutualWait {
        fn runnable(&self) -> Vec<usize> {
            (0..2).filter(|&t| self.finished[1 - t]).collect()
        }
        fn step(&mut self, tid: usize) {
            self.finished[tid] = true;
        }
        fn done(&self) -> bool {
            self.finished.iter().all(|&f| f)
        }
        fn invariants(&self) -> Result<(), String> {
            Ok(())
        }
    }

    #[test]
    fn reports_deadlock_with_schedule() {
        let err = explore(&MutualWait {
            finished: [false, false],
        })
        .unwrap_err();
        assert!(err.message.contains("deadlock"), "{err}");
        assert!(err.schedule.is_empty(), "deadlocks in the initial state");
    }
}
