//! GFG/GPSR — greedy forwarding with *full* planar face routing.
//!
//! The paper's perimeter phase cites Bose, Morin & Stojmenovic \[2\]:
//! "the packet is routed by the 'right-hand rule' counter-clockwise along
//! a face of the planar graph that represents the same connectivity as
//! the original network, until it reaches a node that is closer to the
//! destination than that stuck node". This module implements that scheme
//! in full — including the **face changes** the simplified untried-sweep
//! perimeter of LGF/SLGF omits:
//!
//! * greedy mode forwards to the strictly-closer neighbor with the most
//!   progress;
//! * at a local minimum the packet records the stuck position `L_p` and
//!   walks the face of the Gabriel planarization intersected by the
//!   segment `L_p → d` using the right-hand rule;
//! * whenever the edge about to be walked crosses `L_p → d` strictly
//!   closer to `d` than the current best crossing `L_f`, the packet
//!   switches to the adjacent face (the FACE-2 rule of \[2\], as adopted by
//!   GPSR's perimeter mode);
//! * greedy forwarding resumes at the first node strictly closer to `d`
//!   than `L_p`;
//! * retraversing the first edge of the current face means the
//!   destination is unreachable and the walk reports failure instead of
//!   looping.
//!
//! On a connected planar subgraph this scheme has the guaranteed-delivery
//! property of \[2\] — the strongest baseline in the suite, used by the
//! extended comparison A8 of `DESIGN.md`.

use sp_core::{
    default_ttl, walk_into, FaceState, HopPolicy, Mode, PacketState, RouteBuffer, RoutePhase,
    RouteRef, Routing,
};
use sp_geom::Segment;
use sp_net::{Network, NodeId, PlanarGraph, Planarization};

/// Greedy-Face-Greedy router (GFG \[2\] / GPSR) over the Gabriel
/// planarization of the network.
///
/// ```
/// use sp_baselines::GfgRouter;
/// use sp_core::Routing;
/// use sp_net::{deploy::DeploymentConfig, Network, NodeId};
///
/// let cfg = DeploymentConfig::paper_default(500);
/// let net = Network::from_positions(cfg.deploy_uniform(4), cfg.radius, cfg.area);
/// let gfg = GfgRouter::new(&net);
/// let r = gfg.route(&net, NodeId(0), NodeId(250));
/// assert_eq!(r.path.first(), Some(&NodeId(0)));
/// ```
#[derive(Debug, Clone)]
pub struct GfgRouter {
    planar: PlanarGraph,
}

impl GfgRouter {
    /// Builds the router over the Gabriel planarization of `net`.
    pub fn new(net: &Network) -> GfgRouter {
        GfgRouter {
            planar: PlanarGraph::build(net, Planarization::Gabriel),
        }
    }

    /// Builds the router over an explicit planarization.
    pub fn with_planarization(net: &Network, kind: Planarization) -> GfgRouter {
        GfgRouter {
            planar: PlanarGraph::build(net, kind),
        }
    }

    /// The planar graph the face walks run on.
    pub fn planar(&self) -> &PlanarGraph {
        &self.planar
    }

    /// Greedy pick: strictly-closer neighbor with the most progress.
    fn greedy_step(&self, net: &Network, u: NodeId, d: NodeId) -> Option<NodeId> {
        let pd = net.position(d);
        let du = net.position(u).distance_sq(pd);
        net.neighbors(u)
            .iter()
            .copied()
            .filter(|&v| net.position(v).distance_sq(pd) < du)
            .min_by(|&a, &b| {
                net.position(a)
                    .distance_sq(pd)
                    .total_cmp(&net.position(b).distance_sq(pd))
                    .then_with(|| a.cmp(&b))
            })
    }

    /// One face-mode hop from `u`: right-hand pivot, then the FACE-2
    /// face-change sweep. Returns `None` when the face tour closed
    /// without progress (unreachable destination) or `u` is isolated in
    /// the planar graph.
    ///
    /// Public so that hybrid schemes (e.g. [`crate::Slgf2FaceRouter`])
    /// can borrow the guaranteed face walk as their recovery phase; the
    /// packet must carry a [`FaceState`] (set `pkt.face` before the
    /// entering call).
    pub fn face_step(
        &self,
        net: &Network,
        pkt: &mut PacketState,
        entering: bool,
    ) -> Option<NodeId> {
        let u = pkt.current;
        let pu = self.planar.position(u);
        let pd = net.position(pkt.dst);
        let face = pkt.face.as_mut()?;

        // Right-hand entry or continuation.
        let mut next = match pkt.prev {
            Some(prev) if !entering && self.planar.has_edge(u, prev) => {
                self.planar.next_ccw(u, prev)?
            }
            _ => self.planar.first_from_direction(u, pd - pu, true)?,
        };

        // FACE-2 face-change sweep: while the edge about to be traversed
        // crosses anchor->d strictly closer to d than the best crossing
        // so far, rotate past it into the adjacent face. Bounded by the
        // planar degree of u.
        let goal = Segment::new(face.anchor, pd);
        let best = face.crossing.distance(pd);
        let mut remaining = self.planar.neighbors(u).len();
        while remaining > 0 {
            remaining -= 1;
            let edge = Segment::new(pu, self.planar.position(next));
            let Some(x) = edge.intersection_point(&goal) else {
                break;
            };
            // Crossings at u itself re-detect the entry point: ignore.
            if x.distance(pu) <= 1e-9 {
                break;
            }
            if x.distance(pd) + 1e-9 < face.crossing.distance(pd).min(best) {
                face.crossing = x;
                face.entry_edge = None; // new face, new tour
                let rotated = self.planar.next_ccw(u, next)?;
                if rotated == next {
                    break; // single planar neighbor: nothing to rotate to
                }
                next = rotated;
            } else {
                break;
            }
        }

        // Unreachable-destination detection: the first edge of this face
        // tour is about to be traversed a second time.
        match face.entry_edge {
            Some(e0) if e0 == (u, next) => None,
            Some(_) => Some(next),
            None => {
                face.entry_edge = Some((u, next));
                Some(next)
            }
        }
    }
}

impl HopPolicy for GfgRouter {
    fn name(&self) -> &'static str {
        "GFG"
    }

    fn next_hop(&self, net: &Network, pkt: &mut PacketState) -> Option<NodeId> {
        let u = pkt.current;
        let d = pkt.dst;

        if net.has_edge(u, d) {
            pkt.resume_greedy();
            pkt.phase = RoutePhase::Greedy;
            return Some(d);
        }

        // Perimeter exit (GPSR rule): strictly closer than the anchor.
        if let Mode::Perimeter { entry_dist } = pkt.mode {
            let du = net.position(u).distance(net.position(d));
            if du < entry_dist {
                pkt.resume_greedy();
            }
        }

        if pkt.mode == Mode::Greedy {
            if let Some(v) = self.greedy_step(net, u, d) {
                pkt.phase = RoutePhase::Greedy;
                return Some(v);
            }
            // Local minimum: enter face routing anchored here.
            let pu = net.position(u);
            let du = pu.distance(net.position(d));
            pkt.enter_perimeter(du);
            pkt.face = Some(FaceState::new(pu));
            pkt.phase = RoutePhase::Perimeter;
            return self.face_step(net, pkt, true);
        }

        pkt.phase = RoutePhase::Perimeter;
        self.face_step(net, pkt, false)
    }
}

impl Routing for GfgRouter {
    fn name(&self) -> &'static str {
        "GFG"
    }

    fn route_into<'b>(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        buf: &'b mut RouteBuffer,
    ) -> RouteRef<'b> {
        walk_into(self, net, src, dst, default_ttl(net), buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::RouteOutcome;
    use sp_geom::{Point, Rect};
    use sp_net::DeploymentConfig;

    fn area() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(200.0, 200.0))
    }

    #[test]
    fn straight_line_is_pure_greedy() {
        let net = Network::from_positions(
            (0..10)
                .map(|i| Point::new(12.0 * i as f64, 0.3 * i as f64))
                .collect(),
            14.0,
            area(),
        );
        let r = GfgRouter::new(&net).route(&net, NodeId(0), NodeId(9));
        assert!(r.delivered());
        assert_eq!(r.perimeter_entries, 0);
        assert_eq!(r.hops(), 9);
    }

    /// A U-shaped trap: greedy walks to the bottom of the U and must
    /// face-route around one arm.
    fn u_trap() -> Network {
        let mut pos = vec![
            Point::new(60.0, 120.0),  // 0 = src
            Point::new(140.0, 120.0), // 1 = dst
        ];
        // The U: left arm down, bottom, right arm up — a wall the packet
        // is inside of.
        for i in 0..5 {
            pos.push(Point::new(70.0, 120.0 - 10.0 * i as f64)); // 2..6 left arm
        }
        for i in 1..7 {
            pos.push(Point::new(70.0 + 10.0 * i as f64, 80.0)); // 7..12 bottom
        }
        for i in 1..5 {
            pos.push(Point::new(130.0, 80.0 + 10.0 * i as f64)); // 13..16 right arm
        }
        Network::from_positions(pos, 14.0, area())
    }

    #[test]
    fn u_trap_is_escaped_by_face_routing() {
        let net = u_trap();
        let r = GfgRouter::new(&net).route(&net, NodeId(0), NodeId(1));
        assert!(r.delivered(), "outcome {:?} path {:?}", r.outcome, r.path);
        assert!(r.perimeter_entries >= 1, "phases {:?}", r.phases);
    }

    #[test]
    fn delivery_is_guaranteed_on_connected_pairs_ia() {
        // The headline property of [2]: on a connected planar subgraph
        // GFG always delivers. Exercise it over seeded deployments and
        // many pairs.
        for seed in 0..4 {
            let cfg = DeploymentConfig::paper_default(450);
            let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
            let gfg = GfgRouter::new(&net);
            let comp = net.largest_component();
            for k in 1..8 {
                let s = comp[(k * 97) % comp.len()];
                let d = comp[(k * 211) % comp.len()];
                if s == d {
                    continue;
                }
                let r = gfg.route(&net, s, d);
                assert!(
                    r.delivered(),
                    "seed {seed} pair {s}->{d}: {:?} path len {}",
                    r.outcome,
                    r.path.len()
                );
            }
        }
    }

    #[test]
    fn delivery_is_guaranteed_on_connected_pairs_fa() {
        use sp_net::FaModel;
        for seed in 0..4 {
            let cfg = DeploymentConfig::paper_default(500);
            let fa = FaModel::paper_default();
            let obstacles = fa.generate_obstacles(&cfg, seed);
            let net = Network::from_positions(
                cfg.deploy_with_obstacles(&obstacles, seed),
                cfg.radius,
                cfg.area,
            );
            let gfg = GfgRouter::new(&net);
            let comp = net.largest_component();
            for k in 1..8 {
                let s = comp[(k * 131) % comp.len()];
                let d = comp[(k * 173) % comp.len()];
                if s == d {
                    continue;
                }
                let r = gfg.route(&net, s, d);
                assert!(
                    r.delivered(),
                    "seed {seed} pair {s}->{d}: {:?} hops {}",
                    r.outcome,
                    r.hops()
                );
            }
        }
    }

    #[test]
    fn disconnected_destination_terminates_with_failure() {
        // Two clusters out of range: the face tour around the source's
        // cluster must close and report failure, not spin until TTL.
        let net = Network::from_positions(
            vec![
                Point::new(10.0, 10.0),
                Point::new(20.0, 10.0),
                Point::new(15.0, 18.0),
                Point::new(150.0, 150.0), // unreachable dst
            ],
            14.0,
            area(),
        );
        let r = GfgRouter::new(&net).route(&net, NodeId(0), NodeId(3));
        assert!(
            matches!(r.outcome, RouteOutcome::Stuck(_)),
            "{:?}",
            r.outcome
        );
        // The tour is short: no TTL-scale wandering.
        assert!(r.hops() <= 2 * net.len(), "hops {}", r.hops());
    }

    #[test]
    fn isolated_source_is_stuck_immediately() {
        let net = Network::from_positions(
            vec![Point::new(10.0, 10.0), Point::new(150.0, 150.0)],
            14.0,
            area(),
        );
        let r = GfgRouter::new(&net).route(&net, NodeId(0), NodeId(1));
        assert_eq!(r.outcome, RouteOutcome::Stuck(NodeId(0)));
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn rng_planarization_also_delivers() {
        let cfg = DeploymentConfig::paper_default(500);
        let net = Network::from_positions(cfg.deploy_uniform(11), cfg.radius, cfg.area);
        let gfg = GfgRouter::with_planarization(&net, Planarization::Rng);
        assert_eq!(gfg.planar().kind(), Planarization::Rng);
        let comp = net.largest_component();
        let r = gfg.route(&net, comp[0], comp[comp.len() - 1]);
        assert!(r.delivered(), "{:?}", r.outcome);
    }
}
