//! Human-readable route traces.
//!
//! Turns a [`RouteResult`] into the per-hop story a paper walkthrough
//! would tell: positions, phases, the safety tuple at every node, and
//! distance-to-destination progress. Used by examples and priceless
//! when a crafted scenario does something surprising.

use crate::{RouteOutcome, RoutePhase, RouteResult, SafetyInfo};
use sp_net::Network;
use std::fmt::Write as _;

/// Renders a hop-by-hop trace of `route` on `net`.
///
/// With `info` supplied, each node shows its safety tuple; without it
/// the tuple column is omitted. The output ends with the outcome and
/// the phase totals.
///
/// ```
/// use sp_core::{explain_route, Routing, SafetyInfo, Slgf2Router};
/// use sp_net::{deploy::DeploymentConfig, Network, NodeId};
///
/// let cfg = DeploymentConfig::paper_default(400);
/// let net = Network::from_positions(cfg.deploy_uniform(1), cfg.radius, cfg.area);
/// let info = SafetyInfo::build(&net);
/// let r = Slgf2Router::new(&info).route(&net, NodeId(0), NodeId(399));
/// let text = explain_route(&net, &r, Some(&info));
/// assert!(text.contains("hop"));
/// ```
pub fn explain_route(net: &Network, route: &RouteResult, info: Option<&SafetyInfo>) -> String {
    let mut out = String::new();
    let Some((&first, _)) = route.path.split_first() else {
        return "empty route\n".to_string();
    };
    let dst = *route.path.last().expect("non-empty path"); // sp-analyze: allow(panic, split_first above already proved the path non-empty)
    let pd = match route.outcome {
        RouteOutcome::Delivered => net.position(dst),
        // For failed routes the last holder is not the destination; the
        // progress column still uses the final position as reference.
        _ => net.position(dst),
    };

    let _ = writeln!(
        out,
        "route {} -> … ({} hops, {} perimeter entries, {} backup entries)",
        first,
        route.hops(),
        route.perimeter_entries,
        route.backup_entries
    );
    for (i, &u) in route.path.iter().enumerate() {
        let p = net.position(u);
        let phase = if i == 0 {
            "start".to_string()
        } else {
            match route.phases[i - 1] {
                RoutePhase::Greedy => "greedy".to_string(),
                RoutePhase::Backup => "backup".to_string(),
                RoutePhase::Perimeter => "perimeter".to_string(),
            }
        };
        let tuple = info
            .map(|inf| format!(" {}", inf.tuple(u)))
            .unwrap_or_default();
        let _ = writeln!(
            out,
            "  hop {i:>3}: {u:>6} ({:>6.1}, {:>6.1}){tuple}  [{phase}]  {:>6.1} m to go",
            p.x,
            p.y,
            p.distance(pd)
        );
    }
    let verdict = match route.outcome {
        RouteOutcome::Delivered => "delivered".to_string(),
        RouteOutcome::Stuck(at) => format!("stuck at {at}"),
        RouteOutcome::TtlExhausted => "TTL exhausted".to_string(),
    };
    let _ = writeln!(
        out,
        "  => {verdict}; phases: {} greedy, {} backup, {} perimeter",
        route.hops_in_phase(RoutePhase::Greedy),
        route.hops_in_phase(RoutePhase::Backup),
        route.hops_in_phase(RoutePhase::Perimeter)
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Routing, SafetyInfo, Slgf2Router};
    use sp_net::{DeploymentConfig, Network, NodeId};

    #[test]
    fn trace_lists_every_hop_and_the_outcome() {
        let cfg = DeploymentConfig::paper_default(300);
        let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);
        let info = SafetyInfo::build(&net);
        let comp = net.largest_component();
        let r = Slgf2Router::new(&info).route(&net, comp[0], comp[comp.len() - 1]);
        let text = explain_route(&net, &r, Some(&info));
        assert_eq!(
            text.matches("hop ").count(),
            r.path.len(),
            "one line per visited node"
        );
        assert!(text.contains("=> delivered") || text.contains("=> stuck"));
        assert!(text.contains("(1,1,1,1)") || text.contains("(0,"));
    }

    #[test]
    fn trace_without_info_omits_tuples() {
        let cfg = DeploymentConfig::paper_default(200);
        let net = Network::from_positions(cfg.deploy_uniform(4), cfg.radius, cfg.area);
        let info = SafetyInfo::build(&net);
        let comp = net.largest_component();
        let r = Slgf2Router::new(&info).route(&net, comp[0], comp[1]);
        let text = explain_route(&net, &r, None);
        assert!(!text.contains("(1,1,1,1)"));
        assert!(text.contains("[start]"));
    }

    #[test]
    fn stuck_route_names_the_holder() {
        let area = sp_geom::Rect::from_corners(
            sp_geom::Point::new(0.0, 0.0),
            sp_geom::Point::new(100.0, 100.0),
        );
        let net = Network::from_positions(
            vec![
                sp_geom::Point::new(0.0, 0.0),
                sp_geom::Point::new(90.0, 90.0),
            ],
            10.0,
            area,
        );
        let info = SafetyInfo::build_with_pinned(&net, vec![false; 2]);
        let r = Slgf2Router::new(&info).route(&net, NodeId(0), NodeId(1));
        let text = explain_route(&net, &r, Some(&info));
        assert!(text.contains("stuck at n0"), "{text}");
    }
}
