//! The asynchronous-extension claim of §3, tested as a property: the
//! distributed Algorithm-2 construction stabilizes to the *identical*
//! safety information under lock-step rounds, under per-message random
//! delays, and in the centralized fixed-point computation — for
//! arbitrary seeds, densities, and delay spreads.

use proptest::prelude::*;
use sp_core::{construct_async_with, construct_distributed, SafetyInfo};
use sp_geom::Quadrant;
use sp_net::{edge_nodes::edge_node_mask, DeploymentConfig, Network};
use sp_sim::AsyncConfig;

fn network(n: usize, seed: u64) -> Network {
    let cfg = DeploymentConfig::paper_default(n);
    Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
}

fn assert_same_info(a: &SafetyInfo, b: &SafetyInfo, net: &Network) -> Result<(), TestCaseError> {
    for u in net.node_ids() {
        prop_assert_eq!(a.tuple(u), b.tuple(u), "tuple at {}", u);
        for q in Quadrant::ALL {
            match (a.estimate(u, q), b.estimate(u, q)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    prop_assert_eq!(x.rect, y.rect, "rect at {} {}", u, q);
                    prop_assert_eq!(x.first_far, y.first_far, "u(1) at {} {}", u, q);
                    prop_assert_eq!(x.last_far, y.last_far, "u(2) at {} {}", u, q);
                }
                (x, y) => prop_assert!(
                    false,
                    "presence mismatch at {} {}: {:?} vs {:?}",
                    u,
                    q,
                    x,
                    y
                ),
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn async_equals_sync_equals_centralized(
        net_seed in 0u64..300,
        delay_seed in 0u64..1000,
        n in 100usize..220,
        spread in 1u8..4,
    ) {
        let net = network(n, net_seed);
        let pinned = edge_node_mask(&net, net.radius());

        let central = SafetyInfo::build_with_pinned(&net, pinned.clone());
        let sync_run = construct_distributed(&net).unwrap();
        assert_same_info(&sync_run.info, &central, &net)?;

        let cfg = AsyncConfig {
            seed: delay_seed,
            min_delay: 0.25,
            max_delay: 0.25 + spread as f64,
        };
        let async_run = construct_async_with(&net, pinned, cfg).unwrap();
        prop_assert!(async_run.stats.quiesced);
        assert_same_info(&async_run.info, &central, &net)?;
    }
}
