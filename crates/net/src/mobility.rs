//! Node mobility — the random-waypoint model.
//!
//! §1 of the paper lists "node mobility" among the dynamic factors that
//! create local minima at runtime. This module supplies the standard
//! random-waypoint generator so the harness can measure how fast the
//! safety information goes stale as nodes move (experiment A13): each
//! node picks a uniform waypoint in the interest area, travels toward it
//! at a uniformly-drawn speed, pauses, and repeats.
//!
//! The walker is deterministic per seed and steps in continuous time, so
//! topology snapshots can be taken at any elapsed time.

use crate::{Network, NodeId, PositionTable};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_geom::{Point, Rect, Vec2};
use std::sync::Arc;

/// Per-node motion state.
#[derive(Debug, Clone, Copy)]
struct Motion {
    pos: Point,
    waypoint: Point,
    speed: f64,
    pause_left: f64,
}

/// A seeded random-waypoint mobility process over a fixed node set.
///
/// ```
/// use sp_net::{deploy::DeploymentConfig, mobility::RandomWaypoint, Network};
///
/// let cfg = DeploymentConfig::paper_default(100);
/// let start = cfg.deploy_uniform(7);
/// let mut rw = RandomWaypoint::new(start.clone(), cfg.area, cfg.radius, 0.5, 1.5, 0.0, 7);
/// rw.step(10.0);
/// let net = rw.snapshot();
/// assert_eq!(net.len(), 100);
/// // Nobody moved farther than max speed x elapsed time.
/// for (a, b) in start.iter().zip(rw.positions()) {
///     assert!(a.distance(b) <= 1.5 * 10.0 + 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct RandomWaypoint {
    area: Rect,
    radius: f64,
    speed_min: f64,
    speed_max: f64,
    pause: f64,
    rng: StdRng,
    motions: Vec<Motion>,
    elapsed: f64,
    // Reused position buffer for full snapshots: the per-call Vec
    // allocation is amortized away; only the unavoidable Arc copy the
    // Network takes ownership of remains.
    scratch: PositionTable,
    // The incrementally-maintained topology behind snapshot_incremental.
    cache: Option<Network>,
}

impl RandomWaypoint {
    /// Starts the process at `positions` inside `area` with
    /// communication `radius` (taken once here so every snapshot shares
    /// it), speeds uniform in `[speed_min, speed_max]` (distance per
    /// time unit), and a fixed `pause` at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive, the speed range is
    /// empty or non-positive, or `pause` is negative.
    pub fn new(
        positions: Vec<Point>,
        area: Rect,
        radius: f64,
        speed_min: f64,
        speed_max: f64,
        pause: f64,
        seed: u64,
    ) -> RandomWaypoint {
        assert!(radius > 0.0, "communication radius must be positive");
        assert!(
            speed_min > 0.0 && speed_max >= speed_min,
            "speed range must satisfy 0 < min <= max"
        );
        assert!(pause >= 0.0, "pause must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b11_e00b_11e0);
        let motions: Vec<Motion> = positions
            .into_iter()
            .map(|pos| {
                let waypoint = sample_in(&mut rng, area);
                let speed = sample_speed(&mut rng, speed_min, speed_max);
                Motion {
                    pos,
                    waypoint,
                    speed,
                    pause_left: 0.0,
                }
            })
            .collect();
        RandomWaypoint {
            area,
            radius,
            speed_min,
            speed_max,
            pause,
            rng,
            motions,
            elapsed: 0.0,
            scratch: PositionTable::new(),
            cache: None,
        }
    }

    /// Total time advanced so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// The communication radius every snapshot is built with.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Current node positions (same ids as the initial vector).
    pub fn positions(&self) -> Vec<Point> {
        self.motions.iter().map(|m| m.pos).collect()
    }

    /// Advances every node by `dt` time units.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    // sp-analyze: allow(index, motions/positions are sized to the node count and i ranges over motions.len())
    pub fn step(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time must not run backward");
        self.elapsed += dt;
        for i in 0..self.motions.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let m = &mut self.motions[i];
                if m.pause_left > 0.0 {
                    let wait = m.pause_left.min(remaining);
                    m.pause_left -= wait;
                    remaining -= wait;
                    continue;
                }
                let to_goal = m.waypoint - m.pos;
                let dist = to_goal.norm();
                let reach = m.speed * remaining;
                if reach < dist {
                    // Travel and stop mid-leg.
                    let dir = Vec2::new(to_goal.x / dist, to_goal.y / dist);
                    m.pos = Point::new(m.pos.x + dir.x * reach, m.pos.y + dir.y * reach);
                    remaining = 0.0;
                } else {
                    // Arrive, pause, pick the next leg.
                    m.pos = m.waypoint;
                    remaining -= if m.speed > 0.0 { dist / m.speed } else { 0.0 };
                    m.pause_left = self.pause;
                    m.waypoint = sample_in(&mut self.rng, self.area);
                    m.speed = sample_speed(&mut self.rng, self.speed_min, self.speed_max);
                }
            }
        }
    }

    /// A unit-disk-graph snapshot of the current positions, rebuilt
    /// from scratch.
    ///
    /// Each snapshot re-buckets the positions through a fresh
    /// [`sp_net::SpatialIndex`](crate::SpatialIndex) (inside
    /// [`Network::from_position_table`]), so it stays `O(n · k)` per
    /// tick rather than `O(n²)`; the position buffer is reused across
    /// calls. For frequent snapshots of a large network prefer
    /// [`RandomWaypoint::snapshot_incremental`], which only pays for
    /// the nodes that moved.
    pub fn snapshot(&mut self) -> Network {
        self.scratch.clear();
        for m in &self.motions {
            self.scratch.push(m.pos);
        }
        let shared = Arc::new(self.scratch.clone());
        Network::from_position_table(shared, self.radius, self.area)
    }

    /// The unit-disk-graph snapshot of the current positions,
    /// maintained *incrementally*: the first call builds the topology
    /// once, every later call relocates only the nodes that moved since
    /// the previous call ([`Network::apply_moves`]) — `O(n + m · k)`
    /// for `m` movers instead of the full `O(n · k)` rebuild, the win
    /// that makes dense mobility sweeps affordable (§1's "node
    /// mobility" dynamic factor at 10⁴–10⁵ nodes).
    ///
    /// The returned topology is identical to
    /// [`RandomWaypoint::snapshot`] at the same elapsed time.
    pub fn snapshot_incremental(&mut self) -> &Network {
        match &mut self.cache {
            Some(net) => {
                let moves: Vec<(NodeId, Point)> = self
                    .motions
                    .iter()
                    .enumerate()
                    .filter(|&(i, m)| net.position(NodeId::new(i)) != m.pos)
                    .map(|(i, m)| (NodeId::new(i), m.pos))
                    .collect();
                if !moves.is_empty() {
                    net.apply_moves(&moves);
                }
            }
            None => {
                let positions: Vec<Point> = self.motions.iter().map(|m| m.pos).collect();
                self.cache = Some(Network::from_positions(positions, self.radius, self.area));
            }
        }
        self.cache.as_ref().expect("cache was just populated") // sp-analyze: allow(panic, the branch above fills the cache when empty)
    }
}

fn sample_in(rng: &mut StdRng, area: Rect) -> Point {
    Point::new(
        rng.random_range(area.min().x..=area.max().x),
        rng.random_range(area.min().y..=area.max().y),
    )
}

fn sample_speed(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.random_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeploymentConfig;

    fn start(n: usize, seed: u64) -> (Vec<Point>, Rect) {
        let cfg = DeploymentConfig::paper_default(n);
        (cfg.deploy_uniform(seed), cfg.area)
    }

    #[test]
    fn nodes_never_leave_the_area() {
        let (pos, area) = start(80, 1);
        let mut rw = RandomWaypoint::new(pos, area, 20.0, 1.0, 3.0, 0.5, 1);
        for _ in 0..50 {
            rw.step(2.5);
            for p in rw.positions() {
                assert!(area.contains(p), "{p} escaped {area}");
            }
        }
        assert!((rw.elapsed() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn displacement_respects_speed_limit() {
        let (pos, area) = start(60, 2);
        let mut rw = RandomWaypoint::new(pos.clone(), area, 20.0, 0.5, 2.0, 0.0, 2);
        rw.step(7.0);
        for (a, b) in pos.iter().zip(rw.positions()) {
            // Path length >= displacement, so displacement <= v_max * t.
            assert!(a.distance(b) <= 2.0 * 7.0 + 1e-9);
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let (pos, area) = start(40, 3);
        let mut a = RandomWaypoint::new(pos.clone(), area, 20.0, 1.0, 2.0, 1.0, 9);
        let mut b = RandomWaypoint::new(pos, area, 20.0, 1.0, 2.0, 1.0, 9);
        a.step(13.0);
        b.step(13.0);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn stepping_in_pieces_equals_one_big_step() {
        let (pos, area) = start(40, 4);
        let mut a = RandomWaypoint::new(pos.clone(), area, 20.0, 1.0, 2.0, 0.5, 11);
        let mut b = RandomWaypoint::new(pos, area, 20.0, 1.0, 2.0, 0.5, 11);
        a.step(9.0);
        for _ in 0..9 {
            b.step(1.0);
        }
        // Waypoint resampling consumes RNG draws in arrival order, which
        // is identical for both; positions must agree to float noise.
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            assert!(pa.distance(pb) < 1e-6, "{pa} vs {pb}");
        }
    }

    #[test]
    fn pause_keeps_nodes_still() {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        // One node already at its waypoint-to-be: after arrival it must
        // hold for `pause` time.
        let mut rw = RandomWaypoint::new(vec![Point::new(5.0, 5.0)], area, 5.0, 1.0, 1.0, 100.0, 5);
        rw.step(30.0); // long enough to arrive at the first waypoint
        let at_arrival = rw.positions()[0];
        rw.step(10.0); // well inside the 100-unit pause
        assert_eq!(rw.positions()[0], at_arrival);
    }

    #[test]
    fn snapshot_changes_topology_over_time() {
        let (pos, area) = start(150, 6);
        let mut rw = RandomWaypoint::new(pos, area, 20.0, 1.0, 3.0, 0.0, 6);
        let before = rw.snapshot();
        rw.step(60.0);
        let after = rw.snapshot();
        let before_edges: std::collections::BTreeSet<_> = before.edges().collect();
        let after_edges: std::collections::BTreeSet<_> = after.edges().collect();
        assert_ne!(
            before_edges, after_edges,
            "an hour of motion rewires the UDG"
        );
    }

    #[test]
    fn incremental_snapshot_equals_full_rebuild() {
        let (pos, area) = start(250, 8);
        let mut rw = RandomWaypoint::new(pos, area, 20.0, 1.0, 3.0, 0.5, 8);
        for tick in 0..8 {
            let full = rw.snapshot();
            let inc = rw.snapshot_incremental();
            assert_eq!(inc.len(), full.len(), "tick {tick}");
            for u in full.node_ids() {
                assert_eq!(inc.position(u), full.position(u), "tick {tick}, node {u}");
                assert_eq!(inc.neighbors(u), full.neighbors(u), "tick {tick}, node {u}");
            }
            rw.step(5.0);
        }
    }

    #[test]
    fn incremental_snapshot_without_motion_is_stable() {
        let (pos, area) = start(60, 12);
        let mut rw = RandomWaypoint::new(pos, area, 20.0, 1.0, 2.0, 0.0, 12);
        rw.step(3.0);
        let edges: std::collections::BTreeSet<_> = rw.snapshot_incremental().edges().collect();
        // No step in between: the cached topology is returned unchanged.
        let again: std::collections::BTreeSet<_> = rw.snapshot_incremental().edges().collect();
        assert_eq!(edges, again);
    }

    #[test]
    #[should_panic(expected = "radius must be positive")]
    fn zero_radius_rejected() {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let _ = RandomWaypoint::new(vec![Point::new(0.5, 0.5)], area, 0.0, 1.0, 2.0, 0.0, 0);
    }

    #[test]
    #[should_panic(expected = "speed range")]
    fn zero_speed_rejected() {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let _ = RandomWaypoint::new(vec![Point::new(0.5, 0.5)], area, 1.0, 0.0, 1.0, 0.0, 0);
    }
}
