//! Streaming telemetry: the workload that motivates the paper's
//! introduction — "recent WASN applications that require a streaming
//! service to deliver large amount of data", where straighter paths mean
//! less energy in detours and less interference because fewer nodes are
//! involved.
//!
//! Several sensor sources stream packets to one sink; for each scheme
//! we count total transmissions (the energy proxy) and the number of
//! distinct relay nodes touched (the interference footprint).
//!
//! ```sh
//! cargo run --example streaming_telemetry
//! ```

use std::collections::BTreeSet;
use straightpath::prelude::*;

fn main() {
    let cfg = DeploymentConfig::paper_default(700);
    let net = Network::from_positions(cfg.deploy_uniform(31), cfg.radius, cfg.area);
    let info = SafetyInfo::build(&net);
    let gf = GfRouter::new(&net);
    let lgf = LgfRouter::new();
    let slgf = SlgfRouter::new(&info);
    let slgf2 = Slgf2Router::new(&info);

    // Sink near the northeast corner, five sources spread along the
    // west and south edges — every stream crosses most of the area.
    let sink = nearest(&net, Point::new(180.0, 180.0));
    let sources: Vec<NodeId> = [
        Point::new(20.0, 20.0),
        Point::new(20.0, 100.0),
        Point::new(20.0, 180.0),
        Point::new(100.0, 20.0),
        Point::new(180.0, 20.0),
    ]
    .into_iter()
    .map(|p| nearest(&net, p))
    .collect();
    let packets_per_source = 40usize;

    println!(
        "streaming {} packets from {} sources to sink {}\n",
        packets_per_source * sources.len(),
        sources.len(),
        sink
    );
    println!(
        "{:<8} {:>12} {:>12} {:>14} {:>10}",
        "scheme", "tx (energy)", "mean hops", "nodes touched", "delivered"
    );

    let schemes: [(&str, &dyn Routing); 4] = [
        ("GF", &gf),
        ("LGF", &lgf),
        ("SLGF", &slgf),
        ("SLGF2", &slgf2),
    ];
    for (name, router) in schemes {
        let mut transmissions = 0usize;
        let mut delivered = 0usize;
        let mut hops_sum = 0usize;
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        for &src in &sources {
            // Per-flow routes are deterministic; a stream of packets
            // repeats the same path, so transmissions scale linearly.
            let r = router.route(&net, src, sink);
            if r.delivered() {
                delivered += packets_per_source;
                hops_sum += r.hops();
                transmissions += r.hops() * packets_per_source;
                for &u in &r.path {
                    touched.insert(u);
                }
            }
        }
        println!(
            "{:<8} {:>12} {:>12.1} {:>14} {:>10}",
            name,
            transmissions,
            hops_sum as f64 / sources.len() as f64,
            touched.len(),
            delivered,
        );
    }

    println!(
        "\nfewer transmissions = less energy; fewer nodes touched = \
         less interference with other flows (§1 of the paper)."
    );

    // The long game: stream with per-node batteries until the first
    // flow dies (experiment A15). Straight paths are cheap per packet
    // but concentrate wear on their corridors.
    use sp_experiments::{run_lifetime, Scheme, StreamingConfig};
    let mut lt_cfg = StreamingConfig::default_for_lifetime();
    lt_cfg.node_energy_nj = 8.0e6;
    println!("\nlifetime until first flow death (4 flows, 8 mJ/node):");
    for scheme in [Scheme::Lgf, Scheme::Slgf2, Scheme::Gfg] {
        let report = run_lifetime(&net, scheme, &lt_cfg, 31);
        println!(
            "  {:<6} {:>6} packets ({} nodes depleted, {:.0} % energy spent)",
            scheme.name(),
            report.packets_delivered,
            report.nodes_depleted,
            100.0 * report.energy_spent,
        );
    }
}

fn nearest(net: &Network, target: Point) -> NodeId {
    net.node_ids()
        .min_by(|&a, &b| {
            net.position(a)
                .distance_sq(target)
                .total_cmp(&net.position(b).distance_sq(target))
        })
        .expect("non-empty network")
}
