//! Summary statistics over samples of routing metrics.

/// Summary of a sample: the aggregates the paper's figures report (mean
/// for Figs. 6–7, max for Fig. 5) plus dispersion for our extended
/// reporting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
    /// Median (lower-middle for even sizes).
    pub median: f64,
    /// 95th percentile (nearest-rank).
    pub p95: f64,
}

impl Summary {
    /// Computes a summary; returns the zero summary for an empty sample.
    pub fn of(samples: &[f64]) -> Summary {
        let n = samples.len();
        if n == 0 {
            return Summary {
                n: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p95: 0.0,
            };
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mean = sorted.iter().sum::<f64>() / n as f64;
        let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let rank_p95 = ((0.95 * n as f64).ceil() as usize).clamp(1, n) - 1;
        Summary {
            n,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            median: sorted[(n - 1) / 2],
            p95: sorted[rank_p95],
        }
    }

    /// Half-width of the normal-approximation 95% confidence interval of
    /// the mean (`1.96·σ/√n`; 0 for n < 2).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.n as f64).sqrt()
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} mean={:.3}±{:.3} min={:.3} med={:.3} p95={:.3} max={:.3}",
            self.n,
            self.mean,
            self.ci95(),
            self.min,
            self.median,
            self.p95,
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.n, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.p95, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.mean, 7.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn median_even_sample_is_lower_middle() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn p95_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&samples);
        assert_eq!(s.p95, 95.0);
    }

    #[test]
    fn ci_shrinks_with_n() {
        let a = Summary::of(&[1.0, 3.0]);
        let many: Vec<f64> = std::iter::repeat_n([1.0, 3.0], 50).flatten().collect();
        let b = Summary::of(&many);
        assert!(b.ci95() < a.ci95());
    }

    #[test]
    fn display_mentions_all_fields() {
        let text = Summary::of(&[1.0, 2.0]).to_string();
        assert!(text.contains("n=2") && text.contains("mean="));
    }
}
