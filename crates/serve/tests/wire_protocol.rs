//! Wire-protocol robustness: the codec never panics on arbitrary
//! bytes, every malformed shape maps to a **named** protocol error,
//! and a live server survives garbage — answering it with an error
//! frame and continuing to serve.

use proptest::prelude::*;
use sp_core::ServiceScheme;
use sp_net::{deploy::DeploymentConfig, Network};
use sp_serve::wire::{
    decode_request, decode_response, encode_move, encode_query, write_frame, FrameReader, Request,
    FLAG_TRACE, MAX_FRAME, OP_MOVE, OP_QUERY,
};
use sp_serve::{serve, ProtocolErrorKind, Response, ServeClient, ServeConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;

fn small_net(n: usize, seed: u64) -> Network {
    let cfg = DeploymentConfig::paper_default(n);
    Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
}

fn spin_up() -> ServerHandle {
    serve(small_net(120, 5), ServeConfig::ephemeral(2)).expect("bind ephemeral")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes decode to `Ok` or a named error — never a panic.
    #[test]
    fn decode_request_never_panics(bytes in prop::collection::vec(0u8..=255, 0..96)) {
        let _ = decode_request(&bytes);
    }

    /// Same for the client-side response decoder.
    #[test]
    fn decode_response_never_panics(bytes in prop::collection::vec(0u8..=255, 0..96)) {
        let _ = decode_response(&bytes);
    }

    /// Every strict prefix of a valid `QUERY` payload is a named
    /// `Truncated` error (and the full payload decodes back exactly).
    #[test]
    fn query_prefixes_truncate_cleanly(
        src in 0u32..1_000_000,
        dst in 0u32..1_000_000,
        scheme in 0u8..3,
        flags in 0u8..2,
    ) {
        let mut payload = Vec::new();
        encode_query(&mut payload, src, dst, scheme, flags & FLAG_TRACE != 0);
        for cut in 0..payload.len() {
            let err = decode_request(&payload[..cut]).expect_err("prefix must fail");
            prop_assert_eq!(err.kind, ProtocolErrorKind::Truncated);
        }
        match decode_request(&payload) {
            Ok(Request::Query { src: s, dst: d, scheme: c, trace }) => {
                prop_assert_eq!((s, d, c, trace), (src, dst, scheme, flags & FLAG_TRACE != 0));
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    /// `MOVE` batches roundtrip entry-exact through the wire form.
    #[test]
    fn move_batches_roundtrip(
        entries in prop::collection::vec(
            (0u32..100_000, -1e6..1e6f64, -1e6..1e6f64),
            0..40,
        ),
    ) {
        let mut payload = Vec::new();
        encode_move(&mut payload, &entries);
        match decode_request(&payload) {
            Ok(Request::Move(batch)) => {
                prop_assert_eq!(batch.len(), entries.len());
                let got: Vec<_> = batch.iter().collect();
                prop_assert_eq!(got, entries);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    /// The frame reader reassembles any frame sequence under any
    /// chunking of the byte stream.
    #[test]
    fn frame_reader_survives_arbitrary_chunking(
        frames in prop::collection::vec(prop::collection::vec(0u8..=255, 0..48), 1..6),
        chunk in 1usize..17,
    ) {
        let mut stream = Vec::new();
        for payload in &frames {
            write_frame(&mut stream, payload).expect("vec write");
        }
        let mut reader = FrameReader::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        for piece in stream.chunks(chunk) {
            reader.extend(piece);
            while let Some(frame) = reader.next_frame().expect("in-cap frames") {
                got.push(frame.to_vec());
            }
        }
        prop_assert_eq!(got, frames);
        prop_assert_eq!(reader.pending(), 0);
    }
}

/// Request-level garbage: the server answers each bad frame with a
/// named error on the same connection and keeps serving it.
#[test]
fn server_answers_garbage_with_named_errors_and_stays_alive() {
    let handle = spin_up();
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let cases: &[(&[u8], ProtocolErrorKind)] = &[
        (&[0x7F], ProtocolErrorKind::UnknownOpcode),
        (&[], ProtocolErrorKind::Truncated),
        (&[OP_QUERY, 1, 0, 0, 0], ProtocolErrorKind::Truncated),
        (
            &[OP_QUERY, 1, 0, 0, 0, 2, 0, 0, 0, 0, 0, 0xAB],
            ProtocolErrorKind::TrailingBytes,
        ),
        (
            &[OP_MOVE, 2, 0, 0, 0, 1, 2, 3],
            ProtocolErrorKind::Truncated,
        ),
    ];
    for (payload, want) in cases {
        match client.send_raw(payload).expect("an answer frame") {
            Response::Error { error, name, .. } => {
                assert_eq!(error.kind, *want, "payload {payload:?}");
                assert_eq!(name, want.name());
            }
            other => panic!("expected error for {payload:?}, got {other:?}"),
        }
    }

    // Semantic errors carry their family too.
    let mut bad_scheme = Vec::new();
    encode_query(&mut bad_scheme, 0, 1, 99, false);
    match client.send_raw(&bad_scheme) {
        Ok(Response::Error { error, .. }) => {
            assert_eq!(error.kind, ProtocolErrorKind::BadScheme);
            assert_eq!(error.context, 99);
        }
        other => panic!("expected bad-scheme, got {other:?}"),
    }
    match client.query(0, 120, ServiceScheme::Slgf2, false) {
        Err(sp_serve::ClientError::Server { error, .. }) => {
            assert_eq!(error.kind, ProtocolErrorKind::BadNodeId);
            assert_eq!(error.context, 120);
        }
        other => panic!("expected bad-node-id, got {other:?}"),
    }
    match client.move_batch(&[(3, f64::NAN, 1.0)]) {
        Err(sp_serve::ClientError::Server { error, .. }) => {
            assert_eq!(error.kind, ProtocolErrorKind::BadCoordinate)
        }
        other => panic!("expected bad-coordinate, got {other:?}"),
    }
    match client.chaos(1, 7, "definitely-not-a-chaos-class") {
        Err(sp_serve::ClientError::Server { error, .. }) => {
            assert_eq!(error.kind, ProtocolErrorKind::BadSpec)
        }
        other => panic!("expected bad-spec, got {other:?}"),
    }

    // The same connection still serves valid queries afterwards.
    let reply = client
        .query(0, 119, ServiceScheme::Slgf2, false)
        .expect("connection survived the garbage");
    assert!(reply.epoch <= handle.service().epoch());

    // And the error tally matches what we threw at it.
    let stats = handle.stats();
    assert_eq!(stats.protocol_errors, 9);
    assert_eq!(stats.queries, 1);

    handle.shutdown();
    drop(client);
    handle.join();
}

/// Framing-level garbage: an oversized length header gets a named
/// error and a close — and the listener keeps accepting new clients.
#[test]
fn oversized_header_closes_one_connection_not_the_server() {
    let handle = spin_up();

    let mut raw = TcpStream::connect(handle.addr()).expect("connect");
    raw.write_all(&(MAX_FRAME as u32 + 1).to_le_bytes())
        .expect("send oversized header");
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 1024];
    let mut frames = Vec::new();
    loop {
        let n = raw.read(&mut buf).expect("read");
        if n == 0 {
            break;
        }
        reader.extend(&buf[..n]);
        while let Some(frame) = reader.next_frame().expect("server frames are well-formed") {
            frames.push(frame.to_vec());
        }
    }
    assert_eq!(frames.len(), 1, "one error frame, then EOF");
    match decode_response(&frames[0]) {
        Ok(Response::Error { error, .. }) => {
            assert_eq!(error.kind, ProtocolErrorKind::Oversized);
            assert_eq!(error.context, MAX_FRAME as u64 + 1);
        }
        other => panic!("expected oversized error, got {other:?}"),
    }

    // Fresh connections still work: the poisoned one died alone.
    let mut client = ServeClient::connect(handle.addr()).expect("reconnect");
    client
        .query(0, 60, ServiceScheme::Lgf, true)
        .expect("server still serving");

    handle.shutdown();
    drop(client);
    handle.join();
}
