//! Execution accounting: rounds, transmissions, receptions.
//!
//! The paper claims (§5) "the construction cost of safety information has
//! been proved to be the minimum in \[7\]"; ablation A1 measures that cost
//! empirically, so the engine counts every radio event.

/// Aggregate counters for one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Rounds executed (excluding the init round).
    pub rounds: usize,
    /// Broadcast transmissions (one per `broadcast` call).
    pub broadcasts: usize,
    /// Unicast transmissions (one per `send` call).
    pub unicasts: usize,
    /// Message receptions summed over all receivers.
    pub receptions: usize,
    /// Whether the run ended because no messages remained in flight
    /// (as opposed to hitting the round limit).
    pub quiesced: bool,
}

impl SimStats {
    /// Total transmissions of any kind.
    pub fn transmissions(&self) -> usize {
        self.broadcasts + self.unicasts
    }
}

impl std::fmt::Display for SimStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} tx ({} bcast + {} ucast), {} rx{}",
            self.rounds,
            self.transmissions(),
            self.broadcasts,
            self.unicasts,
            self.receptions,
            if self.quiesced {
                ", quiesced"
            } else {
                ", round-limited"
            }
        )
    }
}

/// Optional per-round trace of message activity.
#[derive(Debug, Clone, Default)]
pub struct RoundLog {
    per_round_tx: Vec<usize>,
}

impl RoundLog {
    /// Creates an empty log.
    pub fn new() -> RoundLog {
        RoundLog::default()
    }

    /// Records one round's transmission count.
    pub fn record(&mut self, transmissions: usize) {
        self.per_round_tx.push(transmissions);
    }

    /// Transmission counts per round, oldest first.
    pub fn per_round(&self) -> &[usize] {
        &self.per_round_tx
    }

    /// The round with the highest traffic, if any (`(round, tx)`).
    pub fn peak(&self) -> Option<(usize, usize)> {
        self.per_round_tx
            .iter()
            .copied()
            .enumerate()
            .max_by_key(|&(i, tx)| (tx, std::cmp::Reverse(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let s = SimStats {
            rounds: 3,
            broadcasts: 5,
            unicasts: 2,
            receptions: 30,
            quiesced: true,
        };
        assert_eq!(s.transmissions(), 7);
        let text = s.to_string();
        assert!(text.contains("3 rounds"));
        assert!(text.contains("quiesced"));
    }

    #[test]
    fn round_log_peak_prefers_earliest_max() {
        let mut log = RoundLog::new();
        for tx in [1, 9, 4, 9, 0] {
            log.record(tx);
        }
        assert_eq!(log.peak(), Some((1, 9)));
        assert_eq!(log.per_round(), &[1, 9, 4, 9, 0]);
    }

    #[test]
    fn empty_log_has_no_peak() {
        assert_eq!(RoundLog::new().peak(), None);
    }
}
