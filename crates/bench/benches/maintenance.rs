//! A9 — incremental safety-information repair vs full relabeling.
//!
//! Times one `InfoMaintainer::kill` repair against one full
//! `SafetyMap::label_with_pinned` rebuild at several node counts; the
//! ratio is the payoff of the monotone worklist (`DESIGN.md` ablation
//! A9).
//!
//! Full-scale figure: `cargo run -p sp-experiments --bin repro-figures -- a9`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_core::{InfoMaintainer, SafetyMap};
use sp_net::{edge_nodes::edge_node_mask, DeploymentConfig, Network, NodeId};
use std::hint::black_box;

fn maintenance_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("a9_maintenance");
    for n in [400usize, 600, 800] {
        let cfg = DeploymentConfig::paper_default(n);
        let net = Network::from_positions(cfg.deploy_uniform(9), cfg.radius, cfg.area);
        let victim = net
            .node_ids()
            .max_by_key(|&u| net.degree(u))
            .expect("non-empty network");

        group.bench_function(BenchmarkId::new("incremental_kill", n), |b| {
            b.iter_batched(
                || InfoMaintainer::new(net.clone()),
                |mut maint| black_box(maint.kill(victim)),
                criterion::BatchSize::LargeInput,
            );
        });

        let degraded = net.without_nodes(&[victim]);
        let pinned = edge_node_mask(&degraded, degraded.radius());
        group.bench_function(BenchmarkId::new("full_relabel", n), |b| {
            b.iter(|| {
                black_box(SafetyMap::label_with_pinned(
                    black_box(&degraded),
                    pinned.clone(),
                ))
            });
        });
    }
    group.finish();

    // How the repair scales with the number of sequential failures.
    let cfg = DeploymentConfig::paper_default(600);
    let net = Network::from_positions(cfg.deploy_uniform(5), cfg.radius, cfg.area);
    let victims: Vec<NodeId> = net.node_ids().step_by(37).take(10).collect();
    let mut group = c.benchmark_group("a9_kill_sequences");
    for kills in [1usize, 5, 10] {
        group.bench_function(BenchmarkId::new("kills", kills), |b| {
            b.iter_batched(
                || InfoMaintainer::new(net.clone()),
                |mut maint| {
                    for &v in victims.iter().take(kills) {
                        black_box(maint.kill(v));
                    }
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = maintenance_benches
}
criterion_main!(benches);
