//! Result aggregation for the straightpath reproduction harness.
//!
//! The paper reports three figure families (maximum hops, average hops,
//! average path length) as curves over node count. This crate provides
//! the [`Summary`] statistics, the [`Series`]/[`Figure`] containers those
//! curves live in, and text/markdown/CSV renderers for regenerating the
//! tables in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod json;
pub mod series;
pub mod stats;
pub mod table;

pub use csv::render_csv;
pub use json::render_json;
pub use series::{Figure, Series};
pub use stats::Summary;
pub use table::{render_markdown, render_text};
