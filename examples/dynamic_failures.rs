//! Dynamic failures: the paper's §1 motivates unsafe areas with "node
//! failures, signal fading, communication jamming, power exhaustion".
//! This example builds the safety information with the *distributed*
//! protocol (Algorithm 2 over the round-based simulator), kills a batch
//! of nodes, lets the protocol repair itself incrementally, and shows
//! that SLGF2 keeps routing on the degraded network.
//!
//! ```sh
//! cargo run --example dynamic_failures
//! ```

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use straightpath::net::edge_nodes::edge_node_mask;
use straightpath::prelude::*;
use straightpath::sim::FailurePlan;

fn main() {
    let cfg = DeploymentConfig::paper_default(550);
    let net = Network::from_positions(cfg.deploy_uniform(404), cfg.radius, cfg.area);
    let pinned = edge_node_mask(&net, net.radius());

    // Phase 1: construct the information distributively and report the
    // cost (the paper cites [7]'s proof that this cost is minimal).
    let clean = construct_distributed(&net).expect("construction quiesces");
    println!(
        "initial construction: {} rounds, {} broadcasts ({:.2}/node), {} receptions",
        clean.stats.rounds,
        clean.stats.broadcasts,
        clean.stats.broadcasts as f64 / net.len() as f64,
        clean.stats.receptions,
    );

    // Phase 2: schedule a burst of interior node failures *after*
    // stabilization and let the protocol repair incrementally.
    let mut rng = StdRng::seed_from_u64(99);
    let mut interior: Vec<NodeId> = net
        .node_ids()
        .filter(|&u| !pinned[u.index()] && net.degree(u) > 2)
        .collect();
    interior.shuffle(&mut rng);
    let victims: Vec<NodeId> = interior.into_iter().take(25).collect();
    let mut plan = FailurePlan::new();
    for (i, &v) in victims.iter().enumerate() {
        plan.kill_at(clean.stats.rounds + 2 + i / 5, v);
    }
    let repaired = straightpath::core::construct_with(&net, pinned, plan).expect("repair quiesces");
    println!(
        "with {} failures injected: {} total rounds, {} broadcasts \
         (repair overhead {} broadcasts)",
        victims.len(),
        repaired.stats.rounds,
        repaired.stats.broadcasts,
        repaired
            .stats
            .broadcasts
            .saturating_sub(clean.stats.broadcasts),
    );

    // Phase 3: route on the degraded network with the repaired info.
    let degraded = net.without_nodes(&victims);
    let more_unsafe = degraded
        .node_ids()
        .filter(|&u| !repaired.info.tuple(u).fully_safe() && clean.info.tuple(u).fully_safe())
        .count();
    println!("{more_unsafe} nodes became (partially) unsafe after the failures\n");

    let comp = degraded.largest_component();
    let (src, dst) = (comp[0], comp[comp.len() - 1]);
    let r_stale = Slgf2Router::new(&clean.info).route(&degraded, src, dst);
    let r_fresh = Slgf2Router::new(&repaired.info).route(&degraded, src, dst);
    println!(
        "SLGF2 {}->{} with stale info: delivered={} hops={} perimeter_entries={}",
        src,
        dst,
        r_stale.delivered(),
        r_stale.hops(),
        r_stale.perimeter_entries
    );
    println!(
        "SLGF2 {}->{} with repaired info: delivered={} hops={} perimeter_entries={}",
        src,
        dst,
        r_fresh.delivered(),
        r_fresh.hops(),
        r_fresh.perimeter_entries
    );
}
