//! [`SafetyInfo`]: the complete safety information model of §3.
//!
//! Bundles the stabilized safety tuples ([`SafetyMap`]) with the
//! unsafe-area shape estimates ([`ShapeMap`]) behind one query facade —
//! exactly the per-node state that SLGF reads and SLGF2 extends.

use crate::{greedy_region, SafetyMap, SafetyTuple, ShapeEstimate, ShapeMap};
use sp_geom::Quadrant;
use sp_net::{Network, NodeId};

/// Safety tuples + shape estimates for a network snapshot.
///
/// ```
/// use sp_core::SafetyInfo;
/// use sp_net::{deploy::DeploymentConfig, Network};
///
/// let cfg = DeploymentConfig::paper_default(400);
/// let net = Network::from_positions(cfg.deploy_uniform(1), cfg.radius, cfg.area);
/// let info = SafetyInfo::build(&net);
/// assert!(info.rounds() >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct SafetyInfo {
    safety: SafetyMap,
    shapes: ShapeMap,
}

impl SafetyInfo {
    /// Labels the network (Definition 1) and derives every shape
    /// estimate (Algo. 2), centrally.
    pub fn build(net: &Network) -> SafetyInfo {
        let safety = SafetyMap::label(net);
        let shapes = ShapeMap::build(net, &safety);
        SafetyInfo { safety, shapes }
    }

    /// Same, but with an explicit pinned mask (no automatic hull
    /// pinning) — used by unit scenarios and ablations.
    pub fn build_with_pinned(net: &Network, pinned: Vec<bool>) -> SafetyInfo {
        let safety = SafetyMap::label_with_pinned(net, pinned);
        let shapes = ShapeMap::build(net, &safety);
        SafetyInfo { safety, shapes }
    }

    /// Labels the network and derives **exact** unsafe-area shapes (the
    /// tight bounding box of every greedy region) instead of the
    /// Algorithm-2 two-chain estimates — the §6 future-work oracle used
    /// by ablation A14.
    pub fn build_exact(net: &Network) -> SafetyInfo {
        let safety = SafetyMap::label(net);
        let shapes = ShapeMap::build_exact(net, &safety);
        SafetyInfo { safety, shapes }
    }

    /// Wraps precomputed parts (used by the distributed construction).
    pub fn from_parts(safety: SafetyMap, shapes: ShapeMap) -> SafetyInfo {
        SafetyInfo { safety, shapes }
    }

    /// `S_i(u)`.
    #[inline]
    pub fn is_safe(&self, u: NodeId, q: Quadrant) -> bool {
        self.safety.is_safe(u, q)
    }

    /// The full tuple of `u`.
    #[inline]
    pub fn tuple(&self, u: NodeId) -> SafetyTuple {
        self.safety.tuple(u)
    }

    /// `E_i(u)` with chain metadata, when `u` is type-`q` unsafe.
    #[inline]
    pub fn estimate(&self, u: NodeId, q: Quadrant) -> Option<&ShapeEstimate> {
        self.shapes.estimate(u, q)
    }

    /// The underlying safety map.
    pub fn safety(&self) -> &SafetyMap {
        &self.safety
    }

    /// The underlying shape map.
    pub fn shapes(&self) -> &ShapeMap {
        &self.shapes
    }

    /// Rounds the labeling took to stabilize.
    pub fn rounds(&self) -> usize {
        self.safety.rounds()
    }

    /// Exact greedy region `G_i(u)` (test/diagnostic helper).
    pub fn greedy_region(&self, net: &Network, u: NodeId, q: Quadrant) -> Vec<NodeId> {
        greedy_region(net, &self.safety, u, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::DeploymentConfig;
    use sp_net::Network;

    #[test]
    fn build_is_consistent_between_parts() {
        let cfg = DeploymentConfig::paper_default(350);
        let net = Network::from_positions(cfg.deploy_uniform(2), cfg.radius, cfg.area);
        let info = SafetyInfo::build(&net);
        assert!(info.safety().check_fixed_point(&net).is_none());
        for u in net.node_ids() {
            for q in Quadrant::ALL {
                assert_eq!(info.is_safe(u, q), info.tuple(u).is_safe(q));
                assert_eq!(info.estimate(u, q).is_some(), !info.is_safe(u, q));
            }
        }
    }

    #[test]
    fn from_parts_round_trips() {
        let cfg = DeploymentConfig::paper_default(120);
        let net = Network::from_positions(cfg.deploy_uniform(6), cfg.radius, cfg.area);
        let safety = SafetyMap::label(&net);
        let shapes = ShapeMap::build(&net, &safety);
        let rounds = safety.rounds();
        let info = SafetyInfo::from_parts(safety, shapes);
        assert_eq!(info.rounds(), rounds);
    }
}
