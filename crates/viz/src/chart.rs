//! SVG line charts of reproduction figures.
//!
//! Renders an [`sp_metrics::Figure`] as a standalone SVG: axes with
//! ticks, one polyline + marker set per series, and a legend — the
//! publication-style counterpart of the terminal charts in
//! [`crate::ascii`]. Pure string building, no dependencies.

use sp_metrics::Figure;
use std::fmt::Write as _;

/// Size and style options of [`render_figure_svg`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FigureSvgOptions {
    /// Total SVG width in pixels.
    pub width_px: f64,
    /// Total SVG height in pixels.
    pub height_px: f64,
    /// Number of ticks per axis (including the ends).
    pub ticks: usize,
}

impl Default for FigureSvgOptions {
    fn default() -> FigureSvgOptions {
        FigureSvgOptions {
            width_px: 640.0,
            height_px: 420.0,
            ticks: 5,
        }
    }
}

/// Series colors, cycled in order (colorblind-friendly palette).
const COLORS: [&str; 8] = [
    "#0072b2", "#d55e00", "#009e73", "#cc79a7", "#e69f00", "#56b4e9", "#f0e442", "#000000",
];

/// Marker shapes cycled with the colors.
#[derive(Clone, Copy)]
enum Marker {
    Circle,
    Square,
    Diamond,
    TriangleUp,
}

const MARKERS: [Marker; 4] = [
    Marker::Circle,
    Marker::Square,
    Marker::Diamond,
    Marker::TriangleUp,
];

/// Renders `fig` as a standalone SVG document.
///
/// Empty figures produce a titled frame with a "no data" note.
///
/// ```
/// use sp_metrics::{Figure, Series};
/// use sp_viz::chart::{render_figure_svg, FigureSvgOptions};
///
/// let mut fig = Figure::new("Fig. 6(a)", "nodes", "hops");
/// let mut s = Series::new("SLGF2");
/// s.push(400.0, 12.0);
/// s.push(800.0, 9.0);
/// fig.push_series(s);
/// let svg = render_figure_svg(&fig, FigureSvgOptions::default());
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("SLGF2"));
/// ```
pub fn render_figure_svg(fig: &Figure, opts: FigureSvgOptions) -> String {
    let w = opts.width_px;
    let h = opts.height_px;
    let margin_left = 64.0;
    let margin_right = 24.0;
    let margin_top = 40.0;
    let margin_bottom = 96.0; // room for x label + legend
    let plot_w = (w - margin_left - margin_right).max(1.0);
    let plot_h = (h - margin_top - margin_bottom).max(1.0);

    let mut out = String::with_capacity(1 << 14);
    let _ = writeln!(
        out,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.0} {h:.0}" font-family="sans-serif">"#
    );
    let _ = writeln!(
        out,
        r##"<rect width="{w:.0}" height="{h:.0}" fill="#ffffff"/>"##
    );
    let _ = writeln!(
        out,
        r##"<text x="{:.0}" y="24" font-size="15" font-weight="bold" fill="#111">{}</text>"##,
        margin_left,
        escape(&fig.title)
    );

    let points: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() {
        let _ = writeln!(
            out,
            r##"<text x="{:.0}" y="{:.0}" font-size="13" fill="#666">(no data)</text>"##,
            margin_left,
            margin_top + plot_h / 2.0
        );
        out.push_str("</svg>\n");
        return out;
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    let y_pad = ((y_max - y_min) * 0.08).max(1e-9);
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);

    let px = |x: f64| margin_left + (x - x_min) / (x_max - x_min) * plot_w;
    let py = |y: f64| margin_top + (1.0 - (y - y_lo) / (y_hi - y_lo)) * plot_h;

    // Frame and ticks.
    let _ = writeln!(
        out,
        r##"<rect x="{margin_left:.1}" y="{margin_top:.1}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="#999" stroke-width="1"/>"##
    );
    let ticks = opts.ticks.max(2);
    for k in 0..ticks {
        let f = k as f64 / (ticks - 1) as f64;
        let xv = x_min + f * (x_max - x_min);
        let yv = y_lo + f * (y_hi - y_lo);
        let xp = px(xv);
        let yp = py(yv);
        let _ = writeln!(
            out,
            r##"<line x1="{xp:.1}" y1="{:.1}" x2="{xp:.1}" y2="{:.1}" stroke="#999"/>"##,
            margin_top + plot_h,
            margin_top + plot_h + 5.0
        );
        let _ = writeln!(
            out,
            r##"<text x="{xp:.1}" y="{:.1}" font-size="11" fill="#333" text-anchor="middle">{xv:.0}</text>"##,
            margin_top + plot_h + 18.0
        );
        let _ = writeln!(
            out,
            r##"<line x1="{:.1}" y1="{yp:.1}" x2="{margin_left:.1}" y2="{yp:.1}" stroke="#999"/>"##,
            margin_left - 5.0
        );
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{:.1}" font-size="11" fill="#333" text-anchor="end">{yv:.1}</text>"##,
            margin_left - 8.0,
            yp + 4.0
        );
    }
    // Axis labels.
    let _ = writeln!(
        out,
        r##"<text x="{:.1}" y="{:.1}" font-size="12" fill="#111" text-anchor="middle">{}</text>"##,
        margin_left + plot_w / 2.0,
        margin_top + plot_h + 38.0,
        escape(&fig.x_label)
    );
    let _ = writeln!(
        out,
        r##"<text x="16" y="{:.1}" font-size="12" fill="#111" text-anchor="middle" transform="rotate(-90 16 {:.1})">{}</text>"##,
        margin_top + plot_h / 2.0,
        margin_top + plot_h / 2.0,
        escape(&fig.y_label)
    );

    // Series.
    for (si, series) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let marker = MARKERS[si % MARKERS.len()];
        if series.points.len() > 1 {
            let pts: Vec<String> = series
                .points
                .iter()
                .map(|&(x, y)| format!("{:.1},{:.1}", px(x), py(y)))
                .collect();
            let _ = writeln!(
                out,
                r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
                pts.join(" ")
            );
        }
        for &(x, y) in &series.points {
            draw_marker(&mut out, marker, px(x), py(y), color);
        }
    }

    // Legend row beneath the x label.
    let legend_y = margin_top + plot_h + 62.0;
    let mut legend_x = margin_left;
    for (si, series) in fig.series.iter().enumerate() {
        let color = COLORS[si % COLORS.len()];
        let marker = MARKERS[si % MARKERS.len()];
        draw_marker(&mut out, marker, legend_x + 6.0, legend_y - 4.0, color);
        let _ = writeln!(
            out,
            r##"<text x="{:.1}" y="{legend_y:.1}" font-size="12" fill="#111">{}</text>"##,
            legend_x + 16.0,
            escape(&series.label)
        );
        legend_x += 18.0 + 8.0 * series.label.len() as f64 + 16.0;
    }

    out.push_str("</svg>\n");
    out
}

fn draw_marker(out: &mut String, marker: Marker, cx: f64, cy: f64, color: &str) {
    let _ = match marker {
        Marker::Circle => writeln!(
            out,
            r#"<circle cx="{cx:.1}" cy="{cy:.1}" r="4" fill="{color}"/>"#
        ),
        Marker::Square => writeln!(
            out,
            r#"<rect x="{:.1}" y="{:.1}" width="8" height="8" fill="{color}"/>"#,
            cx - 4.0,
            cy - 4.0
        ),
        Marker::Diamond => writeln!(
            out,
            r#"<polygon points="{cx:.1},{:.1} {:.1},{cy:.1} {cx:.1},{:.1} {:.1},{cy:.1}" fill="{color}"/>"#,
            cy - 5.0,
            cx + 5.0,
            cy + 5.0,
            cx - 5.0
        ),
        Marker::TriangleUp => writeln!(
            out,
            r#"<polygon points="{cx:.1},{:.1} {:.1},{:.1} {:.1},{:.1}" fill="{color}"/>"#,
            cy - 5.0,
            cx + 5.0,
            cy + 4.0,
            cx - 5.0,
            cy + 4.0
        ),
    };
}

fn escape(text: &str) -> String {
    text.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metrics::Series;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig. 7(b) average length (FA)", "nodes", "meters");
        for (label, base) in [
            ("GF", 150.0),
            ("LGF", 160.0),
            ("SLGF", 140.0),
            ("SLGF2", 120.0),
        ] {
            let mut s = Series::new(label);
            for (i, n) in (400..=800).step_by(100).enumerate() {
                s.push(n as f64, base - 6.0 * i as f64);
            }
            fig.push_series(s);
        }
        fig
    }

    #[test]
    fn svg_has_frame_series_and_legend() {
        let svg = render_figure_svg(&sample(), FigureSvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<polyline").count(), 4);
        for label in ["GF", "LGF", "SLGF", "SLGF2"] {
            assert!(svg.contains(&format!(">{label}</text>")), "{label} legend");
        }
        assert!(svg.contains("nodes") && svg.contains("meters"));
    }

    #[test]
    fn four_marker_shapes_are_used() {
        let svg = render_figure_svg(&sample(), FigureSvgOptions::default());
        assert!(svg.contains("<circle"));
        assert!(svg.contains("<rect x="));
        assert!(svg.matches("<polygon").count() >= 10); // diamonds + triangles
    }

    #[test]
    fn empty_figure_renders_no_data_note() {
        let fig = Figure::new("empty", "x", "y");
        let svg = render_figure_svg(&fig, FigureSvgOptions::default());
        assert!(svg.contains("(no data)"));
        assert!(svg.ends_with("</svg>\n"));
    }

    #[test]
    fn title_is_escaped() {
        let mut fig = Figure::new("a < b & c", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 1.0);
        fig.push_series(s);
        let svg = render_figure_svg(&fig, FigureSvgOptions::default());
        assert!(svg.contains("a &lt; b &amp; c"));
    }

    #[test]
    fn single_point_has_marker_but_no_line() {
        let mut fig = Figure::new("one", "x", "y");
        let mut s = Series::new("S");
        s.push(5.0, 5.0);
        fig.push_series(s);
        let svg = render_figure_svg(&fig, FigureSvgOptions::default());
        assert_eq!(svg.matches("<polyline").count(), 0);
        assert!(svg.matches("<circle").count() >= 2); // data + legend
    }
}
