//! Benchmark-only crate: see the `benches/` directory. Each bench
//! regenerates one of the paper's figures at reduced scale and times
//! the pipeline that produces it; `repro-figures` (in
//! `sp-experiments`) produces the full-scale tables.
//!
//! The library part holds the shared wall-clock sampling helper every
//! `BENCH_*.json` writer uses, so all baselines carry the same
//! `samples` / median / stddev statistics the CI `bench-gate` binary
//! compares.

use std::hint::black_box;
use std::time::Instant;

/// Repeat-sample wall-clock statistics of one measured routine, in
/// seconds. This is what every `BENCH_*.json` row records: the gate
/// compares `median`, while `stddev` documents the noise floor the
/// tolerance has to absorb.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleStats {
    /// Number of timed runs collected (including rejected outliers).
    pub samples: usize,
    /// Runs discarded by the stub's Tukey IQR fence before the median,
    /// mean, and stddev were computed.
    pub outliers_rejected: usize,
    /// Median seconds across retained runs.
    pub median: f64,
    /// Mean seconds across retained runs.
    pub mean: f64,
    /// Sample standard deviation across retained runs (0 for fewer
    /// than 2).
    pub stddev: f64,
}

impl SampleStats {
    /// Summarizes raw per-run seconds. Delegates to the vendored
    /// criterion stub's [`criterion::Estimate`] so the workspace has
    /// exactly one median/stddev/outlier-rejection implementation
    /// behind every `BENCH_*.json` artifact the gate compares.
    pub fn of(samples: &[f64]) -> SampleStats {
        let e = criterion::Estimate::from_samples(String::new(), samples);
        SampleStats {
            samples: e.samples,
            outliers_rejected: e.outliers_rejected,
            median: e.median_ns,
            mean: e.mean_ns,
            stddev: e.stddev_ns,
        }
    }

    /// The `"<prefix>_samples": n, "<prefix>_outliers_rejected": k,
    /// "<prefix>_seconds": median, "<prefix>_stddev": stddev` JSON
    /// fragment every bench row embeds for one timed quantity — sample
    /// counts are per metric, so a row mixing differently-sampled
    /// measurements stays self-describing.
    pub fn json_fields(&self, prefix: &str) -> String {
        format!(
            "\"{prefix}_samples\": {}, \"{prefix}_outliers_rejected\": {}, \"{prefix}_seconds\": {:.6}, \"{prefix}_stddev\": {:.6}",
            self.samples, self.outliers_rejected, self.median, self.stddev
        )
    }
}

/// Tail-latency percentiles of a per-event sample population, in
/// seconds — what the `service_latency` bench records for per-query
/// serving latency. Unlike [`SampleStats`] (repeat-samples of one
/// routine, gated on the median), these summarize *every* event in a
/// sustained stream, so the p95/p99 capture the tail a median hides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Number of events summarized.
    pub count: usize,
    /// Median (50th percentile) seconds.
    pub p50: f64,
    /// 95th-percentile seconds.
    pub p95: f64,
    /// 99th-percentile seconds.
    pub p99: f64,
}

impl LatencyStats {
    /// Summarizes raw per-event seconds (any order; sorted internally).
    pub fn of(samples: &[f64]) -> LatencyStats {
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        LatencyStats {
            count: sorted.len(),
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
        }
    }

    /// The `"<prefix>_latency_count": n, "<prefix>_p50_seconds": …,
    /// "<prefix>_p95_seconds": …, "<prefix>_p99_seconds": …` JSON
    /// fragment for one latency population. The `*_p50/p95/p99_seconds`
    /// keys are gated by `ci/bench_gate` like every other `*_seconds`
    /// metric, with the tighter `--latency-slack` absolute floor
    /// (percentiles live at microsecond scale, far below the wall-clock
    /// slack). Nine decimals keep nanosecond resolution in the
    /// artifact.
    pub fn json_fields(&self, prefix: &str) -> String {
        format!(
            "\"{prefix}_latency_count\": {}, \"{prefix}_p50_seconds\": {:.9}, \"{prefix}_p95_seconds\": {:.9}, \"{prefix}_p99_seconds\": {:.9}",
            self.count, self.p50, self.p95, self.p99
        )
    }
}

/// Nearest-rank percentile of an **ascending-sorted** sample slice:
/// the smallest element such that at least `q` of the population is at
/// or below it. Empty input yields 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The `"<prefix>csr_bytes_per_node": …, "<prefix>total_bytes_per_node": …,
/// "<prefix>legacy_bytes_per_node": …, "<prefix>adjacency_compression": …`
/// JSON fragment for one [`sp_net::TopologyFootprint`] — the memory
/// estimator rows in `BENCH_construction.json` / `BENCH_distributed.json`
/// embed. The `*_bytes_per_node` keys are gated by `ci/bench_gate`
/// exactly like the `*_seconds` medians (memory regressions fail CI the
/// same way time regressions do); the compression ratio
/// (legacy per-node-`Vec` bytes over CSR bytes) is informational.
pub fn memory_json_fields(prefix: &str, f: &sp_net::TopologyFootprint) -> String {
    let csr = f.adjacency_bytes_per_node();
    let legacy = f.legacy_adjacency_bytes_per_node();
    let compression = if csr > 0.0 { legacy / csr } else { 0.0 };
    format!(
        "\"{prefix}csr_bytes_per_node\": {csr:.1}, \"{prefix}total_bytes_per_node\": {:.1}, \"{prefix}legacy_bytes_per_node\": {legacy:.1}, \"{prefix}adjacency_compression\": {compression:.2}",
        f.bytes_per_node()
    )
}

/// Times `runs` executions of `f` and summarizes them.
pub fn sample_stats<R>(runs: usize, mut f: impl FnMut() -> R) -> SampleStats {
    let samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    SampleStats::of(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_match_hand_computation() {
        let s = SampleStats::of(&[3.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.samples, 4);
        assert_eq!(s.median, 2.5);
        assert_eq!(s.mean, 2.5);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sample_counts() {
        assert_eq!(SampleStats::of(&[]).median, 0.0);
        let one = SampleStats::of(&[7.0]);
        assert_eq!((one.samples, one.median, one.stddev), (1, 7.0, 0.0));
    }

    #[test]
    fn json_fields_render_count_outliers_median_and_spread() {
        let s = SampleStats::of(&[0.5, 0.5]);
        assert_eq!(
            s.json_fields("sweep"),
            "\"sweep_samples\": 2, \"sweep_outliers_rejected\": 0, \"sweep_seconds\": 0.500000, \"sweep_stddev\": 0.000000"
        );
    }

    #[test]
    fn outlier_rejection_passes_through_from_the_stub() {
        let s = SampleStats::of(&[0.1, 0.11, 0.09, 0.105, 0.095, 9.0]);
        assert_eq!(s.samples, 6);
        assert_eq!(s.outliers_rejected, 1);
        assert!((s.median - 0.1).abs() < 1e-12);
    }

    #[test]
    fn memory_fields_render_per_node_ratios() {
        let cfg = sp_net::deploy::DeploymentConfig::paper_default(200);
        let net = sp_net::Network::from_positions(cfg.deploy_uniform(5), cfg.radius, cfg.area);
        let s = memory_json_fields("mem_", &net.memory_footprint());
        assert!(s.contains("\"mem_csr_bytes_per_node\": "), "{s}");
        assert!(s.contains("\"mem_total_bytes_per_node\": "), "{s}");
        assert!(s.contains("\"mem_legacy_bytes_per_node\": "), "{s}");
        // The CSR arena must undercut the per-node-Vec layout.
        let f = net.memory_footprint();
        assert!(f.adjacency_bytes_per_node() < f.legacy_adjacency_bytes_per_node());
    }

    #[test]
    fn percentiles_use_nearest_rank_on_sorted_input() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.95), 95.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn latency_stats_sort_before_ranking() {
        let mut backwards: Vec<f64> = (1..=200).rev().map(|i| i as f64 * 1e-6).collect();
        let l = LatencyStats::of(&backwards);
        assert_eq!(l.count, 200);
        assert!((l.p50 - 100e-6).abs() < 1e-12);
        assert!((l.p95 - 190e-6).abs() < 1e-12);
        assert!((l.p99 - 198e-6).abs() < 1e-12);
        backwards.clear();
        assert_eq!(LatencyStats::of(&backwards).p99, 0.0);
    }

    #[test]
    fn latency_json_fields_carry_nanosecond_resolution() {
        let l = LatencyStats::of(&[2e-6, 1e-6, 3e-6, 4e-6]);
        assert_eq!(
            l.json_fields("query"),
            "\"query_latency_count\": 4, \"query_p50_seconds\": 0.000002000, \
             \"query_p95_seconds\": 0.000004000, \"query_p99_seconds\": 0.000004000"
        );
    }

    #[test]
    fn sample_stats_times_the_routine() {
        let s = sample_stats(5, || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        assert_eq!(s.samples, 5);
        assert!(s.median >= 0.001);
    }
}
