//! Structure-of-arrays node position storage.
//!
//! Range queries and the cell-pair construction scan compare one
//! coordinate pair per candidate; storing positions as parallel
//! `xs`/`ys` slices instead of an array-of-`Point` keeps those scans
//! streaming through two dense `f64` arrays (and lets a future SIMD
//! pass vectorize the distance tests without a layout change). The
//! table is shared by `Arc` between a [`Network`](crate::Network) and
//! its [`SpatialIndex`](crate::SpatialIndex) clones, with copy-on-write
//! on the first incremental move of a shared snapshot — the same
//! sharing discipline the old `Arc<[Point]>` slice had.

use sp_geom::Point;

/// Node positions in structure-of-arrays form: `xs[i]`/`ys[i]` are the
/// coordinates of node `i`.
///
/// ```
/// use sp_net::PositionTable;
/// use sp_geom::Point;
///
/// let table = PositionTable::from_points(&[Point::new(1.0, 2.0), Point::new(3.0, 4.0)]);
/// assert_eq!(table.len(), 2);
/// assert_eq!(table.get(1), Point::new(3.0, 4.0));
/// assert_eq!(table.xs(), &[1.0, 3.0]);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PositionTable {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl PositionTable {
    /// An empty table.
    pub fn new() -> PositionTable {
        PositionTable::default()
    }

    /// An empty table with room for `n` nodes.
    pub fn with_capacity(n: usize) -> PositionTable {
        PositionTable {
            xs: Vec::with_capacity(n),
            ys: Vec::with_capacity(n),
        }
    }

    /// Splits an array-of-points into the two coordinate arrays.
    pub fn from_points(points: &[Point]) -> PositionTable {
        PositionTable {
            xs: points.iter().map(|p| p.x).collect(),
            ys: points.iter().map(|p| p.y).collect(),
        }
    }

    /// Number of positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when the table holds no positions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// The position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> Point {
        Point::new(self.xs[i], self.ys[i])
    }

    /// Overwrites the position of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, p: Point) {
        self.xs[i] = p.x;
        self.ys[i] = p.y;
    }

    /// Appends a position.
    #[inline]
    pub fn push(&mut self, p: Point) {
        self.xs.push(p.x);
        self.ys.push(p.y);
    }

    /// Clears the table, retaining capacity.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
    }

    /// Squared Euclidean distance from node `i` to `q` — the hot
    /// comparison of every range query, reading exactly two lanes.
    #[inline]
    pub fn distance_sq_to(&self, i: usize, q: Point) -> f64 {
        let dx = self.xs[i] - q.x;
        let dy = self.ys[i] - q.y;
        dx * dx + dy * dy
    }

    /// All x coordinates, by node id.
    #[inline]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// All y coordinates, by node id.
    #[inline]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Materializes the array-of-points form (allocates; prefer
    /// [`get`](Self::get) / [`xs`](Self::xs) / [`ys`](Self::ys) in hot
    /// paths).
    pub fn to_points(&self) -> Vec<Point> {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| Point::new(x, y))
            .collect()
    }

    /// A copy with node `k` placed at `order[k]`'s position — the
    /// position leg of a spatial-sort permutation.
    pub fn permuted_by(&self, order: &[crate::NodeId]) -> PositionTable {
        PositionTable {
            xs: order.iter().map(|&u| self.xs[u.index()]).collect(),
            ys: order.iter().map(|&u| self.ys[u.index()]).collect(),
        }
    }

    /// Heap bytes held by the coordinate arrays (by length, so the
    /// metric is layout-determined and stable).
    pub fn heap_bytes(&self) -> usize {
        (self.xs.len() + self.ys.len()) * std::mem::size_of::<f64>()
    }

    /// Iterates positions in id order.
    pub fn iter(&self) -> impl Iterator<Item = Point> + '_ {
        self.xs
            .iter()
            .zip(&self.ys)
            .map(|(&x, &y)| Point::new(x, y))
    }
}

impl FromIterator<Point> for PositionTable {
    fn from_iter<T: IntoIterator<Item = Point>>(iter: T) -> PositionTable {
        let mut table = PositionTable::new();
        for p in iter {
            table.push(p);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    #[test]
    fn roundtrips_points() {
        let pts = vec![Point::new(0.5, 1.5), Point::new(-2.0, 3.0)];
        let table = PositionTable::from_points(&pts);
        assert_eq!(table.to_points(), pts);
        assert_eq!(table.iter().collect::<Vec<_>>(), pts);
    }

    #[test]
    fn set_and_distance() {
        let mut table = PositionTable::from_points(&[Point::new(0.0, 0.0)]);
        table.set(0, Point::new(3.0, 4.0));
        assert_eq!(table.get(0), Point::new(3.0, 4.0));
        assert_eq!(table.distance_sq_to(0, Point::new(0.0, 0.0)), 25.0);
    }

    #[test]
    fn permutation_moves_rows() {
        let table = PositionTable::from_points(&[
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        let permuted = table.permuted_by(&[NodeId(2), NodeId(0), NodeId(1)]);
        assert_eq!(permuted.get(0), Point::new(2.0, 2.0));
        assert_eq!(permuted.get(1), Point::new(0.0, 0.0));
        assert_eq!(permuted.get(2), Point::new(1.0, 1.0));
    }

    #[test]
    fn bytes_track_length() {
        let table = PositionTable::from_points(&[Point::new(0.0, 0.0); 10]);
        assert_eq!(table.heap_bytes(), 10 * 2 * 8);
    }
}
