//! Radio energy and interference accounting.
//!
//! The paper motivates straightforward paths twice in its introduction:
//! a path that "avoids wasting energy in detours" and one where "less
//! interference occurs in other transmissions when fewer nodes are
//! involved in the transmission". This module quantifies both claims so
//! the experiment harness can report them (ablation A7 of `DESIGN.md`):
//!
//! * [`RadioModel`] — the standard first-order radio model: transmitting
//!   `k` bits over distance `d` costs `E_elec·k + ε_amp·k·d^α`, receiving
//!   them costs `E_elec·k`;
//! * [`path_energy`](RadioModel::path_energy) — total transmit+receive
//!   energy of a multi-hop path;
//! * [`interference_set`] — the nodes that overhear at least one
//!   transmission of a path (the "other transmissions" a streaming flow
//!   would disturb).

use crate::{Network, NodeId};

/// The first-order radio energy model.
///
/// Energy is reported in **nanojoules**; distances are in the same unit
/// as node coordinates (meters for the paper's setup). The default
/// constants are the ones used throughout the WSN literature
/// (Heinzelman et al.): 50 nJ/bit electronics, 100 pJ/bit/m² amplifier,
/// free-space path-loss exponent 2 — appropriate for the paper's 20 m
/// radio range, far below the multipath crossover distance.
///
/// ```
/// use sp_net::RadioModel;
///
/// let radio = RadioModel::first_order();
/// // A 1000-bit packet over a full 20 m hop.
/// let tx = radio.tx_energy(1000.0, 20.0);
/// let rx = radio.rx_energy(1000.0);
/// assert!(tx > rx, "transmission also pays the amplifier");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioModel {
    /// Electronics energy per bit, transmit and receive side alike (nJ).
    pub elec_nj_per_bit: f64,
    /// Amplifier energy per bit per meter^`alpha` (nJ).
    pub amp_nj_per_bit: f64,
    /// Path-loss exponent `α` (2 for free space).
    pub path_loss_exponent: f64,
}

impl RadioModel {
    /// The standard first-order constants: `E_elec = 50 nJ/bit`,
    /// `ε_fs = 0.1 nJ/bit/m²`, `α = 2`.
    pub fn first_order() -> RadioModel {
        RadioModel {
            elec_nj_per_bit: 50.0,
            amp_nj_per_bit: 0.1,
            path_loss_exponent: 2.0,
        }
    }

    /// Energy (nJ) to transmit `bits` over `distance`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `distance` is negative.
    pub fn tx_energy(&self, bits: f64, distance: f64) -> f64 {
        assert!(bits >= 0.0, "bit count must be non-negative");
        assert!(distance >= 0.0, "distance must be non-negative");
        self.elec_nj_per_bit * bits
            + self.amp_nj_per_bit * bits * distance.powf(self.path_loss_exponent)
    }

    /// Energy (nJ) to receive `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is negative.
    pub fn rx_energy(&self, bits: f64) -> f64 {
        assert!(bits >= 0.0, "bit count must be non-negative");
        self.elec_nj_per_bit * bits
    }

    /// Energy (nJ) of one hop: the sender transmits, the receiver
    /// receives.
    pub fn hop_energy(&self, bits: f64, distance: f64) -> f64 {
        self.tx_energy(bits, distance) + self.rx_energy(bits)
    }

    /// Total energy (nJ) to push one `bits`-sized packet along `path` in
    /// `net` (every consecutive pair is one hop). An empty or
    /// single-node path costs nothing.
    ///
    /// # Panics
    ///
    /// Panics if a path entry is out of range for `net`.
    pub fn path_energy(&self, net: &Network, path: &[NodeId], bits: f64) -> f64 {
        path.windows(2)
            .map(|w| self.hop_energy(bits, net.distance(w[0], w[1])))
            .sum()
    }
}

impl Default for RadioModel {
    fn default() -> RadioModel {
        RadioModel::first_order()
    }
}

/// The nodes that overhear at least one transmission of `path`: every
/// neighbor of a transmitting node (all path nodes except the final
/// destination), minus the path nodes themselves.
///
/// The result is sorted by id and duplicate-free.
///
/// ```
/// use sp_net::{radio::interference_set, Network, NodeId};
/// use sp_geom::{Point, Rect};
///
/// let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
/// let net = Network::from_positions(
///     vec![
///         Point::new(0.0, 0.0),   // 0: source
///         Point::new(10.0, 0.0),  // 1: destination
///         Point::new(0.0, 10.0),  // 2: bystander in range of 0
///         Point::new(40.0, 40.0), // 3: out of range of everyone
///     ],
///     15.0,
///     area,
/// );
/// let set = interference_set(&net, &[NodeId(0), NodeId(1)]);
/// assert_eq!(set, vec![NodeId(2)]);
/// ```
pub fn interference_set(net: &Network, path: &[NodeId]) -> Vec<NodeId> {
    let mut on_path = vec![false; net.len()];
    for &u in path {
        on_path[u.index()] = true;
    }
    let mut overhears = vec![false; net.len()];
    for &u in path.iter().take(path.len().saturating_sub(1)) {
        for &v in net.neighbors(u) {
            if !on_path[v.index()] {
                overhears[v.index()] = true;
            }
        }
    }
    overhears
        .iter()
        .enumerate()
        .filter(|&(_, &o)| o)
        .map(|(i, _)| NodeId::new(i))
        .collect()
}

/// Per-node battery accounting for lifetime experiments.
///
/// Every node starts with the same energy budget; forwarding a packet
/// charges the transmitter (distance-dependent) and the receiver
/// (electronics only). A node whose budget reaches zero is *depleted* —
/// the "power exhaustion" dynamic factor of the paper's §1 and the
/// energy-hole problem of its ref. \[11\].
///
/// ```
/// use sp_net::{Network, NodeId, RadioModel};
/// use sp_net::radio::EnergyLedger;
/// use sp_geom::{Point, Rect};
///
/// let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
/// let net = Network::from_positions(
///     vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(20.0, 0.0)],
///     15.0,
///     area,
/// );
/// let mut ledger = EnergyLedger::new(net.len(), 1_000_000.0, RadioModel::first_order());
/// ledger.charge_path(&net, &[NodeId(0), NodeId(1), NodeId(2)], 1024.0);
/// assert!(ledger.remaining(NodeId(1)) < 1_000_000.0); // relayed: tx + rx
/// assert!(ledger.depleted().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyLedger {
    remaining: Vec<f64>,
    initial: f64,
    radio: RadioModel,
}

impl EnergyLedger {
    /// Gives each of `n` nodes an `initial` budget (nJ).
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not strictly positive.
    pub fn new(n: usize, initial: f64, radio: RadioModel) -> EnergyLedger {
        assert!(initial > 0.0, "initial energy must be positive");
        EnergyLedger {
            remaining: vec![initial; n],
            initial,
            radio,
        }
    }

    /// Remaining budget of one node (clamped at zero).
    pub fn remaining(&self, u: NodeId) -> f64 {
        self.remaining[u.index()]
    }

    /// The initial per-node budget.
    pub fn initial(&self) -> f64 {
        self.initial
    }

    /// True when `u` has run out of energy.
    pub fn is_depleted(&self, u: NodeId) -> bool {
        self.remaining[u.index()] <= 0.0
    }

    /// Ids of depleted nodes, ascending.
    pub fn depleted(&self) -> Vec<NodeId> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e <= 0.0)
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Charges one `bits`-sized packet along `path`: every hop debits
    /// the sender's transmit energy and the receiver's receive energy.
    /// Returns the nodes that became depleted by this packet.
    pub fn charge_path(&mut self, net: &Network, path: &[NodeId], bits: f64) -> Vec<NodeId> {
        let mut newly_dead = Vec::new();
        for w in path.windows(2) {
            let (tx, rx) = (w[0], w[1]);
            let d = net.distance(tx, rx);
            for (u, cost) in [
                (tx, self.radio.tx_energy(bits, d)),
                (rx, self.radio.rx_energy(bits)),
            ] {
                let was_alive = self.remaining[u.index()] > 0.0;
                self.remaining[u.index()] -= cost;
                if was_alive && self.remaining[u.index()] <= 0.0 {
                    newly_dead.push(u);
                }
            }
        }
        newly_dead
    }

    /// Fraction of the total initial energy already spent.
    pub fn spent_fraction(&self) -> f64 {
        let total = self.initial * self.remaining.len() as f64;
        if total == 0.0 {
            return 0.0;
        }
        let left: f64 = self.remaining.iter().map(|e| e.max(0.0)).sum();
        1.0 - left / total
    }

    /// The minimum remaining budget across live nodes (`None` if all
    /// are depleted).
    pub fn weakest(&self) -> Option<(NodeId, f64)> {
        self.remaining
            .iter()
            .enumerate()
            .filter(|&(_, &e)| e > 0.0)
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &e)| (NodeId::new(i), e))
    }
}

/// `interference_set(net, path).len()` without materializing the ids.
pub fn interference_count(net: &Network, path: &[NodeId]) -> usize {
    let mut on_path = vec![false; net.len()];
    for &u in path {
        on_path[u.index()] = true;
    }
    let mut overhears = vec![false; net.len()];
    let mut count = 0usize;
    for &u in path.iter().take(path.len().saturating_sub(1)) {
        for &v in net.neighbors(u) {
            let i = v.index();
            if !on_path[i] && !overhears[i] {
                overhears[i] = true;
                count += 1;
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn line_net(n: usize, spacing: f64, radius: f64) -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(500.0, 500.0));
        Network::from_positions(
            (0..n)
                .map(|i| Point::new(spacing * i as f64, 0.0))
                .collect(),
            radius,
            area,
        )
    }

    #[test]
    fn tx_energy_grows_with_distance_and_bits() {
        let r = RadioModel::first_order();
        assert!(r.tx_energy(1000.0, 20.0) > r.tx_energy(1000.0, 10.0));
        assert!(r.tx_energy(2000.0, 10.0) > r.tx_energy(1000.0, 10.0));
        // Zero-distance transmission still pays electronics.
        assert_eq!(r.tx_energy(1000.0, 0.0), 50.0 * 1000.0);
    }

    #[test]
    fn first_order_constants_check_out() {
        let r = RadioModel::first_order();
        // 1 bit over 1 m: 50 + 0.1 = 50.1 nJ to send, 50 to receive.
        assert!((r.tx_energy(1.0, 1.0) - 50.1).abs() < 1e-12);
        assert_eq!(r.rx_energy(1.0), 50.0);
        assert!((r.hop_energy(1.0, 1.0) - 100.1).abs() < 1e-12);
        assert_eq!(RadioModel::default(), RadioModel::first_order());
    }

    #[test]
    fn path_energy_sums_hops() {
        let net = line_net(3, 10.0, 15.0);
        let r = RadioModel::first_order();
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        let want = 2.0 * r.hop_energy(1000.0, 10.0);
        assert!((r.path_energy(&net, &path, 1000.0) - want).abs() < 1e-9);
        // Degenerate paths are free.
        assert_eq!(r.path_energy(&net, &[NodeId(0)], 1000.0), 0.0);
        assert_eq!(r.path_energy(&net, &[], 1000.0), 0.0);
    }

    #[test]
    fn shorter_hops_cost_less_amplifier_but_more_electronics() {
        // The classic tradeoff: k short hops vs one long hop. With the
        // first-order model and alpha=2, two 10 m hops pay twice the
        // electronics but a quarter of the amplifier per hop.
        let r = RadioModel::first_order();
        let one_long = r.hop_energy(1000.0, 20.0);
        let net = line_net(3, 10.0, 25.0);
        let two_short = r.path_energy(&net, &[NodeId(0), NodeId(1), NodeId(2)], 1000.0);
        // Electronics dominate at these distances: the detour is *more*
        // expensive, which is exactly the paper's "energy wasted in
        // detours" argument (more hops = more energy).
        assert!(two_short > one_long);
    }

    #[test]
    fn interference_excludes_path_and_counts_overhearers_once() {
        // 0 - 1 - 2 chain with bystanders 3 (hears 0 and 1) and 4 (hears
        // nothing).
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let net = Network::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(20.0, 0.0),
                Point::new(5.0, 8.0),
                Point::new(90.0, 90.0),
            ],
            14.0,
            area,
        );
        let path = [NodeId(0), NodeId(1), NodeId(2)];
        let set = interference_set(&net, &path);
        assert_eq!(set, vec![NodeId(3)]);
        assert_eq!(interference_count(&net, &path), 1);
    }

    #[test]
    fn destination_is_not_a_transmitter() {
        // Node 3 only hears the destination (node 1), which never
        // transmits: it must not be counted.
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let net = Network::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(18.0, 8.0), // hears only node 1
            ],
            12.0,
            area,
        );
        assert!(net.has_edge(NodeId(1), NodeId(2)));
        assert!(!net.has_edge(NodeId(0), NodeId(2)));
        let set = interference_set(&net, &[NodeId(0), NodeId(1)]);
        assert!(set.is_empty(), "{set:?}");
    }

    #[test]
    fn empty_path_interferes_with_nobody() {
        let net = line_net(4, 10.0, 15.0);
        assert!(interference_set(&net, &[]).is_empty());
        assert_eq!(interference_count(&net, &[]), 0);
    }

    #[test]
    fn set_and_count_agree_on_random_paths() {
        let cfg = crate::DeploymentConfig::paper_default(200);
        let net = Network::from_positions(cfg.deploy_uniform(5), cfg.radius, cfg.area);
        let comp = net.largest_component();
        // A shortest path across the component.
        let (path, _) = net
            .shortest_path(comp[0], comp[comp.len() - 1])
            .expect("same component");
        assert_eq!(
            interference_set(&net, &path).len(),
            interference_count(&net, &path)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_bits_panic() {
        let _ = RadioModel::first_order().tx_energy(-1.0, 5.0);
    }

    #[test]
    fn ledger_charges_relays_twice() {
        let net = line_net(3, 10.0, 15.0);
        let radio = RadioModel::first_order();
        let mut ledger = EnergyLedger::new(3, 1_000_000.0, radio);
        ledger.charge_path(&net, &[NodeId(0), NodeId(1), NodeId(2)], 1000.0);
        let spent0 = 1_000_000.0 - ledger.remaining(NodeId(0));
        let spent1 = 1_000_000.0 - ledger.remaining(NodeId(1));
        let spent2 = 1_000_000.0 - ledger.remaining(NodeId(2));
        assert!((spent0 - radio.tx_energy(1000.0, 10.0)).abs() < 1e-9);
        assert!((spent1 - (radio.rx_energy(1000.0) + radio.tx_energy(1000.0, 10.0))).abs() < 1e-9);
        assert!((spent2 - radio.rx_energy(1000.0)).abs() < 1e-9);
        assert!(spent1 > spent0 && spent1 > spent2, "the relay pays most");
    }

    #[test]
    fn ledger_reports_depletion_once() {
        let net = line_net(2, 10.0, 15.0);
        // Budget between two receptions (2 x 50 000 nJ) and two
        // transmissions (2 x 60 000 nJ): the sender dies on the second
        // packet, the receiver survives it.
        let budget = 110_000.0;
        let mut ledger = EnergyLedger::new(2, budget, RadioModel::first_order());
        let first = ledger.charge_path(&net, &[NodeId(0), NodeId(1)], 1000.0);
        assert!(first.is_empty(), "one packet fits the budget");
        let second = ledger.charge_path(&net, &[NodeId(0), NodeId(1)], 1000.0);
        assert_eq!(second, vec![NodeId(0)], "the sender dies second packet");
        assert!(ledger.is_depleted(NodeId(0)));
        assert!(!ledger.is_depleted(NodeId(1)), "receiving is cheaper");
        let third = ledger.charge_path(&net, &[NodeId(0), NodeId(1)], 1000.0);
        assert_eq!(
            third,
            vec![NodeId(1)],
            "receiver dies on the third packet; the dead sender is not re-reported"
        );
        assert_eq!(ledger.depleted(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn ledger_spent_fraction_and_weakest() {
        let net = line_net(3, 10.0, 15.0);
        let mut ledger = EnergyLedger::new(3, 1_000_000.0, RadioModel::first_order());
        assert_eq!(ledger.spent_fraction(), 0.0);
        assert_eq!(ledger.initial(), 1_000_000.0);
        ledger.charge_path(&net, &[NodeId(0), NodeId(1), NodeId(2)], 1000.0);
        assert!(ledger.spent_fraction() > 0.0);
        let (weakest, _) = ledger.weakest().unwrap();
        assert_eq!(weakest, NodeId(1), "the relay is weakest");
    }

    #[test]
    #[should_panic(expected = "initial energy")]
    fn zero_budget_rejected() {
        let _ = EnergyLedger::new(2, 0.0, RadioModel::first_order());
    }
}
