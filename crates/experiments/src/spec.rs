//! The spec-string front end: one line of text → a resolved sweep.
//!
//! A spec is a `;`-separated list of `key=value` clauses:
//!
//! ```text
//! scenario=corridor;nodes=400..800:50;nets=100;schemes=PAPER+SLGF2-noBP
//! ```
//!
//! | key        | value                                            | default |
//! |------------|--------------------------------------------------|---------|
//! | `scenario` | a registered scenario name (`IA`, `FA`, …) or a weighted blend `IA:0.7+clustered:0.3` | `IA`    |
//! | `nodes`    | `lo..hi:step` (inclusive), a comma list, or one value | the paper's `400..800:50` |
//! | `nets`     | networks per node count                          | `100`   |
//! | `pairs`    | source/destination pairs per network             | `1`     |
//! | `flows`    | concurrent flows per network, routed as one batched `TrafficEngine` pass per scheme (supersedes `pairs`) | unset |
//! | `seed`     | base seed (decimal or `0x…`)                     | the paper sweeps' seed |
//! | `schemes`  | `+`-separated scheme names; `PAPER`, `EXTENDED`, and `ALL` expand to the corresponding sets | `PAPER` |
//! | `chaos`    | a `+`-joined [`ChaosRecipe`], e.g. `region:r=0.15@round5+drop:p=0.01` | none |
//! | `mobility` | a [`MobilityRecipe`], e.g. `waypoint:speed=2`    | none    |
//!
//! Scenario, scheme, chaos-class, and mobility-model names all resolve
//! through the **open registries**, so anything registered at runtime is
//! immediately addressable from a spec with no parser changes. A
//! scenario **blend** like `IA:0.7+clustered:0.3` deploys each
//! component's weighted share of the nodes into the same area and is
//! registered under the blend string itself, so the blend becomes an
//! ordinary named scenario on first use.

use crate::{run_sweep, ChaosRecipe, MobilityRecipe, Scenario, Scheme, SweepConfig, SweepResults};

/// A parse or resolution failure, with the offending clause quoted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A fully resolved sweep: the configuration plus the scheme set, ready
/// for [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The sweep configuration (scenario resolved to a registry handle).
    pub config: SweepConfig,
    /// The schemes to route, in spec order.
    pub schemes: Vec<Scheme>,
}

impl SweepSpec {
    /// Parses a spec string, resolving scenario and scheme names
    /// through their registries.
    pub fn parse(spec: &str) -> Result<SweepSpec, SpecError> {
        let mut config = SweepConfig::paper_ia();
        let mut schemes: Vec<Scheme> = Scheme::PAPER_SET.to_vec();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| SpecError(format!("clause {clause:?} is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "scenario" => config.deployment = parse_scenario(value)?,
                "nodes" => config.node_counts = parse_nodes(value)?,
                "nets" => config.networks_per_point = parse_count(key, value)?,
                "pairs" => config.pairs_per_network = parse_count(key, value)?,
                "flows" => config.flows_per_network = parse_count(key, value)?,
                "seed" => {
                    config.base_seed = parse_u64(value)
                        .ok_or_else(|| SpecError(format!("seed {value:?} is not a number")))?;
                }
                "schemes" => schemes = parse_schemes(value)?,
                "chaos" => config.chaos = Some(ChaosRecipe::parse(value).map_err(SpecError)?),
                "mobility" => {
                    config.mobility = Some(MobilityRecipe::parse(value).map_err(SpecError)?);
                }
                other => {
                    return Err(SpecError(format!(
                    "unknown key {other:?} (expected scenario/nodes/nets/pairs/flows/seed/schemes/chaos/mobility)"
                )))
                }
            }
        }
        if config.node_counts.is_empty() {
            return Err(SpecError("nodes resolved to an empty list".to_owned()));
        }
        Ok(SweepSpec { config, schemes })
    }

    /// Runs the resolved sweep.
    pub fn run(&self) -> SweepResults {
        run_sweep(&self.config, &self.schemes)
    }
}

/// A scenario name, or a weighted blend `IA:0.7+clustered:0.3`.
///
/// A blend deploys each component's weighted share of the node count
/// into the same area (weights normalised, shares rounded so they sum
/// exactly to the count) and registers the synthesised generator under
/// the blend string itself — so the first parse mints a scenario and
/// every later parse resolves it by name like any other.
fn parse_scenario(value: &str) -> Result<Scenario, SpecError> {
    if let Some(s) = Scenario::by_name(value) {
        return Ok(s);
    }
    if !value.contains('+') {
        return Err(SpecError(format!(
            "unknown scenario {value:?} (registered: {})",
            crate::ScenarioRegistry::names().join(", ")
        )));
    }
    let mut parts: Vec<(Scenario, f64)> = Vec::new();
    for tok in value.split('+') {
        let tok = tok.trim();
        let (name, weight) = tok.split_once(':').ok_or_else(|| {
            SpecError(format!(
                "scenario blend {value:?}: {tok:?} is not name:weight"
            ))
        })?;
        let scenario = Scenario::by_name(name.trim()).ok_or_else(|| {
            SpecError(format!(
                "unknown scenario {name:?} (registered: {})",
                crate::ScenarioRegistry::names().join(", ")
            ))
        })?;
        let weight: f64 = weight
            .trim()
            .parse()
            .ok()
            .filter(|w: &f64| w.is_finite() && *w > 0.0)
            .ok_or_else(|| {
                SpecError(format!(
                    "scenario blend {value:?}: weight {weight:?} is not a positive number"
                ))
            })?;
        parts.push((scenario, weight));
    }
    let total: f64 = parts.iter().map(|&(_, w)| w).sum();
    for (_, w) in &mut parts {
        *w /= total;
    }
    let blend = parts.clone();
    let generate = move |cfg: &sp_net::deploy::DeploymentConfig, seed: u64| {
        let n = cfg.node_count;
        let mut out = Vec::with_capacity(n);
        // Cumulative rounding: shares sum exactly to n, each within one
        // node of its weighted target.
        let (mut cum, mut taken) = (0.0f64, 0usize);
        for (i, &(scenario, w)) in blend.iter().enumerate() {
            cum += w;
            let target = if i + 1 == blend.len() {
                n
            } else {
                (cum * n as f64).round() as usize
            };
            let share = target.saturating_sub(taken);
            taken = target.max(taken);
            if share == 0 {
                continue;
            }
            let sub = sp_net::deploy::DeploymentConfig {
                node_count: share,
                ..*cfg
            };
            let salt = (i as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            out.extend(scenario.deploy(&sub, seed ^ salt));
        }
        out
    };
    // First parse mints the scenario; a concurrent parse of the same
    // blend loses the registration race and resolves by name instead.
    Scenario::try_register(value, generate)
        .or_else(|_| {
            Scenario::by_name(value).ok_or_else(|| "blend registration collided".to_owned())
        })
        .map_err(SpecError)
}

/// `lo..hi:step` (both ends inclusive), a comma list, or one value.
fn parse_nodes(value: &str) -> Result<Vec<usize>, SpecError> {
    if let Some((range, step)) = value.split_once(':') {
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| SpecError(format!("nodes {value:?}: expected lo..hi:step")))?;
        let lo = parse_usize(lo)
            .filter(|&n| n > 0)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: bad lower bound")))?;
        let hi = parse_usize(hi)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: bad upper bound")))?;
        let step = parse_usize(step)
            .filter(|&s| s > 0)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: step must be a positive number")))?;
        if lo > hi {
            return Err(SpecError(format!("nodes {value:?}: empty range")));
        }
        return Ok((lo..=hi).step_by(step).collect());
    }
    if value.contains("..") {
        return Err(SpecError(format!(
            "nodes {value:?}: a range needs a step, e.g. 400..800:50"
        )));
    }
    value
        .split(',')
        .map(|tok| {
            parse_usize(tok)
                .filter(|&n| n > 0)
                .ok_or_else(|| SpecError(format!("nodes {value:?}: bad count {tok:?}")))
        })
        .collect()
}

/// `+`-separated scheme names with the `PAPER`/`EXTENDED`/`ALL` macros.
fn parse_schemes(value: &str) -> Result<Vec<Scheme>, SpecError> {
    let mut out = Vec::new();
    for tok in value.split('+') {
        let tok = tok.trim();
        match tok {
            "" => return Err(SpecError(format!("schemes {value:?}: empty name"))),
            "PAPER" => out.extend(Scheme::PAPER_SET),
            "EXTENDED" => out.extend(Scheme::EXTENDED_SET),
            "ALL" => out.extend(Scheme::all()),
            name => out.push(Scheme::by_name(name).ok_or_else(|| {
                SpecError(format!(
                    "unknown scheme {name:?} (registered: {})",
                    crate::SchemeRegistry::names().join(", ")
                ))
            })?),
        }
    }
    // Membership dedup (macros overlap, e.g. PAPER+SLGF2): a repeated
    // scheme would be routed twice and plotted as two identical curves.
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|s| seen.insert(*s));
    Ok(out)
}

fn parse_count(key: &str, value: &str) -> Result<usize, SpecError> {
    parse_usize(value)
        .filter(|&n| n > 0)
        .ok_or_else(|| SpecError(format!("{key} {value:?} is not a positive number")))
}

fn parse_usize(tok: &str) -> Option<usize> {
    tok.trim().parse().ok()
}

fn parse_u64(tok: &str) -> Option<u64> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        tok.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_ia_sweep() {
        let spec = SweepSpec::parse("").unwrap();
        assert_eq!(spec.config, SweepConfig::paper_ia());
        assert_eq!(spec.schemes, Scheme::PAPER_SET.to_vec());
    }

    #[test]
    fn full_spec_resolves_every_clause() {
        let spec = SweepSpec::parse(
            "scenario=corridor;nodes=400..800:50;nets=12;pairs=2;seed=0xabc;schemes=PAPER+SLGF2-noBP",
        )
        .unwrap();
        assert_eq!(spec.config.deployment, Scenario::Corridor);
        assert_eq!(
            spec.config.node_counts,
            vec![400, 450, 500, 550, 600, 650, 700, 750, 800]
        );
        assert_eq!(spec.config.networks_per_point, 12);
        assert_eq!(spec.config.pairs_per_network, 2);
        assert_eq!(spec.config.base_seed, 0xabc);
        let mut want = Scheme::PAPER_SET.to_vec();
        want.push(Scheme::Slgf2NoBackup);
        assert_eq!(spec.schemes, want);
    }

    #[test]
    fn node_lists_and_single_values_parse() {
        assert_eq!(
            SweepSpec::parse("nodes=400,600")
                .unwrap()
                .config
                .node_counts,
            vec![400, 600]
        );
        assert_eq!(
            SweepSpec::parse("nodes=500").unwrap().config.node_counts,
            vec![500]
        );
        // The range end is inclusive, mirroring the paper's 400..=800.
        assert_eq!(
            SweepSpec::parse("nodes=400..500:50")
                .unwrap()
                .config
                .node_counts,
            vec![400, 450, 500]
        );
    }

    #[test]
    fn flows_clause_enables_batched_workloads() {
        let spec = SweepSpec::parse("flows=64").unwrap();
        assert_eq!(spec.config.flows_per_network, 64);
        assert_eq!(spec.config.flow_count(), 64);
        // Unset flows fall back to the per-pair setup.
        let spec = SweepSpec::parse("pairs=3").unwrap();
        assert_eq!(spec.config.flows_per_network, 0);
        assert_eq!(spec.config.flow_count(), 3);
        assert!(SweepSpec::parse("flows=0").is_err());
    }

    #[test]
    fn flows_spec_runs_a_batched_sweep() {
        let spec = SweepSpec::parse("scenario=IA;nodes=400;nets=2;flows=12;schemes=SLGF2").unwrap();
        let results = spec.run();
        // Every instance routes the whole 12-flow batch.
        assert_eq!(results.points[0].schemes[0].total, 24);
    }

    #[test]
    fn scheme_macros_expand() {
        let all = SweepSpec::parse("schemes=ALL").unwrap().schemes;
        assert_eq!(all, Scheme::all());
        let ext = SweepSpec::parse("schemes=EXTENDED").unwrap().schemes;
        assert_eq!(ext, Scheme::EXTENDED_SET.to_vec());
        // Duplicates collapse even when non-adjacent (macro overlap):
        // a repeat would be routed twice and plotted as twin curves.
        let dedup = SweepSpec::parse("schemes=SLGF2+PAPER+GFG+GFG")
            .unwrap()
            .schemes;
        assert_eq!(
            dedup,
            vec![
                Scheme::Slgf2,
                Scheme::Gf,
                Scheme::Lgf,
                Scheme::Slgf,
                Scheme::Gfg
            ]
        );
    }

    #[test]
    fn errors_name_the_offending_clause() {
        for (spec, needle) in [
            ("scenario=nowhere", "unknown scenario"),
            ("schemes=NOPE", "unknown scheme"),
            ("nodes=", "bad count"),
            ("nodes=0", "bad count"),
            ("nodes=0..100:100", "bad lower bound"),
            ("nodes=400..300:50", "empty range"),
            ("nodes=400..800", "needs a step"),
            ("nodes=400..800:0", "step must be"),
            ("nets=0", "positive number"),
            ("seed=zebra", "not a number"),
            ("bogus=1", "unknown key"),
            ("scenario", "not key=value"),
            ("scenario=IA:0.7+nowhere:0.3", "unknown scenario"),
            ("scenario=IA:0.7+clustered", "not name:weight"),
            ("scenario=IA:0+clustered:1", "not a positive number"),
            ("chaos=meteor", "unknown chaos class"),
            ("chaos=drop:p", "not k=v"),
            ("mobility=teleport", "unknown mobility model"),
            ("mobility=waypoint:speed=x", "not a number"),
        ] {
            let err = SweepSpec::parse(spec).expect_err(spec);
            assert!(err.to_string().contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn chaos_and_mobility_clauses_resolve_through_their_registries() {
        let spec =
            SweepSpec::parse("chaos=region:r=0.15@round5+drop:p=0.01;mobility=waypoint:speed=2")
                .unwrap();
        let chaos = spec.config.chaos.expect("chaos clause parsed");
        assert_eq!(chaos.spec_string(), "region:r=0.15@round5+drop:p=0.01");
        let mobility = spec.config.mobility.expect("mobility clause parsed");
        assert_eq!(mobility.spec_string(), "waypoint:speed=2");
        // Unset keys stay pristine — the rate-0 bit-identity baseline.
        let plain = SweepSpec::parse("").unwrap();
        assert_eq!(plain.config.chaos, None);
        assert_eq!(plain.config.mobility, None);
    }

    #[test]
    fn scenario_blends_mint_a_named_scenario() {
        let spec = SweepSpec::parse("scenario=IA:0.7+clustered:0.3;nodes=400").unwrap();
        let blend = spec.config.deployment;
        assert_eq!(blend.name(), "IA:0.7+clustered:0.3");
        // Re-parsing resolves the already-minted scenario by name.
        let again = SweepSpec::parse("scenario=IA:0.7+clustered:0.3").unwrap();
        assert_eq!(again.config.deployment, blend);
        // Shares sum exactly to the node count and replay per seed.
        let cfg = spec.config.deployment_config(401);
        let pts = blend.deploy(&cfg, 7);
        assert_eq!(pts.len(), 401);
        assert_eq!(pts, blend.deploy(&cfg, 7));
        for p in &pts {
            assert!(cfg.area.contains(*p), "{p} escaped the area");
        }
        // The uniform 70% share makes the blend differ from pure
        // clustering, and the clustered 30% from pure uniform.
        assert_ne!(pts, Scenario::Ia.deploy(&cfg, 7));
        assert_ne!(pts, Scenario::Clustered.deploy(&cfg, 7));
    }

    #[test]
    fn spec_runs_through_the_registries_end_to_end() {
        let spec = SweepSpec::parse("scenario=clustered;nodes=400;nets=2;schemes=SLGF2").unwrap();
        let results = spec.run();
        assert_eq!(results.deployment_tag, "clustered");
        assert_eq!(results.points.len(), 1);
        assert_eq!(results.points[0].schemes[0].total, 2);
    }
}
