//! Figure assembly: from sweep results to the paper's curves.
//!
//! Fig. 5 reports the **maximum** number of hops over the sampled
//! networks, Fig. 6 the **average** hops, Fig. 7 the **average path
//! length**; each figure has an IA panel (a) and an FA panel (b). The
//! ablation figures (A1–A6 of `DESIGN.md`) extend the evaluation.

use crate::{ChaosRecipe, PreparedNetwork, Scenario, Scheme, SweepConfig, SweepResults};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, RngExt, SeedableRng};
use sp_core::{construct_distributed, Routing, SafetyInfo, Slgf2Router};
use sp_metrics::{Figure, Series};
use sp_net::Network;

/// Which aggregate of a sweep a figure plots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Fig. 5: maximum hops over delivered routes.
    MaxHops,
    /// Fig. 6: mean hops over delivered routes.
    MeanHops,
    /// Fig. 7: mean Euclidean path length (meters).
    MeanLength,
    /// A2: delivered / attempted.
    DeliveryRatio,
    /// A5: mean perimeter-phase entries per route.
    PerimeterEntries,
    /// Extra: mean backup-phase entries per route (SLGF2 family).
    BackupEntries,
    /// A7: mean first-order radio energy per packet (µJ).
    MeanEnergy,
    /// A7: mean number of nodes overhearing the path.
    MeanInterference,
    /// A11: mean hops over the BFS minimum.
    MeanHopStretch,
    /// A11: mean length over the Dijkstra shortest path.
    MeanLengthStretch,
}

impl Metric {
    /// Y-axis label.
    pub fn y_label(&self) -> &'static str {
        match self {
            Metric::MaxHops | Metric::MeanHops => "hops",
            Metric::MeanLength => "meters",
            Metric::DeliveryRatio => "delivery ratio",
            Metric::PerimeterEntries | Metric::BackupEntries => "entries/route",
            Metric::MeanEnergy => "µJ/packet",
            Metric::MeanInterference => "overhearing nodes",
            Metric::MeanHopStretch | Metric::MeanLengthStretch => "stretch (walked/optimal)",
        }
    }
}

/// Builds one figure from sweep results.
pub fn figure_from_sweep(results: &SweepResults, metric: Metric, title: &str) -> Figure {
    let mut fig = Figure::new(title, "nodes", metric.y_label());
    // Scheme names were resolved once by the sweep runner and ride on
    // the aggregates — no registry lookups during figure assembly.
    let schemes: Vec<(Scheme, std::sync::Arc<str>)> = results
        .points
        .first()
        .map(|p| {
            p.schemes
                .iter()
                .map(|s| (s.scheme, s.scheme_name.clone()))
                .collect()
        })
        .unwrap_or_default();
    for (scheme, name) in schemes {
        let mut series = Series::new(name.as_ref());
        for point in &results.points {
            let Some(sp) = point.scheme(scheme) else {
                continue;
            };
            let y = match metric {
                Metric::MaxHops => sp.hops_summary().max,
                Metric::MeanHops => sp.hops_summary().mean,
                Metric::MeanLength => sp.length_summary().mean,
                Metric::DeliveryRatio => sp.delivery_ratio(),
                Metric::PerimeterEntries => sp.mean_perimeter_entries(),
                Metric::BackupEntries => sp.mean_backup_entries(),
                Metric::MeanEnergy => sp.energy_summary().mean,
                Metric::MeanInterference => sp.interference_summary().mean,
                Metric::MeanHopStretch => sp.hop_stretch_summary().mean,
                Metric::MeanLengthStretch => sp.length_stretch_summary().mean,
            };
            series.push(point.node_count as f64, y);
        }
        fig.push_series(series);
    }
    fig
}

/// Fig. 5 (panel by deployment tag): maximum hops.
pub fn fig5(results: &SweepResults) -> Figure {
    let panel = if results.deployment_tag == "IA" {
        "a"
    } else {
        "b"
    };
    figure_from_sweep(
        results,
        Metric::MaxHops,
        &format!(
            "Fig. 5({panel}) maximum hops ({} model)",
            results.deployment_tag
        ),
    )
}

/// Fig. 6: average hops.
pub fn fig6(results: &SweepResults) -> Figure {
    let panel = if results.deployment_tag == "IA" {
        "a"
    } else {
        "b"
    };
    figure_from_sweep(
        results,
        Metric::MeanHops,
        &format!(
            "Fig. 6({panel}) average hops ({} model)",
            results.deployment_tag
        ),
    )
}

/// Fig. 7: average path length.
pub fn fig7(results: &SweepResults) -> Figure {
    let panel = if results.deployment_tag == "IA" {
        "a"
    } else {
        "b"
    };
    figure_from_sweep(
        results,
        Metric::MeanLength,
        &format!(
            "Fig. 7({panel}) average path length ({} model)",
            results.deployment_tag
        ),
    )
}

/// A2: delivery ratio per scheme.
pub fn delivery_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::DeliveryRatio,
        &format!("A2 delivery ratio ({} model)", results.deployment_tag),
    )
}

/// A5: perimeter-phase entries per scheme.
pub fn perimeter_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::PerimeterEntries,
        &format!(
            "A5 perimeter entries per route ({} model)",
            results.deployment_tag
        ),
    )
}

/// A7: per-packet radio energy (first-order model) — the paper's
/// "avoids wasting energy in detours" claim, quantified.
pub fn energy_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::MeanEnergy,
        &format!("A7 packet energy ({} model)", results.deployment_tag),
    )
}

/// A7: path interference — the paper's "less interference … when fewer
/// nodes are involved" claim, quantified as the mean number of
/// overhearing nodes.
pub fn interference_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::MeanInterference,
        &format!("A7 path interference ({} model)", results.deployment_tag),
    )
}

/// A11: path stretch against the ideal routing path — walked hops over
/// the BFS minimum, on delivered routes. The closer to 1, the more
/// "straightforward" the path, which is the paper's titular claim.
pub fn hop_stretch_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::MeanHopStretch,
        &format!("A11 hop stretch ({} model)", results.deployment_tag),
    )
}

/// A11: length stretch against the Dijkstra shortest path (Fig. 1(a)'s
/// "ideal routing path").
pub fn length_stretch_figure(results: &SweepResults) -> Figure {
    figure_from_sweep(
        results,
        Metric::MeanLengthStretch,
        &format!("A11 length stretch ({} model)", results.deployment_tag),
    )
}

/// A13: information staleness under node mobility. Safety information
/// is constructed once at `t = 0`; nodes then move by random waypoint
/// (speeds in meters per time unit) and SLGF2 routes on topology
/// snapshots with the **stale** information, against rebuilding it at
/// every snapshot, with always-fresh GFG as the information-free
/// reference. The x-axis is elapsed time (`sample_times` must be
/// ascending: each instance advances one walker through them and takes
/// incremental topology snapshots).
pub fn mobility_staleness_figure(
    node_count: usize,
    instances: usize,
    pairs_per_snapshot: usize,
    sample_times: &[f64],
    speed: (f64, f64),
) -> Vec<Figure> {
    use sp_baselines::GfgRouter;
    let suffix = format!(
        "(IA model, n={node_count}, v={:.1}-{:.1} m/u)",
        speed.0, speed.1
    );
    let mut delivery_fig = Figure::new(
        format!("A13 SLGF2 delivery under mobility {suffix}"),
        "elapsed time (units)",
        "delivery ratio",
    );
    let mut hops_fig = Figure::new(
        format!("A13 SLGF2 hops under mobility {suffix}"),
        "elapsed time (units)",
        "hops",
    );
    let labels = ["SLGF2 stale info", "SLGF2 rebuilt info", "GFG (no info)"];
    let mut delivery: Vec<Series> = labels.iter().map(|&l| Series::new(l)).collect();
    let mut hops: Vec<Series> = labels.iter().map(|&l| Series::new(l)).collect();
    let dc = sp_net::deploy::DeploymentConfig::paper_default(node_count);
    // Each instance walks *one* trajectory through the ascending sample
    // times, taking incremental snapshots along the way — only the nodes
    // that moved since the previous sample are re-bucketed and re-wired
    // (RandomWaypoint::snapshot_incremental), not the whole topology.
    let mut ok = vec![[0usize; 3]; sample_times.len()];
    let mut hop_sum = vec![[0usize; 3]; sample_times.len()];
    let mut total = vec![0usize; sample_times.len()];
    for k in 0..instances {
        let seed = 0xa13_000 + k as u64;
        let start = dc.deploy_uniform(seed);
        let net0 = Network::from_positions(start.clone(), dc.radius, dc.area);
        let info0 = SafetyInfo::build(&net0);
        let mut rw =
            sp_net::RandomWaypoint::new(start, dc.area, dc.radius, speed.0, speed.1, 0.0, seed);
        let mut prev_t = 0.0;
        for (ti, &t) in sample_times.iter().enumerate() {
            assert!(
                t >= prev_t,
                "sample times must be ascending (got {t} after {prev_t})"
            );
            rw.step(t - prev_t);
            prev_t = t;
            let snapshot = rw.snapshot_incremental();
            let fresh_info = SafetyInfo::build(snapshot);
            let gfg = GfgRouter::new(snapshot);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x517e);
            for _ in 0..pairs_per_snapshot {
                let Some((s, d)) = crate::random_connected_pair(snapshot, &mut rng) else {
                    continue;
                };
                total[ti] += 1;
                let runs = [
                    Slgf2Router::new(&info0).route(snapshot, s, d),
                    Slgf2Router::new(&fresh_info).route(snapshot, s, d),
                    gfg.route(snapshot, s, d),
                ];
                for (j, r) in runs.iter().enumerate() {
                    if r.delivered() {
                        ok[ti][j] += 1;
                        hop_sum[ti][j] += r.hops();
                    }
                }
            }
        }
    }
    for (ti, &t) in sample_times.iter().enumerate() {
        if total[ti] > 0 {
            for j in 0..3 {
                delivery[j].push(t, ok[ti][j] as f64 / total[ti] as f64);
                if ok[ti][j] > 0 {
                    hops[j].push(t, hop_sum[ti][j] as f64 / ok[ti][j] as f64);
                }
            }
        }
    }
    for s in delivery {
        delivery_fig.push_series(s);
    }
    for s in hops {
        hops_fig.push_series(s);
    }
    vec![delivery_fig, hops_fig]
}

/// A14: accuracy of the Algorithm-2 two-chain shape estimate against
/// the exact greedy-region bounding box (the §6 "more accurate
/// information" oracle): the fraction of (node, type) shapes that
/// coincide exactly, the mean area ratio, and the SLGF2 mean hops under
/// each information variant.
pub fn estimate_accuracy_figure(cfg: &SweepConfig, instances: usize) -> Figure {
    use sp_core::{SafetyMap, ShapeMap};
    use sp_geom::Quadrant;
    let mut fig = Figure::new(
        format!(
            "A14 shape-estimate accuracy ({} model)",
            cfg.deployment.tag()
        ),
        "nodes",
        "fraction / ratio / hops",
    );
    let mut exact_frac = Series::new("exact-match fraction");
    let mut area_ratio = Series::new("area ratio (estimate/exact)");
    let mut hops_est = Series::new("SLGF2 hops (estimate)");
    let mut hops_exact = Series::new("SLGF2 hops (exact)");
    for (i, &n) in cfg.node_counts.iter().enumerate() {
        let dc = cfg.deployment_config(n);
        let mut fracs = Vec::new();
        let mut ratios = Vec::new();
        let mut he = Vec::new();
        let mut hx = Vec::new();
        for k in 0..instances {
            let seed = cfg.instance_seed(i, k);
            let positions = cfg.deployment.deploy(&dc, seed);
            let net = Network::from_positions(positions, dc.radius, dc.area);
            let safety = SafetyMap::label(&net);
            let est = ShapeMap::build(&net, &safety);
            let exact = ShapeMap::build_exact(&net, &safety);
            let mut total = 0usize;
            let mut equal = 0usize;
            for u in net.node_ids() {
                for q in Quadrant::ALL {
                    if let (Some(a), Some(b)) = (est.estimate(u, q), exact.estimate(u, q)) {
                        total += 1;
                        if a.rect == b.rect {
                            equal += 1;
                        } else if b.rect.area() > 0.0 {
                            ratios.push(a.rect.area() / b.rect.area());
                        }
                    }
                }
            }
            if total > 0 {
                fracs.push(equal as f64 / total as f64);
            }
            // Route a few pairs under each information variant.
            let info_est =
                SafetyInfo::from_parts(SafetyMap::label(&net), ShapeMap::build(&net, &safety));
            let info_exact = SafetyInfo::from_parts(
                SafetyMap::label(&net),
                ShapeMap::build_exact(&net, &safety),
            );
            let mut rng = StdRng::seed_from_u64(seed ^ 0xa14);
            for _ in 0..4 {
                let Some((s, d)) = crate::random_connected_pair(&net, &mut rng) else {
                    continue;
                };
                let re = Slgf2Router::new(&info_est).route(&net, s, d);
                let rx = Slgf2Router::new(&info_exact).route(&net, s, d);
                if re.delivered() && rx.delivered() {
                    he.push(re.hops() as f64);
                    hx.push(rx.hops() as f64);
                }
            }
        }
        exact_frac.push(n as f64, sp_metrics::Summary::of(&fracs).mean);
        if !ratios.is_empty() {
            area_ratio.push(n as f64, sp_metrics::Summary::of(&ratios).mean);
        }
        hops_est.push(n as f64, sp_metrics::Summary::of(&he).mean);
        hops_exact.push(n as f64, sp_metrics::Summary::of(&hx).mean);
    }
    fig.push_series(exact_frac);
    fig.push_series(area_ratio);
    fig.push_series(hops_est);
    fig.push_series(hops_exact);
    fig
}

/// A10: synchronous vs asynchronous construction cost — transmissions
/// per node until quiescence under lock-step rounds and under
/// per-message random delays (the §3 "easily extended to an
/// asynchronous system" claim, priced).
pub fn async_cost_figure(cfg: &SweepConfig, instances: usize) -> Figure {
    let mut fig = Figure::new(
        format!(
            "A10 sync vs async construction cost ({} model)",
            cfg.deployment.tag()
        ),
        "nodes",
        "transmissions/node",
    );
    let mut sync_series = Series::new("synchronous tx/node");
    let mut async_series = Series::new("asynchronous tx/node");
    for (i, &n) in cfg.node_counts.iter().enumerate() {
        let dc = cfg.deployment_config(n);
        let mut sync_tx = Vec::new();
        let mut async_tx = Vec::new();
        for k in 0..instances {
            let seed = cfg.instance_seed(i, k);
            let positions = cfg.deployment.deploy(&dc, seed);
            let net = Network::from_positions(positions, dc.radius, dc.area);
            let sync_run = construct_distributed(&net).expect("labeling quiesces"); // sp-analyze: allow(panic, Algorithm 2 quiesces on every finite deployment)
            sync_tx.push(sync_run.stats.transmissions() as f64 / net.len() as f64);
            let async_run = sp_core::construct_async(&net, seed).expect("async labeling quiesces"); // sp-analyze: allow(panic, Algorithm 2 quiesces on every finite deployment)
            async_tx.push(async_run.stats.transmissions() as f64 / net.len() as f64);
        }
        sync_series.push(n as f64, sp_metrics::Summary::of(&sync_tx).mean);
        async_series.push(n as f64, sp_metrics::Summary::of(&async_tx).mean);
    }
    fig.push_series(sync_series);
    fig.push_series(async_series);
    fig
}

/// A9: incremental repair cost of the safety information per node
/// failure, against the cost of a full rebuild (node recomputations of
/// the Definition-1 sweep). Each instance kills `kills` random non-hull
/// nodes one at a time.
pub fn maintenance_cost_figure(
    scenario: Scenario,
    node_counts: &[usize],
    instances: usize,
    kills: usize,
) -> Figure {
    let mut fig = Figure::new(
        format!(
            "A9 incremental repair vs rebuild ({} model)",
            scenario.tag()
        ),
        "nodes",
        "node recomputations per failure",
    );
    let mut incremental = Series::new("incremental repair");
    let mut rebuild = Series::new("full rebuild");
    for (i, &n) in node_counts.iter().enumerate() {
        let dc = sp_net::deploy::DeploymentConfig::paper_default(n);
        let mut inc_work = Vec::new();
        let mut full_work = Vec::new();
        for k in 0..instances {
            let seed = 0xa9_0000 ^ ((i as u64) << 20) ^ k as u64;
            let positions = scenario.deploy(&dc, seed);
            let net = Network::from_positions(positions, dc.radius, dc.area);
            let mut maint = sp_core::InfoMaintainer::new(net.clone());
            let mut rng = StdRng::seed_from_u64(seed ^ 0xfa11);
            let mut victims: Vec<sp_net::NodeId> = net.node_ids().collect();
            victims.shuffle(&mut rng);
            for &v in victims.iter().take(kills) {
                let report = maint.kill(v);
                inc_work.push(report.work_items as f64);
                // A full rebuild sweeps every node once per Jacobi round.
                let mask =
                    sp_net::edge_nodes::edge_node_mask(maint.network(), maint.network().radius());
                let pinned: Vec<bool> = mask
                    .iter()
                    .enumerate()
                    .map(|(u, &p)| p && !maint.is_dead(sp_net::NodeId::new(u)))
                    .collect();
                let fresh = sp_core::SafetyMap::label_with_pinned(maint.network(), pinned);
                full_work.push((net.len() * fresh.rounds().max(1)) as f64);
            }
        }
        incremental.push(n as f64, sp_metrics::Summary::of(&inc_work).mean);
        rebuild.push(n as f64, sp_metrics::Summary::of(&full_work).mean);
    }
    fig.push_series(incremental);
    fig.push_series(rebuild);
    fig
}

/// A16: distributed construction at scale — rounds to quiesce,
/// transmissions per node, and wall milliseconds per 1000 nodes as the
/// deployment grows at the paper's density (the area scales with `n`,
/// so every instance keeps ~500 nodes per 200 m × 200 m). This is the
/// regime the zero-copy frontier engine + CSR arena open; engine-level
/// numbers live in `BENCH_distributed.json`.
///
/// Each `(n, instances)` pair sets its own sample count, so the sweep
/// can extend to 10⁶ nodes with fewer nets at the top sizes (one
/// million-node instance costs more than the whole rest of the sweep).
/// Sizes past [`sp_net::PARALLEL_NODE_THRESHOLD`] route through the
/// construction-time spatial sort, matching how million-node
/// topologies are meant to be built.
pub fn construction_scale_figure(sizes: &[(usize, usize)]) -> Figure {
    let mut fig = Figure::new(
        "A16 distributed construction at scale (fixed density)".to_string(),
        "nodes",
        "rounds / tx-per-node / ms-per-1000-nodes",
    );
    let mut rounds_series = Series::new("rounds to quiesce");
    let mut tx_series = Series::new("transmissions/node");
    let mut wall_series = Series::new("wall ms per 1000 nodes");
    for (i, &(n, instances)) in sizes.iter().enumerate() {
        let dc = sp_net::deploy::DeploymentConfig::paper_density(n);
        let mut rounds = Vec::new();
        let mut tx = Vec::new();
        let mut wall = Vec::new();
        for k in 0..instances.max(1) {
            let seed = 0xa16_0000 ^ ((i as u64) << 20) ^ k as u64;
            let net = Network::from_positions(dc.deploy_uniform(seed), dc.radius, dc.area);
            let net = if n >= sp_net::PARALLEL_NODE_THRESHOLD {
                net.spatially_sorted().0
            } else {
                net
            };
            let start = std::time::Instant::now();
            let run = construct_distributed(&net).expect("labeling quiesces"); // sp-analyze: allow(panic, Algorithm 2 quiesces on every finite deployment)
            wall.push(start.elapsed().as_secs_f64() * 1e3 / (n as f64 / 1000.0));
            rounds.push(run.stats.rounds as f64);
            tx.push(run.stats.transmissions() as f64 / net.len() as f64);
        }
        rounds_series.push(n as f64, sp_metrics::Summary::of(&rounds).mean);
        tx_series.push(n as f64, sp_metrics::Summary::of(&tx).mean);
        wall_series.push(n as f64, sp_metrics::Summary::of(&wall).mean);
    }
    fig.push_series(rounds_series);
    fig.push_series(tx_series);
    fig.push_series(wall_series);
    fig
}

/// A1: distributed information-construction cost (rounds to quiesce and
/// broadcasts per node), sampled over a few instances per node count.
pub fn construction_cost_figure(cfg: &SweepConfig, instances: usize) -> Figure {
    let mut fig = Figure::new(
        format!(
            "A1 information construction cost ({} model)",
            cfg.deployment.tag()
        ),
        "nodes",
        "rounds / broadcasts-per-node",
    );
    let mut rounds_series = Series::new("rounds");
    let mut bpn_series = Series::new("broadcasts/node");
    let mut labeling_rounds = Series::new("centralized rounds");
    for (i, &n) in cfg.node_counts.iter().enumerate() {
        let dc = cfg.deployment_config(n);
        let mut rounds = Vec::new();
        let mut bpn = Vec::new();
        let mut central = Vec::new();
        for k in 0..instances {
            let seed = cfg.instance_seed(i, k);
            let positions = cfg.deployment.deploy(&dc, seed);
            let net = Network::from_positions(positions, dc.radius, dc.area);
            let run = construct_distributed(&net).expect("labeling always quiesces"); // sp-analyze: allow(panic, Algorithm 2 quiesces on every finite deployment)
            rounds.push(run.stats.rounds as f64);
            bpn.push(run.stats.broadcasts as f64 / net.len() as f64);
            central.push(SafetyInfo::build(&net).rounds() as f64);
        }
        rounds_series.push(n as f64, sp_metrics::Summary::of(&rounds).mean);
        bpn_series.push(n as f64, sp_metrics::Summary::of(&bpn).mean);
        labeling_rounds.push(n as f64, sp_metrics::Summary::of(&central).mean);
    }
    fig.push_series(rounds_series);
    fig.push_series(bpn_series);
    fig.push_series(labeling_rounds);
    fig
}

/// A6: SLGF2 delivery ratio under node failures, with stale vs rebuilt
/// safety information, as a function of the failed fraction.
pub fn failure_robustness_figure(
    scenario: Scenario,
    node_count: usize,
    instances: usize,
    kill_fractions: &[f64],
) -> Figure {
    let mut fig = Figure::new(
        format!(
            "A6 SLGF2 delivery under node failures ({} model, n={node_count})",
            scenario.tag()
        ),
        "failed fraction (%)",
        "delivery ratio",
    );
    let mut stale = Series::new("SLGF2 stale info");
    let mut fresh = Series::new("SLGF2 rebuilt info");
    let dc = sp_net::deploy::DeploymentConfig::paper_default(node_count);
    for &frac in kill_fractions {
        let mut stale_ok = 0usize;
        let mut fresh_ok = 0usize;
        let mut total = 0usize;
        for k in 0..instances {
            let seed = 0xa6_0000 + k as u64;
            let positions = scenario.deploy(&dc, seed);
            let net = Network::from_positions(positions, dc.radius, dc.area);
            let info = SafetyInfo::build(&net);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xdead);
            let Some((s, d)) = crate::random_connected_pair(&net, &mut rng) else {
                continue;
            };
            // Kill random nodes other than s and d.
            let mut victims: Vec<sp_net::NodeId> =
                net.node_ids().filter(|&u| u != s && u != d).collect();
            victims.shuffle(&mut rng);
            victims.truncate((frac * node_count as f64).round() as usize);
            let degraded = net.without_nodes(&victims);
            if !degraded.connected(s, d) {
                continue; // topology (not routing) failure: skip
            }
            total += 1;
            if Slgf2Router::new(&info).route(&degraded, s, d).delivered() {
                stale_ok += 1;
            }
            let rebuilt = SafetyInfo::build(&degraded);
            if Slgf2Router::new(&rebuilt)
                .route(&degraded, s, d)
                .delivered()
            {
                fresh_ok += 1;
            }
        }
        if total > 0 {
            stale.push(frac * 100.0, stale_ok as f64 / total as f64);
            fresh.push(frac * 100.0, fresh_ok as f64 / total as f64);
        }
    }
    fig.push_series(stale);
    fig.push_series(fresh);
    fig
}

/// The six schemes of the A17 delivery-vs-chaos family: the paper's
/// four, the GFG planar baseline, and the SLGF2+face hybrid.
pub const CHAOS_FAMILY_SCHEMES: [Scheme; 6] = [
    Scheme::Gf,
    Scheme::Lgf,
    Scheme::Slgf,
    Scheme::Slgf2,
    Scheme::Gfg,
    Scheme::Slgf2Face,
];

/// A17: the delivery-vs-chaos figure family — one panel per built-in
/// chaos class, chaos intensity on x, per-scheme delivery ratio on y.
///
/// Each panel climbs an intensity ladder of `chaos=` spec strings
/// (radius of the regional outage, number of partition cuts, link drop
/// probability, flapped node count), deploys `instances` seeded
/// networks per rung, degrades each at the class's evaluation round,
/// and routes one random connected pair per scheme. Flapping is
/// evaluated **mid-outage** (at the kill round, before the scheduled
/// rejoin); the other classes at the chaos observation round — so the
/// flap panel shows the transient hole and the region panel the
/// permanent one. Pairs whose endpoint the chaos killed count as
/// undelivered: under chaos, topology failures *are* service failures.
pub fn chaos_delivery_family(
    scenario: Scenario,
    node_count: usize,
    instances: usize,
    schemes: &[Scheme],
) -> Vec<Figure> {
    // (panel tag, x label, ladder of (x, chaos spec), evaluate mid-outage)
    type Panel = (
        &'static str,
        &'static str,
        Vec<(f64, Option<&'static str>)>,
        bool,
    );
    let panels: [Panel; 4] = [
        (
            "A17a delivery vs regional outage",
            "outage radius (% of area side)",
            vec![
                (0.0, None),
                (5.0, Some("region:r=0.05@round1")),
                (10.0, Some("region:r=0.1@round1")),
                (20.0, Some("region:r=0.2@round1")),
                (30.0, Some("region:r=0.3@round1")),
            ],
            false,
        ),
        (
            "A17b delivery vs partition cuts",
            "active cuts",
            vec![
                (0.0, None),
                (1.0, Some("partition")),
                (2.0, Some("partition+partition")),
                (3.0, Some("partition+partition+partition")),
            ],
            false,
        ),
        (
            "A17c delivery vs lossy links",
            "drop probability (%)",
            vec![
                (0.0, None),
                (0.5, Some("drop:p=0.005")),
                (1.0, Some("drop:p=0.01")),
                (2.0, Some("drop:p=0.02")),
                (5.0, Some("drop:p=0.05")),
            ],
            false,
        ),
        (
            "A17d delivery vs flapping nodes (mid-outage)",
            "flapped nodes",
            vec![
                (0.0, None),
                (4.0, Some("flap:n=4")),
                (8.0, Some("flap:n=8")),
                (16.0, Some("flap:n=16")),
            ],
            true,
        ),
    ];
    let dc = sp_net::deploy::DeploymentConfig::paper_default(node_count);
    let names = Scheme::display_names(schemes);
    panels
        .into_iter()
        .map(|(tag, x_label, ladder, mid_outage)| {
            let mut fig = Figure::new(
                format!("{tag} ({} model, n={node_count})", scenario.tag()),
                x_label,
                "delivery ratio",
            );
            let mut delivered = vec![Vec::new(); schemes.len()]; // per scheme: per rung count
            let mut attempts = Vec::new();
            for &(x, spec) in &ladder {
                let recipe = spec.map(|s| {
                    // sp-analyze: allow(panic, static spec strings validated by the chaos grammar tests)
                    ChaosRecipe::parse(s).expect("A17 ladder specs are well-formed")
                });
                let mut ok = vec![0usize; schemes.len()];
                let mut total = 0usize;
                for k in 0..instances {
                    let seed = 0xa17_0000 + k as u64;
                    let net =
                        Network::from_positions(scenario.deploy(&dc, seed), dc.radius, dc.area);
                    let mut rng = StdRng::seed_from_u64(seed ^ 0xc4a0);
                    let Some((s, d)) = crate::random_connected_pair(&net, &mut rng) else {
                        continue;
                    };
                    total += 1;
                    let (degraded, drop_p, endpoint_dead) = match &recipe {
                        None => (net.clone(), 0.0, false),
                        Some(recipe) => {
                            let plan = recipe.build(&net, seed);
                            let round = if mid_outage {
                                plan.kills().last_round().unwrap_or(0)
                            } else {
                                plan.last_round().unwrap_or(0).max(
                                    plan.cuts().iter().map(|c| c.from_round).max().unwrap_or(0),
                                )
                            };
                            let dead = plan.dead_as_of(round);
                            let endpoint_dead = dead.contains(&s) || dead.contains(&d);
                            let mut degraded = net.without_nodes(&dead);
                            let mut cut_edges = Vec::new();
                            for cut in plan.cuts().iter().filter(|c| c.active_at(round)) {
                                cut_edges.extend(degraded.edges_crossing(cut.a, cut.b));
                            }
                            if !cut_edges.is_empty() {
                                degraded = degraded.without_edges(&cut_edges);
                            }
                            (degraded, plan.drop_p(), endpoint_dead)
                        }
                    };
                    if endpoint_dead {
                        continue; // attempt counted, nobody delivers
                    }
                    let prepared = PreparedNetwork::new(degraded);
                    let ctx = prepared.ctx();
                    let mut drops =
                        (drop_p > 0.0).then(|| StdRng::seed_from_u64(seed ^ 0xd20b_5eed));
                    for (i, &scheme) in schemes.iter().enumerate() {
                        let route = scheme.build(&ctx).route(&prepared.net, s, d);
                        let mut good = route.delivered();
                        if let (true, Some(drops)) = (good, drops.as_mut()) {
                            good = !(0..route.hops()).any(|_| drops.random_bool(drop_p));
                        }
                        if good {
                            ok[i] += 1;
                        }
                    }
                }
                for (i, &n) in ok.iter().enumerate() {
                    delivered[i].push((x, n));
                }
                attempts.push(total);
            }
            for ((scheme_ok, name), _) in delivered.iter().zip(&names).zip(schemes) {
                let mut series = Series::new(name.to_string());
                for (rung, &(x, n)) in scheme_ok.iter().enumerate() {
                    if attempts[rung] > 0 {
                        series.push(x, n as f64 / attempts[rung] as f64);
                    }
                }
                fig.push_series(series);
            }
            fig
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_sweep;

    fn tiny() -> SweepResults {
        let cfg = SweepConfig {
            node_counts: vec![450, 550],
            networks_per_point: 3,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: Scenario::Ia,
            base_seed: 99,
            chaos: None,
            mobility: None,
        };
        run_sweep(&cfg, &Scheme::PAPER_SET)
    }

    #[test]
    fn chaos_family_renders_every_panel_and_scheme() {
        let figs = chaos_delivery_family(Scenario::Ia, 300, 2, &CHAOS_FAMILY_SCHEMES);
        assert_eq!(figs.len(), 4, "one panel per built-in chaos class");
        for fig in &figs {
            assert_eq!(fig.series.len(), 6, "{}", fig.title);
            for s in &fig.series {
                assert!(!s.points.is_empty(), "{}: {} is empty", fig.title, s.label);
                // The rate-0 rung routes the pristine topology.
                assert_eq!(s.points[0].0, 0.0, "{}", fig.title);
                for &(_, y) in &s.points {
                    assert!((0.0..=1.0).contains(&y), "{}: ratio {y}", fig.title);
                }
            }
        }
        // Chaos only hurts: the heaviest regional outage delivers no
        // more than the pristine rung (every scheme, both endpoints
        // alive or the attempt already counts as lost).
        let region = &figs[0];
        for s in &region.series {
            let base = s.points[0].1;
            let worst = s.points.last().unwrap().1;
            assert!(worst <= base + 1e-9, "{}: {worst} > {base}", s.label);
        }
    }

    #[test]
    fn figures_have_four_series_and_both_points() {
        let res = tiny();
        for fig in [fig5(&res), fig6(&res), fig7(&res), delivery_figure(&res)] {
            assert_eq!(fig.series.len(), 4);
            assert_eq!(fig.x_values(), vec![450.0, 550.0]);
        }
        assert!(fig5(&res).title.contains("5(a)"));
        assert!(fig5(&res).title.contains("IA"));
    }

    #[test]
    fn max_is_at_least_mean() {
        let res = tiny();
        let f5 = fig5(&res);
        let f6 = fig6(&res);
        for (s5, s6) in f5.series.iter().zip(&f6.series) {
            for (&(x5, y5), &(x6, y6)) in s5.points.iter().zip(&s6.points) {
                assert_eq!(x5, x6);
                assert!(y5 >= y6, "max {y5} < mean {y6} for {}", s5.label);
            }
        }
    }

    #[test]
    fn construction_cost_runs() {
        let cfg = SweepConfig {
            node_counts: vec![400],
            networks_per_point: 1,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: Scenario::Ia,
            base_seed: 5,
            chaos: None,
            mobility: None,
        };
        let fig = construction_cost_figure(&cfg, 1);
        assert_eq!(fig.series.len(), 3);
        let rounds = fig.series_by_label("rounds").unwrap().y_at(400.0).unwrap();
        assert!(rounds >= 1.0);
    }

    #[test]
    fn energy_and_interference_track_hops() {
        // More hops -> more transmissions -> more energy and a larger
        // overhearing set, so the scheme ordering must broadly agree
        // between fig6 and the A7 figures.
        let res = tiny();
        let f6 = fig6(&res);
        let fe = energy_figure(&res);
        let fi = interference_figure(&res);
        assert_eq!(fe.series.len(), 4);
        assert_eq!(fi.series.len(), 4);
        assert!(fe.title.contains("A7"));
        for (s6, se) in f6.series.iter().zip(&fe.series) {
            assert_eq!(s6.label, se.label);
            for (&(_, hops), &(_, uj)) in s6.points.iter().zip(&se.points) {
                // 1024-bit packet, >= 50 nJ/bit electronics on both ends:
                // energy strictly grows with hop count.
                assert!(uj > hops * 2.0 * 50.0 * 1024.0 / 1000.0 * 0.9);
            }
        }
        for s in &fi.series {
            for &(_, overhearers) in &s.points {
                assert!(overhearers > 0.0, "someone always overhears");
            }
        }
    }

    #[test]
    fn async_cost_exceeds_sync_cost() {
        let cfg = SweepConfig {
            node_counts: vec![400],
            networks_per_point: 1,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: Scenario::Ia,
            base_seed: 11,
            chaos: None,
            mobility: None,
        };
        let fig = async_cost_figure(&cfg, 2);
        assert_eq!(fig.series.len(), 2);
        let sync_tx = fig
            .series_by_label("synchronous tx/node")
            .unwrap()
            .y_at(400.0)
            .unwrap();
        let async_tx = fig
            .series_by_label("asynchronous tx/node")
            .unwrap()
            .y_at(400.0)
            .unwrap();
        assert!(sync_tx >= 1.0, "everyone announces at least once");
        assert!(async_tx >= sync_tx, "async loses round batching");
    }

    #[test]
    fn maintenance_repair_is_cheaper_than_rebuild() {
        let fig = maintenance_cost_figure(Scenario::Ia, &[400], 2, 3);
        assert_eq!(fig.series.len(), 2);
        let inc = fig
            .series_by_label("incremental repair")
            .unwrap()
            .y_at(400.0)
            .unwrap();
        let full = fig
            .series_by_label("full rebuild")
            .unwrap()
            .y_at(400.0)
            .unwrap();
        assert!(
            inc < full / 10.0,
            "incremental ({inc:.1}) should be far below rebuild ({full:.1})"
        );
    }

    #[test]
    fn extended_set_includes_gfg_curve() {
        let cfg = SweepConfig {
            node_counts: vec![450],
            networks_per_point: 2,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: Scenario::Ia,
            base_seed: 23,
            chaos: None,
            mobility: None,
        };
        let res = run_sweep(&cfg, &Scheme::EXTENDED_SET);
        let f6 = fig6(&res);
        assert_eq!(f6.series.len(), 5);
        let gfg = f6.series_by_label("GFG").expect("GFG curve present");
        assert!(gfg.y_at(450.0).unwrap() >= 1.0);
    }

    #[test]
    fn mobility_staleness_has_three_series_and_fresh_wins() {
        let figs = mobility_staleness_figure(350, 2, 3, &[0.0, 30.0], (1.0, 2.0));
        assert_eq!(figs.len(), 2);
        let fig = &figs[0];
        assert_eq!(fig.series.len(), 3);
        let stale = fig.series_by_label("SLGF2 stale info").unwrap();
        let fresh = fig.series_by_label("SLGF2 rebuilt info").unwrap();
        // At t=0 stale == fresh (same information).
        assert_eq!(stale.y_at(0.0), fresh.y_at(0.0));
        // Rebuilt information can never do worse than stale at any t.
        for (&(t, ys), &(_, yf)) in stale.points.iter().zip(&fresh.points) {
            assert!(yf >= ys - 1e-9, "fresh {yf} < stale {ys} at t={t}");
        }
        // The hops panel carries the same labels.
        assert!(figs[1].series_by_label("GFG (no info)").is_some());
        assert!(figs[1].title.contains("hops"));
    }

    #[test]
    fn failure_robustness_reports_both_series() {
        let fig = failure_robustness_figure(Scenario::Ia, 400, 2, &[0.0, 0.1]);
        assert_eq!(fig.series.len(), 2);
        // With 0% failures both are perfect on connected pairs.
        let stale0 = fig.series_by_label("SLGF2 stale info").unwrap().y_at(0.0);
        assert_eq!(stale0, Some(1.0));
    }
}
