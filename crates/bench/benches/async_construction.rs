//! A10 — synchronous vs asynchronous information construction.
//!
//! Times Algorithm 2 on the lock-step engine against the event-driven
//! engine with per-message random delays, and prints the message-cost
//! comparison rows the A10 figure reports.
//!
//! Full-scale figure: `cargo run -p sp-experiments --bin repro-figures -- a10`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_core::{construct_async, construct_distributed};
use sp_net::{DeploymentConfig, Network};
use std::hint::black_box;

fn async_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("a10_construction");
    for n in [300usize, 500] {
        let cfg = DeploymentConfig::paper_default(n);
        let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);

        // Print the cost rows once per size.
        let sync_run = construct_distributed(&net).expect("quiesces");
        let async_run = construct_async(&net, 1).expect("quiesces");
        eprintln!(
            "n={n}: sync {} tx ({} rounds) | async {} tx (t={:.1})",
            sync_run.stats.transmissions(),
            sync_run.stats.rounds,
            async_run.stats.transmissions(),
            async_run.stats.virtual_time,
        );

        group.bench_function(BenchmarkId::new("sync", n), |b| {
            b.iter(|| black_box(construct_distributed(black_box(&net)).unwrap()));
        });
        group.bench_function(BenchmarkId::new("async", n), |b| {
            b.iter(|| black_box(construct_async(black_box(&net), 1).unwrap()));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = async_benches
}
criterion_main!(benches);
