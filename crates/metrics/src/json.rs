//! JSON rendering of figures — hand-rolled, dependency-free.
//!
//! The CSV/markdown outputs feed humans; this one feeds tooling
//! (plotting scripts, dashboards). The encoder covers exactly the shape
//! of [`Figure`] — strings, finite floats, arrays — with standard JSON
//! string escaping. Non-finite values serialize as `null` (JSON has no
//! NaN/Inf).

use crate::Figure;
use std::fmt::Write as _;

/// Renders a figure as a pretty-printed JSON object:
///
/// ```json
/// {
///   "title": "...", "x_label": "...", "y_label": "...",
///   "series": [ {"label": "GF", "points": [[400.0, 7.3], ...]}, ... ]
/// }
/// ```
///
/// ```
/// use sp_metrics::{render_json, Figure, Series};
///
/// let mut fig = Figure::new("demo", "nodes", "hops");
/// let mut s = Series::new("SLGF2");
/// s.push(400.0, 11.5);
/// fig.push_series(s);
/// let json = render_json(&fig);
/// assert!(json.contains("\"label\": \"SLGF2\""));
/// assert!(json.contains("[400, 11.5]"));
/// ```
pub fn render_json(fig: &Figure) -> String {
    let mut out = String::with_capacity(1 << 12);
    out.push_str("{\n");
    let _ = writeln!(out, "  \"title\": {},", json_string(&fig.title));
    let _ = writeln!(out, "  \"x_label\": {},", json_string(&fig.x_label));
    let _ = writeln!(out, "  \"y_label\": {},", json_string(&fig.y_label));
    out.push_str("  \"series\": [\n");
    for (si, series) in fig.series.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": {}, \"points\": [",
            json_string(&series.label)
        );
        for (pi, &(x, y)) in series.points.iter().enumerate() {
            if pi > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "[{}, {}]", json_number(x), json_number(y));
        }
        out.push_str("]}");
        if si + 1 < fig.series.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Escapes a string for JSON.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (`null` for NaN/Inf, no trailing
/// `.0` on integers).
fn json_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Series;

    fn sample() -> Figure {
        let mut fig = Figure::new("Fig \"6\"", "nodes", "hops");
        let mut a = Series::new("GF");
        a.push(400.0, 7.25);
        a.push(450.0, f64::NAN);
        fig.push_series(a);
        let mut b = Series::new("SLGF2");
        b.push(400.0, 9.0);
        fig.push_series(b);
        fig
    }

    #[test]
    fn output_is_wellformed_and_escaped() {
        let json = render_json(&sample());
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains(r#""title": "Fig \"6\"""#));
        assert!(json.contains("[400, 7.25]"));
        assert!(json.contains("[450, null]"), "NaN must become null");
        assert!(json.contains("[400, 9]"), "integral floats lose the .0");
        // Balanced brackets (string content has none in this sample).
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        assert_eq!(json_string("t\tt"), "\"t\\tt\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
        assert_eq!(json_string("back\\slash"), "\"back\\\\slash\"");
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(json_number(400.0), "400");
        assert_eq!(json_number(7.5), "7.5");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(-0.0), "0");
    }

    #[test]
    fn empty_figure_serializes() {
        let fig = Figure::new("empty", "x", "y");
        let json = render_json(&fig);
        assert!(json.contains("\"series\": [\n  ]"));
    }
}
