//! Routing as a service: the epoch-snapshot [`RoutingService`].
//!
//! Everything before this module is batch-and-discard: the harness
//! builds a [`Network`], routes a batch through
//! [`crate::TrafficEngine`], and throws both away. A deployment serving
//! a million users is the opposite shape — a **long-lived** process
//! answering a sustained query stream *while the topology churns* under
//! node mobility. This module is that serving shape:
//!
//! * [`RoutingService`] owns an epoch-versioned [`ServiceSnapshot`]
//!   (topology + safety information) behind an
//!   [`sp_sync::EpochCell`]: mobility updates build the **next**
//!   snapshot off to the side ([`Network::next_snapshot`] +
//!   [`SafetyInfo::build`]) and publish it with one `Arc` swap, so
//!   readers never wait on a rebuild;
//! * [`ServiceSession`] is the per-worker reader: it pins a snapshot,
//!   reuses one [`RouteBuffer`] (generation-stamped visited set, warm
//!   path/phase vectors) across queries, and re-pins only when the
//!   service's epoch counter moved — the steady-state query path is
//!   one atomic load plus the route walk, no locks, no allocation;
//! * every [`ServiceAnswer`] is stamped with the epoch it was computed
//!   against, so consistency is checkable end to end: an answer's
//!   epoch never exceeds [`RoutingService::epoch`], and its path is
//!   valid against exactly that epoch's adjacency (property-tested in
//!   `tests/service_consistency.rs`).
//!
//! [`RoutingService::run_batch`] serves whole query batches through the
//! shared [`sp_sync::WorkQueue`], pinning one snapshot for the batch —
//! answers merge in query order and are bit-identical to serial
//! execution at any thread count, exactly like [`crate::TrafficEngine`].
//!
//! The `service_latency` bench drives this module with worker threads
//! querying under a background churner and gates sustained
//! queries/sec plus p50/p95/p99 per-query latency in CI
//! (`BENCH_service.json`).

use crate::{
    LgfRouter, RouteBuffer, RouteOutcome, RouteResult, Routing, SafetyInfo, Slgf2Router, SlgfRouter,
};
use sp_geom::Point;
use sp_net::{Network, NodeId};
use sp_sim::ChaosPlan;
use sp_sync::{EpochCell, Pinned, WorkQueue};

/// The thread-count environment knob read by [`RoutingService::new`].
pub const SERVICE_THREADS_ENV: &str = "SP_SERVICE_THREADS";

/// Queries per work-queue claim in [`RoutingService::run_batch`] —
/// same granularity trade-off as the traffic engine's flow chunks.
const QUERY_CHUNK: usize = 64;

/// One immutable epoch of the served world: the topology and the
/// safety information SLGF2 routes with, built together so a query can
/// never see a network from one epoch and labels from another.
#[derive(Debug, Clone)]
pub struct ServiceSnapshot {
    net: Network,
    info: SafetyInfo,
}

impl ServiceSnapshot {
    /// Builds the snapshot for `net`: labels the network and derives
    /// the shape estimates ([`SafetyInfo::build`]). This is the
    /// expensive step mobility pays **off to the side**, before the
    /// `Arc` swap makes the snapshot visible.
    pub fn build(net: Network) -> ServiceSnapshot {
        let info = SafetyInfo::build(&net);
        ServiceSnapshot { net, info }
    }

    /// The epoch's topology.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// The epoch's safety information.
    pub fn info(&self) -> &SafetyInfo {
        &self.info
    }

    /// The epoch's router: SLGF2 (Algorithm 3) over this snapshot's
    /// safety information. Construction is a copy of four words — built
    /// per query without cost.
    pub fn router(&self) -> Slgf2Router<'_> {
        Slgf2Router::new(&self.info)
    }
}

/// The routing schemes a [`ServiceSession`] can answer with. The
/// service's safety information supports the whole family the paper
/// compares, so per-query scheme selection costs nothing: every router
/// here is a few words constructed on the spot over the pinned
/// snapshot.
///
/// The discriminants are stable wire codes — the `sp-serve` TCP front
/// end carries them verbatim in its `QUERY` frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum ServiceScheme {
    /// SLGF2 (Algorithm 3) — the paper's contribution and the default.
    #[default]
    Slgf2 = 0,
    /// SLGF (the earlier safe-label greedy forwarding \[7\]).
    Slgf = 1,
    /// LGF (Algorithm 1) — plain location greedy forwarding.
    Lgf = 2,
}

impl ServiceScheme {
    /// Every servable scheme, in wire-code order.
    pub const ALL: [ServiceScheme; 3] = [
        ServiceScheme::Slgf2,
        ServiceScheme::Slgf,
        ServiceScheme::Lgf,
    ];

    /// The stable wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code; `None` for unknown codes.
    pub fn from_code(code: u8) -> Option<ServiceScheme> {
        ServiceScheme::ALL.into_iter().find(|s| s.code() == code)
    }

    /// The scheme's display name.
    pub fn name(self) -> &'static str {
        match self {
            ServiceScheme::Slgf2 => "SLGF2",
            ServiceScheme::Slgf => "SLGF",
            ServiceScheme::Lgf => "LGF",
        }
    }
}

/// Everything the service records about one answered query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceAnswer {
    /// The epoch of the snapshot this answer was computed against.
    /// Never exceeds [`RoutingService::epoch`] at any point after the
    /// answer is produced.
    pub epoch: u64,
    /// The query's source.
    pub src: NodeId,
    /// The query's destination.
    pub dst: NodeId,
    /// Terminal status of the route.
    pub outcome: RouteOutcome,
    /// Hops walked.
    pub hops: usize,
    /// Euclidean path length walked.
    pub length: f64,
    /// Perimeter-phase entries.
    pub perimeter_entries: usize,
    /// Backup-phase entries.
    pub backup_entries: usize,
}

impl ServiceAnswer {
    /// True when the query's packet reached its destination.
    pub fn delivered(&self) -> bool {
        self.outcome == RouteOutcome::Delivered
    }
}

/// One served batch: per-query answers in query order (bit-identical
/// to serial execution at any thread count) plus the epoch the whole
/// batch was pinned to.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceBatch {
    /// The epoch every answer in this batch was computed against.
    pub epoch: u64,
    /// One answer per input query, in input order.
    pub answers: Vec<ServiceAnswer>,
}

/// The long-lived routing service: an epoch-versioned topology owner
/// answering queries while mobility churns underneath.
///
/// ```
/// use sp_core::RoutingService;
/// use sp_net::{deploy::DeploymentConfig, Network, NodeId};
///
/// let cfg = DeploymentConfig::paper_default(300);
/// let net = Network::from_positions(cfg.deploy_uniform(7), cfg.radius, cfg.area);
/// let service = RoutingService::new(net);
///
/// let mut session = service.session();
/// let a = session.route(NodeId(0), NodeId(299));
/// assert_eq!(a.epoch, 0);
///
/// // Mobility: build epoch 1 off to the side, publish, keep serving.
/// let p = service.snapshot().value.network().position(NodeId(5));
/// let moved = service.apply_moves(&[(NodeId(5), sp_geom::Point::new(p.x + 1.0, p.y))]);
/// assert_eq!(moved, 1);
/// assert_eq!(session.route(NodeId(0), NodeId(299)).epoch, 1);
/// ```
#[derive(Debug)]
pub struct RoutingService {
    cell: EpochCell<ServiceSnapshot>,
    threads: usize,
}

impl RoutingService {
    /// A service over `net` at epoch 0, with the default thread policy
    /// for batches: `SP_SERVICE_THREADS` when set to a positive
    /// integer, otherwise available parallelism.
    pub fn new(net: Network) -> RoutingService {
        RoutingService::from_snapshot(ServiceSnapshot::build(net))
    }

    /// A service over an already-built epoch-0 snapshot.
    pub fn from_snapshot(snapshot: ServiceSnapshot) -> RoutingService {
        RoutingService {
            cell: EpochCell::new(snapshot),
            threads: sp_sync::configured_threads_for(SERVICE_THREADS_ENV),
        }
    }

    /// Pins the batch worker count (1 = serial; same answers either
    /// way).
    pub fn with_threads(mut self, threads: usize) -> RoutingService {
        self.threads = threads.max(1);
        self
    }

    /// The configured batch worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The current epoch — one atomic load. Monotonic; every
    /// [`ServiceAnswer::epoch`] ever produced is `<=` this.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Pins the current snapshot: the `(epoch, Arc)` pair, consistent
    /// by construction. Holding the pin keeps the snapshot alive across
    /// any number of later publishes.
    pub fn snapshot(&self) -> Pinned<ServiceSnapshot> {
        self.cell.load()
    }

    /// Applies a mobility tick: builds the next topology off to the
    /// side ([`Network::next_snapshot`]), relabels it, publishes the
    /// new epoch with one `Arc` swap, and returns the new epoch number.
    /// Readers pinned to earlier epochs are never blocked and never see
    /// a half-built snapshot.
    ///
    /// # Panics
    ///
    /// Panics if any moved id is out of range.
    pub fn apply_moves(&self, moves: &[(NodeId, Point)]) -> u64 {
        let current = self.cell.load();
        let next = current.value.network().next_snapshot(moves);
        self.cell.publish(ServiceSnapshot::build(next))
    }

    /// Publishes a fully rebuilt topology as the next epoch (the
    /// non-incremental handoff — e.g. a re-deployment). Returns the new
    /// epoch number.
    pub fn publish(&self, net: Network) -> u64 {
        self.cell.publish(ServiceSnapshot::build(net))
    }

    /// Applies a chaos tick: degrades the **pristine** `base` topology
    /// to the plan's state as of `round` — cumulative kills minus
    /// revivals ([`ChaosPlan::dead_as_of`]) plus every link crossing a
    /// cut active that round — relabels it off to the side, and
    /// publishes the new epoch. Returns the new epoch number.
    ///
    /// The caller supplies `base` (rather than the service degrading
    /// its own current snapshot) because chaos is not monotone: a
    /// flapped node's edges must come *back* on revival, and the
    /// current snapshot no longer has them. Quiet plans still publish —
    /// an undamaged epoch, bit-identical to `publish(base.clone())`.
    pub fn apply_chaos(&self, base: &Network, chaos: &ChaosPlan, round: usize) -> u64 {
        let dead = chaos.dead_as_of(round);
        let mut degraded = base.without_nodes(&dead);
        let mut cut_edges = Vec::new();
        for cut in chaos.cuts().iter().filter(|c| c.active_at(round)) {
            cut_edges.extend(degraded.edges_crossing(cut.a, cut.b));
        }
        if !cut_edges.is_empty() {
            degraded = degraded.without_edges(&cut_edges);
        }
        self.cell.publish(ServiceSnapshot::build(degraded))
    }

    /// A new reader session pinned to the current snapshot. Sessions
    /// are cheap; give each worker thread its own and it will reuse one
    /// warm [`RouteBuffer`] across every query it serves.
    pub fn session(&self) -> ServiceSession<'_> {
        let pinned = self.cell.load();
        let cap = pinned.value.network().len();
        ServiceSession {
            service: self,
            pinned,
            buf: RouteBuffer::with_capacity(cap),
        }
    }

    /// Serves a whole query batch against **one** pinned snapshot,
    /// sharded over the shared work queue: answers come back in query
    /// order and are bit-identical to serial execution at any thread
    /// count (the consistency property tests enforce this). The batch
    /// pins its snapshot once at entry, so a publish racing the batch
    /// affects the *next* batch, never tears this one.
    pub fn run_batch(&self, queries: &[(NodeId, NodeId)]) -> ServiceBatch {
        let pinned = self.cell.load();
        let snap = &*pinned.value;
        let answers = WorkQueue::chunked(QUERY_CHUNK).run_with(
            self.threads,
            queries.len(),
            || RouteBuffer::with_capacity(snap.network().len()),
            |buf, i| {
                let (src, dst) = queries[i];
                answer(snap, pinned.epoch, src, dst, buf)
            },
        );
        ServiceBatch {
            epoch: pinned.epoch,
            answers,
        }
    }
}

/// Routes one query against `snap` and stamps `epoch` on the answer.
fn answer(
    snap: &ServiceSnapshot,
    epoch: u64,
    src: NodeId,
    dst: NodeId,
    buf: &mut RouteBuffer,
) -> ServiceAnswer {
    answer_with(snap, ServiceScheme::Slgf2, epoch, src, dst, buf)
}

/// Routes one query with the requested scheme against `snap` and
/// stamps `epoch` on the answer. The trace stays behind in `buf`
/// ([`RouteBuffer::path`]) so callers that stream it out — the
/// `sp-serve` `TRACE` responses — never clone the path.
fn answer_with(
    snap: &ServiceSnapshot,
    scheme: ServiceScheme,
    epoch: u64,
    src: NodeId,
    dst: NodeId,
    buf: &mut RouteBuffer,
) -> ServiceAnswer {
    let net = snap.network();
    let r = match scheme {
        ServiceScheme::Slgf2 => snap.router().route_into(net, src, dst, buf),
        ServiceScheme::Slgf => SlgfRouter::new(snap.info()).route_into(net, src, dst, buf),
        ServiceScheme::Lgf => LgfRouter::new().route_into(net, src, dst, buf),
    };
    ServiceAnswer {
        epoch,
        src,
        dst,
        outcome: r.outcome,
        hops: r.hops(),
        length: r.length(net),
        perimeter_entries: r.perimeter_entries,
        backup_entries: r.backup_entries,
    }
}

/// A per-worker reader of the service: one pinned snapshot, one reused
/// [`RouteBuffer`]. The steady-state query path — epoch unchanged — is
/// a single atomic load plus the route walk; when the service
/// published, the next query transparently re-pins first.
#[derive(Debug)]
pub struct ServiceSession<'s> {
    service: &'s RoutingService,
    pinned: Pinned<ServiceSnapshot>,
    buf: RouteBuffer,
}

impl ServiceSession<'_> {
    /// The epoch this session currently serves from.
    pub fn epoch(&self) -> u64 {
        self.pinned.epoch
    }

    /// The pinned snapshot this session currently serves from.
    pub fn snapshot(&self) -> &ServiceSnapshot {
        &self.pinned.value
    }

    /// Re-pins to the current snapshot if the service published since
    /// the last pin. Returns `true` when the pin moved. Called
    /// automatically by [`ServiceSession::route`]; exposed for callers
    /// that want several queries against one consistent epoch
    /// ([`ServiceSession::route_pinned`]).
    pub fn refresh(&mut self) -> bool {
        if self.service.epoch() == self.pinned.epoch {
            return false;
        }
        self.pinned = self.service.snapshot();
        true
    }

    /// Answers one query against the **current** epoch (re-pinning
    /// first if the service published since the last query).
    pub fn route(&mut self, src: NodeId, dst: NodeId) -> ServiceAnswer {
        self.refresh();
        self.route_pinned(src, dst)
    }

    /// Answers one query against the epoch already pinned, without
    /// checking for a newer one — the building block for multi-query
    /// consistency (pin once via [`ServiceSession::refresh`], then ask
    /// related queries against one world).
    pub fn route_pinned(&mut self, src: NodeId, dst: NodeId) -> ServiceAnswer {
        answer(
            &self.pinned.value,
            self.pinned.epoch,
            src,
            dst,
            &mut self.buf,
        )
    }

    /// [`ServiceSession::route`] returning the full owned trace next
    /// to the epoch stamp — what the consistency tests validate paths
    /// with.
    pub fn route_traced(&mut self, src: NodeId, dst: NodeId) -> (u64, RouteResult) {
        self.refresh();
        let snap = &*self.pinned.value;
        let r = snap
            .router()
            .route_into(snap.network(), src, dst, &mut self.buf);
        (self.pinned.epoch, r.to_result())
    }

    /// [`ServiceSession::route`] with per-query scheme selection —
    /// the entry point the `sp-serve` wire front end dispatches `QUERY`
    /// frames through. Identical epoch semantics; SLGF2 answers are
    /// bit-identical to [`ServiceSession::route`].
    pub fn route_with(&mut self, scheme: ServiceScheme, src: NodeId, dst: NodeId) -> ServiceAnswer {
        self.refresh();
        answer_with(
            &self.pinned.value,
            scheme,
            self.pinned.epoch,
            src,
            dst,
            &mut self.buf,
        )
    }

    /// The hop trace of the most recent query answered by this session,
    /// borrowed from the session's reused buffer: source inclusive,
    /// valid against the answer's stamped epoch. Lets trace consumers
    /// stream the path without an owned [`RouteResult`] allocation.
    pub fn last_path(&self) -> &[NodeId] {
        self.buf.path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::deploy::DeploymentConfig;

    fn prepared(n: usize, seed: u64) -> Network {
        let cfg = DeploymentConfig::paper_default(n);
        Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
    }

    fn some_queries(net: &Network, count: usize) -> Vec<(NodeId, NodeId)> {
        let comp = net.largest_component();
        (0..count)
            .map(|k| {
                (
                    comp[(k * 53) % comp.len()],
                    comp[(k * 101 + 17) % comp.len()],
                )
            })
            .filter(|(s, d)| s != d)
            .collect()
    }

    /// A small deterministic jitter batch: every 7th node shifts a
    /// little, staying inside the area.
    fn jitter(net: &Network, magnitude: f64) -> Vec<(NodeId, Point)> {
        net.node_ids()
            .filter(|u| u.index() % 7 == 0)
            .map(|u| {
                let p = net.position(u);
                let q = Point::new(
                    (p.x + magnitude).min(net.area().max().x),
                    (p.y + magnitude * 0.5).min(net.area().max().y),
                );
                (u, q)
            })
            .collect()
    }

    #[test]
    fn fresh_service_serves_epoch_zero() {
        let net = prepared(200, 3);
        let service = RoutingService::new(net);
        assert_eq!(service.epoch(), 0);
        let mut session = service.session();
        for (s, d) in some_queries(service.snapshot().value.network(), 10) {
            let a = session.route(s, d);
            assert_eq!(a.epoch, 0);
            assert_eq!((a.src, a.dst), (s, d));
        }
    }

    #[test]
    fn session_answers_match_the_offline_router() {
        let net = prepared(300, 5);
        let queries = some_queries(&net, 25);
        let service = RoutingService::new(net.clone());
        let info = SafetyInfo::build(&net);
        let router = Slgf2Router::new(&info);
        let mut session = service.session();
        for (s, d) in queries {
            let a = session.route(s, d);
            let offline = router.route(&net, s, d);
            assert_eq!(a.outcome, offline.outcome, "{s}->{d}");
            assert_eq!(a.hops, offline.hops(), "{s}->{d}");
            assert_eq!(a.length, offline.length(&net), "{s}->{d}");
        }
    }

    #[test]
    fn publish_rolls_the_epoch_and_sessions_follow() {
        let net = prepared(250, 7);
        let service = RoutingService::new(net);
        let mut session = service.session();
        let (s, d) = some_queries(session.snapshot().network(), 1)[0];
        assert_eq!(session.route(s, d).epoch, 0);

        let moves = jitter(session.snapshot().network(), 2.0);
        assert!(!moves.is_empty());
        assert_eq!(service.apply_moves(&moves), 1);
        assert_eq!(service.epoch(), 1);

        // The stale session transparently re-pins on its next query.
        assert_eq!(session.epoch(), 0);
        let a = session.route(s, d);
        assert_eq!(a.epoch, 1);
        assert_eq!(session.epoch(), 1);
    }

    #[test]
    fn pinned_routing_stays_on_its_epoch_across_publishes() {
        let net = prepared(250, 9);
        let service = RoutingService::new(net);
        let mut session = service.session();
        let queries = some_queries(session.snapshot().network(), 8);
        let moves = jitter(session.snapshot().network(), 3.0);
        service.apply_moves(&moves);
        // route_pinned never refreshes: all answers stay at epoch 0
        // even though the service moved on.
        for &(s, d) in &queries {
            assert_eq!(session.route_pinned(s, d).epoch, 0);
        }
        assert_eq!(service.epoch(), 1);
        assert!(session.refresh());
        assert_eq!(session.route_pinned(queries[0].0, queries[0].1).epoch, 1);
    }

    #[test]
    fn run_batch_is_bit_identical_across_thread_counts() {
        let net = prepared(350, 11);
        let queries = some_queries(&net, 150);
        let service = RoutingService::new(net);
        let serial = service.with_threads(1);
        let want = serial.run_batch(&queries);
        assert_eq!(want.answers.len(), queries.len());
        for threads in [2, 3, 8] {
            let service = RoutingService::from_snapshot(serial.snapshot().value.as_ref().clone())
                .with_threads(threads);
            let got = service.run_batch(&queries);
            assert_eq!(want.answers, got.answers, "threads={threads}");
        }
    }

    #[test]
    fn batch_answers_agree_with_session_answers() {
        let net = prepared(300, 13);
        let queries = some_queries(&net, 40);
        let service = RoutingService::new(net).with_threads(2);
        let batch = service.run_batch(&queries);
        let mut session = service.session();
        for (i, &(s, d)) in queries.iter().enumerate() {
            assert_eq!(batch.answers[i], session.route(s, d), "query {i}");
        }
    }

    #[test]
    fn answers_never_outrun_the_service_epoch() {
        let net = prepared(200, 17);
        let service = RoutingService::new(net);
        let mut session = service.session();
        let queries = some_queries(session.snapshot().network(), 6);
        for round in 0..4u64 {
            for &(s, d) in &queries {
                let a = session.route(s, d);
                assert!(a.epoch <= service.epoch());
                assert_eq!(a.epoch, round);
            }
            let moves = jitter(session.snapshot().network(), 1.5);
            service.apply_moves(&moves);
        }
    }

    #[test]
    fn thread_knob_floors_at_one() {
        let net = prepared(60, 1);
        let service = RoutingService::new(net).with_threads(0);
        assert_eq!(service.threads(), 1);
    }

    #[test]
    fn apply_chaos_publishes_degraded_then_recovered_epochs() {
        let base = prepared(150, 23);
        let victim = base.largest_component()[0];
        let mut chaos = ChaosPlan::new();
        chaos.kill_at(1, victim);
        chaos.revive_at(3, victim);
        let service = RoutingService::new(base.clone());

        let e1 = service.apply_chaos(&base, &chaos, 1);
        assert_eq!(e1, 1);
        let down = service.snapshot();
        assert_eq!(down.value.network().degree(victim), 0, "victim isolated");

        // After the revival round the degraded topology heals: the
        // pristine base is re-degraded from scratch, so the flapped
        // node's edges come back.
        let e2 = service.apply_chaos(&base, &chaos, 3);
        assert_eq!(e2, 2);
        let up = service.snapshot();
        assert_eq!(
            up.value.network().degree(victim),
            base.degree(victim),
            "edges restored on revival"
        );
    }

    #[test]
    fn quiet_chaos_epoch_matches_plain_publish() {
        let base = prepared(80, 5);
        let service = RoutingService::new(base.clone());
        service.apply_chaos(&base, &ChaosPlan::new(), 0);
        let chaotic = service.snapshot();
        let plain = RoutingService::new(base.clone());
        plain.publish(base);
        let reference = plain.snapshot();
        assert_eq!(
            chaotic.value.network().len(),
            reference.value.network().len(),
            "a quiet plan publishes the same topology"
        );
        let queries = some_queries(reference.value.network(), 8);
        let mut a = service.session();
        let mut b = plain.session();
        for &(s, d) in &queries {
            let (ra, rb) = (a.route(s, d), b.route(s, d));
            assert_eq!(ra.outcome, rb.outcome);
            assert_eq!(ra.hops, rb.hops);
            assert_eq!(ra.length, rb.length);
        }
    }
}
