//! Keep the safety information alive while the network dies under it:
//! kill nodes one by one, repair the labeling incrementally, and watch
//! SLGF2 keep routing — the dynamic-factors story of the paper's §1.
//!
//! ```sh
//! cargo run --example information_maintenance
//! ```

use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};
use sp_core::InfoMaintainer;
use straightpath::prelude::*;

fn main() {
    let cfg = DeploymentConfig::paper_default(600);
    let net = Network::from_positions(cfg.deploy_uniform(77), cfg.radius, cfg.area);
    let comp = net.largest_component();
    // Route corner to corner across the interest area.
    let corner = |target: Point| {
        *comp
            .iter()
            .min_by(|&&a, &&b| {
                net.position(a)
                    .distance_sq(target)
                    .total_cmp(&net.position(b).distance_sq(target))
            })
            .expect("non-empty component")
    };
    let (src, dst) = (corner(net.area().min()), corner(net.area().max()));

    let mut maint = InfoMaintainer::new(net.clone());
    println!(
        "initial network: {} nodes, {} with an unsafe type",
        net.len(),
        net.node_ids()
            .filter(|&u| !maint.tuple(u).fully_safe())
            .count()
    );

    // Kill 10% of the nodes in random order (sparing the endpoints).
    let mut rng = StdRng::seed_from_u64(0xdead);
    let mut victims: Vec<NodeId> = net.node_ids().filter(|&u| u != src && u != dst).collect();
    victims.shuffle(&mut rng);
    victims.truncate(60);

    println!(
        "\n{:<8} {:>9} {:>10} {:>12} {:>8}",
        "kill", "relabeled", "work items", "unsafe nodes", "hops"
    );
    for (i, &victim) in victims.iter().enumerate() {
        let report = maint.kill(victim);
        if !maint.network().connected(src, dst) {
            println!("network partitioned after kill #{i} — stopping");
            return;
        }
        if i % 10 == 0 || report.relabeled_nodes > 0 {
            let info = maint.info();
            let unsafe_count = maint
                .network()
                .node_ids()
                .filter(|&u| !maint.is_dead(u) && !info.tuple(u).fully_safe())
                .count();
            let r = Slgf2Router::new(&info).route(maint.network(), src, dst);
            println!(
                "{:<8} {:>9} {:>10} {:>12} {:>7}{}",
                format!("#{i} {victim}"),
                report.relabeled_nodes,
                report.work_items,
                unsafe_count,
                r.hops(),
                if r.delivered() { "" } else { " FAILED" }
            );
        }
    }

    println!(
        "\nafter {} kills: {} repairs, route still {} hops",
        victims.len(),
        maint.repairs(),
        Slgf2Router::new(&maint.info())
            .route(maint.network(), src, dst)
            .hops()
    );
}
