//! `sp-serve-load`: a multi-client load generator and checker for
//! `sp-served`.
//!
//! ```text
//! sp-serve-load (--addr HOST:PORT | --spawn) [--clients C] [--queries N]
//!               [--trace-every K] [--churn M] [--chaos SPEC] [--area A]
//!               [--no-shutdown]
//! ```
//!
//! Each client thread issues `N` deterministic queries (every `K`-th
//! with a hop trace); an optional churn thread applies `M`-node `MOVE`
//! batches the whole time, and `--chaos` injects one recipe at the
//! halfway mark. The run then cross-checks the server's `STATS`
//! against its own tally — total queries, delivered counts, and the
//! epoch invariant (every answer's epoch at most the final epoch,
//! nondecreasing per connection) — and exits nonzero on any mismatch.
//! With `--spawn` it launches a sibling `sp-served` on an ephemeral
//! port first and shuts it down after (the CI serve-smoke step).

use sp_core::ServiceScheme;
use sp_serve::ServeClient;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

#[derive(Clone)]
struct LoadArgs {
    addr: Option<String>,
    spawn: bool,
    clients: usize,
    queries: usize,
    trace_every: usize,
    churn: usize,
    chaos: Option<String>,
    area: f64,
    shutdown: bool,
}

impl Default for LoadArgs {
    fn default() -> LoadArgs {
        LoadArgs {
            addr: None,
            spawn: false,
            clients: 4,
            queries: 2500,
            trace_every: 16,
            churn: 0,
            chaos: None,
            area: 200.0,
            shutdown: true,
        }
    }
}

fn parse_args() -> LoadArgs {
    let mut out = LoadArgs::default();
    let mut args = std::env::args().skip(1);
    let need = |args: &mut dyn Iterator<Item = String>, what: &str| -> String {
        args.next().unwrap_or_else(|| {
            eprintln!("sp-serve-load: {what} needs a value");
            std::process::exit(2);
        })
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => out.addr = Some(need(&mut args, "--addr")),
            "--spawn" => out.spawn = true,
            "--clients" => out.clients = need(&mut args, "--clients").parse().unwrap_or(4),
            "--queries" => out.queries = need(&mut args, "--queries").parse().unwrap_or(2500),
            "--trace-every" => {
                out.trace_every = need(&mut args, "--trace-every").parse().unwrap_or(16)
            }
            "--churn" => out.churn = need(&mut args, "--churn").parse().unwrap_or(0),
            "--chaos" => out.chaos = Some(need(&mut args, "--chaos")),
            "--area" => out.area = need(&mut args, "--area").parse().unwrap_or(200.0),
            "--no-shutdown" => out.shutdown = false,
            "--help" | "-h" => {
                println!(
                    "usage: sp-serve-load (--addr HOST:PORT | --spawn) [--clients C] \
                     [--queries N] [--trace-every K] [--churn M] [--chaos SPEC] \
                     [--area A] [--no-shutdown]"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("sp-serve-load: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    if out.addr.is_none() && !out.spawn {
        eprintln!("sp-serve-load: need --addr or --spawn");
        std::process::exit(2);
    }
    out
}

/// Launches the sibling `sp-served` binary on an ephemeral port and
/// parses the announced address off its stdout.
fn spawn_server() -> (Child, String) {
    let me = std::env::current_exe().expect("current_exe");
    let served = me.with_file_name(if cfg!(windows) {
        "sp-served.exe"
    } else {
        "sp-served"
    });
    let mut child = Command::new(&served)
        .env("SP_SERVE_ADDR", "127.0.0.1:0")
        .stdout(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| {
            eprintln!("sp-serve-load: cannot spawn {}: {e}", served.display());
            std::process::exit(1);
        });
    let stdout = child.stdout.take().expect("child stdout piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    for line in &mut lines {
        let line = line.unwrap_or_default();
        if let Some(rest) = line.strip_prefix("sp-served listening on ") {
            let addr = rest.split_whitespace().next().unwrap_or("").to_owned();
            // Keep draining the pipe so the child never blocks on it.
            std::thread::spawn(move || for _ in lines {});
            return (child, addr);
        }
    }
    eprintln!("sp-serve-load: sp-served exited before announcing its address");
    std::process::exit(1);
}

/// Per-client tally, merged at the end.
#[derive(Default, Clone, Copy)]
struct Tally {
    queries: u64,
    delivered: u64,
    traced: u64,
    max_epoch: u64,
    epoch_regressions: u64,
    errors: u64,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    *state >> 11
}

fn client_run(addr: &str, id: usize, args: &LoadArgs, nodes: u32) -> Tally {
    let mut t = Tally::default();
    let mut client = match ServeClient::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("client {id}: connect failed: {e}");
            t.errors += 1;
            return t;
        }
    };
    let mut rng = 0x5EED_0000 + id as u64;
    let mut last_epoch = 0u64;
    let schemes = ServiceScheme::ALL;
    for k in 0..args.queries {
        let src = (lcg(&mut rng) % nodes as u64) as u32;
        let dst = (lcg(&mut rng) % nodes as u64) as u32;
        let scheme = schemes[k % schemes.len()];
        let trace = args.trace_every > 0 && k % args.trace_every == 0;
        match client.query(src, dst, scheme, trace) {
            Ok(reply) => {
                t.queries += 1;
                if reply.delivered() {
                    t.delivered += 1;
                }
                if trace {
                    t.traced += 1;
                    // The path is source-inclusive: hops == len - 1.
                    let path_len = reply.path.as_ref().map(|p| p.len()).unwrap_or(0);
                    if path_len == 0 || reply.hops as usize != path_len - 1 {
                        eprintln!(
                            "client {id}: trace length {path_len} disagrees with hops {}",
                            reply.hops
                        );
                        t.errors += 1;
                    }
                }
                if reply.epoch < last_epoch {
                    t.epoch_regressions += 1;
                }
                last_epoch = reply.epoch;
                t.max_epoch = t.max_epoch.max(reply.epoch);
            }
            Err(e) => {
                eprintln!("client {id}: query {k} failed: {e}");
                t.errors += 1;
            }
        }
    }
    t
}

/// Applies `MOVE` batches for the whole query phase: `churn` nodes per
/// batch, repositioned uniformly inside the area.
fn churn_run(addr: &str, args: &LoadArgs, nodes: u32, stop: &std::sync::Mutex<bool>) -> (u64, u64) {
    let mut client = match ServeClient::connect(addr) {
        Ok(c) => c,
        Err(_) => return (0, 1),
    };
    let mut rng = 0xC0FFEE_u64;
    let mut batches = 0u64;
    let mut errors = 0u64;
    let mut moves = Vec::with_capacity(args.churn);
    loop {
        if *stop.lock().unwrap_or_else(|p| p.into_inner()) {
            return (batches, errors);
        }
        moves.clear();
        for _ in 0..args.churn {
            let node = (lcg(&mut rng) % nodes as u64) as u32;
            let x = (lcg(&mut rng) % 10_000) as f64 / 10_000.0 * args.area;
            let y = (lcg(&mut rng) % 10_000) as f64 / 10_000.0 * args.area;
            moves.push((node, x, y));
        }
        match client.move_batch(&moves) {
            Ok(_) => batches += 1,
            Err(e) => {
                eprintln!("churn: move failed: {e}");
                errors += 1;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
}

fn main() {
    let args = parse_args();
    let (child, addr) = if args.spawn {
        let (child, addr) = spawn_server();
        (Some(child), addr)
    } else {
        (None, args.addr.clone().unwrap_or_default())
    };

    let mut probe = ServeClient::connect(&addr).unwrap_or_else(|e| {
        eprintln!("sp-serve-load: connect {addr}: {e}");
        std::process::exit(1);
    });
    let (epoch0, nodes, workers) = probe.info().unwrap_or_else(|e| {
        eprintln!("sp-serve-load: INFO failed: {e}");
        std::process::exit(1);
    });
    println!("target {addr}: nodes={nodes} workers={workers} epoch={epoch0}");

    let start = std::time::Instant::now();
    let stop_churn = std::sync::Mutex::new(false);
    let (tallies, churn_result) = std::thread::scope(|s| {
        let churn_handle = (args.churn > 0).then(|| {
            let (addr, args, stop) = (&addr, &args, &stop_churn);
            s.spawn(move || churn_run(addr, args, nodes, stop))
        });
        let handles: Vec<_> = (0..args.clients.max(1))
            .map(|id| {
                let (addr, args) = (&addr, &args);
                s.spawn(move || client_run(addr, id, args, nodes))
            })
            .collect();
        if let Some(spec) = &args.chaos {
            // Inject at roughly the halfway mark of the query phase.
            std::thread::sleep(std::time::Duration::from_millis(50));
            match probe.chaos(5, 99, spec) {
                Ok((epoch, clauses)) => {
                    println!("chaos {spec:?}: epoch={epoch} clauses={clauses}")
                }
                Err(e) => eprintln!("chaos {spec:?} failed: {e}"),
            }
        }
        let tallies: Vec<Tally> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        *stop_churn.lock().unwrap_or_else(|p| p.into_inner()) = true;
        let churn_result = churn_handle.map(|h| h.join().unwrap());
        (tallies, churn_result)
    });
    let elapsed = start.elapsed().as_secs_f64();

    let mut total = Tally::default();
    for t in &tallies {
        total.queries += t.queries;
        total.delivered += t.delivered;
        total.traced += t.traced;
        total.errors += t.errors;
        total.epoch_regressions += t.epoch_regressions;
        total.max_epoch = total.max_epoch.max(t.max_epoch);
    }
    let (churn_batches, churn_errors) = churn_result.unwrap_or((0, 0));
    total.errors += churn_errors;

    let stats = probe.stats().unwrap_or_else(|e| {
        eprintln!("sp-serve-load: STATS failed: {e}");
        std::process::exit(1);
    });
    let (final_epoch, _, _) = probe.info().unwrap_or((0, 0, 0));

    println!(
        "ran {} queries over {} clients in {elapsed:.2}s ({:.0} q/s), \
         delivered {} ({:.1}%), traced {}, churn batches {churn_batches}, \
         final epoch {final_epoch}",
        total.queries,
        args.clients.max(1),
        total.queries as f64 / elapsed.max(1e-9),
        total.delivered,
        100.0 * total.delivered as f64 / (total.queries.max(1)) as f64,
        total.traced,
    );
    println!(
        "server stats: queries={} delivered={} traced={} protocol_errors={} \
         move_batches={} p50={:.1}us p99={:.1}us",
        stats.stats.queries,
        stats.stats.delivered,
        stats.stats.traced,
        stats.stats.protocol_errors,
        stats.stats.move_batches,
        stats.stats.latency_p50 * 1e6,
        stats.stats.latency_p99 * 1e6,
    );

    let mut failed = false;
    let mut check = |ok: bool, what: &str| {
        if !ok {
            eprintln!("CHECK FAILED: {what}");
            failed = true;
        }
    };
    check(total.errors == 0, "no client or churn errors");
    check(
        total.epoch_regressions == 0,
        "per-connection answer epochs never regress",
    );
    check(
        total.max_epoch <= final_epoch,
        "no answer epoch exceeds the service epoch",
    );
    check(
        stats.stats.queries == total.queries,
        "server query count matches the client tally",
    );
    check(
        stats.stats.delivered == total.delivered,
        "server delivered count matches the client tally",
    );
    check(
        stats.stats.traced == total.traced,
        "server traced count matches the client tally",
    );
    check(
        stats.stats.protocol_errors == 0,
        "no protocol errors on a clean run",
    );
    check(
        stats.stats.move_batches == churn_batches,
        "server move-batch count matches the churn tally",
    );

    if args.shutdown || args.spawn {
        match probe.shutdown() {
            Ok(epoch) => println!("shutdown acknowledged at epoch {epoch}"),
            Err(e) => {
                eprintln!("CHECK FAILED: shutdown: {e}");
                failed = true;
            }
        }
    }
    if let Some(mut child) = child {
        match child.wait() {
            Ok(status) if status.success() => println!("sp-served exited cleanly"),
            Ok(status) => {
                eprintln!("CHECK FAILED: sp-served exited with {status}");
                failed = true;
            }
            Err(e) => {
                eprintln!("CHECK FAILED: waiting for sp-served: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("all checks passed");
}
