//! Baseline geographic routings for the straightpath reproduction.
//!
//! The paper's evaluation (§5) compares SLGF2 against three schemes; two
//! live in `sp-core` (LGF, SLGF). This crate supplies the third and its
//! substrate, both re-implemented from their original publications:
//!
//! * [`tent`] — the TENT rule of Fang, Gao & Guibas: local detection of
//!   stuck nodes (120° angular-gap test);
//! * [`boundhole`] — BOUNDHOLE: closed hole-boundary construction from
//!   every stuck node, deduplicated into a [`HoleAtlas`];
//! * [`gf`] — the GF baseline: greedy forwarding with hole-boundary
//!   recovery (and a Gabriel-face fallback/alternative);
//! * [`face`] — GFG/GPSR: greedy forwarding with *full* planar face
//!   routing (face changes included), the guaranteed-delivery scheme of
//!   Bose et al. \[2\] that the paper's perimeter phase descends from;
//! * [`hybrid`] — SLGF2-F: Algorithm 3 with the untried-sweep perimeter
//!   replaced by the FACE-2 walk — the paper's §6 future-work direction,
//!   realized (ablation A12).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boundhole;
pub mod face;
pub mod gf;
pub mod hybrid;
pub mod tent;

pub use boundhole::{pivot_ccw, pivot_dir, Boundary, HoleAtlas};
pub use face::GfgRouter;
pub use gf::{route_gf, GfRouter, RecoveryMode};
pub use hybrid::Slgf2FaceRouter;
pub use tent::{is_stuck_node, stuck_nodes, wide_gaps, AngularGap, TENT_THRESHOLD};
