//! The labeling process of Definition 1 (centralized fixed point).
//!
//! > "Initially, each healthy node u sets its status `S_i(u)` to 1. Any
//! > status, say `S_i(u)`, will change to unsafe if there is no type-i
//! > safe neighbor in the type-i forwarding zone; that is,
//! > `∀v ∈ N(u) ∩ Q_i(u), S_i(v) = 0`."
//!
//! The update is monotone (bits only flip safe → unsafe), so iterating
//! from `(1,1,1,1)` everywhere converges to the *greatest* fixed point.
//! We iterate in synchronous (Jacobi) sweeps, mirroring the paper's
//! round-based system, so the reported round count is comparable with the
//! distributed protocol in [`crate::distributed`].
//!
//! Edge nodes of the interest area are *pinned* to `(1,1,1,1)` (§3: "each
//! edge node will always keep its status tuple as (1,1,1,1)"), preventing
//! the area border from cascading unsafe labels inward.

use crate::SafetyTuple;
use sp_geom::Quadrant;
use sp_net::{edge_nodes::edge_node_mask, Network, NodeId};

/// The stabilized safety tuples of every node, plus convergence metadata.
#[derive(Debug, Clone)]
pub struct SafetyMap {
    tuples: Vec<SafetyTuple>,
    pinned: Vec<bool>,
    rounds: usize,
}

impl SafetyMap {
    /// Runs Definition 1 to its fixed point over `net`, pinning the
    /// interest-area edge nodes found with margin = radio radius.
    pub fn label(net: &Network) -> SafetyMap {
        let pinned = edge_node_mask(net, net.radius());
        SafetyMap::label_with_pinned(net, pinned)
    }

    /// Runs Definition 1 with an explicit pinned mask (exposed for tests
    /// and for studying the border-effect ablation).
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != net.len()`.
    pub fn label_with_pinned(net: &Network, pinned: Vec<bool>) -> SafetyMap {
        assert_eq!(pinned.len(), net.len(), "pinned mask must cover all nodes");
        let n = net.len();
        let mut tuples = vec![SafetyTuple::all_safe(); n];
        let mut rounds = 0;
        loop {
            let mut next = tuples.clone();
            let mut changed = false;
            for u in net.node_ids() {
                if pinned[u.index()] {
                    continue;
                }
                let pu = net.position(u);
                for q in Quadrant::ALL {
                    if !tuples[u.index()].is_safe(q) {
                        continue;
                    }
                    let has_safe_forward = net.neighbors(u).iter().any(|&v| {
                        Quadrant::of(pu, net.position(v)) == Some(q) && tuples[v.index()].is_safe(q)
                    });
                    if !has_safe_forward {
                        next[u.index()].mark_unsafe(q);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
            tuples = next;
            rounds += 1;
        }
        SafetyMap {
            tuples,
            pinned,
            rounds,
        }
    }

    /// Builds a map directly from tuples (used by the distributed
    /// protocol once it quiesces).
    pub fn from_tuples(tuples: Vec<SafetyTuple>, pinned: Vec<bool>, rounds: usize) -> SafetyMap {
        assert_eq!(tuples.len(), pinned.len());
        SafetyMap {
            tuples,
            pinned,
            rounds,
        }
    }

    /// `S_i(u)`.
    #[inline]
    pub fn is_safe(&self, u: NodeId, q: Quadrant) -> bool {
        self.tuples[u.index()].is_safe(q)
    }

    /// The whole tuple of `u`.
    #[inline]
    pub fn tuple(&self, u: NodeId) -> SafetyTuple {
        self.tuples[u.index()]
    }

    /// All tuples, indexed by node id.
    pub fn tuples(&self) -> &[SafetyTuple] {
        &self.tuples
    }

    /// Whether `u` was pinned as an interest-area edge node.
    pub fn is_pinned(&self, u: NodeId) -> bool {
        self.pinned[u.index()]
    }

    /// The pinned mask.
    pub fn pinned(&self) -> &[bool] {
        &self.pinned
    }

    /// Synchronous rounds until the fixed point stabilized.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Ids of nodes unsafe in `q`, ascending.
    pub fn unsafe_nodes(&self, q: Quadrant) -> Vec<NodeId> {
        self.tuples
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_safe(q))
            .map(|(i, _)| NodeId::new(i))
            .collect()
    }

    /// Count of nodes with at least one unsafe type.
    pub fn partially_unsafe_count(&self) -> usize {
        self.tuples.iter().filter(|t| !t.fully_safe()).count()
    }

    /// Verifies the Definition-1 fixed point (used by tests and
    /// debug assertions):
    ///
    /// * an unpinned node safe in `q` has a type-`q` safe neighbor in
    ///   `Q_q(u)`;
    /// * a node unsafe in `q` has **no** type-`q` safe neighbor in
    ///   `Q_q(u)` (i.e. flipping it back would violate Definition 1).
    ///
    /// Returns the first violating `(node, quadrant)` if any.
    pub fn check_fixed_point(&self, net: &Network) -> Option<(NodeId, Quadrant)> {
        for u in net.node_ids() {
            let pu = net.position(u);
            for q in Quadrant::ALL {
                let has_safe_forward = net
                    .neighbors(u)
                    .iter()
                    .any(|&v| Quadrant::of(pu, net.position(v)) == Some(q) && self.is_safe(v, q));
                let safe = self.is_safe(u, q);
                if self.pinned[u.index()] {
                    if !safe {
                        return Some((u, q));
                    }
                    continue;
                }
                if safe && !has_safe_forward {
                    return Some((u, q)); // should have been labeled unsafe
                }
                if !safe && has_safe_forward {
                    return Some((u, q)); // labeled too aggressively
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn area() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// Fig. 3(a)-style scenario: a wedge of nodes whose NE quadrants are
    /// empty, so type-1 unsafety cascades backward.
    ///
    /// Layout (radius 15):
    /// ```text
    ///   u(10,10) -- u1(20,18) / u2(18,20) -- (nothing further NE)
    ///   plus a pinned far-east node so the rest of the tuple stays sane
    /// ```
    fn wedge() -> (Network, Vec<bool>) {
        let net = Network::from_positions(
            vec![
                Point::new(10.0, 10.0), // 0 = u
                Point::new(20.0, 18.0), // 1 = u1 (stuck: empty NE)
                Point::new(18.0, 20.0), // 2 = u2 (stuck: empty NE)
            ],
            15.0,
            area(),
        );
        // Nothing pinned: we want the raw cascade.
        let pinned = vec![false; 3];
        (net, pinned)
    }

    #[test]
    fn stuck_nodes_labeled_in_first_round_then_cascade() {
        let (net, pinned) = wedge();
        let map = SafetyMap::label_with_pinned(&net, pinned);
        // u1 and u2 have empty type-1 forwarding zones -> unsafe.
        assert!(!map.is_safe(NodeId(1), Quadrant::I));
        assert!(!map.is_safe(NodeId(2), Quadrant::I));
        // u's only NE neighbors are u1, u2, both type-1 unsafe -> unsafe.
        assert!(!map.is_safe(NodeId(0), Quadrant::I));
        // The cascade needed at least two rounds.
        assert!(map.rounds() >= 2, "rounds = {}", map.rounds());
        assert!(map.check_fixed_point(&net).is_none());
    }

    #[test]
    fn pinned_nodes_never_flip() {
        let (net, _) = wedge();
        let map = SafetyMap::label_with_pinned(&net, vec![true; 3]);
        for u in net.node_ids() {
            assert!(map.tuple(u).fully_safe());
            assert!(map.is_pinned(u));
        }
        assert_eq!(map.rounds(), 0);
    }

    #[test]
    fn isolated_node_is_fully_unsafe() {
        let net = Network::from_positions(vec![Point::new(50.0, 50.0)], 10.0, area());
        let map = SafetyMap::label_with_pinned(&net, vec![false]);
        assert!(map.tuple(NodeId(0)).fully_unsafe());
        assert_eq!(map.unsafe_nodes(Quadrant::II), vec![NodeId(0)]);
        assert_eq!(map.partially_unsafe_count(), 1);
    }

    #[test]
    fn default_label_pins_the_hull() {
        let cfg = sp_net::DeploymentConfig::paper_default(500);
        let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);
        let map = SafetyMap::label(&net);
        assert!(map.check_fixed_point(&net).is_none());
        // In the paper's dense uniform regime most nodes are safe.
        let unsafe_frac = map.partially_unsafe_count() as f64 / net.len() as f64;
        assert!(
            unsafe_frac < 0.5,
            "IA deployment should be mostly safe, got {unsafe_frac}"
        );
    }

    #[test]
    fn safe_nodes_chain_to_destination_quadrantwise() {
        // Every safe-in-q node must have a safe-in-q successor in Q_q,
        // unless pinned: exactly the invariant behind Theorem 1.
        let cfg = sp_net::DeploymentConfig::paper_default(400);
        let net = Network::from_positions(cfg.deploy_uniform(8), cfg.radius, cfg.area);
        let map = SafetyMap::label(&net);
        for u in net.node_ids() {
            if map.is_pinned(u) {
                continue;
            }
            for q in Quadrant::ALL {
                if map.is_safe(u, q) {
                    let pu = net.position(u);
                    assert!(
                        net.neighbors(u).iter().any(|&v| {
                            Quadrant::of(pu, net.position(v)) == Some(q) && map.is_safe(v, q)
                        }),
                        "safe node {u} lacks a safe successor in {q}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "pinned mask must cover all nodes")]
    fn pinned_mask_length_checked() {
        let (net, _) = wedge();
        let _ = SafetyMap::label_with_pinned(&net, vec![false; 2]);
    }
}
