//! Terminal line charts for reproduction figures.
//!
//! Renders an [`sp_metrics::Figure`] as a fixed-size character grid:
//! one marker glyph per series, a y-axis with min/max labels, an x-axis
//! listing the swept values, and a legend. Good enough to eyeball the
//! *shape* claims of Figs. 5–7 (who wins, by how much, where the curves
//! converge) straight from `repro-figures` output.

use sp_metrics::Figure;
use std::fmt::Write as _;

/// Size and style options of [`render_chart`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChartOptions {
    /// Plot-area width in characters (axes excluded).
    pub width: usize,
    /// Plot-area height in characters.
    pub height: usize,
}

impl Default for ChartOptions {
    fn default() -> ChartOptions {
        ChartOptions {
            width: 64,
            height: 16,
        }
    }
}

/// Marker glyphs assigned to series in order.
const MARKERS: [char; 8] = ['o', '+', 'x', '*', '#', '@', '%', '&'];

/// Renders `fig` as a multi-line string chart.
///
/// Series beyond the eighth reuse markers. Empty figures render a title
/// and a note instead of a grid.
///
/// ```
/// use sp_metrics::{Figure, Series};
/// use sp_viz::ascii::{render_chart, ChartOptions};
///
/// let mut fig = Figure::new("demo", "nodes", "hops");
/// let mut s = Series::new("SLGF2");
/// s.push(400.0, 12.0);
/// s.push(800.0, 9.0);
/// fig.push_series(s);
/// let chart = render_chart(&fig, ChartOptions::default());
/// assert!(chart.contains("demo"));
/// assert!(chart.contains("o SLGF2"));
/// ```
pub fn render_chart(fig: &Figure, opts: ChartOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", fig.title);

    let points: Vec<(f64, f64)> = fig
        .series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() || opts.width < 2 || opts.height < 2 {
        out.push_str("  (no data)\n");
        return out;
    }

    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    if x_max == x_min {
        x_max = x_min + 1.0;
    }
    if y_max == y_min {
        y_max = y_min + 1.0;
    }
    // A little headroom so the top marker is not glued to the frame.
    let y_pad = (y_max - y_min) * 0.05;
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);

    let w = opts.width;
    let h = opts.height;
    let mut grid = vec![vec![' '; w]; h];
    for (si, series) in fig.series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        // Connect consecutive points with interpolated steps so trends
        // read as lines, then stamp markers on the data points.
        for pair in series.points.windows(2) {
            let steps = w * 2;
            for k in 0..=steps {
                let t = k as f64 / steps as f64;
                let x = pair[0].0 + (pair[1].0 - pair[0].0) * t;
                let y = pair[0].1 + (pair[1].1 - pair[0].1) * t;
                let (cx, cy) = cell(x, y, x_min, x_max, y_lo, y_hi, w, h);
                if grid[cy][cx] == ' ' {
                    grid[cy][cx] = '.';
                }
            }
        }
        for &(x, y) in &series.points {
            let (cx, cy) = cell(x, y, x_min, x_max, y_lo, y_hi, w, h);
            grid[cy][cx] = marker;
        }
    }

    let y_label_width = 10usize;
    let _ = writeln!(
        out,
        "{:>y_label_width$} ┌{}┐",
        format!("{y_max:.2}"),
        "─".repeat(w)
    );
    for (row_idx, row) in grid.iter().enumerate() {
        let label = if row_idx == h - 1 {
            format!("{y_min:.2}")
        } else {
            String::new()
        };
        let line: String = row.iter().collect();
        let _ = writeln!(out, "{label:>y_label_width$} │{line}│");
    }
    let _ = writeln!(out, "{:>y_label_width$} └{}┘", "", "─".repeat(w));
    let _ = writeln!(
        out,
        "{:>y_label_width$}  {x_min:<10.0}{:^mid$}{x_max:>10.0}",
        "",
        &fig.x_label,
        mid = w.saturating_sub(20)
    );

    out.push_str("  legend: ");
    for (si, series) in fig.series.iter().enumerate() {
        let marker = MARKERS[si % MARKERS.len()];
        let _ = write!(out, "{marker} {}   ", series.label);
    }
    out.push('\n');
    out
}

/// Maps a data point to a grid cell (row 0 is the top).
#[allow(clippy::too_many_arguments)] // plain plot-geometry plumbing
fn cell(
    x: f64,
    y: f64,
    x_min: f64,
    x_max: f64,
    y_lo: f64,
    y_hi: f64,
    w: usize,
    h: usize,
) -> (usize, usize) {
    let fx = ((x - x_min) / (x_max - x_min)).clamp(0.0, 1.0);
    let fy = ((y - y_lo) / (y_hi - y_lo)).clamp(0.0, 1.0);
    let cx = (fx * (w - 1) as f64).round() as usize;
    let cy = ((1.0 - fy) * (h - 1) as f64).round() as usize;
    (cx.min(w - 1), cy.min(h - 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_metrics::Series;

    fn sample_figure() -> Figure {
        let mut fig = Figure::new("Fig. 6(a) average hops (IA model)", "nodes", "hops");
        let mut gf = Series::new("GF");
        let mut slgf2 = Series::new("SLGF2");
        for (i, n) in (400..=800).step_by(100).enumerate() {
            gf.push(n as f64, 14.0 - i as f64 * 0.5);
            slgf2.push(n as f64, 11.0 - i as f64 * 0.4);
        }
        fig.push_series(gf);
        fig.push_series(slgf2);
        fig
    }

    #[test]
    fn chart_contains_title_axes_and_legend() {
        let chart = render_chart(&sample_figure(), ChartOptions::default());
        assert!(chart.contains("Fig. 6(a)"));
        assert!(chart.contains("o GF"));
        assert!(chart.contains("+ SLGF2"));
        assert!(chart.contains("400"));
        assert!(chart.contains("800"));
        assert!(chart.contains("nodes"));
        // Frame is drawn.
        assert!(chart.contains('┌') && chart.contains('┘'));
    }

    #[test]
    fn markers_land_in_the_grid() {
        let chart = render_chart(&sample_figure(), ChartOptions::default());
        // Every series marker appears at least as often as its points.
        assert!(chart.matches('o').count() >= 5);
        assert!(chart.matches('+').count() >= 5);
    }

    #[test]
    fn higher_series_renders_above_lower() {
        let mut fig = Figure::new("t", "x", "y");
        let mut hi = Series::new("hi");
        hi.push(0.0, 10.0);
        hi.push(1.0, 10.0);
        let mut lo = Series::new("lo");
        lo.push(0.0, 0.0);
        lo.push(1.0, 0.0);
        fig.push_series(hi);
        fig.push_series(lo);
        let chart = render_chart(
            &fig,
            ChartOptions {
                width: 20,
                height: 10,
            },
        );
        let hi_row = chart
            .lines()
            .position(|l| l.contains('o'))
            .expect("hi marker");
        let lo_row = chart
            .lines()
            .position(|l| l.contains('+'))
            .expect("lo marker");
        assert!(hi_row < lo_row, "hi at {hi_row}, lo at {lo_row}");
    }

    #[test]
    fn empty_figure_degrades_gracefully() {
        let fig = Figure::new("empty", "x", "y");
        let chart = render_chart(&fig, ChartOptions::default());
        assert!(chart.contains("empty"));
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn single_point_series_renders() {
        let mut fig = Figure::new("one", "x", "y");
        let mut s = Series::new("S");
        s.push(5.0, 5.0);
        fig.push_series(s);
        let chart = render_chart(&fig, ChartOptions::default());
        assert!(chart.contains('o'));
    }

    #[test]
    fn tiny_grid_is_rejected() {
        let chart = render_chart(
            &sample_figure(),
            ChartOptions {
                width: 1,
                height: 1,
            },
        );
        assert!(chart.contains("(no data)"));
    }
}
