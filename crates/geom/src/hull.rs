//! Convex hulls and polygon predicates — the "hull algorithm" of §3.
//!
//! The paper assumes "the interest area … can easily be built by the hull
//! algorithm" and pins every *edge node* to the safe tuple `(1,1,1,1)` so
//! that the boundary of the deployment never triggers unsafe cascades.
//! `sp-net` uses [`convex_hull`] to find those edge nodes;
//! [`point_in_polygon`] supports irregular forbidden areas in the FA
//! deployment model.

use crate::Point;

/// Indices of the convex hull of `points`, counter-clockwise, starting
/// from the lexicographically smallest point (Andrew's monotone chain).
///
/// Collinear points on hull edges are *excluded* (strict hull). Degenerate
/// inputs: fewer than three distinct points return all distinct points.
///
/// ```
/// use sp_geom::{convex_hull, Point};
/// let pts = [
///     Point::new(0.0, 0.0),
///     Point::new(4.0, 0.0),
///     Point::new(4.0, 4.0),
///     Point::new(0.0, 4.0),
///     Point::new(2.0, 2.0), // interior
/// ];
/// let hull = convex_hull(&pts);
/// assert_eq!(hull, vec![0, 1, 2, 3]);
/// ```
pub fn convex_hull(points: &[Point]) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..points.len()).collect();
    idx.sort_by(|&a, &b| points[a].total_cmp(&points[b]));
    idx.dedup_by(|&mut a, &mut b| points[a] == points[b]);

    let n = idx.len();
    if n <= 2 {
        return idx;
    }

    let cross = |o: usize, a: usize, b: usize| -> f64 {
        (points[a] - points[o]).cross(points[b] - points[o])
    };

    let mut hull: Vec<usize> = Vec::with_capacity(2 * n);
    // Lower hull.
    for &i in &idx {
        while hull.len() >= 2 && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 0.0 {
            hull.pop();
        }
        hull.push(i);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &i in idx.iter().rev().skip(1) {
        while hull.len() >= lower_len && cross(hull[hull.len() - 2], hull[hull.len() - 1], i) <= 0.0
        {
            hull.pop();
        }
        hull.push(i);
    }
    hull.pop(); // last point == first point
    hull
}

/// Even–odd point-in-polygon test, border treated as inside (within the
/// crossing tolerance of the ray-cast).
///
/// `polygon` is a closed loop given without the repeated first vertex.
///
/// ```
/// use sp_geom::{point_in_polygon, Point};
/// let square = [
///     Point::new(0.0, 0.0),
///     Point::new(10.0, 0.0),
///     Point::new(10.0, 10.0),
///     Point::new(0.0, 10.0),
/// ];
/// assert!(point_in_polygon(Point::new(5.0, 5.0), &square));
/// assert!(!point_in_polygon(Point::new(15.0, 5.0), &square));
/// ```
pub fn point_in_polygon(p: Point, polygon: &[Point]) -> bool {
    let n = polygon.len();
    if n < 3 {
        return false;
    }
    // Border check first so edges count as inside deterministically.
    for i in 0..n {
        let a = polygon[i];
        let b = polygon[(i + 1) % n];
        if crate::Segment::new(a, b).distance_to_point(p) < 1e-9 {
            return true;
        }
    }
    let mut inside = false;
    let mut j = n - 1;
    for i in 0..n {
        let a = polygon[i];
        let b = polygon[j];
        if (a.y > p.y) != (b.y > p.y) {
            let x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if p.x < x_at {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

/// Signed area of a polygon (positive when counter-clockwise).
///
/// `polygon` is a closed loop given without the repeated first vertex.
pub fn polygon_area(polygon: &[Point]) -> f64 {
    let n = polygon.len();
    if n < 3 {
        return 0.0;
    }
    let mut twice = 0.0;
    for i in 0..n {
        let a = polygon[i];
        let b = polygon[(i + 1) % n];
        twice += a.x * b.y - b.x * a.y;
    }
    twice / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hull_of_square_with_interior_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
            Point::new(2.0, 2.0),
            Point::new(1.0, 3.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        for &i in &hull {
            assert!(i < 4, "interior point {i} must not be on hull");
        }
    }

    #[test]
    fn hull_is_ccw() {
        let pts = [
            Point::new(1.0, 0.0),
            Point::new(3.0, 1.0),
            Point::new(2.0, 4.0),
            Point::new(-1.0, 2.0),
            Point::new(1.5, 1.5),
        ];
        let hull = convex_hull(&pts);
        let loop_pts: Vec<Point> = hull.iter().map(|&i| pts[i]).collect();
        assert!(polygon_area(&loop_pts) > 0.0, "hull must be CCW");
    }

    #[test]
    fn hull_excludes_collinear_edge_points() {
        let pts = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0), // on bottom edge
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        let hull = convex_hull(&pts);
        assert_eq!(hull.len(), 4);
        assert!(!hull.contains(&1));
    }

    #[test]
    fn degenerate_hulls() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&[Point::new(1.0, 1.0)]), vec![0]);
        let two = [Point::new(0.0, 0.0), Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&two).len(), 2);
        // Duplicates collapse.
        let dup = [Point::new(1.0, 1.0), Point::new(1.0, 1.0)];
        assert_eq!(convex_hull(&dup).len(), 1);
        // All collinear: hull is the two extremes... monotone chain keeps
        // the endpoints only.
        let line = [
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ];
        let hull = convex_hull(&line);
        assert!(hull.contains(&0) && hull.contains(&2));
    }

    #[test]
    fn point_in_polygon_concave() {
        // L-shaped polygon.
        let poly = [
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ];
        assert!(point_in_polygon(Point::new(1.0, 1.0), &poly));
        assert!(point_in_polygon(Point::new(1.0, 3.0), &poly));
        assert!(!point_in_polygon(Point::new(3.0, 3.0), &poly)); // notch
        assert!(point_in_polygon(Point::new(0.0, 2.0), &poly)); // border
    }

    #[test]
    fn polygon_area_sign_and_magnitude() {
        let ccw = [
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 3.0),
            Point::new(0.0, 3.0),
        ];
        assert_eq!(polygon_area(&ccw), 6.0);
        let cw: Vec<Point> = ccw.iter().rev().copied().collect();
        assert_eq!(polygon_area(&cw), -6.0);
        assert_eq!(polygon_area(&ccw[..2]), 0.0);
    }
}
