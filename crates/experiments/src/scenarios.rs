//! Executable versions of the paper's hand-drawn figures.
//!
//! Each constructor builds a small, fully deterministic network that
//! realizes one of the situations the paper argues with (Figs. 1–4),
//! together with its stabilized safety information and a canonical
//! source/destination pair. The scenario tests assert the behavior the
//! paper describes; the `paper_figures` example renders them as SVG.

use crate::{PreparedNetwork, Scheme};
use sp_core::{RouteResult, SafetyInfo};
use sp_geom::{Point, Rect};
use sp_net::{Network, NodeId};

/// One crafted paper scenario (an executable hand-drawn figure —
/// distinct from the deployment-generator [`crate::Scenario`] handles
/// the sweeps use).
#[derive(Debug, Clone)]
pub struct PaperScenario {
    /// Short identifier ("fig1a", "fig3", …).
    pub name: &'static str,
    /// What the paper uses the situation for.
    pub description: &'static str,
    /// The crafted network.
    pub net: Network,
    /// Stabilized safety information (explicit pinning, no hull
    /// heuristics — the scenarios control their own boundary effects).
    pub info: SafetyInfo,
    /// Canonical source.
    pub source: NodeId,
    /// Canonical destination.
    pub destination: NodeId,
}

impl PaperScenario {
    fn build(
        name: &'static str,
        description: &'static str,
        positions: Vec<Point>,
        radius: f64,
        pinned: Vec<bool>,
        source: usize,
        destination: usize,
    ) -> PaperScenario {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(200.0, 200.0));
        let net = Network::from_positions(positions, radius, area);
        let info = SafetyInfo::build_with_pinned(&net, pinned);
        PaperScenario {
            name,
            description,
            net,
            info,
            source: NodeId::new(source),
            destination: NodeId::new(destination),
        }
    }

    /// Routes the canonical pair under one scheme (structures are
    /// rebuilt per call; scenarios are tiny).
    pub fn route(&self, scheme: Scheme) -> RouteResult {
        let prepared = PreparedNetwork::new(self.net.clone());
        prepared.route(scheme, self.source, self.destination)
    }

    /// Routes with this scenario's own (explicitly pinned) information
    /// under SLGF2 — the canonical walk-through.
    pub fn route_slgf2(&self) -> RouteResult {
        use sp_core::{Routing, Slgf2Router};
        Slgf2Router::new(&self.info).route(&self.net, self.source, self.destination)
    }
}

/// Fig. 1(a): intertwined local minima. A diagonal trap chain sits on
/// the straight line from `s` to `d`; behind its tip, a *second* trap
/// catches routings that escape the first one blindly toward the
/// destination. The safe corridor flanks both along the southeast.
///
/// Greedy-style routings (LGF) dive into the first trap, detour, and
/// meet the second blocking area — the "mutual impact of blocking
/// areas" the paper's §2 discusses. SLGF2's labeling marks *both* traps
/// unsafe, so safe forwarding takes the corridor immediately.
pub fn fig1a_intertwined_minima() -> PaperScenario {
    let mut positions = vec![
        Point::new(20.0, 20.0), // 0 = s
        // First trap: the diagonal chain toward d.
        Point::new(32.0, 32.0), // 1
        Point::new(44.0, 44.0), // 2
        Point::new(56.0, 56.0), // 3 = first trap tip
        // Second trap: hangs northeast off the corridor's middle, dead
        // toward d — a second unsafe area on the packet's way.
        Point::new(96.0, 72.0),  // 4
        Point::new(108.0, 84.0), // 5 = second trap tip
    ];
    // Safe corridor along the southeast flank, reaching d (every hop
    // within the 17 m radius, strictly northeast so the chain stays
    // type-1 safe).
    for (x, y) in [
        (34.0, 22.0),   // 6
        (47.0, 26.0),   // 7
        (60.0, 32.0),   // 8
        (72.0, 40.0),   // 9
        (84.0, 50.0),   // 10
        (96.0, 60.0),   // 11
        (108.0, 71.0),  // 12
        (119.0, 83.0),  // 13
        (128.0, 96.0),  // 14
        (135.0, 108.0), // 15
    ] {
        positions.push(Point::new(x, y));
    }
    positions.push(Point::new(140.0, 118.0)); // 16 = d
    let n = positions.len();
    let mut pinned = vec![false; n];
    pinned[16] = true; // d anchors the safe chains
    PaperScenario::build(
        "fig1a",
        "intertwined local minima: two blocking areas on the way (Fig. 1(a))",
        positions,
        17.0,
        pinned,
        0,
        16,
    )
}

/// Fig. 3: the labeling wedge. A type-1 unsafe pocket whose two chains
/// (`u^{(1)}` east, `u^{(2)}` north) bound the estimate `E_1(u)`.
pub fn fig3_labeling_wedge() -> PaperScenario {
    let positions = vec![
        Point::new(10.0, 10.0), // 0 = u
        Point::new(22.0, 15.0), // 1 first-chain hop
        Point::new(15.0, 22.0), // 2 last-chain hop
        Point::new(20.0, 34.0), // 3 = u^(2) (north tip)
        Point::new(34.0, 20.0), // 4 = u^(1) (east tip)
    ];
    let pinned = vec![false; 5];
    PaperScenario::build(
        "fig3",
        "type-1 unsafe wedge with chain endpoints u(1)/u(2) (Fig. 3)",
        positions,
        17.0,
        pinned,
        0,
        4,
    )
}

/// Fig. 4(d): backup-path routing. The source sits at the southwest tip
/// of a type-1 unsafe wedge; a pinned-safe corridor around the wedge's
/// east side carries the packet until safe forwarding resumes.
pub fn fig4d_backup_path() -> PaperScenario {
    let positions = vec![
        Point::new(10.0, 10.0), // 0 = s (type-1 unsafe)
        Point::new(22.0, 15.0), // 1 wedge
        Point::new(15.0, 22.0), // 2 wedge
        Point::new(20.0, 34.0), // 3 wedge tip N
        Point::new(34.0, 20.0), // 4 wedge tip E
        Point::new(25.0, 4.0),  // 5 corridor
        Point::new(40.0, 6.0),  // 6 corridor
        Point::new(52.0, 18.0), // 7 corridor
        Point::new(56.0, 33.0), // 8 corridor
        Point::new(60.0, 47.0), // 9 = d
    ];
    let mut pinned = vec![false; 10];
    for p in pinned.iter_mut().skip(5) {
        *p = true;
    }
    PaperScenario::build(
        "fig4d",
        "backup-path escort around a type-1 unsafe area (Fig. 4(d))",
        positions,
        17.0,
        pinned,
        0,
        9,
    )
}

/// Fig. 4(e): the cautious perimeter case. The source's pocket has the
/// all-unsafe tuple `(0,0,0,0)` because the destination's side of the
/// network is disconnected — "the network may have disconnected" — and
/// the routing must fail finitely instead of looping.
pub fn fig4e_disconnected_pocket() -> PaperScenario {
    let positions = vec![
        Point::new(20.0, 20.0),   // 0 = s
        Point::new(30.0, 24.0),   // 1 pocket
        Point::new(24.0, 30.0),   // 2 pocket
        Point::new(150.0, 150.0), // 3 = d (unreachable)
        Point::new(160.0, 158.0), // 4 d's companion
    ];
    let pinned = vec![false; 5];
    PaperScenario::build(
        "fig4e",
        "all-unsafe source pocket, destination disconnected (Fig. 4(e))",
        positions,
        15.0,
        pinned,
        0,
        3,
    )
}

/// All crafted scenarios, in paper order.
pub fn all_scenarios() -> Vec<PaperScenario> {
    vec![
        fig1a_intertwined_minima(),
        fig3_labeling_wedge(),
        fig4d_backup_path(),
        fig4e_disconnected_pocket(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_core::{RouteOutcome, RoutePhase, Routing, SlgfRouter};
    use sp_geom::Quadrant;

    #[test]
    fn fig1a_traps_are_unsafe_and_corridor_safe() {
        let sc = fig1a_intertwined_minima();
        for t in [1, 2, 3, 4, 5] {
            assert!(
                !sc.info.is_safe(NodeId(t), Quadrant::I),
                "trap node n{t} must be type-1 unsafe"
            );
        }
        for g in 6..=15 {
            assert!(
                sc.info.is_safe(NodeId(g), Quadrant::I),
                "corridor node n{g} must be type-1 safe"
            );
        }
    }

    #[test]
    fn fig1a_slgf2_avoids_both_traps_and_lgf_dives() {
        let sc = fig1a_intertwined_minima();
        let r2 = sc.route_slgf2();
        assert!(r2.delivered(), "{:?}", r2.outcome);
        assert_eq!(r2.perimeter_entries, 0, "phases {:?}", r2.phases);
        for t in [1, 2, 3, 4, 5] {
            assert!(!r2.path.contains(&NodeId(t)), "SLGF2 path {:?}", r2.path);
        }
        // LGF dives into the first trap and — with the tip a dead end
        // whose only neighbor is already tried — loses the packet.
        let r1 = sc.route(Scheme::Lgf);
        assert!(
            r1.path.contains(&NodeId(3)),
            "LGF must dive into the first trap: {:?}",
            r1.path
        );
        assert!(!r1.delivered(), "{:?}", r1.outcome);
    }

    #[test]
    fn fig3_estimate_matches_the_paper() {
        let sc = fig3_labeling_wedge();
        let est = sc
            .info
            .estimate(NodeId(0), Quadrant::I)
            .expect("u is type-1 unsafe");
        assert_eq!(est.first_far, NodeId(4), "u(1) is the east tip");
        assert_eq!(est.last_far, NodeId(3), "u(2) is the north tip");
        assert_eq!(
            est.rect,
            Rect::from_corners(Point::new(10.0, 10.0), Point::new(34.0, 34.0))
        );
    }

    #[test]
    fn fig4d_backup_phase_is_exercised() {
        let sc = fig4d_backup_path();
        let r = sc.route_slgf2();
        assert!(r.delivered(), "{:?}", r.outcome);
        assert!(r.backup_entries >= 1, "phases {:?}", r.phases);
        assert_eq!(r.perimeter_entries, 0);
        assert!(r.hops_in_phase(RoutePhase::Backup) >= 1);
        // SLGF (no backup phase) needs perimeter recovery instead.
        let rs = SlgfRouter::new(&sc.info).route(&sc.net, sc.source, sc.destination);
        assert!(rs.perimeter_entries >= 1, "phases {:?}", rs.phases);
    }

    #[test]
    fn fig4e_fails_finitely_with_all_unsafe_source() {
        let sc = fig4e_disconnected_pocket();
        assert!(sc.info.tuple(sc.source).fully_unsafe());
        let r = sc.route_slgf2();
        assert!(
            matches!(r.outcome, RouteOutcome::Stuck(_)),
            "{:?}",
            r.outcome
        );
        assert!(r.hops() <= 4, "pocket tour must be short: {}", r.hops());
    }

    #[test]
    fn all_scenarios_have_distinct_names() {
        let scenarios = all_scenarios();
        assert_eq!(scenarios.len(), 4);
        let mut names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 4);
        for sc in &scenarios {
            assert!(!sc.description.is_empty());
            assert!(sc.net.len() >= 5);
        }
    }
}
