//! Property tests for the parallel + incremental `SpatialIndex` paths:
//! incremental move batches must be indistinguishable from a full
//! brute-force rebuild, and row-sharded adjacency must be bit-identical
//! to the serial scan at every thread count.

use proptest::prelude::*;
use sp_geom::Point;
use sp_net::{deploy::DeploymentConfig, Network, NodeId, SpatialIndex};

fn paper_cfg(n: usize) -> DeploymentConfig {
    DeploymentConfig::paper_default(n)
}

/// Deterministic LCG step (the same constants the unit tests use).
fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// A uniform draw inside `cfg.area` from two LCG steps.
fn draw_point(state: &mut u64, cfg: &DeploymentConfig) -> Point {
    *state = lcg(*state);
    let fx = ((*state >> 16) % 10_000) as f64 / 10_000.0;
    *state = lcg(*state);
    let fy = ((*state >> 16) % 10_000) as f64 / 10_000.0;
    let min = cfg.area.min();
    Point::new(
        min.x + fx * cfg.area.width(),
        min.y + fy * cfg.area.height(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole invariant of the incremental path: after any number
    /// of random `move_point` batches repaired by
    /// `update_adjacency_for` (via `Network::apply_moves`), the network
    /// carries the same sorted edge set — node for node — as a full
    /// `from_positions_brute_force` rebuild at the final positions.
    #[test]
    fn incremental_moves_match_brute_force_rebuild(
        seed in 0u64..5_000,
        batches in 1usize..4,
        movers in 5usize..40,
    ) {
        let cfg = paper_cfg(220);
        let mut pos = cfg.deploy_uniform(seed);
        let mut net = Network::from_positions(pos.clone(), cfg.radius, cfg.area);
        let mut state = seed ^ 0xfeed_5eed;
        for _ in 0..batches {
            // Random movers; id collisions inside a batch are allowed
            // (apply_moves must tolerate duplicates).
            let mut moves = Vec::with_capacity(movers);
            for _ in 0..movers {
                state = lcg(state);
                let id = (state >> 33) as usize % pos.len();
                let p = draw_point(&mut state, &cfg);
                pos[id] = p;
                moves.push((NodeId::new(id), p));
            }
            net.apply_moves(&moves);
            let brute = Network::from_positions_brute_force(pos.clone(), cfg.radius, cfg.area);
            prop_assert_eq!(net.edge_count(), brute.edge_count());
            for u in net.node_ids() {
                prop_assert_eq!(
                    net.neighbors(u),
                    brute.neighbors(u),
                    "adjacency diverged at node {} after incremental batch",
                    u
                );
                prop_assert_eq!(net.position(u), brute.position(u));
            }
        }
    }

    /// The threaded incremental-repair path is bit-identical to the
    /// serial repair (and to a brute-force rebuild) at every thread
    /// count, including counts above the mover count (clamped).
    #[test]
    fn threaded_repair_matches_serial_repair(
        seed in 0u64..3_000,
        movers in 6usize..48,
    ) {
        let cfg = paper_cfg(260);
        let mut pos = cfg.deploy_uniform(seed);
        let base = Network::from_positions(pos.clone(), cfg.radius, cfg.area);
        let mut state = seed ^ 0x7e97_ab1e;
        let mut moves = Vec::with_capacity(movers);
        for _ in 0..movers {
            state = lcg(state);
            let id = (state >> 33) as usize % pos.len();
            let p = draw_point(&mut state, &cfg);
            pos[id] = p;
            moves.push((NodeId::new(id), p));
        }
        let mut serial = base.clone();
        serial.apply_moves_threaded(&moves, 1);
        let brute = Network::from_positions_brute_force(pos.clone(), cfg.radius, cfg.area);
        for u in serial.node_ids() {
            prop_assert_eq!(serial.neighbors(u), brute.neighbors(u), "serial repair at {}", u);
        }
        for threads in [2usize, 3, 8, 64] {
            let mut threaded = base.clone();
            threaded.apply_moves_threaded(&moves, threads);
            for u in threaded.node_ids() {
                prop_assert_eq!(
                    threaded.neighbors(u),
                    serial.neighbors(u),
                    "{}-thread repair diverged at node {}",
                    threads,
                    u
                );
            }
        }
    }

    /// Row-sharded parallel adjacency is bit-identical to the serial
    /// scan for every thread count, including counts far above the row
    /// count (clamped) and above the machine's core count.
    #[test]
    fn threaded_adjacency_equals_serial_across_thread_counts(seed in 0u64..5_000) {
        let cfg = paper_cfg(400);
        let pos = cfg.deploy_uniform(seed);
        let index = SpatialIndex::build(&pos, cfg.area, cfg.radius);
        let serial = index.adjacency_within(cfg.radius);
        for threads in [2usize, 3, 4, 8, 32] {
            prop_assert_eq!(
                &index.adjacency_within_threaded(cfg.radius, threads),
                &serial,
                "{}-thread adjacency diverged from serial",
                threads
            );
        }
    }

    /// The threaded scan also agrees with serial when the query radius
    /// differs from the grid cell size (wider offset windows).
    #[test]
    fn threaded_adjacency_handles_radius_above_cell_size(seed in 0u64..2_000) {
        let cfg = paper_cfg(150);
        let pos = cfg.deploy_uniform(seed);
        let index = SpatialIndex::build(&pos, cfg.area, cfg.radius / 2.5);
        let radius = cfg.radius;
        prop_assert_eq!(
            index.adjacency_within_threaded(radius, 4),
            index.adjacency_within(radius)
        );
    }
}

/// A mover batch above `PARALLEL_REPAIR_THRESHOLD` routes through the
/// auto-threaded repair path (`apply_moves` picks the thread count
/// itself) and still matches a from-scratch rebuild exactly.
#[test]
fn auto_threaded_repair_above_threshold_matches_rebuild() {
    let cfg = paper_cfg(2_000);
    let mut pos = cfg.deploy_uniform(7);
    let mut net = Network::from_positions(pos.clone(), cfg.radius, cfg.area);
    let movers = sp_net::PARALLEL_REPAIR_THRESHOLD + 100;
    let mut state = 0xbead_feedu64;
    let mut moves = Vec::with_capacity(movers);
    for _ in 0..movers {
        state = lcg(state);
        let id = (state >> 33) as usize % pos.len();
        let p = draw_point(&mut state, &cfg);
        pos[id] = p;
        moves.push((NodeId::new(id), p));
    }
    assert!(moves.len() >= sp_net::PARALLEL_REPAIR_THRESHOLD);
    net.apply_moves(&moves);
    let rebuilt = Network::from_positions(pos, cfg.radius, cfg.area);
    assert_eq!(net.edge_count(), rebuilt.edge_count());
    for u in net.node_ids() {
        assert_eq!(net.neighbors(u), rebuilt.neighbors(u), "node {u}");
    }
}

/// Incremental snapshots across a long mobility run stay identical to
/// from-scratch rebuilds (the `RandomWaypoint` integration of the same
/// invariant, at a deterministic seed).
#[test]
fn mobility_incremental_equals_full_rebuild_over_long_run() {
    let cfg = paper_cfg(300);
    let start = cfg.deploy_uniform(99);
    let mut rw = sp_net::RandomWaypoint::new(start, cfg.area, cfg.radius, 1.0, 3.0, 0.5, 99);
    for _ in 0..12 {
        rw.step(4.0);
        let full = rw.snapshot();
        let inc = rw.snapshot_incremental();
        assert_eq!(inc.edge_count(), full.edge_count());
        for u in full.node_ids() {
            assert_eq!(inc.neighbors(u), full.neighbors(u), "node {u}");
        }
    }
}
