//! The rule engine: four invariant families over the token stream.
//!
//! * `alloc` — no allocation in declared hot functions.
//! * `panic` / `index` — panic hygiene in library code, plus
//!   may-panic indexing inside hot functions.
//! * `concurrency` — every scope/cursor/thread-count idiom routes
//!   through `sp_sync`.
//! * `env` — every `SP_*` environment knob is registered in
//!   `sp_sync::knobs::ENV_KNOBS`, documented in the README, and read
//!   only through the registry.
//!
//! Escape hatch: `sp-analyze: allow(<rule>, <reason>)` in a comment on
//! the offending line or the line directly above waives that rule for
//! that line; attached to a `fn` declaration line it waives the rule
//! for the whole body. An allow without a reason is itself reported.

use crate::lexer::{lex, Kind, Lexed, Tok};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub file: String,
    pub line: usize,
    pub rule: &'static str,
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// The declared hot-function manifest: `[path-substring:]fn-name`
/// entries, one per line, `#` comments.
#[derive(Debug, Default, Clone)]
pub struct Manifest {
    entries: Vec<(Option<String>, String)>,
}

impl Manifest {
    /// Parses the manifest text. Unparseable lines are reported as
    /// errors, not silently skipped — a typo'd manifest entry would
    /// otherwise quietly stop protecting its function.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut entries = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (path, name) = match line.rsplit_once(':') {
                Some((p, n)) => (Some(p.trim().to_owned()), n.trim()),
                None => (None, line),
            };
            let ok =
                !name.is_empty() && name.chars().all(|c| c == '_' || c.is_ascii_alphanumeric());
            if !ok {
                return Err(format!(
                    "manifest line {}: malformed entry {raw:?} (expected [path-substring:]fn_name)",
                    lineno + 1
                ));
            }
            entries.push((path, name.to_owned()));
        }
        Ok(Manifest { entries })
    }

    /// True when `fn name` in the file at `rel` is declared hot.
    pub fn is_hot(&self, rel: &str, name: &str) -> bool {
        self.entries
            .iter()
            .any(|(path, entry)| entry == name && path.as_deref().is_none_or(|p| rel.contains(p)))
    }

    /// Number of declared entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no functions are declared hot.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An `allow(rule, reason)` escape hatch parsed from a comment.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Allow {
    line: usize,
    rule: String,
    has_reason: bool,
}

/// A lexed file plus everything the rules need: allow comments,
/// function regions, and `#[cfg(test)]` regions.
pub struct SourceFile {
    pub rel: String,
    lexed: Lexed,
    allows: Vec<Allow>,
    fns: Vec<FnRegion>,
    test_lines: Vec<(usize, usize)>,
}

/// A function item: its name, the line of its `fn` keyword, and the
/// token range of its body (inclusive of the braces).
#[derive(Debug, Clone)]
struct FnRegion {
    name: String,
    fn_line: usize,
    body: std::ops::Range<usize>,
}

impl SourceFile {
    pub fn new(rel: &str, src: &str) -> SourceFile {
        let lexed = lex(src);
        let allows = parse_allows(&lexed);
        let fns = fn_regions(&lexed.toks);
        let test_lines = cfg_test_line_ranges(&lexed.toks);
        SourceFile {
            rel: rel.to_owned(),
            lexed,
            allows,
            fns,
            test_lines,
        }
    }

    fn toks(&self) -> &[Tok] {
        &self.lexed.toks
    }

    /// True when `line` falls inside a `#[cfg(test)]` item.
    fn in_test_code(&self, line: usize) -> bool {
        self.test_lines
            .iter()
            .any(|&(lo, hi)| (lo..=hi).contains(&line))
    }

    /// True when the violation of `rule` at `line` is waived: an allow
    /// on the line, on the line above, or attached to the declaration
    /// line of the function whose body contains it.
    fn allowed(&self, rule: &str, line: usize) -> bool {
        let direct = self
            .allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || a.line + 1 == line));
        if direct {
            return true;
        }
        self.fns.iter().any(|f| {
            self.line_in_body(f, line)
                && self
                    .allows
                    .iter()
                    .any(|a| a.rule == rule && (a.line == f.fn_line || a.line + 1 == f.fn_line))
        })
    }

    fn line_in_body(&self, f: &FnRegion, line: usize) -> bool {
        let toks = self.toks();
        if f.body.is_empty() {
            return false;
        }
        let lo = toks[f.body.start].line;
        let hi = toks[f.body.end - 1].line;
        (lo..=hi).contains(&line)
    }

    fn diag(&self, out: &mut Vec<Diagnostic>, rule: &'static str, line: usize, message: String) {
        if !self.allowed(rule, line) {
            out.push(Diagnostic {
                file: self.rel.clone(),
                line,
                rule,
                message,
            });
        }
    }

    /// Reasonless allows: the escape hatch exists to carry a
    /// justification; an empty one is reported under the `allow` rule
    /// (which has no escape hatch of its own).
    pub fn check_allow_reasons(&self, out: &mut Vec<Diagnostic>) {
        for a in &self.allows {
            if !a.has_reason {
                out.push(Diagnostic {
                    file: self.rel.clone(),
                    line: a.line,
                    rule: "allow",
                    message: format!(
                        "allow({}) without a reason — write allow({}, why-this-is-fine)",
                        a.rule, a.rule
                    ),
                });
            }
        }
    }

    /// Rule `panic`: no `.unwrap()` / `.expect(…)` / `panic!` in
    /// library code outside tests.
    pub fn check_panic(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident || self.in_test_code(t.line) {
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].kind == Kind::Punct && toks[i - 1].text == ".";
            let next_is = |s: &str| {
                toks.get(i + 1)
                    .is_some_and(|n| n.kind == Kind::Punct && n.text == s)
            };
            if (t.text == "unwrap" || t.text == "expect") && prev_dot && next_is("(") {
                self.diag(
                    out,
                    "panic",
                    t.line,
                    format!(
                        ".{}() can panic in library code — return the error, \
                         or annotate why it cannot fire",
                        t.text
                    ),
                );
            } else if t.text == "panic" && next_is("!") {
                self.diag(
                    out,
                    "panic",
                    t.line,
                    "panic! in library code — return an error instead, \
                     or annotate why this is unreachable"
                        .to_owned(),
                );
            }
        }
    }

    /// Rules `alloc` and `index`, scoped to the bodies of manifest-
    /// declared hot functions.
    pub fn check_hot_paths(&self, manifest: &Manifest, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        for f in &self.fns {
            if !manifest.is_hot(&self.rel, &f.name) || self.in_test_code(f.fn_line) {
                continue;
            }
            for i in f.body.clone() {
                let t = &toks[i];
                let prev = i.checked_sub(1).map(|p| &toks[p]);
                let next = toks.get(i + 1);
                let next_is = |s: &str| next.is_some_and(|n| n.kind == Kind::Punct && n.text == s);
                let prev_is_dot = prev.is_some_and(|p| p.kind == Kind::Punct && p.text == ".");
                if t.kind == Kind::Ident {
                    let path_call = |head: &str, tail: &str| {
                        t.text == head
                            && toks.get(i + 1).is_some_and(|a| a.text == ":")
                            && toks.get(i + 2).is_some_and(|b| b.text == ":")
                            && toks.get(i + 3).is_some_and(|c| c.text == tail)
                    };
                    let alloc: Option<&str> =
                        if path_call("Vec", "new") || path_call("Vec", "with_capacity") {
                            Some("Vec construction")
                        } else if path_call("Box", "new") {
                            Some("Box::new")
                        } else if path_call("String", "new") || path_call("String", "from") {
                            Some("String construction")
                        } else if t.text == "vec" && next_is("!") {
                            Some("vec! literal")
                        } else if t.text == "format" && next_is("!") {
                            Some("format! allocation")
                        } else if (t.text == "to_vec" || t.text == "to_owned" || t.text == "clone")
                            && prev_is_dot
                            && next_is("(")
                        {
                            Some("owned copy")
                        } else {
                            None
                        };
                    if let Some(what) = alloc {
                        self.diag(
                            out,
                            "alloc",
                            t.line,
                            format!(
                                "{what} inside hot function `{}` — reuse a caller-provided \
                                 buffer, or annotate the cold branch",
                                f.name
                            ),
                        );
                    }
                } else if t.kind == Kind::Punct && t.text == "[" {
                    // `expr[...]`: an index expression follows an
                    // identifier, a close-paren, or a close-bracket.
                    // Slice types `[T]`, array literals, and
                    // attributes all have other predecessors.
                    let indexing = prev.is_some_and(|p| {
                        p.kind == Kind::Ident
                            || (p.kind == Kind::Punct && (p.text == ")" || p.text == "]"))
                    });
                    if indexing {
                        self.diag(
                            out,
                            "index",
                            t.line,
                            format!(
                                "indexing can panic inside hot function `{}` — use get(), \
                                 or annotate why the index is in bounds",
                                f.name
                            ),
                        );
                    }
                }
            }
        }
    }

    /// Rule `concurrency`: atomics, scoped threads, and thread-count
    /// probes belong to `sp_sync` alone.
    pub fn check_concurrency(&self, out: &mut Vec<Diagnostic>) {
        let toks = self.toks();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != Kind::Ident || self.in_test_code(t.line) {
                continue;
            }
            let prev_dot = i > 0 && toks[i - 1].kind == Kind::Punct && toks[i - 1].text == ".";
            let path_tail = |tail: &str| {
                toks.get(i + 1).is_some_and(|a| a.text == ":")
                    && toks.get(i + 2).is_some_and(|b| b.text == ":")
                    && toks.get(i + 3).is_some_and(|c| c.text == tail)
            };
            if t.text.starts_with("Atomic") && t.text.len() > "Atomic".len() {
                self.diag(
                    out,
                    "concurrency",
                    t.line,
                    format!(
                        "{} outside sp-sync — express the scan as an \
                         sp_sync::WorkQueue run instead of a hand-rolled cursor",
                        t.text
                    ),
                );
            } else if matches!(
                t.text.as_str(),
                "fetch_add" | "fetch_sub" | "compare_exchange" | "compare_exchange_weak"
            ) && prev_dot
            {
                self.diag(
                    out,
                    "concurrency",
                    t.line,
                    format!("atomic {} outside sp-sync — use sp_sync::WorkQueue", t.text),
                );
            } else if t.text == "thread" && (path_tail("scope") || path_tail("spawn")) {
                self.diag(
                    out,
                    "concurrency",
                    t.line,
                    "raw thread spawning outside sp-sync — run the work through \
                     sp_sync::WorkQueue"
                        .to_owned(),
                );
            } else if t.text == "available_parallelism" {
                self.diag(
                    out,
                    "concurrency",
                    t.line,
                    "thread counts come from sp_sync::configured_threads_for(<knob>), \
                     not raw available_parallelism"
                        .to_owned(),
                );
            }
        }
    }

    /// Rule `env`: `SP_*` names must be registered; reads go through
    /// the registry.
    pub fn check_env(
        &self,
        registered: &dyn Fn(&str) -> bool,
        is_registry_file: bool,
        out: &mut Vec<Diagnostic>,
    ) {
        let toks = self.toks();
        for (i, t) in toks.iter().enumerate() {
            if self.in_test_code(t.line) {
                continue;
            }
            let names: Vec<String> = match t.kind {
                Kind::Ident if is_knob_name(&t.text) => vec![t.text.clone()],
                Kind::Str => extract_knob_names(&t.text),
                _ => Vec::new(),
            };
            for name in names {
                if !registered(&name) {
                    self.diag(
                        out,
                        "env",
                        t.line,
                        format!(
                            "{name} is not declared in sp_sync::knobs::ENV_KNOBS — \
                             register it (and regenerate the README knob table)"
                        ),
                    );
                }
            }
            if is_registry_file {
                continue;
            }
            if t.kind == Kind::Ident
                && t.text == "env"
                && toks.get(i + 1).is_some_and(|a| a.text == ":")
                && toks.get(i + 2).is_some_and(|b| b.text == ":")
                && toks
                    .get(i + 3)
                    .is_some_and(|c| c.text == "var" || c.text == "var_os")
            {
                self.diag(
                    out,
                    "env",
                    t.line,
                    "raw env read — go through sp_sync::env_var / env_flag / \
                     configured_threads_for so the registry stays authoritative"
                        .to_owned(),
                );
            }
        }
    }

    /// Function names carrying an `#[inline]`-family attribute — the
    /// `--fix-manifest` seed set.
    pub fn inline_annotated_fns(&self) -> Vec<String> {
        let toks = self.toks();
        let mut out = Vec::new();
        for f in &self.fns {
            if self.in_test_code(f.fn_line) {
                continue;
            }
            // Walk backwards from the body over the signature to the
            // `fn` keyword, then look for `#[inline…]` right before
            // the item (possibly past doc attributes).
            let Some(fn_idx) = (0..f.body.start)
                .rev()
                .find(|&i| toks[i].kind == Kind::Ident && toks[i].text == "fn")
            else {
                continue;
            };
            let mut k = fn_idx;
            while k > 0 {
                let p = &toks[k - 1];
                if p.kind == Kind::Ident
                    && matches!(p.text.as_str(), "pub" | "const" | "unsafe" | "crate")
                    || (p.kind == Kind::Punct && matches!(p.text.as_str(), ")" | "("))
                {
                    k -= 1;
                    continue;
                }
                break;
            }
            if k >= 2
                && toks[k - 1].kind == Kind::Punct
                && toks[k - 1].text == "]"
                && (0..k - 1)
                    .rev()
                    .take(6)
                    .any(|j| toks[j].kind == Kind::Ident && toks[j].text == "inline")
            {
                out.push(f.name.clone());
            }
        }
        out
    }

    /// All non-test function names in the file (the traffic-layer seed
    /// set for `--fix-manifest`).
    pub fn all_fns(&self) -> Vec<String> {
        self.fns
            .iter()
            .filter(|f| !self.in_test_code(f.fn_line))
            .map(|f| f.name.clone())
            .collect()
    }
}

/// True for a complete `SP_…` knob identifier.
fn is_knob_name(text: &str) -> bool {
    let prefix = text.strip_prefix("SP").and_then(|r| r.strip_prefix('_'));
    prefix.is_some_and(|rest| {
        !rest.is_empty()
            && rest
                .chars()
                .all(|c| c == '_' || c.is_ascii_uppercase() || c.is_ascii_digit())
    })
}

/// Extracts `SP_…` knob names embedded in a string literal.
fn extract_knob_names(text: &str) -> Vec<String> {
    let bytes = text.as_bytes();
    let is_name_char = |b: u8| b == b'_' || b.is_ascii_uppercase() || b.is_ascii_digit();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let boundary = i == 0 || !is_name_char(bytes[i - 1]);
        if boundary && bytes[i..].starts_with(b"SP") {
            let mut end = i + 2;
            while end < bytes.len() && is_name_char(bytes[end]) {
                end += 1;
            }
            let candidate = &text[i..end];
            if is_knob_name(candidate) {
                out.push(candidate.to_owned());
                i = end;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses every `sp-analyze: allow(rule[, reason])` escape hatch.
fn parse_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for c in &lexed.comments {
        let mut rest = c.text.as_str();
        while let Some(at) = rest.find("sp-analyze:") {
            rest = &rest[at + "sp-analyze:".len()..];
            let Some(open) = rest.find("allow(") else {
                break;
            };
            let inner = &rest[open + "allow(".len()..];
            let Some(close) = inner.find(')') else {
                break;
            };
            let body = &inner[..close];
            let (rule, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), !why.trim().is_empty()),
                None => (body.trim(), false),
            };
            if !rule.is_empty() {
                out.push(Allow {
                    line: c.line,
                    rule: rule.to_owned(),
                    has_reason: reason,
                });
            }
            rest = &inner[close..];
        }
    }
    out
}

/// Finds every `fn name … { body }` item and its body's token range.
fn fn_regions(toks: &[Tok]) -> Vec<FnRegion> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let is_fn = toks[i].kind == Kind::Ident && toks[i].text == "fn";
        let name = is_fn
            .then(|| toks.get(i + 1))
            .flatten()
            .filter(|n| n.kind == Kind::Ident);
        let Some(name) = name else {
            i += 1;
            continue;
        };
        // Scan the signature for the body `{`: the first brace at
        // paren/bracket depth zero. A `;` first means a bodiless trait
        // method. (Braces cannot appear in signatures before the body:
        // const-generic defaults in `fn` items are not a thing here.)
        let mut depth = 0usize;
        let mut j = i + 2;
        let mut body_start = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == Kind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth = depth.saturating_sub(1),
                    "{" if depth == 0 => {
                        body_start = Some(j);
                        break;
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
            }
            j += 1;
        }
        let Some(start) = body_start else {
            i += 2;
            continue;
        };
        let end = match_brace(toks, start);
        out.push(FnRegion {
            name: name.text.clone(),
            fn_line: toks[i].line,
            body: start..end,
        });
        // Continue *inside* the body too: nested fns and closures may
        // also be manifest entries.
        i += 2;
    }
    out
}

/// Token index one past the `}` matching the `{` at `open`.
fn match_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

/// Line ranges covered by `#[cfg(test)]`(-containing) items.
fn cfg_test_line_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if !(toks[i].kind == Kind::Punct && toks[i].text == "#") {
            i += 1;
            continue;
        }
        if !(toks[i + 1].kind == Kind::Punct && toks[i + 1].text == "[") {
            i += 1;
            continue;
        }
        let attr_end = match_bracket(toks, i + 1);
        let body = &toks[i + 2..attr_end.saturating_sub(1)];
        let is_cfg_test = body.first().is_some_and(|t| t.text == "cfg")
            && body
                .iter()
                .any(|t| t.kind == Kind::Ident && t.text == "test");
        if !is_cfg_test {
            i = attr_end.max(i + 1);
            continue;
        }
        // The attribute gates the next item: its braces (skipping any
        // further attributes) bound the excluded region.
        let mut j = attr_end;
        while j < toks.len() {
            let t = &toks[j];
            if t.kind == Kind::Punct && t.text == "#" {
                // another attribute: skip it
                if toks.get(j + 1).is_some_and(|n| n.text == "[") {
                    j = match_bracket(toks, j + 1);
                    continue;
                }
            }
            if t.kind == Kind::Punct && t.text == "{" {
                let end = match_brace(toks, j);
                let last = end.saturating_sub(1).min(toks.len() - 1);
                out.push((toks[i].line, toks[last].line));
                j = end;
                break;
            }
            if t.kind == Kind::Punct && t.text == ";" {
                // `#[cfg(test)] use …;` — gate just that line.
                out.push((toks[i].line, t.line));
                break;
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
    out
}

/// Token index one past the `]` matching the `[` at `open`.
fn match_bracket(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.kind == Kind::Punct {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return k + 1;
                    }
                }
                _ => {}
            }
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knob_registry(name: &str) -> bool {
        sp_sync::knobs::knob(name).is_some()
    }

    fn lib_file(src: &str) -> SourceFile {
        SourceFile::new("crates/fake/src/lib.rs", src)
    }

    fn hot_manifest() -> Manifest {
        Manifest::parse("route_into\ncrates/fake/src/lib.rs:hand_step\n").unwrap()
    }

    #[test]
    fn manifest_parses_paths_comments_and_rejects_garbage() {
        let m =
            Manifest::parse("# comment\nroute_into\ncrates/core/src/slgf2.rs:safe_pick\n").unwrap();
        assert_eq!(m.len(), 2);
        assert!(m.is_hot("crates/baselines/src/gf.rs", "route_into"));
        assert!(m.is_hot("crates/core/src/slgf2.rs", "safe_pick"));
        assert!(!m.is_hot("crates/net/src/graph.rs", "safe_pick"));
        assert!(Manifest::parse("bad entry with spaces\n").is_err());
    }

    #[test]
    fn panic_rule_fires_outside_tests_only() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n\
                   #[cfg(test)]\nmod tests {\n    fn g(x: Option<u32>) { x.unwrap(); }\n}\n";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_panic(&mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
        assert_eq!(out[0].rule, "panic");
    }

    #[test]
    fn panic_rule_honors_allow_with_reason() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // sp-analyze: allow(panic, checked by caller)\n\
                   \x20   x.unwrap()\n}\n";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_panic(&mut out);
        sf.check_allow_reasons(&mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn reasonless_allow_is_reported() {
        let src = "fn f(x: Option<u32>) -> u32 {\n\
                   \x20   // sp-analyze: allow(panic)\n\
                   \x20   x.unwrap()\n}\n";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_panic(&mut out);
        sf.check_allow_reasons(&mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, "allow");
    }

    #[test]
    fn fn_line_allow_waives_the_whole_body() {
        let src = "// sp-analyze: allow(index, ids are validated at construction)\n\
                   fn hand_step(v: &[u32], i: usize, j: usize) -> u32 {\n\
                   \x20   v[i] + v[j]\n}\n";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_hot_paths(&hot_manifest(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn alloc_rule_catches_every_listed_constructor() {
        let cases = [
            ("let v = Vec::new();", "Vec"),
            ("let v = Vec::with_capacity(8);", "Vec"),
            ("let v = vec![0u8; 4];", "vec!"),
            ("let s = format!(\"x{}\", 1);", "format!"),
            ("let b = Box::new(3);", "Box"),
            ("let c = src.to_vec();", "copy"),
            ("let c = src.clone();", "copy"),
        ];
        for (stmt, tag) in cases {
            let src = format!("fn route_into(src: &[u8]) {{ {stmt} }}");
            let sf = lib_file(&src);
            let mut out = Vec::new();
            sf.check_hot_paths(&hot_manifest(), &mut out);
            assert_eq!(out.len(), 1, "{tag}: {out:?}");
            assert_eq!(out[0].rule, "alloc", "{tag}");
        }
    }

    #[test]
    fn alloc_rule_ignores_cold_functions() {
        let src = "fn cold_setup() -> Vec<u32> { Vec::new() }";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_hot_paths(&hot_manifest(), &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn index_rule_distinguishes_indexing_from_types_and_attributes() {
        let src = "#[derive(Clone)]\n\
                   fn route_into(v: &[u32], i: usize) -> u32 {\n\
                   \x20   let arr: [u32; 2] = [0, 1];\n\
                   \x20   v[i] + arr[0]\n}\n";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_hot_paths(&hot_manifest(), &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "index" && d.line == 4));
    }

    #[test]
    fn concurrency_rule_flags_each_escaped_idiom() {
        let cases = [
            "use std::sync::atomic::AtomicUsize;",
            "fn f(c: &C) { c.cursor.fetch_add(1, O::Relaxed); }",
            "fn f() { std::thread::scope(|s| {}); }",
            "fn f() { std::thread::spawn(|| {}); }",
            "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }",
        ];
        for src in cases {
            let sf = lib_file(src);
            let mut out = Vec::new();
            sf.check_concurrency(&mut out);
            assert!(out.iter().any(|d| d.rule == "concurrency"), "missed: {src}");
        }
    }

    #[test]
    fn env_rule_flags_unregistered_knobs_and_raw_reads() {
        // Built at runtime so this test file never contains an
        // unregistered knob literal for the workspace scan to find.
        let fake = ["SP", "UNDECLARED_KNOB"].join("_");
        let src = format!("fn f() -> Option<String> {{ std::env::var(\"{fake}\").ok() }}");
        let sf = lib_file(&src);
        let mut out = Vec::new();
        sf.check_env(&knob_registry, false, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out.iter().all(|d| d.rule == "env"));
        assert!(out.iter().any(|d| d.message.contains("not declared")));
        assert!(out.iter().any(|d| d.message.contains("raw env read")));
    }

    #[test]
    fn env_rule_accepts_registered_knobs_via_the_registry() {
        let src = "fn f() -> usize { sp_sync::configured_threads_for(\"SP_NET_THREADS\") }";
        let sf = lib_file(src);
        let mut out = Vec::new();
        sf.check_env(&knob_registry, false, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn inline_fns_and_traffic_fns_seed_the_manifest() {
        let src = "#[inline]\nfn fast(v: &[u32]) -> u32 { v.len() as u32 }\n\
                   #[inline(always)]\npub fn faster() {}\n\
                   fn plain() {}\n";
        let sf = lib_file(src);
        assert_eq!(sf.inline_annotated_fns(), ["fast", "faster"]);
        assert_eq!(sf.all_fns(), ["fast", "faster", "plain"]);
    }
}
