//! Engine-parity property tests: the zero-copy / frontier / threaded
//! round engine must reproduce the frozen pre-optimization engine
//! **bit for bit** — same [`sp_sim::SimStats`] counters, same round
//! count, and a `construct_distributed` result equal to the
//! centralized [`SafetyInfo`] — across thread counts and failure
//! plans. This is the acceptance property behind the
//! `distributed_construction` benchmark: the speedup is only real if
//! the fast engine computes the same thing.

use proptest::prelude::*;
use sp_core::{construct_legacy, construct_with_threads, ConstructionRun, SafetyInfo};
use sp_geom::Quadrant;
use sp_net::{deploy::DeploymentConfig, edge_nodes::edge_node_mask, Network, NodeId};
use sp_sim::FailurePlan;

/// Deterministic LCG step (the same constants the unit tests use).
fn lcg(state: u64) -> u64 {
    state
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

/// Asserts two construction runs carry identical stats and identical
/// per-node information.
fn assert_runs_identical(a: &ConstructionRun, b: &ConstructionRun, net: &Network, tag: &str) {
    assert_eq!(a.stats, b.stats, "{tag}: SimStats diverged");
    for u in net.node_ids() {
        assert_eq!(a.info.tuple(u), b.info.tuple(u), "{tag}: tuple at {u}");
        for q in Quadrant::ALL {
            match (a.info.estimate(u, q), b.info.estimate(u, q)) {
                (None, None) => {}
                (Some(x), Some(y)) => {
                    assert_eq!(x.rect, y.rect, "{tag}: E_{q}({u}) rect");
                    assert_eq!(x.first_far, y.first_far, "{tag}: u(1) at {u} {q}");
                    assert_eq!(x.last_far, y.last_far, "{tag}: u(2) at {u} {q}");
                }
                _ => panic!("{tag}: estimate presence mismatch at {u} {q}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random deployments, random failure plans, every thread count:
    /// the optimized engine's `SimStats` (rounds, broadcasts, unicasts,
    /// receptions, quiescence) and the assembled `SafetyInfo` equal the
    /// legacy engine's exactly.
    #[test]
    fn threaded_frontier_engine_matches_legacy_engine(
        seed in 0u64..4_000,
        kills in 0usize..4,
        first_kill_round in 1usize..60,
    ) {
        let cfg = DeploymentConfig::paper_default(220);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let pinned = edge_node_mask(&net, net.radius());

        let mut plan = FailurePlan::new();
        let mut state = seed ^ 0x5ca1_ab1e;
        for k in 0..kills {
            state = lcg(state);
            let victim = NodeId::new((state >> 33) as usize % net.len());
            plan.kill_at(first_kill_round + 7 * k, victim);
        }

        let legacy = construct_legacy(&net, pinned.clone(), plan.clone())
            .expect("legacy engine quiesces");
        for threads in [1usize, 2, 3, 8] {
            let run = construct_with_threads(&net, pinned.clone(), plan.clone(), threads)
                .expect("optimized engine quiesces");
            assert_runs_identical(&legacy, &run, &net, &format!("threads={threads}"));
        }
    }

    /// Without failures the (threaded) distributed construction also
    /// equals the centralized fixed point — the Algorithm-2 correctness
    /// anchor, now held at every thread count.
    #[test]
    fn threaded_construction_matches_centralized(seed in 0u64..4_000) {
        let cfg = DeploymentConfig::paper_default(180);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let pinned = edge_node_mask(&net, net.radius());
        let central = SafetyInfo::build_with_pinned(&net, pinned.clone());
        for threads in [1usize, 4] {
            let run = construct_with_threads(&net, pinned.clone(), FailurePlan::new(), threads)
                .expect("quiesces");
            for u in net.node_ids() {
                prop_assert_eq!(
                    run.info.tuple(u),
                    central.tuple(u),
                    "centralized tuple mismatch at {} (threads {})",
                    u,
                    threads
                );
                for q in Quadrant::ALL {
                    match (run.info.estimate(u, q), central.estimate(u, q)) {
                        (None, None) => {}
                        (Some(a), Some(b)) => prop_assert_eq!(a.rect, b.rect),
                        _ => panic!("estimate presence mismatch at {u} {q}"),
                    }
                }
            }
        }
    }
}
