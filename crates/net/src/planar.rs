//! Graph planarization (Gabriel / RNG) and face-walk pivots.
//!
//! Perimeter routing "by the right-hand rule … along a face of the planar
//! graph that represents the same connectivity as the original network"
//! (§1, citing Bose et al. \[2\]) needs two ingredients this module
//! provides: a planar connected spanning subgraph of the UDG, and the
//! angular pivot that picks "the first edge counter-clockwise about `x`
//! from edge `(x, u)`".

use crate::{Network, NodeId};
use sp_geom::{in_gabriel_disk, in_rng_lune, AngularSweep, Point, Vec2};

/// Which planar subgraph to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Planarization {
    /// Gabriel graph: keep `(u, v)` iff no witness lies strictly inside
    /// the disk with diameter `uv`.
    Gabriel,
    /// Relative neighborhood graph: keep `(u, v)` iff no witness `w` has
    /// `max(|uw|, |wv|) < |uv|`. A subgraph of the Gabriel graph.
    Rng,
}

/// A planar spanning subgraph of a [`Network`], with the angular pivots
/// used by face traversal.
///
/// ```
/// use sp_net::{Network, NodeId, PlanarGraph, Planarization};
/// use sp_geom::{Point, Rect};
///
/// let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
/// let net = Network::from_positions(
///     vec![
///         Point::new(0.0, 0.0),
///         Point::new(10.0, 0.0),
///         Point::new(5.0, 1.0), // witness inside the 0-1 Gabriel disk
///     ],
///     20.0,
///     area,
/// );
/// let pg = PlanarGraph::build(&net, Planarization::Gabriel);
/// assert!(!pg.has_edge(NodeId(0), NodeId(1))); // removed by the witness
/// assert!(pg.has_edge(NodeId(0), NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct PlanarGraph {
    adjacency: Vec<Vec<NodeId>>,
    positions: Vec<Point>,
    kind: Planarization,
}

impl PlanarGraph {
    /// Extracts the planar subgraph of `net`.
    ///
    /// Witness candidates come from the network's [`SpatialIndex`]
    /// ([`Network::index`]): a Gabriel witness lies inside the disk of
    /// diameter `uv` — i.e. within `|uv|/2` of the edge midpoint — and
    /// an RNG witness lies within `|uv|` of `u`, so a single range
    /// query per edge bounds the scan to the cells covering that disk
    /// instead of the full neighbor list (or, worse, all `n` points).
    /// The exact geometric predicates then filter the pruned candidates.
    ///
    /// A candidate only counts as a witness if it is a *neighbor of
    /// `u`* — the same rule the classic `N(u)` scan applies. In a fully
    /// live unit disk graph the distinction is vacuous (anything inside
    /// the disk/lune is in range of `u`), but on degraded networks
    /// ([`Network::without_nodes`]) the index still holds dead nodes'
    /// positions, and a dead node must not delete planar edges between
    /// live ones — that would disconnect the planar subgraph face
    /// routing relies on.
    pub fn build(net: &Network, kind: Planarization) -> PlanarGraph {
        let n = net.len();
        let index = net.index();
        let mut adjacency: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for u in net.node_ids() {
            let pu = net.position(u);
            for &v in net.neighbors(u) {
                if v < u {
                    continue; // handle each undirected edge once
                }
                let pv = net.position(v);
                let blocked = match kind {
                    Planarization::Gabriel => {
                        let mid = Point::new((pu.x + pv.x) / 2.0, (pu.y + pv.y) / 2.0);
                        // Inflate the pruning radius a hair: the exact
                        // dot-product predicate and the distance-to-
                        // midpoint query round differently, and the
                        // query must stay a *superset* of the predicate
                        // for witnesses within ulps of the circle.
                        let half = pu.distance(pv) / 2.0 * (1.0 + 1e-9);
                        index.within_radius(mid, half).any(|w| {
                            w != u
                                && w != v
                                && net.has_edge(u, w)
                                && in_gabriel_disk(pu, pv, net.position(w))
                        })
                    }
                    Planarization::Rng => {
                        let len = pu.distance(pv);
                        index.within_radius(pu, len).any(|w| {
                            w != u
                                && w != v
                                && net.has_edge(u, w)
                                && in_rng_lune(pu, pv, net.position(w))
                        })
                    }
                };
                if !blocked {
                    adjacency[u.index()].push(v);
                    adjacency[v.index()].push(u);
                }
            }
        }
        for list in &mut adjacency {
            list.sort_unstable();
        }
        PlanarGraph {
            adjacency,
            positions: net.positions_vec(),
            kind,
        }
    }

    /// Which planarization produced this graph.
    pub fn kind(&self) -> Planarization {
        self.kind
    }

    /// Number of nodes (same id space as the source network).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Neighbors of `u` in the planar subgraph, sorted by id.
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u.index()]
    }

    /// True when `(u, v)` survived planarization.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adjacency[u.index()].binary_search(&v).is_ok()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Node location.
    pub fn position(&self, u: NodeId) -> Point {
        self.positions[u.index()]
    }

    /// The right-hand-rule pivot: the first neighbor counter-clockwise
    /// about `x` starting from the direction of `from`, excluding `from`
    /// itself unless it is the only neighbor (dead-end bounce).
    ///
    /// Returns `None` only when `x` has no neighbors at all.
    pub fn next_ccw(&self, x: NodeId, from: NodeId) -> Option<NodeId> {
        self.pivot(x, self.position(from) - self.position(x), Some(from), true)
    }

    /// The left-hand-rule pivot: first neighbor clockwise about `x` from
    /// the direction of `from`.
    pub fn next_cw(&self, x: NodeId, from: NodeId) -> Option<NodeId> {
        self.pivot(x, self.position(from) - self.position(x), Some(from), false)
    }

    /// First neighbor counter-clockwise (or clockwise when `ccw` is
    /// false) about `x` starting from an arbitrary direction; used to
    /// enter a face walk along the `x -> d` line.
    pub fn first_from_direction(&self, x: NodeId, dir: Vec2, ccw: bool) -> Option<NodeId> {
        self.pivot(x, dir, None, ccw)
    }

    fn pivot(&self, x: NodeId, dir: Vec2, exclude: Option<NodeId>, ccw: bool) -> Option<NodeId> {
        let px = self.position(x);
        let neigh = self.neighbors(x);
        if neigh.is_empty() {
            return None;
        }
        // For a clockwise pivot, mirror the rotation by sweeping from the
        // mirrored direction over mirrored points; equivalently, use the
        // CW rotation = TAU - CCW rotation. Implemented by negating the y
        // axis of both direction and displacement.
        let items: Vec<(usize, Point)> = neigh
            .iter()
            .map(|&v| {
                let p = self.position(v);
                if ccw {
                    (v.index(), p)
                } else {
                    (v.index(), Point::new(p.x, 2.0 * px.y - p.y))
                }
            })
            .collect();
        let sweep_dir = if ccw { dir } else { Vec2::new(dir.x, -dir.y) };
        let sweep = AngularSweep::new(px, sweep_dir, items);
        // Pass 1: strictly-rotated candidates. Zero-rotation candidates
        // are collinear with the start direction; taking them eagerly
        // would trap face walks in collinear triangles, so they wait for
        // pass 2 (planarization usually removes such pairs, but the
        // pivot must not rely on it).
        const EPS: f64 = 1e-12;
        for e in sweep.entries() {
            if e.rotation <= EPS || Some(NodeId::new(e.id)) == exclude {
                continue;
            }
            return Some(NodeId::new(e.id));
        }
        // Pass 2: collinear candidates (nearest first), then the
        // dead-end bounce back to the predecessor.
        for e in sweep.entries() {
            if Some(NodeId::new(e.id)) != exclude {
                return Some(NodeId::new(e.id));
            }
        }
        exclude.filter(|f| neigh.contains(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::Rect;

    fn area() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// Cross of 5 nodes around a center.
    fn cross_net() -> Network {
        Network::from_positions(
            vec![
                Point::new(50.0, 50.0), // 0 center
                Point::new(60.0, 50.0), // 1 east
                Point::new(50.0, 60.0), // 2 north
                Point::new(40.0, 50.0), // 3 west
                Point::new(50.0, 40.0), // 4 south
            ],
            15.0,
            area(),
        )
    }

    #[test]
    fn planar_graphs_are_subgraphs() {
        let cfg = crate::DeploymentConfig::paper_default(200);
        let net = Network::from_positions(cfg.deploy_uniform(5), cfg.radius, cfg.area);
        let gg = PlanarGraph::build(&net, Planarization::Gabriel);
        let rng = PlanarGraph::build(&net, Planarization::Rng);
        for u in net.node_ids() {
            for &v in gg.neighbors(u) {
                assert!(net.has_edge(u, v), "GG edge {u}-{v} not in UDG");
            }
            for &v in rng.neighbors(u) {
                assert!(gg.has_edge(u, v), "RNG edge {u}-{v} not in GG");
            }
        }
        assert!(rng.edge_count() <= gg.edge_count());
        assert!(gg.edge_count() <= net.edge_count());
    }

    #[test]
    fn planarization_preserves_connectivity() {
        let cfg = crate::DeploymentConfig::paper_default(400);
        let positions = cfg.deploy_uniform(9);
        let net = Network::from_positions(positions.clone(), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let gg = PlanarGraph::build(&net, Planarization::Gabriel);
        // BFS over the planar graph restricted to the big component.
        let start = comp[0];
        let mut seen = vec![false; net.len()];
        seen[start.index()] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for &v in gg.neighbors(u) {
                if !seen[v.index()] {
                    seen[v.index()] = true;
                    stack.push(v);
                }
            }
        }
        for &u in &comp {
            assert!(seen[u.index()], "GG disconnected node {u}");
        }
    }

    #[test]
    fn index_pruned_witness_search_matches_neighbor_scan() {
        // The pre-SpatialIndex implementation scanned N(u) for
        // witnesses; in a UDG that set contains every possible witness.
        // The index-pruned query must select exactly the same edges.
        let cfg = crate::DeploymentConfig::paper_default(300);
        let net = Network::from_positions(cfg.deploy_uniform(31), cfg.radius, cfg.area);
        for kind in [Planarization::Gabriel, Planarization::Rng] {
            let fast = PlanarGraph::build(&net, kind);
            for u in net.node_ids() {
                let pu = net.position(u);
                for &v in net.neighbors(u) {
                    if v < u {
                        continue;
                    }
                    let pv = net.position(v);
                    let blocked = net.neighbors(u).iter().any(|&w| {
                        if w == u || w == v {
                            return false;
                        }
                        let pw = net.position(w);
                        match kind {
                            Planarization::Gabriel => in_gabriel_disk(pu, pv, pw),
                            Planarization::Rng => in_rng_lune(pu, pv, pw),
                        }
                    });
                    assert_eq!(
                        fast.has_edge(u, v),
                        !blocked,
                        "{kind:?} edge {u}-{v} disagrees with neighbor-scan witnesses"
                    );
                }
            }
        }
    }

    #[test]
    fn dead_nodes_do_not_witness_on_degraded_networks() {
        // Node 2 sits inside the Gabriel disk of edge 0-1. Alive, it
        // removes that edge; dead (removed via without_nodes), it must
        // not — its position lingers in the spatial index, but a failed
        // node cannot relay, so it cannot justify pruning a live edge.
        let net = Network::from_positions(
            vec![
                Point::new(40.0, 50.0),
                Point::new(50.0, 50.0),
                Point::new(45.0, 50.5),
            ],
            15.0,
            area(),
        );
        let live = PlanarGraph::build(&net, Planarization::Gabriel);
        assert!(!live.has_edge(NodeId(0), NodeId(1)), "live witness prunes");

        let degraded = net.without_nodes(&[NodeId(2)]);
        for kind in [Planarization::Gabriel, Planarization::Rng] {
            let pg = PlanarGraph::build(&degraded, kind);
            assert!(
                pg.has_edge(NodeId(0), NodeId(1)),
                "{kind:?}: dead node 2 must not delete the live 0-1 edge"
            );
        }
    }

    #[test]
    fn gabriel_removes_witnessed_edge() {
        let net = Network::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(5.0, 1.0),
            ],
            20.0,
            area(),
        );
        let gg = PlanarGraph::build(&net, Planarization::Gabriel);
        assert!(!gg.has_edge(NodeId(0), NodeId(1)));
        assert!(gg.has_edge(NodeId(0), NodeId(2)));
        assert!(gg.has_edge(NodeId(2), NodeId(1)));
        assert_eq!(gg.kind(), Planarization::Gabriel);
    }

    #[test]
    fn ccw_pivot_walks_around_cross() {
        let net = cross_net();
        let pg = PlanarGraph::build(&net, Planarization::Gabriel);
        // At the center, arriving from east: next CCW edge after east is
        // north, then west, then south.
        assert_eq!(pg.next_ccw(NodeId(0), NodeId(1)), Some(NodeId(2)));
        assert_eq!(pg.next_ccw(NodeId(0), NodeId(2)), Some(NodeId(3)));
        assert_eq!(pg.next_ccw(NodeId(0), NodeId(3)), Some(NodeId(4)));
        assert_eq!(pg.next_ccw(NodeId(0), NodeId(4)), Some(NodeId(1)));
    }

    #[test]
    fn cw_pivot_reverses_ccw() {
        let net = cross_net();
        let pg = PlanarGraph::build(&net, Planarization::Gabriel);
        assert_eq!(pg.next_cw(NodeId(0), NodeId(1)), Some(NodeId(4)));
        assert_eq!(pg.next_cw(NodeId(0), NodeId(4)), Some(NodeId(3)));
        assert_eq!(pg.next_cw(NodeId(0), NodeId(3)), Some(NodeId(2)));
        assert_eq!(pg.next_cw(NodeId(0), NodeId(2)), Some(NodeId(1)));
    }

    #[test]
    fn dead_end_bounces_back() {
        let net = Network::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0)],
            15.0,
            area(),
        );
        let pg = PlanarGraph::build(&net, Planarization::Gabriel);
        // Node 1's only neighbor is 0; arriving from 0 we must bounce.
        assert_eq!(pg.next_ccw(NodeId(1), NodeId(0)), Some(NodeId(0)));
        assert_eq!(pg.next_cw(NodeId(1), NodeId(0)), Some(NodeId(0)));
    }

    #[test]
    fn first_from_direction_enters_face() {
        let net = cross_net();
        let pg = PlanarGraph::build(&net, Planarization::Gabriel);
        // From the center looking halfway between east and north (45°),
        // the first CCW edge is north; the first CW edge is east.
        let dir = Vec2::new(1.0, 1.0);
        assert_eq!(
            pg.first_from_direction(NodeId(0), dir, true),
            Some(NodeId(2))
        );
        assert_eq!(
            pg.first_from_direction(NodeId(0), dir, false),
            Some(NodeId(1))
        );
    }

    #[test]
    fn isolated_node_has_no_pivot() {
        let net = Network::from_positions(
            vec![Point::new(0.0, 0.0), Point::new(90.0, 90.0)],
            10.0,
            area(),
        );
        let pg = PlanarGraph::build(&net, Planarization::Gabriel);
        assert_eq!(
            pg.first_from_direction(NodeId(0), Vec2::new(1.0, 0.0), true),
            None
        );
    }
}
