//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors a minimal wall-clock harness with criterion's API shape:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros (both the simple
//! and the `name/config/targets` forms).
//!
//! Each benchmark is warmed up once, then timed over enough iterations
//! to fill a short measurement window; the mean time per iteration is
//! printed as `bench: <name> ... <time>`. There are no statistical
//! comparisons, plots, or saved baselines. [`Criterion::last_estimate`]
//! exposes the most recent measurement so callers can post-process
//! results (e.g. emit JSON).

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Target measurement window per benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);

/// Hard cap on timed iterations per benchmark.
const MAX_ITERS: u64 = 1_000_000;

/// A label for one benchmark: a function name plus an optional
/// parameter, rendered `function/parameter` like criterion does.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter`.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId { id: s }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// How `iter_batched` amortizes setup; only an API placeholder here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-run per iteration).
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The timing context handed to benchmark closures.
pub struct Bencher {
    mean_ns: f64,
}

impl Bencher {
    /// Times `routine` and records the mean wall-clock nanoseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and single-shot estimate.
        let start = Instant::now();
        let _ = routine();
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Enough iterations to fill the window, at least one.
        let iters =
            (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }

    /// Times `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let _ = routine(input);
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters =
            (MEASURE_WINDOW.as_nanos() / once.as_nanos()).clamp(1, MAX_ITERS as u128) as u64;
        let mut total = Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    last_estimate: Option<(String, f64)>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            last_estimate: None,
        }
    }
}

impl Criterion {
    /// Sets the nominal sample size (accepted for API compatibility;
    /// the harness sizes its own measurement window).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n;
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Criterion {
        self.run(None, id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Mean nanoseconds of the most recently run benchmark, with its
    /// full `group/function/parameter` label.
    pub fn last_estimate(&self) -> Option<(&str, f64)> {
        self.last_estimate.as_ref().map(|(s, v)| (s.as_str(), *v))
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, group: Option<&str>, id: BenchmarkId, mut f: F) {
        let label = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        let mut bencher = Bencher { mean_ns: 0.0 };
        f(&mut bencher);
        eprintln!("bench: {label:<50} {:>12}/iter", human(bencher.mean_ns));
        self.last_estimate = Some((label, bencher.mean_ns));
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Sets the nominal sample size (accepted for API compatibility).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let name = self.name.clone();
        self.criterion.run(Some(&name), id.into(), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark entry point from one or more target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_positive_time() {
        let mut c = Criterion::default();
        c.bench_function("spin", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
        });
        let (label, ns) = c.last_estimate().expect("estimate recorded");
        assert_eq!(label, "spin");
        assert!(ns > 0.0);
    }

    #[test]
    fn groups_prefix_labels() {
        let mut c = Criterion::default().sample_size(5);
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        group.bench_function(BenchmarkId::new("f", 42), |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::LargeInput);
        });
        group.finish();
        let (label, _) = c.last_estimate().expect("estimate recorded");
        assert_eq!(label, "g/f/42");
    }

    criterion_group!(simple, noop_bench);
    criterion_group! {
        name = configured;
        config = Criterion::default().sample_size(10);
        targets = noop_bench
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macros_produce_runnable_fns() {
        simple();
        configured();
    }
}
