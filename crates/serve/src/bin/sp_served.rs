//! `sp-served`: deploy a topology and serve it over TCP.
//!
//! ```text
//! sp-served [--nodes N] [--seed S]
//! ```
//!
//! The listen address, worker count, and telemetry export come from
//! the registered knobs (`SP_SERVE_ADDR`, `SP_SERVE_THREADS`,
//! `SP_SERVE_TELEMETRY`). On startup the bound address is announced on
//! stdout as `sp-served listening on <addr> …` — the line
//! `sp-serve-load --spawn` waits for — and the process exits when a
//! client sends `SHUTDOWN`.

use sp_net::{deploy::DeploymentConfig, Network};
use sp_serve::{serve, ServeConfig};

fn main() {
    let mut nodes = 500usize;
    let mut seed = 7u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .and_then(|v| v.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("sp-served: {what} needs an integer value");
                    std::process::exit(2);
                })
        };
        match arg.as_str() {
            "--nodes" => nodes = grab("--nodes") as usize,
            "--seed" => seed = grab("--seed"),
            "--help" | "-h" => {
                println!("usage: sp-served [--nodes N] [--seed S]");
                println!("knobs: SP_SERVE_ADDR, SP_SERVE_THREADS, SP_SERVE_TELEMETRY");
                return;
            }
            other => {
                eprintln!("sp-served: unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let cfg = DeploymentConfig::paper_default(nodes);
    let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
    let serve_cfg = ServeConfig::from_env();
    let workers = serve_cfg.threads.max(1);
    let handle = match serve(net, serve_cfg) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("sp-served: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "sp-served listening on {} (nodes={nodes} seed={seed} workers={workers})",
        handle.addr()
    );
    use std::io::Write;
    drop(std::io::stdout().flush());

    handle.join();
    println!("sp-served: drained and stopped");
}
