//! The workspace's *single* audited concurrency surface.
//!
//! Five crates used to hand-roll the same std-only pattern — scoped
//! worker threads pulling work off an `AtomicUsize` cursor, per-worker
//! result buffers merged back in claim order so threaded output is
//! bit-identical to serial. Five copies meant five places a subtle
//! claim/merge bug could hide, and nothing stopping a sixth copy from
//! drifting. This crate shrinks that surface to one implementation:
//!
//! * [`WorkQueue`] — the chunked atomic-cursor queue every threaded
//!   scan in the workspace routes through ([`WorkQueue::run`],
//!   [`WorkQueue::run_with`] for worker-local scratch state,
//!   [`WorkQueue::run_owned`] for pre-partitioned `&mut` work items).
//! * [`configured_threads_for`] — the one thread-count policy behind
//!   every `SP_*_THREADS` knob (explicit env pin, else
//!   [`std::thread::available_parallelism`]).
//! * [`EpochCell`] — the epoch-versioned `Arc` snapshot slot behind
//!   `sp_core`'s `RoutingService`: writers publish fully-formed values
//!   (fill-then-publish), readers pin `(epoch, Arc)` pairs wait-free in
//!   the steady state.
//! * [`knobs`] — the declared registry of every `SP_*` environment
//!   variable the workspace reads. `sp-analyze` fails CI when a knob
//!   is read outside this registry or missing from the README.
//! * [`check`] — a vendored mini-loom: a deterministic, exhaustive
//!   interleaving explorer that model-checks the claim/merge protocol
//!   (and the other lock-free idioms the routing stack relies on)
//!   across every schedule of 2–3 modeled threads.
//!
//! The crate is intentionally dependency-free and `std`-only, like the
//! rest of the workspace.

pub mod check;
mod epoch;
pub mod knobs;
mod queue;

pub use epoch::{EpochCell, Pinned};
pub use knobs::{configured_threads_for, env_flag, env_var};
pub use queue::WorkQueue;
