//! `repro-figures` — regenerate every figure of the paper (and the
//! ablations) from the command line.
//!
//! ```text
//! repro-figures [--quick] [--chart] [--svg] [--out DIR] [--spec SPEC | FIGURE...]
//!
//! FIGURE: 5a 5b 6a 6b 7a 7b a1..a13 | all   (default: all)
//! --quick  reduced sweep (3 node counts, 8 networks/point) for smoke runs
//! --chart  also print each figure as an ASCII line chart
//! --svg    also write each figure as an SVG line chart
//! --out    directory for .md/.csv/.svg outputs (default: results/)
//! --spec   run one custom sweep instead of the paper figures, e.g.
//!          "scenario=corridor;nodes=400..800:50;nets=100;schemes=PAPER"
//!          (names resolve through the scheme/scenario registries)
//! ```

use sp_experiments::{figures, run_sweep, Scenario, Scheme, SweepConfig, SweepResults, SweepSpec};
use sp_metrics::{render_csv, render_json, render_markdown, render_text, Figure};
use sp_viz::ascii::{render_chart, ChartOptions};
use sp_viz::chart::{render_figure_svg, FigureSvgOptions};
use std::collections::BTreeSet;
use std::io::Write;
use std::path::{Path, PathBuf};

const ALL_FIGURES: [&str; 23] = [
    "5a", "5b", "6a", "6b", "7a", "7b", "a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9",
    "a10", "a11", "a12", "a13", "a14", "a15", "a16", "a17",
];

fn main() {
    let mut quick = false;
    let mut chart = false;
    let mut svg = false;
    let mut spec: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut wanted: BTreeSet<String> = BTreeSet::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--chart" => chart = true,
            "--svg" => svg = true,
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--out requires a directory argument");
                    std::process::exit(2);
                }));
            }
            "--spec" => {
                spec = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--spec requires a spec-string argument");
                    std::process::exit(2);
                }));
            }
            "all" => {
                wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro-figures [--quick] [--chart] [--out DIR] [--spec SPEC | FIGURE...]"
                );
                eprintln!("FIGURE: {} | all", ALL_FIGURES.join(" "));
                return;
            }
            other if ALL_FIGURES.contains(&other) => {
                wanted.insert(other.to_string());
            }
            other => {
                eprintln!("unknown figure or flag: {other}");
                std::process::exit(2);
            }
        }
    }
    if wanted.is_empty() {
        wanted.extend(ALL_FIGURES.iter().map(|s| s.to_string()));
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");

    if let Some(spec) = spec {
        run_spec(&spec, quick, chart, svg, &out_dir);
        return;
    }

    let sweep_for = |scenario: Scenario| -> SweepConfig {
        if quick {
            SweepConfig::quick(scenario)
        } else {
            SweepConfig {
                deployment: scenario,
                ..SweepConfig::paper_ia()
            }
        }
    };

    // Everything derivable from the per-panel sweeps (schemes include
    // the ablation variants so A3/A4 come for free, and GFG for A8).
    let full_set = [
        Scheme::Gf,
        Scheme::Lgf,
        Scheme::Slgf,
        Scheme::Slgf2,
        Scheme::Slgf2NoSuperseding,
        Scheme::Slgf2NoBackup,
        Scheme::Gfg,
        Scheme::Slgf2Face,
    ];
    let panel_figures = ["a2", "a3", "a4", "a5", "a7", "a8", "a11", "a12"];
    let needs_ia = ["5a", "6a", "7a"]
        .iter()
        .chain(panel_figures.iter())
        .any(|f| wanted.contains(*f));
    let needs_fa = ["5b", "6b", "7b"]
        .iter()
        .chain(panel_figures.iter())
        .any(|f| wanted.contains(*f));

    let ia_results = needs_ia.then(|| {
        eprintln!("running IA sweep...");
        run_sweep(&sweep_for(Scenario::Ia), &full_set)
    });
    let fa_results = needs_fa.then(|| {
        eprintln!("running FA sweep...");
        run_sweep(&sweep_for(Scenario::Fa), &full_set)
    });

    let mut emitted = 0;
    for id in &wanted {
        let figs: Vec<Figure> = match id.as_str() {
            "5a" => vec![keep_paper_set(figures::fig5(ia_results.as_ref().unwrap()))],
            "5b" => vec![keep_paper_set(figures::fig5(fa_results.as_ref().unwrap()))],
            "6a" => vec![keep_paper_set(figures::fig6(ia_results.as_ref().unwrap()))],
            "6b" => vec![keep_paper_set(figures::fig6(fa_results.as_ref().unwrap()))],
            "7a" => vec![keep_paper_set(figures::fig7(ia_results.as_ref().unwrap()))],
            "7b" => vec![keep_paper_set(figures::fig7(fa_results.as_ref().unwrap()))],
            "a1" => {
                eprintln!("running construction-cost sweep...");
                let cfg = sweep_for(Scenario::Ia);
                let instances = if quick { 2 } else { 10 };
                vec![figures::construction_cost_figure(&cfg, instances)]
            }
            "a2" => collect_panels(&ia_results, &fa_results, figures::delivery_figure),
            "a3" => collect_panels(&ia_results, &fa_results, |r| ablation_figure(r, true)),
            "a4" => collect_panels(&ia_results, &fa_results, |r| ablation_figure(r, false)),
            "a5" => collect_panels(&ia_results, &fa_results, figures::perimeter_figure),
            "a6" => {
                eprintln!("running failure-robustness sweep...");
                let (inst, n) = if quick { (4, 400) } else { (30, 600) };
                vec![figures::failure_robustness_figure(
                    Scenario::Ia,
                    n,
                    inst,
                    &[0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
                )]
            }
            "a7" => {
                let mut out = collect_panels(&ia_results, &fa_results, |r| {
                    keep_paper_set(figures::energy_figure(r))
                });
                out.extend(collect_panels(&ia_results, &fa_results, |r| {
                    keep_paper_set(figures::interference_figure(r))
                }));
                out
            }
            "a8" => collect_panels(&ia_results, &fa_results, gfg_figure),
            "a9" => {
                eprintln!("running maintenance-cost sweep...");
                let (inst, kills) = if quick { (2, 3) } else { (10, 10) };
                let counts: Vec<usize> = if quick {
                    vec![400, 800]
                } else {
                    (400..=800).step_by(100).collect()
                };
                vec![figures::maintenance_cost_figure(
                    Scenario::Ia,
                    &counts,
                    inst,
                    kills,
                )]
            }
            "a11" => {
                let mut out = collect_panels(&ia_results, &fa_results, |r| {
                    keep_paper_set(figures::hop_stretch_figure(r))
                });
                out.extend(collect_panels(&ia_results, &fa_results, |r| {
                    keep_paper_set(figures::length_stretch_figure(r))
                }));
                out
            }
            "a12" => collect_panels(&ia_results, &fa_results, slgf2_face_figure),
            "a13" => {
                eprintln!("running mobility-staleness sweep...");
                let (inst, pairs) = if quick { (3, 4) } else { (15, 8) };
                figures::mobility_staleness_figure(
                    500,
                    inst,
                    pairs,
                    &[0.0, 5.0, 10.0, 20.0, 40.0, 80.0],
                    (1.0, 3.0),
                )
            }
            "a15" => {
                eprintln!("running streaming-lifetime sweep...");
                let instances = if quick { 2 } else { 8 };
                let mut stream_cfg = sp_experiments::StreamingConfig::default_for_lifetime();
                if quick {
                    stream_cfg.node_energy_nj = 4.0e6;
                }
                vec![sp_experiments::lifetime_figure(
                    500,
                    instances,
                    &[
                        Scheme::Gf,
                        Scheme::Lgf,
                        Scheme::Slgf,
                        Scheme::Slgf2,
                        Scheme::Gfg,
                    ],
                    &stream_cfg,
                )]
            }
            "a14" => {
                eprintln!("running shape-estimate accuracy sweep...");
                let mut cfg = sweep_for(Scenario::Fa);
                let instances = if quick { 2 } else { 10 };
                if quick {
                    cfg.node_counts = vec![400, 600, 800];
                }
                vec![figures::estimate_accuracy_figure(&cfg, instances)]
            }
            "a10" => {
                eprintln!("running sync-vs-async construction sweep...");
                let mut cfg = sweep_for(Scenario::Ia);
                let instances = if quick { 2 } else { 8 };
                if quick {
                    cfg.node_counts = vec![400, 600, 800];
                }
                vec![figures::async_cost_figure(&cfg, instances)]
            }
            "a17" => {
                eprintln!("running delivery-vs-chaos family...");
                let instances = if quick { 2 } else { 10 };
                let n = if quick { 300 } else { 500 };
                figures::chaos_delivery_family(
                    Scenario::Ia,
                    n,
                    instances,
                    &figures::CHAOS_FAMILY_SCHEMES,
                )
            }
            "a16" => {
                // Full mode climbs to 10⁶ nodes with fewer nets at the
                // top sizes (a million-node instance outweighs the rest
                // of the sweep combined); quick keeps the smoke sizes.
                let sizes: &[(usize, usize)] = if quick {
                    &[(1_000, 1), (2_000, 1)]
                } else {
                    &[
                        (2_000, 2),
                        (5_000, 2),
                        (10_000, 2),
                        (100_000, 1),
                        (1_000_000, 1),
                    ]
                };
                vec![figures::construction_scale_figure(sizes)]
            }
            _ => unreachable!("validated above"),
        };
        for fig in figs {
            println!("{}", render_text(&fig));
            if chart {
                println!("{}", render_chart(&fig, ChartOptions::default()));
            }
            write_outputs(&out_dir, id, &fig, svg);
            emitted += 1;
        }
    }
    eprintln!("wrote {emitted} figure(s) to {}", out_dir.display());
}

/// The A8 view: the paper's set plus the guaranteed-delivery GFG
/// face-routing baseline, on mean hops.
fn gfg_figure(results: &SweepResults) -> Figure {
    let mut fig = figures::fig6(results);
    fig.title = format!(
        "A8 GFG face-routing comparison ({} model)",
        results.deployment_tag
    );
    let keep = Scheme::display_names(&Scheme::EXTENDED_SET);
    fig.series.retain(|s| keep.iter().any(|k| **k == s.label));
    fig
}

/// The A12 view: SLGF2 against SLGF2-F (face recovery) on delivery
/// ratio and mean hops.
fn slgf2_face_figure(results: &SweepResults) -> Figure {
    let hops = figures::fig6(results);
    let delivery = figures::delivery_figure(results);
    let mut fig = Figure::new(
        format!(
            "A12 SLGF2 vs SLGF2-F face recovery ({} model)",
            results.deployment_tag
        ),
        hops.x_label.clone(),
        "hops / delivery ratio",
    );
    for src in [&hops, &delivery] {
        for s in &src.series {
            if s.label == "SLGF2" || s.label == "SLGF2-F" {
                let mut renamed = s.clone();
                renamed.label = format!(
                    "{} {}",
                    s.label,
                    if std::ptr::eq(src, &hops) {
                        "hops"
                    } else {
                        "delivery"
                    }
                );
                fig.push_series(renamed);
            }
        }
    }
    fig
}

/// Restrict a figure to the paper's four curves (the sweep also carries
/// the ablation variants).
fn keep_paper_set(mut fig: Figure) -> Figure {
    let keep = Scheme::display_names(&Scheme::PAPER_SET);
    fig.series.retain(|s| keep.iter().any(|k| **k == s.label));
    fig
}

/// The A3/A4 ablation view: SLGF2 against the variant with one
/// mechanism removed, on mean hops.
fn ablation_figure(results: &SweepResults, superseding: bool) -> Figure {
    let mut fig = figures::fig6(results);
    let (title, variant) = if superseding {
        ("A3 either-hand superseding rule ablation", "SLGF2-noEH")
    } else {
        ("A4 backup-path phase ablation", "SLGF2-noBP")
    };
    fig.title = format!("{title} ({} model)", results.deployment_tag);
    fig.series
        .retain(|s| s.label == "SLGF2" || s.label == variant);
    fig
}

/// `--spec` mode: resolve the spec through the registries, run the one
/// sweep it describes, and emit the standard metric views of it.
fn run_spec(spec: &str, quick: bool, chart: bool, svg: bool, out_dir: &Path) {
    let mut resolved = SweepSpec::parse(spec).unwrap_or_else(|e| {
        eprintln!("{e}");
        std::process::exit(2);
    });
    if quick {
        // Smoke-run bounds, mirroring SweepConfig::quick: at most 8
        // networks per point over at most 3 node counts (first, middle,
        // last of the requested axis).
        resolved.config.networks_per_point = resolved.config.networks_per_point.min(8);
        let counts = &mut resolved.config.node_counts;
        if counts.len() > 3 {
            *counts = vec![
                counts[0],
                counts[counts.len() / 2],
                counts[counts.len() - 1],
            ];
        }
    }
    let names = Scheme::display_names(&resolved.schemes);
    eprintln!(
        "running spec sweep: scenario={}, {} node counts x {} nets, schemes [{}]...",
        resolved.config.deployment,
        resolved.config.node_counts.len(),
        resolved.config.networks_per_point,
        names.join(", ")
    );
    let results = resolved.run();
    let tag = &results.deployment_tag;
    let views = [
        (figures::Metric::MaxHops, "maximum hops"),
        (figures::Metric::MeanHops, "average hops"),
        (figures::Metric::MeanLength, "average path length"),
        (figures::Metric::DeliveryRatio, "delivery ratio"),
    ];
    for (metric, label) in views {
        let fig =
            figures::figure_from_sweep(&results, metric, &format!("sweep {label} ({tag} model)"));
        println!("{}", render_text(&fig));
        if chart {
            println!("{}", render_chart(&fig, ChartOptions::default()));
        }
        write_outputs(out_dir, "sweep", &fig, svg);
    }
    eprintln!("wrote 4 figure(s) to {}", out_dir.display());
}

fn collect_panels(
    ia: &Option<SweepResults>,
    fa: &Option<SweepResults>,
    f: impl Fn(&SweepResults) -> Figure,
) -> Vec<Figure> {
    let mut out = Vec::new();
    if let Some(r) = ia {
        out.push(f(r));
    }
    if let Some(r) = fa {
        out.push(f(r));
    }
    out
}

fn write_outputs(dir: &Path, id: &str, fig: &Figure, svg: bool) {
    let tag = fig
        .title
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_lowercase();
    let stem = format!("{id}_{}", &tag[..tag.len().min(24)]);
    let md = dir.join(format!("{stem}.md"));
    let csv = dir.join(format!("{stem}.csv"));
    let mut f = std::fs::File::create(&md).expect("create md output");
    writeln!(f, "### {}\n", fig.title).unwrap();
    f.write_all(render_markdown(fig).as_bytes()).unwrap();
    std::fs::write(&csv, render_csv(fig)).expect("write csv output");
    let json = dir.join(format!("{stem}.json"));
    std::fs::write(&json, render_json(fig)).expect("write json output");
    if svg {
        let path = dir.join(format!("{stem}.svg"));
        std::fs::write(&path, render_figure_svg(fig, FigureSvgOptions::default()))
            .expect("write svg output");
    }
}
