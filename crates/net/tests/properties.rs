//! Property-based tests for the network substrate.

use proptest::prelude::*;
use sp_geom::{Point, Rect};
use sp_net::{
    deploy::DeploymentConfig, edge_nodes::edge_node_mask, FaModel, Network, NodeId, PlanarGraph,
    Planarization,
};

fn paper_cfg(n: usize) -> DeploymentConfig {
    DeploymentConfig::paper_default(n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn udg_adjacency_matches_distance_predicate(seed in 0u64..500, n in 50usize..250) {
        let cfg = paper_cfg(n);
        let pos = cfg.deploy_uniform(seed);
        let net = Network::from_positions(pos.clone(), cfg.radius, cfg.area);
        // Spot-check a deterministic subset against brute force.
        for i in (0..n).step_by(13) {
            let u = NodeId::new(i);
            let mut want: Vec<NodeId> = (0..n)
                .filter(|&j| j != i && pos[i].distance(pos[j]) <= cfg.radius)
                .map(NodeId::new)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(net.neighbors(u), &want[..]);
        }
    }

    #[test]
    fn bfs_hops_are_triangle_consistent(seed in 0u64..500) {
        let cfg = paper_cfg(150);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let hops = net.bfs_hops(NodeId(0));
        for (i, h) in hops.iter().enumerate() {
            if let Some(h) = h {
                for &v in net.neighbors(NodeId::new(i)) {
                    if let Some(hv) = hops[v.index()] {
                        prop_assert!(hv + 1 >= *h, "BFS level jump at edge {i}-{v}");
                    }
                }
            }
        }
    }

    #[test]
    fn dijkstra_no_longer_than_any_probe_path(seed in 0u64..200) {
        let cfg = paper_cfg(120);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let comp = net.largest_component();
        prop_assume!(comp.len() >= 2);
        let s = comp[0];
        let d = comp[comp.len() - 1];
        let (path, len) = net.shortest_path(s, d).unwrap();
        prop_assert_eq!(*path.first().unwrap(), s);
        prop_assert_eq!(*path.last().unwrap(), d);
        // Consecutive hops are edges.
        for w in path.windows(2) {
            prop_assert!(net.has_edge(w[0], w[1]));
        }
        // Straight-line distance is a lower bound; BFS hop count gives an
        // upper bound of hops * radius.
        let euclid = net.position(s).distance(net.position(d));
        prop_assert!(len + 1e-9 >= euclid);
        let hops = net.bfs_hops(s)[d.index()].unwrap() as f64;
        prop_assert!(len <= hops * net.radius() + 1e-9);
    }

    /// The tentpole invariant of the SpatialIndex refactor: the
    /// grid-derived unit-disk adjacency equals the brute-force O(n²)
    /// adjacency, node for node, across sparse, paper-scale, and dense
    /// deployments (~5, ~20, and ~47 expected neighbors in the paper's
    /// 200 m x 200 m area).
    #[test]
    fn spatial_index_adjacency_equals_brute_force(seed in 0u64..10_000) {
        for n in [120usize, 500, 1200] {
            let cfg = paper_cfg(n);
            let pos = cfg.deploy_uniform(seed);
            let fast = Network::from_positions(pos.clone(), cfg.radius, cfg.area);
            let brute = Network::from_positions_brute_force(pos, cfg.radius, cfg.area);
            prop_assert_eq!(fast.edge_count(), brute.edge_count(), "edge count at n={}", n);
            for u in fast.node_ids() {
                prop_assert_eq!(
                    fast.neighbors(u),
                    brute.neighbors(u),
                    "adjacency mismatch at n={}, node {}",
                    n,
                    u
                );
            }
        }
    }

    #[test]
    fn spatial_index_nearest_agrees_with_exhaustive_argmin(seed in 0u64..10_000) {
        let cfg = paper_cfg(250);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let probes = [
            Point::new(0.0, 0.0),
            Point::new(100.0, 100.0),
            Point::new(200.0, 0.0),
            Point::new(37.5, 141.0),
        ];
        for q in probes {
            let got = net.index().nearest(q).unwrap();
            let want = net
                .node_ids()
                .min_by(|&a, &b| {
                    net.position(a)
                        .distance_sq(q)
                        .total_cmp(&net.position(b).distance_sq(q))
                        .then(a.cmp(&b))
                })
                .unwrap();
            prop_assert_eq!(got, want, "nearest mismatch at probe {}", q);
        }
    }

    #[test]
    fn planar_subgraph_has_no_proper_crossings(seed in 0u64..100) {
        let cfg = paper_cfg(90);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let gg = PlanarGraph::build(&net, Planarization::Gabriel);
        let edges: Vec<(NodeId, NodeId)> = (0..net.len())
            .map(NodeId::new)
            .flat_map(|u| {
                gg.neighbors(u)
                    .iter()
                    .copied()
                    .filter(move |&v| u < v)
                    .map(move |v| (u, v))
            })
            .collect();
        for (i, &(a, b)) in edges.iter().enumerate() {
            let s1 = sp_geom::Segment::new(net.position(a), net.position(b));
            for &(c, d) in &edges[i + 1..] {
                if a == c || a == d || b == c || b == d {
                    continue;
                }
                let s2 = sp_geom::Segment::new(net.position(c), net.position(d));
                prop_assert!(
                    !s1.crosses_properly(&s2),
                    "Gabriel edges {a}-{b} and {c}-{d} cross"
                );
            }
        }
    }

    #[test]
    fn fa_deployment_leaves_holes_node_free(seed in 0u64..200) {
        let cfg = paper_cfg(200);
        let fa = FaModel::paper_default();
        let obstacles = fa.generate_obstacles(&cfg, seed);
        let pos = cfg.deploy_with_obstacles(&obstacles, seed);
        for p in &pos {
            for o in &obstacles {
                prop_assert!(!o.contains(*p));
            }
        }
    }

    #[test]
    fn edge_mask_covers_extremes(seed in 0u64..200) {
        let cfg = paper_cfg(150);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let mask = edge_node_mask(&net, net.radius());
        // The nodes with extreme coordinates are necessarily hull members.
        let (mut lo, mut hi) = (NodeId(0), NodeId(0));
        for u in net.node_ids() {
            if net.position(u).x < net.position(lo).x {
                lo = u;
            }
            if net.position(u).x > net.position(hi).x {
                hi = u;
            }
        }
        prop_assert!(mask[lo.index()]);
        prop_assert!(mask[hi.index()]);
    }
}

#[test]
fn paper_density_regime_is_connected_enough() {
    // At the paper's densest setting the giant component should dominate.
    let cfg = DeploymentConfig::paper_default(800);
    let net = Network::from_positions(cfg.deploy_uniform(0), cfg.radius, cfg.area);
    let comp = net.largest_component();
    assert!(
        comp.len() as f64 > 0.99 * net.len() as f64,
        "giant component only {}/{}",
        comp.len(),
        net.len()
    );
    // Average degree near the analytic estimate n·πr²/A.
    let expect = 800.0 * std::f64::consts::PI * 400.0 / 40_000.0;
    let got = net.avg_degree();
    assert!(
        (got - expect).abs() < expect * 0.25,
        "avg degree {got} far from estimate {expect}"
    );
}

#[test]
fn networks_are_cloneable_and_send() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
    let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
    let net = Network::from_positions(vec![Point::new(1.0, 1.0)], 5.0, area);
    let copy = net.clone();
    assert_eq!(copy.len(), net.len());
}
