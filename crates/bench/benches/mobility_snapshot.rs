//! The mobility re-snapshot hot path (ROADMAP "parallel + incremental
//! SpatialIndex"): incremental topology repair versus a full rebuild
//! when a small fraction of nodes moves, and row-sharded parallel bulk
//! adjacency versus the serial scan at 10⁵ nodes.
//!
//! Deployments keep the paper's density (radius 20 m, ~500 nodes per
//! 200 m × 200 m) while the area grows with `n`. The measured
//! repeat-sample statistics (samples / median / stddev) land in
//! `BENCH_mobility.json` at the workspace root; the committed copy is
//! the CI `bench-gate` baseline. The incremental case is timed as an
//! apply-moves round trip (forward + inverse, halved), which is exactly
//! the steady-state cost `RandomWaypoint::snapshot_incremental` pays
//! per tick without the benchmark paying a network clone per sample.
//!
//! Run with: `cargo bench -p sp-bench --bench mobility_snapshot`
//! (`SP_NET_THREADS` pins the parallel case's thread count.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_bench::{sample_stats, SampleStats};
use sp_geom::Point;
use sp_net::{DeploymentConfig, Network, NodeId, SpatialIndex};
use std::time::Instant;

/// Node count for the incremental-vs-rebuild comparison.
const SNAPSHOT_N: usize = 10_000;
/// Fraction of nodes moving per tick (the acceptance scenario: 1%).
const MOVER_FRACTION: f64 = 0.01;
/// Node count for the serial-vs-parallel adjacency comparison.
const ADJACENCY_N: usize = 100_000;

/// The paper's density at scale `n` (area grows with the node count).
fn deployment(n: usize) -> DeploymentConfig {
    DeploymentConfig::paper_density(n)
}

/// Every `1/MOVER_FRACTION`-th node displaced by one radio radius —
/// far enough that most movers change grid cells and rewire edges.
fn mover_batch(cfg: &DeploymentConfig, positions: &[Point]) -> Vec<(NodeId, Point)> {
    let stride = (1.0 / MOVER_FRACTION) as usize;
    positions
        .iter()
        .enumerate()
        .step_by(stride)
        .map(|(i, p)| {
            let x = (p.x + cfg.radius).min(cfg.area.max().x);
            let y = (p.y + 0.5 * cfg.radius).min(cfg.area.max().y);
            (NodeId::new(i), Point::new(x, y))
        })
        .collect()
}

fn snapshot_benches(c: &mut Criterion, rows: &mut Vec<String>) {
    let cfg = deployment(SNAPSHOT_N);
    let positions = cfg.deploy_uniform(13);
    let moves = mover_batch(&cfg, &positions);
    let movers = moves.len();
    let inverse: Vec<(NodeId, Point)> = moves
        .iter()
        .map(|&(id, _)| (id, positions[id.index()]))
        .collect();

    // Correctness gate before timing anything: the round trip must
    // reproduce the rebuilt topology exactly, both after the forward
    // and after the inverse batch.
    let mut net = Network::from_positions(positions.clone(), cfg.radius, cfg.area);
    let same_topology = |a: &Network, b: &Network, leg: &str| {
        for u in a.node_ids() {
            assert_eq!(a.neighbors(u), b.neighbors(u), "{leg} diverged at {u}");
        }
    };
    net.apply_moves(&moves);
    let rebuilt = Network::from_positions(net.positions_vec(), cfg.radius, cfg.area);
    same_topology(&net, &rebuilt, "forward");
    net.apply_moves(&inverse);
    let back = Network::from_positions(positions.clone(), cfg.radius, cfg.area);
    same_topology(&net, &back, "inverse");

    let runs = 7;
    let full_s = sample_stats(runs, || {
        Network::from_positions(positions.clone(), cfg.radius, cfg.area)
    });
    // Steady-state incremental tick: forward batch + inverse batch,
    // halved, so every sample does identical work on one owned network.
    let samples: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            net.apply_moves(&moves);
            net.apply_moves(&inverse);
            start.elapsed().as_secs_f64() / 2.0
        })
        .collect();
    let inc_s = SampleStats::of(&samples);
    let speedup = full_s.median / inc_s.median;
    eprintln!(
        "n={SNAPSHOT_N}, movers={movers}: full {:.3} ms | incremental {:.3} ms | {speedup:.1}x",
        full_s.median * 1e3,
        inc_s.median * 1e3
    );
    rows.push(format!(
        "    {{\"case\": \"snapshot_full_rebuild\", \"n\": {}, \"movers\": {}, {}}}",
        SNAPSHOT_N,
        movers,
        full_s.json_fields("time")
    ));
    rows.push(format!(
        "    {{\"case\": \"snapshot_incremental\", \"n\": {}, \"movers\": {}, {}, \"speedup_vs_full\": {:.2}}}",
        SNAPSHOT_N,
        movers,
        inc_s.json_fields("time"),
        speedup
    ));

    let mut group = c.benchmark_group("mobility_snapshot");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("full_rebuild", SNAPSHOT_N), |b| {
        b.iter(|| Network::from_positions(positions.clone(), cfg.radius, cfg.area));
    });
    group.bench_function(BenchmarkId::new("incremental", SNAPSHOT_N), |b| {
        b.iter(|| {
            net.apply_moves(&moves);
            net.apply_moves(&inverse);
        });
    });
    group.finish();
}

fn adjacency_benches(c: &mut Criterion, rows: &mut Vec<String>) {
    let cfg = deployment(ADJACENCY_N);
    let positions = cfg.deploy_uniform(17);
    let index = SpatialIndex::build(&positions, cfg.area, cfg.radius);
    let threads = SpatialIndex::auto_threads(ADJACENCY_N);

    // Sharding must not change the output at the benchmarked scale.
    assert_eq!(
        index.adjacency_within_threaded(cfg.radius, threads),
        index.adjacency_within(cfg.radius),
        "threaded adjacency diverged at n={ADJACENCY_N}"
    );

    let runs = 5;
    let serial_s = sample_stats(runs, || index.adjacency_within(cfg.radius));
    let parallel_s = sample_stats(runs, || {
        index.adjacency_within_threaded(cfg.radius, threads)
    });
    let speedup = serial_s.median / parallel_s.median;
    eprintln!(
        "n={ADJACENCY_N}: serial {:.1} ms | {threads}-thread {:.1} ms | {speedup:.1}x",
        serial_s.median * 1e3,
        parallel_s.median * 1e3
    );
    rows.push(format!(
        "    {{\"case\": \"adjacency_serial\", \"n\": {}, \"threads\": 1, {}}}",
        ADJACENCY_N,
        serial_s.json_fields("time")
    ));
    rows.push(format!(
        "    {{\"case\": \"adjacency_parallel\", \"n\": {}, \"threads\": {}, {}, \"speedup_vs_serial\": {:.2}}}",
        ADJACENCY_N,
        threads,
        parallel_s.json_fields("time"),
        speedup
    ));

    let mut group = c.benchmark_group("bulk_adjacency");
    group.sample_size(10);
    group.bench_function(BenchmarkId::new("serial", ADJACENCY_N), |b| {
        b.iter(|| index.adjacency_within(cfg.radius));
    });
    group.bench_function(BenchmarkId::new("threaded", ADJACENCY_N), |b| {
        b.iter(|| index.adjacency_within_threaded(cfg.radius, threads));
    });
    group.finish();
}

fn mobility_benches(c: &mut Criterion) {
    let mut rows = Vec::new();
    snapshot_benches(c, &mut rows);
    adjacency_benches(c, &mut rows);

    let json = format!(
        "{{\n  \"benchmark\": \"mobility_snapshot\",\n  \"unit\": \"seconds (median over samples)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_mobility.json");
    std::fs::write(out, &json).expect("write BENCH_mobility.json");
    eprintln!("wrote {out}");
}

criterion_group!(benches, mobility_benches);
criterion_main!(benches);
