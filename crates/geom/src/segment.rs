//! Line segments: intersection tests and point distance.
//!
//! Segments back two substrates of the reproduction: deciding whether a
//! deployment edge crosses a forbidden area (FA model, §5) and walking
//! faces of the planarized graph in the perimeter-routing baseline.

use crate::{Point, Ray, Side};

/// A closed line segment between two points.
///
/// ```
/// use sp_geom::{Point, Segment};
/// let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
/// let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
/// assert!(a.intersects(&b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// First endpoint.
    pub a: Point,
    /// Second endpoint.
    pub b: Point,
}

impl Segment {
    /// Segment between two endpoints (they may coincide).
    pub const fn new(a: Point, b: Point) -> Segment {
        Segment { a, b }
    }

    /// Segment length.
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// Midpoint.
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// True when the two closed segments share at least one point,
    /// including touching endpoints and collinear overlap.
    pub fn intersects(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);

        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1 == 0.0 && on_segment(other.a, other.b, self.a))
            || (d2 == 0.0 && on_segment(other.a, other.b, self.b))
            || (d3 == 0.0 && on_segment(self.a, self.b, other.a))
            || (d4 == 0.0 && on_segment(self.a, self.b, other.b))
    }

    /// Proper crossing test: the interiors intersect in exactly one point
    /// (no shared endpoints, no collinear overlap).
    pub fn crosses_properly(&self, other: &Segment) -> bool {
        let d1 = orient(other.a, other.b, self.a);
        let d2 = orient(other.a, other.b, self.b);
        let d3 = orient(self.a, self.b, other.a);
        let d4 = orient(self.a, self.b, other.b);
        ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
    }

    /// Intersection point of two properly-crossing segments, or the first
    /// shared endpoint for degenerate contact, or `None` when disjoint.
    pub fn intersection_point(&self, other: &Segment) -> Option<Point> {
        if self.crosses_properly(other) {
            let r = self.b - self.a;
            let s = other.b - other.a;
            let denom = r.cross(s);
            // crosses_properly guarantees denom != 0.
            let t = (other.a - self.a).cross(s) / denom;
            return Some(self.a + r * t);
        }
        if !self.intersects(other) {
            return None;
        }
        // Touching or collinear: return a witness contact point.
        for p in [self.a, self.b] {
            if on_segment(other.a, other.b, p) && orient(other.a, other.b, p) == 0.0 {
                return Some(p);
            }
        }
        [other.a, other.b]
            .into_iter()
            .find(|&p| on_segment(self.a, self.b, p) && orient(self.a, self.b, p) == 0.0)
    }

    /// Smallest distance from `p` to the closed segment.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.closest_point(p))
    }

    /// The point of the closed segment closest to `p`.
    pub fn closest_point(&self, p: Point) -> Point {
        let v = self.b - self.a;
        let len_sq = v.norm_sq();
        if len_sq == 0.0 {
            return self.a;
        }
        let t = (v.dot(p - self.a) / len_sq).clamp(0.0, 1.0);
        self.a + v * t
    }

    /// True when the segment crosses the supporting line of `ray` strictly
    /// (endpoints on opposite sides).
    pub fn straddles_ray_line(&self, ray: &Ray) -> bool {
        let sa = ray.side_of(self.a);
        let sb = ray.side_of(self.b);
        matches!(
            (sa, sb),
            (Side::Left, Side::Right) | (Side::Right, Side::Left)
        )
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} -- {}", self.a, self.b)
    }
}

/// Twice the signed area of triangle `(a, b, c)`: positive when `c` is
/// left of directed line `a -> b`.
fn orient(a: Point, b: Point, c: Point) -> f64 {
    (b - a).cross(c - a)
}

/// Assuming `p` collinear with segment `(a, b)`, is it within the
/// bounding box of the segment?
fn on_segment(a: Point, b: Point, p: Point) -> bool {
    p.x >= a.x.min(b.x) && p.x <= a.x.max(b.x) && p.y >= a.y.min(b.y) && p.y <= a.y.max(b.y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec2;

    #[test]
    fn proper_crossing_detected() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Segment::new(Point::new(0.0, 4.0), Point::new(4.0, 0.0));
        assert!(a.intersects(&b));
        assert!(a.crosses_properly(&b));
        let p = a.intersection_point(&b).unwrap();
        assert!((p.x - 2.0).abs() < 1e-12 && (p.y - 2.0).abs() < 1e-12);
    }

    #[test]
    fn touching_endpoint_is_intersecting_but_not_proper() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(2.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(2.0, 5.0));
        assert!(a.intersects(&b));
        assert!(!a.crosses_properly(&b));
        assert_eq!(a.intersection_point(&b), Some(Point::new(2.0, 0.0)));
    }

    #[test]
    fn collinear_overlap_intersects() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(4.0, 0.0));
        let b = Segment::new(Point::new(2.0, 0.0), Point::new(6.0, 0.0));
        assert!(a.intersects(&b));
        assert!(!a.crosses_properly(&b));
    }

    #[test]
    fn disjoint_segments_do_not_intersect() {
        let a = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let b = Segment::new(Point::new(3.0, 3.0), Point::new(4.0, 2.0));
        assert!(!a.intersects(&b));
        assert!(a.intersection_point(&b).is_none());
    }

    #[test]
    fn distance_to_point_clamps_to_endpoints() {
        let s = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        assert_eq!(s.distance_to_point(Point::new(5.0, 3.0)), 3.0);
        assert_eq!(s.distance_to_point(Point::new(-4.0, 3.0)), 5.0);
        assert_eq!(s.distance_to_point(Point::new(13.0, 4.0)), 5.0);
    }

    #[test]
    fn degenerate_segment_is_a_point() {
        let s = Segment::new(Point::new(1.0, 1.0), Point::new(1.0, 1.0));
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.distance_to_point(Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn straddle_test() {
        let ray = Ray::new(Point::ORIGIN, Vec2::new(1.0, 0.0)).unwrap();
        let cross = Segment::new(Point::new(2.0, -1.0), Point::new(2.0, 1.0));
        let above = Segment::new(Point::new(2.0, 1.0), Point::new(4.0, 2.0));
        assert!(cross.straddles_ray_line(&ray));
        assert!(!above.straddles_ray_line(&ray));
    }
}
