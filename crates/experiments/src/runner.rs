//! The parallel sweep runner.
//!
//! Fans network instances out over worker threads (the shared
//! [`sp_sync::WorkQueue`]), routes every scheme's flow batch through
//! a [`TrafficEngine`] session on every instance, and folds the
//! per-instance records into per-point statistics. Scheme display
//! names resolve **once per sweep** ([`Scheme::display_names`]) and are
//! stamped onto the aggregates, so nothing in the hot loop touches the
//! registry.

use crate::{PreparedNetwork, Scheme, SweepConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_core::TrafficEngine;
use sp_metrics::Summary;
use sp_net::{interference_count, Network, NodeId, RadioModel};
use sp_sim::ChaosPlan;
use sp_sync::WorkQueue;
use std::sync::Arc;

/// Packet size used for the A7 energy accounting, in bits. One short
/// sensor data frame; only the *relative* energy of the schemes matters.
pub const PACKET_BITS: f64 = 1024.0;

/// Everything recorded for one (instance, scheme) routing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteRecord {
    /// The scheme that produced the route.
    pub scheme: Scheme,
    /// Node count of the instance (figure x value).
    pub node_count: usize,
    /// Whether the packet reached the destination.
    pub delivered: bool,
    /// Hops walked (only meaningful for delivered packets).
    pub hops: usize,
    /// Euclidean path length walked.
    pub length: f64,
    /// Perimeter-phase entries.
    pub perimeter_entries: usize,
    /// Backup-phase entries (SLGF2 family).
    pub backup_entries: usize,
    /// First-order radio energy of one [`PACKET_BITS`]-bit packet over
    /// the walked path, in microjoules (A7).
    pub energy_uj: f64,
    /// Nodes overhearing at least one transmission of the path (A7).
    pub interference: usize,
    /// Walked hops over the BFS-minimum hops for the pair (A11; ≥ 1 for
    /// delivered routes, 0 when undelivered).
    pub hop_stretch: f64,
    /// Walked length over the Dijkstra-shortest length — the "ideal
    /// routing path" of the paper's Fig. 1(a) (A11).
    pub length_stretch: f64,
}

/// Aggregated per-(node count, scheme) statistics.
#[derive(Debug, Clone)]
pub struct SchemePoint {
    /// The scheme.
    pub scheme: Scheme,
    /// The scheme's display name, resolved once when the sweep started
    /// (shared across points; figure assembly reads it lock-free).
    pub scheme_name: Arc<str>,
    /// Hop counts of delivered routes.
    pub hops: Vec<f64>,
    /// Path lengths of delivered routes.
    pub lengths: Vec<f64>,
    /// Perimeter entries of all routes.
    pub perimeter_entries: Vec<f64>,
    /// Backup entries of all routes.
    pub backup_entries: Vec<f64>,
    /// Packet energies (µJ) of delivered routes (A7).
    pub energies: Vec<f64>,
    /// Interference set sizes of delivered routes (A7).
    pub interference: Vec<f64>,
    /// Hop stretches of delivered routes (A11).
    pub hop_stretches: Vec<f64>,
    /// Length stretches of delivered routes (A11).
    pub length_stretches: Vec<f64>,
    /// Delivered / total routes.
    pub delivered: usize,
    /// Total routes attempted.
    pub total: usize,
}

impl SchemePoint {
    fn new(scheme: Scheme, scheme_name: Arc<str>) -> SchemePoint {
        SchemePoint {
            scheme,
            scheme_name,
            hops: Vec::new(),
            lengths: Vec::new(),
            perimeter_entries: Vec::new(),
            backup_entries: Vec::new(),
            energies: Vec::new(),
            interference: Vec::new(),
            hop_stretches: Vec::new(),
            length_stretches: Vec::new(),
            delivered: 0,
            total: 0,
        }
    }

    fn add(&mut self, r: &RouteRecord) {
        self.total += 1;
        self.perimeter_entries.push(r.perimeter_entries as f64);
        self.backup_entries.push(r.backup_entries as f64);
        if r.delivered {
            self.delivered += 1;
            self.hops.push(r.hops as f64);
            self.lengths.push(r.length);
            self.energies.push(r.energy_uj);
            self.interference.push(r.interference as f64);
            self.hop_stretches.push(r.hop_stretch);
            self.length_stretches.push(r.length_stretch);
        }
    }

    /// Delivery ratio in `[0, 1]`.
    pub fn delivery_ratio(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.delivered as f64 / self.total as f64
        }
    }

    /// Summary of delivered hop counts.
    pub fn hops_summary(&self) -> Summary {
        Summary::of(&self.hops)
    }

    /// Summary of delivered path lengths.
    pub fn length_summary(&self) -> Summary {
        Summary::of(&self.lengths)
    }

    /// Mean perimeter entries per route.
    pub fn mean_perimeter_entries(&self) -> f64 {
        Summary::of(&self.perimeter_entries).mean
    }

    /// Mean backup entries per route.
    pub fn mean_backup_entries(&self) -> f64 {
        Summary::of(&self.backup_entries).mean
    }

    /// Summary of delivered packet energies (µJ).
    pub fn energy_summary(&self) -> Summary {
        Summary::of(&self.energies)
    }

    /// Summary of delivered interference set sizes.
    pub fn interference_summary(&self) -> Summary {
        Summary::of(&self.interference)
    }

    /// Summary of delivered hop stretches (walked / BFS-minimum).
    pub fn hop_stretch_summary(&self) -> Summary {
        Summary::of(&self.hop_stretches)
    }

    /// Summary of delivered length stretches (walked / Dijkstra).
    pub fn length_stretch_summary(&self) -> Summary {
        Summary::of(&self.length_stretches)
    }
}

/// One x-axis point of a sweep: all schemes at one node count.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Node count (x value).
    pub node_count: usize,
    /// Per-scheme aggregates, in the order the sweep was given.
    pub schemes: Vec<SchemePoint>,
}

impl SweepPoint {
    /// The aggregate for one scheme.
    pub fn scheme(&self, scheme: Scheme) -> Option<&SchemePoint> {
        self.schemes.iter().find(|s| s.scheme == scheme)
    }
}

/// A completed sweep.
#[derive(Debug, Clone)]
pub struct SweepResults {
    /// One entry per node count, ascending.
    pub points: Vec<SweepPoint>,
    /// The deployment scenario tag ("IA"/"FA"/"corridor"/…) for figure
    /// titles.
    pub deployment_tag: String,
}

/// Runs the sweep with `schemes` on every instance, in parallel.
///
/// Source/destination pairs are drawn uniformly from the largest
/// connected component (the paper routes between random nodes; sampling
/// connected pairs keeps "hops of delivered routes" well-defined while
/// delivery failures of the *routing* — not of the topology — still
/// show up in the A2 delivery-ratio ablation).
pub fn run_sweep(cfg: &SweepConfig, schemes: &[Scheme]) -> SweepResults {
    let mut jobs: Vec<(usize, usize, u64)> = Vec::new(); // (point idx, n, seed)
    for (i, &n) in cfg.node_counts.iter().enumerate() {
        for k in 0..cfg.networks_per_point {
            jobs.push((i, n, cfg.instance_seed(i, k)));
        }
    }

    let records = run_jobs(cfg, schemes, &jobs);

    // One registry read for the whole sweep: every point shares the
    // resolved names instead of cloning a String per lookup.
    let names = Scheme::display_names(schemes);
    let mut points: Vec<SweepPoint> = cfg
        .node_counts
        .iter()
        .map(|&n| SweepPoint {
            node_count: n,
            schemes: schemes
                .iter()
                .zip(&names)
                .map(|(&s, name)| SchemePoint::new(s, Arc::clone(name)))
                .collect(),
        })
        .collect();
    for (point_idx, recs) in records {
        for r in recs {
            let sp = points[point_idx]
                .schemes
                .iter_mut()
                .find(|s| s.scheme == r.scheme)
                .expect("record scheme was in the sweep set"); // sp-analyze: allow(panic, records are produced only from the schemes this sweep was given)
            sp.add(&r);
        }
    }
    SweepResults {
        points,
        deployment_tag: cfg.deployment.tag(),
    }
}

/// Environment knob pinning the sweep worker count.
pub const SWEEP_THREADS_ENV: &str = "SP_SWEEP_THREADS";

/// Executes the instance jobs across worker threads.
///
/// Workers pull jobs off the shared [`sp_sync::WorkQueue`] cursor, so
/// load balances dynamically even when instance sizes differ widely;
/// results come back in job order regardless of worker count.
fn run_jobs(
    cfg: &SweepConfig,
    schemes: &[Scheme],
    jobs: &[(usize, usize, u64)],
) -> Vec<(usize, Vec<RouteRecord>)> {
    let workers = sp_sync::configured_threads_for(SWEEP_THREADS_ENV).min(jobs.len().max(1));
    WorkQueue::new().run(workers, jobs.len(), |i| {
        let (point_idx, n, seed) = jobs[i];
        (point_idx, run_instance(cfg, schemes, n, seed))
    })
}

/// Generates one network instance and routes every scheme over the same
/// source/destination flows.
///
/// The flow batch (`flows=` when set, otherwise `pairs=` many flows) is
/// drawn up front, then each scheme routes the whole batch through a
/// [`TrafficEngine`] — reused per-worker route buffers, metrics folded
/// off the borrowed traces, no per-packet allocation. Records keep the
/// historical flow-major order: all schemes for flow 0, then flow 1, …
///
/// When the config carries a [`crate::MobilityRecipe`] the deployed
/// positions are perturbed before the network is built; when it carries
/// a [`crate::ChaosRecipe`] the instance is **degraded at the chaos
/// observation round** (every scheduled outage struck, active partition
/// cuts severed) before routing, and each delivered route then survives
/// a per-hop lossy-link draw at the plan's drop probability. With both
/// fields `None` this function is bit-identical to the pristine runner.
pub fn run_instance(
    cfg: &SweepConfig,
    schemes: &[Scheme],
    node_count: usize,
    seed: u64,
) -> Vec<RouteRecord> {
    let dc = cfg.deployment_config(node_count);
    let mut positions = cfg.deployment.deploy(&dc, seed);
    if let Some(mobility) = &cfg.mobility {
        positions = mobility.perturb(&positions, &dc, seed);
    }
    let mut net = Network::from_positions(positions, dc.radius, dc.area);
    let mut drop_p = 0.0;
    if let Some(recipe) = &cfg.chaos {
        let plan = recipe.build(&net, seed);
        net = degrade_at_observation_round(&net, &plan);
        drop_p = plan.drop_p();
    }
    let prepared = PreparedNetwork::new(net);
    let ctx = prepared.ctx();
    // Resolve each scheme's router once per instance — the registry
    // lookup (a read lock) and router construction stay out of the
    // per-packet loop.
    let routers: Vec<_> = schemes.iter().map(|s| s.build(&ctx)).collect();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7a1c_5eed);
    let flow_target = cfg.flow_count();
    let mut flows = Vec::with_capacity(flow_target);
    for _ in 0..flow_target {
        if let Some(pair) = random_connected_pair(&prepared.net, &mut rng) {
            flows.push(pair);
        }
    }
    // References for the stretch metrics, one per flow: BFS hop minimum
    // and the Dijkstra "ideal routing path" of Fig. 1(a).
    let refs: Vec<(Option<f64>, Option<f64>)> = flows
        .iter()
        .map(|&(s, d)| {
            (
                prepared.net.bfs_hops(s)[d.index()].map(f64::from),
                prepared.net.shortest_path(s, d).map(|(_, len)| len),
            )
        })
        .collect();
    let radio = RadioModel::first_order();
    // One engine worker: the sweep is already instance-parallel
    // (run_jobs saturates the host), so nesting threads here would
    // only oversubscribe. Direct batched callers wanting in-batch
    // parallelism drive `TrafficEngine` themselves.
    let engine = TrafficEngine::new(&prepared.net).with_threads(1);
    let mut per_scheme = Vec::with_capacity(schemes.len());
    for (&scheme, router) in schemes.iter().zip(&routers) {
        per_scheme.push(engine.run_map(router.as_ref(), &flows, |i, _, r| {
            let delivered = r.delivered();
            let (min_hops, ideal_len) = refs[i];
            let hop_stretch = match (delivered, min_hops) {
                (true, Some(m)) if m > 0.0 => r.hops() as f64 / m,
                _ => 0.0,
            };
            let length = r.length(&prepared.net);
            let length_stretch = match (delivered, ideal_len) {
                (true, Some(l)) if l > 0.0 => length / l,
                _ => 0.0,
            };
            RouteRecord {
                scheme,
                node_count,
                delivered,
                hops: r.hops(),
                length,
                perimeter_entries: r.perimeter_entries,
                backup_entries: r.backup_entries,
                energy_uj: radio.path_energy(&prepared.net, r.path, PACKET_BITS) / 1000.0,
                interference: interference_count(&prepared.net, r.path),
                hop_stretch,
                length_stretch,
            }
        }));
    }
    // Interleave back to flow-major order — the shape downstream
    // consumers (and the seed tests) have always read.
    let mut out = Vec::with_capacity(schemes.len() * flows.len());
    for i in 0..flows.len() {
        for recs in &per_scheme {
            out.push(recs[i]);
        }
    }
    if drop_p > 0.0 {
        // Lossy links: a delivered route survives only if every hop
        // beats an independent drop draw. The RNG is created only on
        // this branch (its own salted stream) so `chaos=None` sweeps
        // never construct it — the rate-0 bit-identity guarantee.
        let mut drops = StdRng::seed_from_u64(seed ^ 0xd20b_5eed);
        for r in &mut out {
            if r.delivered {
                let lost = (0..r.hops).any(|_| drops.random_bool(drop_p));
                if lost {
                    r.delivered = false;
                }
            }
        }
    }
    out
}

/// Applies a [`ChaosPlan`] to a freshly built instance at the plan's
/// **observation round**: the latest round any scheduled kill, revival,
/// or partition window opens. Routing then sees the topology as the
/// survivors do — every outage struck, flapped nodes in their final
/// state, and links crossing any cut still active at that round severed.
fn degrade_at_observation_round(net: &Network, plan: &ChaosPlan) -> Network {
    let round = plan
        .last_round()
        .unwrap_or(0)
        .max(plan.cuts().iter().map(|c| c.from_round).max().unwrap_or(0));
    let dead = plan.dead_as_of(round);
    let mut degraded = net.without_nodes(&dead);
    let mut cut_edges = Vec::new();
    for cut in plan.cuts().iter().filter(|c| c.active_at(round)) {
        cut_edges.extend(degraded.edges_crossing(cut.a, cut.b));
    }
    if !cut_edges.is_empty() {
        degraded = degraded.without_edges(&cut_edges);
    }
    degraded
}

/// Draws a random distinct pair from the largest connected component.
///
/// The destination is drawn from the `len - 1` indices other than the
/// source and shifted past it — uniform over distinct pairs and
/// terminating by construction, where the old rejection loop re-drew
/// `d` until it differed from `s` (unbounded on an unlucky RNG streak,
/// and forever on a degenerate one-value stream).
pub fn random_connected_pair(net: &Network, rng: &mut StdRng) -> Option<(NodeId, NodeId)> {
    let comp = net.largest_component();
    if comp.len() < 2 {
        return None;
    }
    let s_idx = rng.random_range(0..comp.len());
    let mut d_idx = rng.random_range(0..comp.len() - 1);
    if d_idx >= s_idx {
        d_idx += 1;
    }
    Some((comp[s_idx], comp[d_idx]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scenario;

    fn tiny_sweep(scenario: Scenario) -> SweepConfig {
        SweepConfig {
            node_counts: vec![400, 500],
            networks_per_point: 3,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: scenario,
            base_seed: 7,
            chaos: None,
            mobility: None,
        }
    }

    #[test]
    fn sweep_collects_all_points_and_schemes() {
        let cfg = tiny_sweep(Scenario::Ia);
        let res = run_sweep(&cfg, &Scheme::PAPER_SET);
        assert_eq!(res.points.len(), 2);
        assert_eq!(res.deployment_tag, "IA");
        for p in &res.points {
            assert_eq!(p.schemes.len(), 4);
            for sp in &p.schemes {
                assert_eq!(sp.total, 3, "{}", sp.scheme);
                assert!(sp.delivery_ratio() > 0.0, "{}", sp.scheme);
            }
            assert!(p.scheme(Scheme::Slgf2).is_some());
        }
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = tiny_sweep(Scenario::Fa);
        let a = run_sweep(&cfg, &[Scheme::Slgf2]);
        let b = run_sweep(&cfg, &[Scheme::Slgf2]);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.schemes[0].hops, pb.schemes[0].hops);
            assert_eq!(pa.schemes[0].delivered, pb.schemes[0].delivered);
        }
    }

    #[test]
    fn rate_zero_chaos_is_bit_identical_to_no_chaos() {
        let plain = tiny_sweep(Scenario::Ia);
        let mut quiet = plain.clone();
        // A parsed recipe whose plan schedules nothing and drops nothing:
        // the sweep must not be able to tell it apart from `chaos=None`.
        quiet.chaos = Some(crate::ChaosRecipe::parse("drop:p=0").unwrap());
        let seed = plain.instance_seed(0, 0);
        let a = run_instance(&plain, &Scheme::PAPER_SET, 400, seed);
        let b = run_instance(&quiet, &Scheme::PAPER_SET, 400, seed);
        assert_eq!(a, b);
    }

    #[test]
    fn lossy_links_at_probability_one_deliver_nothing() {
        let mut cfg = tiny_sweep(Scenario::Ia);
        cfg.chaos = Some(crate::ChaosRecipe::parse("drop:p=1").unwrap());
        let recs = run_instance(&cfg, &Scheme::PAPER_SET, 400, cfg.instance_seed(0, 0));
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| !r.delivered));
    }

    #[test]
    fn chaos_sweeps_are_deterministic_and_degrade_delivery() {
        let mut cfg = tiny_sweep(Scenario::Ia);
        cfg.chaos = Some(crate::ChaosRecipe::parse("region:r=0.3@round1+drop:p=0.05").unwrap());
        let a = run_sweep(&cfg, &[Scheme::Gf]);
        let b = run_sweep(&cfg, &[Scheme::Gf]);
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.schemes[0].delivered, pb.schemes[0].delivered);
            assert_eq!(pa.schemes[0].hops, pb.schemes[0].hops);
        }
        let pristine = run_sweep(&tiny_sweep(Scenario::Ia), &[Scheme::Gf]);
        let chaotic: usize = a.points.iter().map(|p| p.schemes[0].delivered).sum();
        let clean: usize = pristine.points.iter().map(|p| p.schemes[0].delivered).sum();
        assert!(
            chaotic <= clean,
            "a regional outage plus lossy links must not improve delivery ({chaotic} > {clean})"
        );
    }

    #[test]
    fn mobility_moves_the_instance_deterministically() {
        let mut cfg = tiny_sweep(Scenario::Ia);
        cfg.mobility = Some(crate::MobilityRecipe::parse("waypoint:speed=2,ticks=5").unwrap());
        let seed = cfg.instance_seed(0, 0);
        let moved = run_instance(&cfg, &[Scheme::Slgf2], 400, seed);
        assert_eq!(moved, run_instance(&cfg, &[Scheme::Slgf2], 400, seed));
        let still = run_instance(&tiny_sweep(Scenario::Ia), &[Scheme::Slgf2], 400, seed);
        assert_ne!(moved, still, "five ticks of waypoint motion reroutes");
    }

    #[test]
    fn delivered_routes_have_sane_metrics() {
        let cfg = tiny_sweep(Scenario::Ia);
        let recs = run_instance(&cfg, &Scheme::PAPER_SET, 400, cfg.instance_seed(0, 0));
        assert_eq!(recs.len(), 4);
        for r in recs {
            if r.delivered {
                assert!(r.hops >= 1);
                assert!(r.length > 0.0);
                // A hop never exceeds the radio range.
                assert!(r.length <= (r.hops as f64) * 20.0 + 1e-9);
            }
        }
    }
}
