//! Render the paper's hand-drawn figures (1a, 3, 4d, 4e) as SVG scenes
//! from their executable reconstructions, with safety coloring, shape
//! estimates, and the SLGF2 route overlaid.
//!
//! ```sh
//! cargo run --example paper_figures    # writes target/viz/figN.svg
//! ```

use sp_experiments::{all_scenarios, Scheme};
use sp_geom::Quadrant;
use sp_viz::svg::{Scene, SceneOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::Path::new("target/viz");
    std::fs::create_dir_all(out_dir)?;

    for sc in all_scenarios() {
        println!("{}: {}", sc.name, sc.description);
        let r2 = sc.route_slgf2();
        println!(
            "  SLGF2: {} in {} hops ({} backup, {} perimeter entries)",
            if r2.delivered() {
                "delivered"
            } else {
                "failed"
            },
            r2.hops(),
            r2.backup_entries,
            r2.perimeter_entries,
        );
        let r1 = sc.route(Scheme::Lgf);
        println!(
            "  LGF:   {} in {} hops ({} perimeter entries)",
            if r1.delivered() {
                "delivered"
            } else {
                "failed"
            },
            r1.hops(),
            r1.perimeter_entries,
        );

        let mut scene = Scene::new(
            &sc.net,
            SceneOptions {
                width_px: 600.0,
                ..SceneOptions::default()
            },
        )
        .with_safety(&sc.info)
        .with_route("SLGF2", &r2)
        .with_mark(sc.source, "s")
        .with_mark(sc.destination, "d");
        // Overlay the source's unsafe-area estimates where they exist.
        for q in Quadrant::ALL {
            if let Some(est) = sc.info.estimate(sc.source, q) {
                scene = scene.with_estimate(sc.source, q, est.rect);
            }
        }
        let path = out_dir.join(format!("{}.svg", sc.name));
        std::fs::write(&path, scene.render())?;
        println!("  wrote {}\n", path.display());
    }
    Ok(())
}
