//! The routing schemes under evaluation: an open [`SchemeRegistry`]
//! plus the [`PreparedNetwork`] wrapper the sweeps route on.
//!
//! # Adding a scheme
//!
//! Historically every scheme lived in an enum whose `match` arms were
//! duplicated across the sweep runner and the streaming workload;
//! adding an ablation variant meant touching every dispatch site. Now a
//! scheme is a [`Scheme`] handle into the registry, its builder is a
//! **closure** that may capture arbitrary configuration, and adding one
//! is **one registration call** — no other file changes:
//!
//! ```
//! use sp_core::Routing;
//! use sp_experiments::{RouterContext, Scheme};
//!
//! // A parameterized curve for the figures: the closure captures its
//! // config payload (here a TTL multiplier), so ablation variants need
//! // no new code — the sweeps, figures, and workloads all dispatch
//! // through the handle.
//! let ttl = 2.0;
//! let scheme = Scheme::register(format!("SLGF2[ttl={ttl}n]"), move |ctx| {
//!     Box::new(sp_core::Slgf2Router::new(ctx.info).with_ttl_multiplier(ttl))
//! });
//! assert_eq!(scheme.name(), format!("SLGF2[ttl={ttl}n]"));
//! assert_eq!(Scheme::by_name("SLGF2[ttl=2n]"), Some(scheme));
//! ```
//!
//! Whole ablation *grids* register in one call through
//! [`SchemeFamily`]: each variant is a `(parameter-tag, payload)` pair
//! and the family stamps out `BASE[tag]` names.

use sp_baselines::{GfRouter, GfgRouter, Slgf2FaceRouter};
use sp_core::{LgfRouter, RouteResult, Routing, SafetyInfo, Slgf2Router, SlgfRouter};
use sp_net::{Network, NodeId};
use std::sync::{Arc, OnceLock, RwLock};

/// Everything a scheme's router may borrow when it is constructed: the
/// topology to route on plus the precomputed per-network structures.
///
/// The topology is carried separately from the structures so callers
/// like the lifetime workload can route on a *degraded* snapshot while
/// reusing incrementally-repaired safety information.
#[derive(Debug, Clone, Copy)]
pub struct RouterContext<'a> {
    /// The unit disk graph to route on.
    pub net: &'a Network,
    /// Safety + shape information for the SLGF family.
    pub info: &'a SafetyInfo,
    /// The prebuilt GF baseline (hole atlas + recovery structures).
    pub gf: &'a GfRouter,
    /// The prebuilt GFG face-routing baseline (planarization).
    pub gfg: &'a GfgRouter,
}

/// Constructs a boxed router borrowing from the context.
///
/// A shared closure rather than a `fn` pointer, so builders can capture
/// configuration payloads (TTL policies, hand heuristics, ablation
/// switches) at registration time. `Arc` rather than `Box` because the
/// registry hands builders out to sweep worker threads without holding
/// its lock across user code.
pub type SchemeBuild =
    Arc<dyn for<'a> Fn(&RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a> + Send + Sync>;

struct SchemeEntry {
    name: String,
    build: SchemeBuild,
}

/// The process-wide table mapping [`Scheme`] handles to names and
/// router builders.
///
/// All built-in schemes are registered in [`SchemeRegistry::builtin`] —
/// the **single registration site** — and ablation variants can be
/// appended at runtime with [`Scheme::register`] /
/// [`Scheme::try_register`] (or in bulk with [`SchemeFamily`]). Handles
/// are plain `Copy` indices, so they flow through sweep records and
/// thread pools exactly like the old enum did.
pub struct SchemeRegistry {
    entries: Vec<SchemeEntry>,
}

impl SchemeRegistry {
    /// Names of every registered scheme, in registration order
    /// (parallel to [`Scheme::all`]).
    pub fn names() -> Vec<String> {
        read_registry()
            .entries
            .iter()
            .map(|e| e.name.clone())
            .collect()
    }

    /// Number of registered schemes.
    pub fn len() -> usize {
        read_registry().entries.len()
    }

    /// The built-in schemes: the paper's four curves, the A3/A4
    /// ablations, and the two face-routing baselines/hybrids.
    ///
    /// This function is the only place a built-in scheme is declared;
    /// the `Scheme` constants below are fixed indices into this table
    /// (in registration order).
    fn builtin() -> SchemeRegistry {
        let mut reg = SchemeRegistry {
            entries: Vec::new(),
        };
        // === The scheme registration table ====================[order matters]
        reg.add("GF", |ctx| Box::new(ctx.gf)); // Scheme::Gf
        reg.add("LGF", |_| Box::new(LgfRouter::new())); // Scheme::Lgf
        reg.add("SLGF", |ctx| Box::new(SlgfRouter::new(ctx.info))); // Scheme::Slgf
        reg.add("SLGF2", |ctx| Box::new(Slgf2Router::new(ctx.info))); // Scheme::Slgf2
        reg.add("SLGF2-noEH", |ctx| {
            Box::new(Slgf2Router::new(ctx.info).without_superseding()) // Scheme::Slgf2NoSuperseding
        });
        reg.add("SLGF2-noBP", |ctx| {
            Box::new(Slgf2Router::new(ctx.info).without_backup()) // Scheme::Slgf2NoBackup
        });
        reg.add("GFG", |ctx| Box::new(ctx.gfg)); // Scheme::Gfg
        reg.add("SLGF2-F", |ctx| {
            Box::new(Slgf2FaceRouter::with_face_router(ctx.info, ctx.gfg.clone()))
            // Scheme::Slgf2Face
        });
        // ======================================================================
        reg
    }

    fn add<F>(&mut self, name: &str, build: F) -> Scheme
    where
        F: for<'a> Fn(&RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a>
            + Send
            + Sync
            + 'static,
    {
        self.try_add(name.to_owned(), Arc::new(build))
            .unwrap_or_else(|e| panic!("{e}")) // sp-analyze: allow(panic, documented panicking variant; try_ siblings recover instead)
    }

    fn try_add(&mut self, name: String, build: SchemeBuild) -> Result<Scheme, String> {
        if self.entries.iter().any(|e| e.name == name) {
            return Err(format!("scheme {name:?} registered twice"));
        }
        if self.entries.len() >= u16::MAX as usize {
            return Err("scheme registry full".to_owned());
        }
        self.entries.push(SchemeEntry { name, build });
        Ok(Scheme((self.entries.len() - 1) as u16))
    }

    /// Appends a batch atomically: either every entry registers (in
    /// order) or none does.
    fn try_add_all(&mut self, batch: Vec<(String, SchemeBuild)>) -> Result<Vec<Scheme>, String> {
        for (name, _) in &batch {
            if self.entries.iter().any(|e| &e.name == name) {
                return Err(format!("scheme {name:?} registered twice"));
            }
        }
        let mut batch_names: Vec<&String> = batch.iter().map(|(n, _)| n).collect();
        let unique_in_batch = batch_names.len();
        batch_names.sort_unstable();
        batch_names.dedup();
        if batch_names.len() != unique_in_batch {
            return Err("scheme family contains duplicate variant names".to_owned());
        }
        if self.entries.len() + batch.len() > u16::MAX as usize {
            return Err("scheme registry full".to_owned());
        }
        Ok(batch
            .into_iter()
            .map(|(name, build)| {
                self.entries.push(SchemeEntry { name, build });
                Scheme((self.entries.len() - 1) as u16)
            })
            .collect())
    }
}

/// Reads the global registry, recovering from a poisoned lock — the
/// registry is append-only, so a panic mid-registration cannot leave a
/// torn entry behind.
fn read_registry() -> std::sync::RwLockReadGuard<'static, SchemeRegistry> {
    registry()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write_registry() -> std::sync::RwLockWriteGuard<'static, SchemeRegistry> {
    registry()
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn registry() -> &'static RwLock<SchemeRegistry> {
    static GLOBAL: OnceLock<RwLock<SchemeRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(SchemeRegistry::builtin()))
}

/// A handle to one registered routing scheme.
///
/// `Copy`, order-stable, and cheap to compare — records, sweep points,
/// and figures carry it by value. The associated constants name the
/// built-in schemes of [`SchemeRegistry::builtin`]; further schemes get
/// their handles from [`Scheme::register`] or [`SchemeFamily`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scheme(u16);

#[allow(non_upper_case_globals)] // named like the enum variants they replaced
impl Scheme {
    /// Greedy forwarding with BOUNDHOLE recovery (baseline \[5\]/\[6\]).
    pub const Gf: Scheme = Scheme(0);
    /// Limited greedy forwarding, Algo. 1.
    pub const Lgf: Scheme = Scheme(1);
    /// Safety-information LGF of \[7\].
    pub const Slgf: Scheme = Scheme(2);
    /// The paper's contribution, Algo. 3.
    pub const Slgf2: Scheme = Scheme(3);
    /// SLGF2 without the either-hand superseding rule (ablation A3).
    pub const Slgf2NoSuperseding: Scheme = Scheme(4);
    /// SLGF2 without the backup-path phase (ablation A4).
    pub const Slgf2NoBackup: Scheme = Scheme(5);
    /// Greedy-Face-Greedy with full planar face changes (Bose et al.
    /// \[2\]) — the guaranteed-delivery comparison of ablation A8.
    pub const Gfg: Scheme = Scheme(6);
    /// SLGF2 with FACE-2 recovery instead of the untried sweep — the
    /// paper's §6 future-work direction (ablation A12).
    pub const Slgf2Face: Scheme = Scheme(7);

    /// The four curves of every figure in the paper, in its order.
    pub const PAPER_SET: [Scheme; 4] = [Scheme::Gf, Scheme::Lgf, Scheme::Slgf, Scheme::Slgf2];

    /// The paper's curves plus the GFG face-routing baseline (A8).
    pub const EXTENDED_SET: [Scheme; 5] = [
        Scheme::Gf,
        Scheme::Lgf,
        Scheme::Slgf,
        Scheme::Slgf2,
        Scheme::Gfg,
    ];

    /// Registers a new scheme under `name` and returns its handle.
    ///
    /// The builder may capture configuration (it is stored as a shared
    /// closure, not a `fn` pointer). This is the *only* edit needed to
    /// add a scheme: everything downstream (sweeps, figures, workloads,
    /// benches) dispatches through the handle.
    ///
    /// # Panics
    ///
    /// Panics when `name` is already registered; use
    /// [`Scheme::try_register`] to handle the collision instead.
    pub fn register<F>(name: impl Into<String>, build: F) -> Scheme
    where
        F: for<'a> Fn(&RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a>
            + Send
            + Sync
            + 'static,
    {
        // Panic only after the lock guard is released, so a rejected
        // registration cannot poison the registry for other threads.
        Scheme::try_register(name, build).unwrap_or_else(|e| panic!("{e}")) // sp-analyze: allow(panic, documented panicking variant; try_ siblings recover instead)
    }

    /// Registers a new scheme, reporting name collisions as `Err`
    /// instead of panicking.
    pub fn try_register<F>(name: impl Into<String>, build: F) -> Result<Scheme, String>
    where
        F: for<'a> Fn(&RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a>
            + Send
            + Sync
            + 'static,
    {
        write_registry().try_add(name.into(), Arc::new(build))
    }

    /// Looks a scheme up by its display name.
    pub fn by_name(name: &str) -> Option<Scheme> {
        let reg = read_registry();
        reg.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| Scheme(i as u16))
    }

    /// Every currently registered scheme, in registration order.
    pub fn all() -> Vec<Scheme> {
        let reg = read_registry();
        (0..reg.entries.len() as u16).map(Scheme).collect()
    }

    /// Display name (figure legend). Cloned out of the registry — names
    /// are short and this never runs in a per-packet loop. Hot paths
    /// that label many records resolve a whole scheme set at once with
    /// [`Scheme::display_names`] instead.
    pub fn name(&self) -> String {
        read_registry().entries[self.0 as usize].name.clone()
    }

    /// Resolves the display names of a whole scheme set under **one**
    /// registry read lock, as shared `Arc<str>`s. The sweep runner
    /// resolves names once per sweep and stamps them onto its
    /// aggregates, so figure assembly and record labeling never pay a
    /// per-call lock + `String` clone again.
    pub fn display_names(schemes: &[Scheme]) -> Vec<Arc<str>> {
        let reg = read_registry();
        schemes
            .iter()
            .map(|s| Arc::from(reg.entries[s.0 as usize].name.as_str()))
            .collect()
    }

    /// Constructs this scheme's router over the given context.
    pub fn build<'a>(&self, ctx: &RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a> {
        // Clone the shared builder out so user code runs with the
        // registry lock released (a builder may itself register).
        let build = Arc::clone(&read_registry().entries[self.0 as usize].build);
        build(ctx)
    }

    /// Routes one packet under this scheme.
    pub fn route(&self, ctx: &RouterContext<'_>, src: NodeId, dst: NodeId) -> RouteResult {
        self.build(ctx).route(ctx.net, src, dst)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&read_registry().entries[self.0 as usize].name)
    }
}

/// A whole parameter sweep of one base scheme, registered in one call.
///
/// Each variant is a parameter tag plus a builder closure capturing its
/// payload; the family stamps out `BASE[tag]` names so an ablation grid
/// like `SLGF2[ttl=2n,hand=cw]` exists without new code:
///
/// ```
/// use sp_core::Slgf2Router;
/// use sp_experiments::{Scheme, SchemeFamily};
///
/// let ttls = SchemeFamily::new("SLGF2-ttl-doc")
///     .sweep([("ttl=1n", 1.0), ("ttl=2n", 2.0), ("ttl=4n", 4.0)], |&m, ctx| {
///         Box::new(Slgf2Router::new(ctx.info).with_ttl_multiplier(m))
///     })
///     .register();
/// assert_eq!(ttls.len(), 3);
/// assert_eq!(ttls[1].name(), "SLGF2-ttl-doc[ttl=2n]");
/// assert_eq!(Scheme::by_name("SLGF2-ttl-doc[ttl=4n]"), Some(ttls[2]));
/// ```
#[must_use = "a family does nothing until `register`/`try_register` is called"]
pub struct SchemeFamily {
    base: String,
    variants: Vec<(String, SchemeBuild)>,
}

impl SchemeFamily {
    /// Starts an empty family named `base`.
    pub fn new(base: impl Into<String>) -> SchemeFamily {
        SchemeFamily {
            base: base.into(),
            variants: Vec::new(),
        }
    }

    /// Adds one variant; its registered name is `base[params]` (or the
    /// bare base name when `params` is empty).
    pub fn variant<F>(mut self, params: impl Into<String>, build: F) -> SchemeFamily
    where
        F: for<'a> Fn(&RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a>
            + Send
            + Sync
            + 'static,
    {
        let params = params.into();
        let name = if params.is_empty() {
            self.base.clone()
        } else {
            format!("{}[{params}]", self.base)
        };
        self.variants.push((name, Arc::new(build)));
        self
    }

    /// Adds one variant per `(tag, payload)` pair, all built by the
    /// same factory closure — the one-call parameter sweep.
    pub fn sweep<P, T, F>(mut self, params: impl IntoIterator<Item = (T, P)>, build: F) -> Self
    where
        P: Send + Sync + 'static,
        T: Into<String>,
        F: for<'a> Fn(&P, &RouterContext<'a>) -> Box<dyn Routing + Send + Sync + 'a>
            + Send
            + Sync
            + Clone
            + 'static,
    {
        for (tag, payload) in params {
            let build = build.clone();
            self = self.variant(tag, move |ctx: &RouterContext<'_>| build(&payload, ctx));
        }
        self
    }

    /// Names this family will register, in order.
    pub fn names(&self) -> Vec<String> {
        self.variants.iter().map(|(n, _)| n.clone()).collect()
    }

    /// Registers every variant atomically and returns the handles in
    /// variant order.
    ///
    /// # Panics
    ///
    /// Panics when any name is already registered (no variant is added
    /// in that case); use [`SchemeFamily::try_register`] to recover.
    pub fn register(self) -> Vec<Scheme> {
        self.try_register().unwrap_or_else(|e| panic!("{e}")) // sp-analyze: allow(panic, documented panicking variant; try_ siblings recover instead)
    }

    /// Registers every variant atomically: on any name collision the
    /// whole family is rejected and the registry is left untouched.
    pub fn try_register(self) -> Result<Vec<Scheme>, String> {
        write_registry().try_add_all(self.variants)
    }
}

/// One generated network with every precomputed structure the schemes
/// need: the safety information for SLGF/SLGF2 and the GF recovery
/// structures (hole atlas + planarization) — mirroring §5's "before we
/// test the routing performance … boundary information is constructed
/// for GF routings, and safety information and estimated shape
/// information are constructed for our SLGF and SLGF2 routing".
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    /// The unit disk graph.
    pub net: Network,
    /// Safety + shape information (centralized construction).
    pub info: SafetyInfo,
    /// The GF baseline with its recovery structures.
    pub gf: GfRouter,
    /// The GFG face-routing baseline (shares nothing with GF's atlas).
    pub gfg: GfgRouter,
}

impl PreparedNetwork {
    /// Builds everything for a deployed point set.
    pub fn new(net: Network) -> PreparedNetwork {
        let info = SafetyInfo::build(&net);
        let gf = GfRouter::new(&net);
        let gfg = GfgRouter::new(&net);
        PreparedNetwork { net, info, gf, gfg }
    }

    /// The borrow bundle scheme builders construct routers from.
    pub fn ctx(&self) -> RouterContext<'_> {
        RouterContext {
            net: &self.net,
            info: &self.info,
            gf: &self.gf,
            gfg: &self.gfg,
        }
    }

    /// Routes one packet under the given scheme.
    pub fn route(&self, scheme: Scheme, src: NodeId, dst: NodeId) -> RouteResult {
        scheme.route(&self.ctx(), src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::deploy::DeploymentConfig;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<String> = Scheme::all().iter().map(|s| s.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(total >= 8, "all built-ins registered");
        assert_eq!(Scheme::PAPER_SET.len(), 4);
        assert_eq!(Scheme::Slgf2.name(), "SLGF2");
        assert_eq!(Scheme::by_name("GFG"), Some(Scheme::Gfg));
        assert_eq!(Scheme::by_name("no-such-scheme"), None);
        assert_eq!(SchemeRegistry::len(), Scheme::all().len());
        let listed: Vec<String> = Scheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(SchemeRegistry::names(), listed);
    }

    #[test]
    fn all_schemes_route_on_a_dense_network() {
        let cfg = DeploymentConfig::paper_default(500);
        let net = Network::from_positions(cfg.deploy_uniform(21), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        for scheme in [
            Scheme::Gf,
            Scheme::Lgf,
            Scheme::Slgf,
            Scheme::Slgf2,
            Scheme::Slgf2NoSuperseding,
            Scheme::Slgf2NoBackup,
            Scheme::Gfg,
            Scheme::Slgf2Face,
        ] {
            let r = prepared.route(scheme, s, d);
            assert_eq!(r.path.first(), Some(&s), "{scheme}");
            assert!(r.hops() > 0, "{scheme}");
        }
    }

    /// The registry's acceptance criterion: a new scheme is ONE
    /// registration call — here a closure capturing its own config
    /// payload — after which every downstream consumer (the
    /// prepared-network dispatch the sweeps use) handles it with no
    /// further edits.
    #[test]
    fn registering_a_scheme_is_a_single_site_change() {
        let ttl_multiplier = 2.0; // captured payload, not a fn pointer
        let scheme = Scheme::register("TEST-ttl-payload", move |ctx| {
            Box::new(Slgf2Router::new(ctx.info).with_ttl_multiplier(ttl_multiplier))
        });
        assert_eq!(scheme.name(), "TEST-ttl-payload");
        assert!(Scheme::all().contains(&scheme));

        let cfg = DeploymentConfig::paper_default(400);
        let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        let r = prepared.route(scheme, comp[0], comp[comp.len() - 1]);
        assert_eq!(r.path.first(), Some(&comp[0]));
        assert!(r.delivered());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let _ = Scheme::register("SLGF2", |ctx| Box::new(Slgf2Router::new(ctx.info)));
    }

    #[test]
    fn try_register_reports_collisions_without_panicking() {
        let err = Scheme::try_register("SLGF2", |ctx| Box::new(Slgf2Router::new(ctx.info)))
            .expect_err("SLGF2 is a built-in");
        assert!(err.contains("registered twice"), "{err}");
        // A fresh name still registers through the same path.
        let ok = Scheme::try_register("TEST-try-register", |ctx| {
            Box::new(Slgf2Router::new(ctx.info))
        });
        assert!(ok.is_ok());
    }

    #[test]
    fn family_registers_a_parameter_sweep_in_one_call() {
        let schemes = SchemeFamily::new("TEST-fam")
            .sweep(
                [("ttl=1n", 1.0), ("ttl=2n", 2.0), ("ttl=4n", 4.0)],
                |&m, ctx| Box::new(Slgf2Router::new(ctx.info).with_ttl_multiplier(m)),
            )
            .variant("hand=cw", |ctx| {
                Box::new(Slgf2Router::new(ctx.info).without_superseding())
            })
            .register();
        assert_eq!(schemes.len(), 4);
        let names: Vec<String> = schemes.iter().map(|s| s.name()).collect();
        assert_eq!(
            names,
            vec![
                "TEST-fam[ttl=1n]",
                "TEST-fam[ttl=2n]",
                "TEST-fam[ttl=4n]",
                "TEST-fam[hand=cw]"
            ]
        );
        // Every variant routes through the ordinary dispatch path.
        let cfg = DeploymentConfig::paper_default(400);
        let net = Network::from_positions(cfg.deploy_uniform(8), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        for &s in &schemes {
            let r = prepared.route(s, comp[0], comp[comp.len() - 1]);
            assert_eq!(r.path.first(), Some(&comp[0]), "{s}");
        }
    }

    #[test]
    fn family_registration_is_atomic_on_collision() {
        let before = SchemeRegistry::len();
        let err = SchemeFamily::new("TEST-fam-atomic")
            .variant("a", |ctx| Box::new(Slgf2Router::new(ctx.info)))
            .variant("", |_| Box::new(LgfRouter::new())) // bare base name
            .sweep([("dup", ()), ("dup", ())], |_, ctx| {
                Box::new(Slgf2Router::new(ctx.info))
            })
            .try_register()
            .expect_err("duplicate variant tags must be rejected");
        assert!(err.contains("duplicate"), "{err}");
        assert_eq!(
            SchemeRegistry::len(),
            before,
            "a rejected family must not leave partial entries behind"
        );
        assert_eq!(Scheme::by_name("TEST-fam-atomic[a]"), None);
        assert_eq!(Scheme::by_name("TEST-fam-atomic"), None);
    }
}
