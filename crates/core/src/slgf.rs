//! SLGF routing — the safety-information LGF of the authors' earlier
//! work \[7\], reconstructed from this paper's §2–§3.
//!
//! SLGF is LGF with the safe-forwarding filter: the successor must be
//! safe with respect to *its own* request zone toward the destination
//! (`S_k̄(v) = 1`). Theorem 1 then guarantees the greedy advance is never
//! blocked while safe nodes are used. When no safe successor exists
//! (unsafe source neighborhood or unsafe destination), SLGF falls back to
//! the same right-hand perimeter routing as LGF — the gap SLGF2 closes
//! with its backup-path and shape-estimate machinery.

use crate::{
    closer_than_entry, default_ttl, greedy_pick, perimeter_sweep, walk_into, zone_candidates, Hand,
    HopPolicy, Mode, PacketState, RouteBuffer, RoutePhase, RouteRef, Routing, SafetyInfo,
};
use sp_geom::Quadrant;
use sp_net::{Network, NodeId};

/// The safety-information LGF routing of \[7\].
///
/// ```
/// use sp_core::{SafetyInfo, SlgfRouter, Routing};
/// use sp_net::{deploy::DeploymentConfig, Network, NodeId};
///
/// let cfg = DeploymentConfig::paper_default(450);
/// let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);
/// let info = SafetyInfo::build(&net);
/// let r = SlgfRouter::new(&info).route(&net, NodeId(10), NodeId(20));
/// assert_eq!(r.path.first(), Some(&NodeId(10)));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SlgfRouter<'a> {
    info: &'a SafetyInfo,
}

impl<'a> SlgfRouter<'a> {
    /// Creates the router over prebuilt safety information.
    pub fn new(info: &'a SafetyInfo) -> SlgfRouter<'a> {
        SlgfRouter { info }
    }

    /// The safety information in use.
    pub fn info(&self) -> &SafetyInfo {
        self.info
    }

    /// The safe-forwarding pick: the zone candidate closest to `d` among
    /// those that are safe toward `d` from their own position.
    fn safe_pick(&self, net: &Network, u: NodeId, d: NodeId) -> Option<NodeId> {
        let pd = net.position(d);
        let safe = zone_candidates(net, u, d).filter(|&v| {
            match Quadrant::of(net.position(v), pd) {
                // Co-located with d: the next hop delivers.
                None => true,
                Some(k_bar) => self.info.is_safe(v, k_bar),
            }
        });
        greedy_pick(net, d, safe)
    }
}

impl HopPolicy for SlgfRouter<'_> {
    fn name(&self) -> &'static str {
        "SLGF"
    }

    fn next_hop(&self, net: &Network, pkt: &mut PacketState) -> Option<NodeId> {
        let u = pkt.current;
        let d = pkt.dst;

        if net.has_edge(u, d) {
            pkt.resume_greedy();
            pkt.phase = RoutePhase::Greedy;
            return Some(d);
        }

        // Perimeter exit: closer than the stuck anchor *and* safe
        // forwarding is possible again.
        if closer_than_entry(net, pkt) {
            if let Some(v) = self.safe_pick(net, u, d) {
                pkt.resume_greedy();
                pkt.phase = RoutePhase::Greedy;
                return Some(v);
            }
            let du = net.position(u).distance(net.position(d));
            pkt.mode = Mode::Perimeter { entry_dist: du };
        }

        if pkt.mode == Mode::Greedy {
            if let Some(v) = self.safe_pick(net, u, d) {
                pkt.phase = RoutePhase::Greedy;
                return Some(v);
            }
            let du = net.position(u).distance(net.position(d));
            pkt.enter_perimeter(du);
        }

        pkt.phase = RoutePhase::Perimeter;
        perimeter_sweep(net, pkt, Hand::Ccw)
    }
}

impl Routing for SlgfRouter<'_> {
    fn name(&self) -> &'static str {
        "SLGF"
    }

    fn route_into<'b>(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        buf: &'b mut RouteBuffer,
    ) -> RouteRef<'b> {
        walk_into(self, net, src, dst, default_ttl(net), buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};
    use sp_net::DeploymentConfig;

    fn area() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(200.0, 200.0))
    }

    #[test]
    fn safe_forwarding_never_meets_a_local_minimum() {
        // Theorem 1 consequence: while only safe nodes are used, the
        // greedy advance is never blocked. Count perimeter entries on
        // dense uniform networks with pinned hulls: whenever the route
        // stays in phase Greedy it must deliver.
        let cfg = DeploymentConfig::paper_default(600);
        for seed in 0..3 {
            let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
            let info = SafetyInfo::build(&net);
            let router = SlgfRouter::new(&info);
            let comp = net.largest_component();
            let (s, d) = (comp[1], comp[comp.len() - 2]);
            let r = router.route(&net, s, d);
            if r.phases.iter().all(|&p| p == RoutePhase::Greedy) {
                assert!(r.delivered(), "pure safe forwarding must deliver");
            }
        }
    }

    /// A type-1 unsafe trap on the diagonal with a safe corridor flanking
    /// it *inside* the request zone: SLGF routes around greedily with no
    /// perimeter entry, while LGF greedily dives into the trap and needs
    /// perimeter recovery.
    ///
    /// ```text
    ///                             d(90,90)
    ///                        g7(87,80)
    ///                      g6(84,72)
    ///          t3(56,56)  g5(80,58)      t1..t3: dead-end trap
    ///        t2(44,44)   g4(74,44)       g1..g7: safe corridor
    ///      t1(32,32)  g3(64,32)
    ///    s(20,20) g1(36,22) g2(50,26)
    /// ```
    #[test]
    fn unsafe_wedge_is_avoided_by_safe_forwarding() {
        let pos = vec![
            Point::new(20.0, 20.0), // 0 = s
            Point::new(32.0, 32.0), // 1 = t1 (trap)
            Point::new(44.0, 44.0), // 2 = t2 (trap)
            Point::new(56.0, 56.0), // 3 = t3 (trap tip: empty NE)
            Point::new(36.0, 22.0), // 4 = g1
            Point::new(50.0, 26.0), // 5 = g2
            Point::new(64.0, 32.0), // 6 = g3
            Point::new(74.0, 44.0), // 7 = g4
            Point::new(80.0, 58.0), // 8 = g5
            Point::new(84.0, 72.0), // 9 = g6
            Point::new(87.0, 80.0), // 10 = g7
            Point::new(90.0, 90.0), // 11 = d
        ];
        let net = Network::from_positions(pos, 17.0, area());
        // Pin only the destination as an edge node: the corridor derives
        // its type-1 safety from the chain g1 -> ... -> g7 -> d.
        let mut pinned = vec![false; net.len()];
        pinned[11] = true;
        let info = SafetyInfo::build_with_pinned(&net, pinned);

        // The trap is type-1 unsafe, the corridor type-1 safe.
        for t in [1, 2, 3] {
            assert!(
                !info.is_safe(NodeId(t), sp_geom::Quadrant::I),
                "t{t} must be unsafe"
            );
        }
        for g in [4, 5, 6, 7, 8, 9, 10] {
            assert!(
                info.is_safe(NodeId(g), sp_geom::Quadrant::I),
                "g{g} must be safe"
            );
        }

        // SLGF: safe forwarding all the way around, no perimeter.
        let router = SlgfRouter::new(&info);
        let r = router.route(&net, NodeId(0), NodeId(11));
        assert!(r.delivered(), "outcome {:?} path {:?}", r.outcome, r.path);
        assert_eq!(r.perimeter_entries, 0, "phases {:?}", r.phases);
        for t in [1, 2, 3] {
            assert!(
                !r.path.contains(&NodeId(t)),
                "SLGF must avoid the trap: {:?}",
                r.path
            );
        }

        // LGF on the same network greedily dives into the trap.
        let lgf = crate::LgfRouter::new().route(&net, NodeId(0), NodeId(11));
        assert!(
            lgf.path.contains(&NodeId(3)),
            "LGF dives in: {:?}",
            lgf.path
        );
        assert!(lgf.perimeter_entries >= 1);
    }

    #[test]
    fn falls_back_to_perimeter_when_no_safe_successor() {
        // An isolated chain where everything is unsafe: SLGF must still
        // find the destination via perimeter steps.
        let net = Network::from_positions(
            vec![
                Point::new(50.0, 50.0),
                Point::new(62.0, 50.0),
                Point::new(74.0, 50.0),
            ],
            14.0,
            area(),
        );
        let info = SafetyInfo::build_with_pinned(&net, vec![false; 3]);
        // The middle node is unsafe in all four types (chain), so safe
        // forwarding fails immediately.
        let router = SlgfRouter::new(&info);
        let r = router.route(&net, NodeId(0), NodeId(2));
        assert!(r.delivered());
        assert!(r.perimeter_entries >= 1);
    }

    #[test]
    fn name_is_slgf() {
        let cfg = DeploymentConfig::paper_default(50);
        let net = Network::from_positions(cfg.deploy_uniform(0), cfg.radius, cfg.area);
        let info = SafetyInfo::build(&net);
        assert_eq!(Routing::name(&SlgfRouter::new(&info)), "SLGF");
        assert_eq!(SlgfRouter::new(&info).info().rounds(), info.rounds());
    }
}
