//! Incremental maintenance of safety information under node failures.
//!
//! The paper's §1 lists the dynamic factors that create local minima at
//! runtime — "node failures, signal fading, communication jamming, power
//! exhaustion, interference, and node mobility" — and §6 names more
//! adaptive information as future work. This module provides the
//! centralized counterpart of the distributed repair that
//! [`crate::distributed`] performs via `on_neighbor_failed`: when a node
//! dies, the Definition-1 labeling is **repaired in place** instead of
//! recomputed from scratch.
//!
//! The key property making this cheap is monotonicity: removing a node
//! only removes forwarding support, so statuses can only flip safe →
//! unsafe. Re-running the fixed point *seeded from the current labels*
//! (a chaotic iteration from an upper bound of the new greatest fixed
//! point) converges to exactly the labels a full rebuild would produce —
//! the equivalence the property tests check — while touching only the
//! neighborhood the failure actually influenced.

use crate::{SafetyInfo, SafetyMap, SafetyTuple, ShapeMap};
use sp_geom::Quadrant;
use sp_net::{edge_nodes::edge_node_mask, Network, NodeId};
use std::collections::VecDeque;

/// What one [`InfoMaintainer::kill`] repair did.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RepairReport {
    /// Safety statuses flipped safe → unsafe (excluding the victim's).
    pub flipped_statuses: usize,
    /// Distinct nodes whose tuple changed (excluding the victim).
    pub relabeled_nodes: usize,
    /// Worklist entries processed (a proxy for repair cost).
    pub work_items: usize,
}

/// Safety information that tracks node failures incrementally.
///
/// Holds the current *ghost network* (dead nodes keep their ids but lose
/// every edge), the pinned mask, and the maintained safety tuples. Shape
/// estimates are derived on demand by [`InfoMaintainer::info`].
///
/// ```
/// use sp_core::{InfoMaintainer, Slgf2Router, Routing};
/// use sp_net::{deploy::DeploymentConfig, Network, NodeId};
///
/// let cfg = DeploymentConfig::paper_default(400);
/// let net = Network::from_positions(cfg.deploy_uniform(2), cfg.radius, cfg.area);
/// let mut maint = InfoMaintainer::new(net);
/// let report = maint.kill(NodeId(100));
/// let info = maint.info();
/// let r = Slgf2Router::new(&info).route(maint.network(), NodeId(0), NodeId(399));
/// assert_eq!(r.path.first(), Some(&NodeId(0)));
/// # let _ = report;
/// ```
#[derive(Debug, Clone)]
pub struct InfoMaintainer {
    net: Network,
    original: Network,
    pinned: Vec<bool>,
    original_pinned: Vec<bool>,
    tuples: Vec<SafetyTuple>,
    dead: Vec<bool>,
    repairs: usize,
}

impl InfoMaintainer {
    /// Builds initial information for `net` with hull pinning (the §3
    /// interest-area convention).
    pub fn new(net: Network) -> InfoMaintainer {
        let pinned = edge_node_mask(&net, net.radius());
        InfoMaintainer::with_pinned(net, pinned)
    }

    /// Builds initial information with an explicit pinned mask.
    ///
    /// # Panics
    ///
    /// Panics if `pinned.len() != net.len()`.
    pub fn with_pinned(net: Network, pinned: Vec<bool>) -> InfoMaintainer {
        let map = SafetyMap::label_with_pinned(&net, pinned.clone());
        let tuples = map.tuples().to_vec();
        InfoMaintainer {
            dead: vec![false; net.len()],
            original: net.clone(),
            net,
            original_pinned: pinned.clone(),
            pinned,
            tuples,
            repairs: 0,
        }
    }

    /// The current ghost network (dead nodes isolated, ids preserved).
    /// Route over this, not the original deployment.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Whether `u` has been killed.
    pub fn is_dead(&self, u: NodeId) -> bool {
        self.dead[u.index()]
    }

    /// Number of kills applied so far.
    pub fn repairs(&self) -> usize {
        self.repairs
    }

    /// The maintained tuple of `u` (all-unsafe for dead nodes).
    pub fn tuple(&self, u: NodeId) -> SafetyTuple {
        self.tuples[u.index()]
    }

    /// Kills `victim` and repairs the labeling incrementally.
    /// Killing an already-dead node is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `victim` is out of range.
    pub fn kill(&mut self, victim: NodeId) -> RepairReport {
        if self.dead[victim.index()] {
            return RepairReport::default();
        }
        self.repairs += 1;
        self.dead[victim.index()] = true;
        self.pinned[victim.index()] = false;

        // Neighbors lose an edge: they are the seed of the repair.
        let seeds: Vec<NodeId> = self.net.neighbors(victim).to_vec();
        self.net = self.net.without_nodes(&[victim]);
        self.tuples[victim.index()] = SafetyTuple::all_unsafe();

        let mut report = RepairReport::default();
        let mut flipped = vec![false; self.net.len()];
        let mut queue: VecDeque<NodeId> = seeds.into();
        let mut queued = vec![false; self.net.len()];
        for w in &queue {
            queued[w.index()] = true;
        }
        while let Some(w) = queue.pop_front() {
            queued[w.index()] = false;
            report.work_items += 1;
            if self.dead[w.index()] || self.pinned[w.index()] {
                continue;
            }
            let pw = self.net.position(w);
            let mut flipped_here = false;
            for q in Quadrant::ALL {
                if !self.tuples[w.index()].is_safe(q) {
                    continue;
                }
                let has_support = self.net.neighbors(w).iter().any(|&v| {
                    Quadrant::of(pw, self.net.position(v)) == Some(q)
                        && self.tuples[v.index()].is_safe(q)
                });
                if !has_support {
                    self.tuples[w.index()].mark_unsafe(q);
                    report.flipped_statuses += 1;
                    flipped_here = true;
                }
            }
            if flipped_here {
                if !flipped[w.index()] {
                    flipped[w.index()] = true;
                    report.relabeled_nodes += 1;
                }
                // w's loss may strip support from every neighbor.
                for &v in self.net.neighbors(w) {
                    if !queued[v.index()] {
                        queued[v.index()] = true;
                        queue.push_back(v);
                    }
                }
            }
        }
        report
    }

    /// Revives a previously-killed node, restoring its original edges
    /// (and hull pinning, when the node was pinned at construction).
    ///
    /// Unlike [`InfoMaintainer::kill`], revival is **anti-monotone** —
    /// statuses can flip unsafe → safe, so the cheap worklist repair
    /// does not apply. The labeling is recomputed from scratch on the
    /// new ghost network; the method exists for API completeness (node
    /// redeployments, battery swaps) and its cost is one full rebuild.
    /// Reviving a live node is a no-op.
    pub fn revive(&mut self, node: NodeId) {
        if !self.dead[node.index()] {
            return;
        }
        self.dead[node.index()] = false;
        let dead_now: Vec<NodeId> = self
            .dead
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d)
            .map(|(i, _)| NodeId::new(i))
            .collect();
        self.net = self.original.without_nodes(&dead_now);
        self.pinned[node.index()] = self.original_pinned[node.index()];
        let map = SafetyMap::label_with_pinned(&self.net, self.pinned.clone());
        self.tuples = map.tuples().to_vec();
        self.tuples[node.index()] = map.tuple(node);
        for v in &dead_now {
            self.tuples[v.index()] = SafetyTuple::all_unsafe();
        }
    }

    /// Kills several nodes, folding the repair reports.
    pub fn kill_many(&mut self, victims: &[NodeId]) -> RepairReport {
        let mut total = RepairReport::default();
        for &v in victims {
            let r = self.kill(v);
            total.flipped_statuses += r.flipped_statuses;
            total.relabeled_nodes += r.relabeled_nodes;
            total.work_items += r.work_items;
        }
        total
    }

    /// Assembles a routable [`SafetyInfo`] snapshot: the maintained
    /// tuples plus freshly derived shape estimates over the ghost
    /// network.
    pub fn info(&self) -> SafetyInfo {
        let map = SafetyMap::from_tuples(self.tuples.clone(), self.pinned.clone(), 0);
        let shapes = ShapeMap::build(&self.net, &map);
        SafetyInfo::from_parts(map, shapes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::DeploymentConfig;

    fn built(nodes: usize, seed: u64) -> (Network, InfoMaintainer) {
        let cfg = DeploymentConfig::paper_default(nodes);
        let net = Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area);
        let maint = InfoMaintainer::new(net.clone());
        (net, maint)
    }

    /// Incremental repair must equal a full rebuild on the ghost network
    /// with dead nodes unpinned.
    fn assert_matches_rebuild(maint: &InfoMaintainer) {
        let rebuilt = SafetyMap::label_with_pinned(
            maint.network(),
            (0..maint.network().len())
                .map(|i| maint.pinned[i])
                .collect(),
        );
        for u in maint.network().node_ids() {
            if maint.is_dead(u) {
                assert!(
                    maint.tuple(u).fully_unsafe(),
                    "dead node {u} must be all-unsafe"
                );
                continue;
            }
            assert_eq!(
                maint.tuple(u),
                rebuilt.tuple(u),
                "incremental != rebuild at {u}"
            );
        }
    }

    #[test]
    fn single_kill_matches_full_rebuild() {
        let (net, mut maint) = built(300, 1);
        // Kill a well-connected interior node.
        let victim = net
            .node_ids()
            .max_by_key(|&u| net.degree(u))
            .expect("non-empty");
        let report = maint.kill(victim);
        assert!(maint.is_dead(victim));
        assert!(report.work_items >= net.degree(victim));
        assert_matches_rebuild(&maint);
    }

    #[test]
    fn sequential_kills_match_full_rebuild() {
        let (net, mut maint) = built(250, 7);
        let victims: Vec<NodeId> = net.node_ids().step_by(17).take(12).collect();
        let report = maint.kill_many(&victims);
        assert_eq!(maint.repairs(), victims.len());
        for &v in &victims {
            assert!(maint.is_dead(v));
        }
        assert_matches_rebuild(&maint);
        let _ = report;
    }

    #[test]
    fn killing_twice_is_a_noop() {
        let (_, mut maint) = built(150, 3);
        let first = maint.kill(NodeId(10));
        let second = maint.kill(NodeId(10));
        assert_eq!(second, RepairReport::default());
        assert_eq!(maint.repairs(), 1);
        let _ = first;
    }

    #[test]
    fn killing_a_pinned_hull_node_unpins_it() {
        let (net, mut maint) = built(200, 5);
        let hull = net
            .node_ids()
            .find(|&u| maint.pinned[u.index()])
            .expect("hull nodes exist");
        maint.kill(hull);
        assert!(maint.tuple(hull).fully_unsafe());
        assert_matches_rebuild(&maint);
    }

    #[test]
    fn repair_is_local_for_redundant_neighborhoods() {
        // In a dense network, killing one node rarely flips anyone else:
        // every neighbor has other safe support. The report shows the
        // repair touched only the 1-hop neighborhood.
        let (net, mut maint) = built(700, 11);
        let victim = net
            .node_ids()
            .max_by_key(|&u| net.degree(u))
            .expect("non-empty");
        let deg = net.degree(victim);
        let report = maint.kill(victim);
        assert!(
            report.work_items <= 8 * deg.max(1),
            "repair should stay near the victim: {report:?} (deg {deg})"
        );
        assert_matches_rebuild(&maint);
    }

    #[test]
    fn info_snapshot_estimates_match_rebuild() {
        let (net, mut maint) = built(220, 13);
        let victims: Vec<NodeId> = net.node_ids().step_by(31).take(6).collect();
        maint.kill_many(&victims);
        let info = maint.info();
        let central = SafetyInfo::build_with_pinned(maint.network(), maint.pinned.clone());
        for u in maint.network().node_ids() {
            if maint.is_dead(u) {
                continue;
            }
            assert_eq!(info.tuple(u), central.tuple(u), "tuple at {u}");
            for q in Quadrant::ALL {
                match (info.estimate(u, q), central.estimate(u, q)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert_eq!(a.rect, b.rect, "estimate at {u} {q}");
                    }
                    _ => panic!("estimate presence mismatch at {u} {q}"),
                }
            }
        }
    }

    #[test]
    fn revive_restores_the_pre_kill_state() {
        let (net, mut maint) = built(200, 21);
        let reference = InfoMaintainer::new(net.clone());
        let victim = net
            .node_ids()
            .max_by_key(|&u| net.degree(u))
            .expect("non-empty");
        maint.kill(victim);
        assert!(maint.is_dead(victim));
        maint.revive(victim);
        assert!(!maint.is_dead(victim));
        for u in net.node_ids() {
            assert_eq!(
                maint.tuple(u),
                reference.tuple(u),
                "tuple mismatch at {u} after kill+revive"
            );
        }
        assert_eq!(
            maint.network().edge_count(),
            net.edge_count(),
            "all edges restored"
        );
    }

    #[test]
    fn revive_with_other_nodes_still_dead_matches_rebuild() {
        let (net, mut maint) = built(180, 23);
        let victims: Vec<NodeId> = net.node_ids().step_by(13).take(5).collect();
        maint.kill_many(&victims);
        maint.revive(victims[2]);
        assert!(!maint.is_dead(victims[2]));
        for (i, &v) in victims.iter().enumerate() {
            if i != 2 {
                assert!(maint.is_dead(v));
                assert!(maint.tuple(v).fully_unsafe());
            }
        }
        assert_matches_rebuild(&maint);
        // Reviving a live node is a no-op.
        let before = maint.tuple(victims[2]);
        maint.revive(victims[2]);
        assert_eq!(maint.tuple(victims[2]), before);
    }

    #[test]
    fn routing_works_on_maintained_info() {
        use crate::{Routing, Slgf2Router};
        let (net, mut maint) = built(500, 17);
        let comp = net.largest_component();
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        let victims: Vec<NodeId> = comp
            .iter()
            .copied()
            .filter(|&u| u != s && u != d)
            .step_by(41)
            .take(8)
            .collect();
        maint.kill_many(&victims);
        if !maint.network().connected(s, d) {
            return; // topology break, not a routing concern
        }
        let info = maint.info();
        let r = Slgf2Router::new(&info).route(maint.network(), s, d);
        assert!(r.delivered(), "outcome {:?}", r.outcome);
        for &v in &victims {
            assert!(!r.path.contains(&v), "routed through dead node {v}");
        }
    }
}
