//! Serving latency: `RoutingService` query sessions under live
//! topology churn at n = 10⁴ (paper density).
//!
//! The other benches time closed batches over a frozen topology. This
//! one measures the **serving shape**: worker threads each hold a
//! `ServiceSession` and answer a sustained query stream while a
//! background churner keeps publishing new epochs (deterministic
//! jitter moves through `RoutingService::apply_moves` — clone-repair
//! the topology off to the side, relabel, one `Arc` swap). Two rows:
//!
//! * `service_steady` — no churn: the epoch check is always a hit, so
//!   this is the floor the epoch machinery must not lift;
//! * `service_churn` — the churner publishes continuously; sessions
//!   keep re-pinning and every answer is checked against the service
//!   invariant `answer.epoch <= service.epoch()`;
//! * `serve_steady` / `serve_churn` — the same mixes through the
//!   `sp-serve` wire path: an in-process loopback-TCP server over the
//!   same service, clients speaking framed `QUERY` (and the churner
//!   framed `MOVE`), so these rows price the full
//!   decode → route → encode hop and gate the wire-path p50/p95/p99
//!   next to the in-process floor.
//!
//! Each row records sustained queries/sec plus per-query p50/p95/p99
//! (`sp_bench::LatencyStats`, aggregated over every query of every
//! run) and the per-run wall median. The committed copy is the CI
//! `bench-gate` baseline (BENCH_service.json); the percentile keys are
//! gated with the tighter `--latency-slack` floor.
//!
//! Knobs: `SP_SERVICE_THREADS` pins the worker count,
//! `SP_SERVICE_CHURN` the movers per publish.
//!
//! Run with: `cargo bench -p sp-bench --bench service_latency`

use criterion::{criterion_group, criterion_main, Criterion};
use sp_bench::{LatencyStats, SampleStats};
use sp_core::{RoutingService, ServiceScheme};
use sp_geom::Point;
use sp_net::{deploy::DeploymentConfig, Network, NodeId};
use sp_serve::{serve_with, ServeClient, ServeConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NODES: usize = 10_000;
const QUERIES: usize = 8_192;
const RUNS: usize = 3;
/// Pause between epoch publishes, bounding the churn rate so the
/// (single-threaded) relabel step cannot monopolize small hosts.
const CHURN_PAUSE: Duration = Duration::from_millis(2);

/// Movers per background publish: `SP_SERVICE_CHURN`, default 100.
fn churn_movers() -> usize {
    sp_sync::env_var("SP_SERVICE_CHURN")
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(100)
}

/// Deterministic query mix over the largest component: alternating
/// local telemetry (2–4 radio ranges) and crossfield pairs, the same
/// regimes the throughput bench times.
fn query_mix(net: &Network) -> Vec<(NodeId, NodeId)> {
    let comp = net.largest_component();
    let mut queries = Vec::with_capacity(QUERIES);
    let mut k = 0usize;
    while queries.len() < QUERIES && k < 64 * QUERIES {
        let s = comp[(k * 7919) % comp.len()];
        k += 1;
        if queries.len() % 2 == 0 {
            let ps = net.position(s);
            if let Some(d) = comp.iter().skip(k % 37).step_by(97).copied().find(|&v| {
                let dist = net.position(v).distance(ps);
                v != s && dist > 25.0 && dist < 80.0
            }) {
                queries.push((s, d));
            }
        } else {
            let d = comp[(k * 104_729 + 13) % comp.len()];
            if d != s {
                queries.push((s, d));
            }
        }
    }
    assert!(queries.len() >= QUERIES / 2, "too few queries built");
    queries
}

/// The churner's next deterministic jitter batch: `movers` nodes in
/// round-robin order, each nudged ~1 m (direction flips with the round
/// parity so the field never drifts), clamped to the area.
fn churn_batch(net: &Network, round: u64, movers: usize) -> Vec<(NodeId, Point)> {
    let n = net.len();
    let hi = net.area().max();
    let delta = if round.is_multiple_of(2) { 1.0 } else { -1.0 };
    (0..movers)
        .map(|j| {
            let u = NodeId::new((round as usize * movers + j) % n);
            let p = net.position(u);
            let q = Point::new(
                (p.x + delta).clamp(0.0, hi.x),
                (p.y + delta * 0.5).clamp(0.0, hi.y),
            );
            (u, q)
        })
        .collect()
}

/// One measured run's outcome.
struct RunMeasure {
    /// Per-query serving latencies, all workers pooled.
    latencies: Vec<f64>,
    /// Wall seconds from first query to last worker done (churner
    /// excluded — it is stopped after the workers finish).
    wall: f64,
    served: usize,
    delivered: usize,
    /// Epochs the churner published while the workers were serving.
    epochs: u64,
}

/// Serves the query mix once: `workers` session threads, plus a
/// background churner when `movers` is set. Every answer is asserted
/// against the service epoch invariant.
fn measured_run(
    service: &RoutingService,
    queries: &[(NodeId, NodeId)],
    workers: usize,
    movers: Option<usize>,
) -> RunMeasure {
    let stop = AtomicBool::new(false);
    let epoch_before = service.epoch();
    let mut pooled: Vec<(Vec<f64>, usize)> = Vec::with_capacity(workers);
    let mut wall = 0.0f64;
    std::thread::scope(|s| {
        let churner = movers.map(|m| {
            let stop = &stop;
            s.spawn(move || {
                let mut round = service.epoch();
                while !stop.load(Ordering::Relaxed) {
                    let moves = churn_batch(service.snapshot().value.network(), round, m);
                    service.apply_moves(&moves);
                    round += 1;
                    std::thread::sleep(CHURN_PAUSE);
                }
            })
        });
        let start = Instant::now();
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    let mut session = service.session();
                    let mut lats = Vec::with_capacity(queries.len() / workers + 1);
                    let mut delivered = 0usize;
                    for &(src, dst) in queries.iter().skip(w).step_by(workers) {
                        let t = Instant::now();
                        let a = session.route(src, dst);
                        lats.push(t.elapsed().as_secs_f64());
                        assert!(
                            a.epoch <= service.epoch(),
                            "answer epoch {} ran ahead of the service",
                            a.epoch
                        );
                        delivered += usize::from(a.delivered());
                    }
                    (lats, delivered)
                })
            })
            .collect();
        for h in handles {
            pooled.push(h.join().expect("worker panicked"));
        }
        wall = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        if let Some(c) = churner {
            c.join().expect("churner panicked");
        }
    });
    let mut latencies = Vec::with_capacity(queries.len());
    let mut delivered = 0usize;
    for (lats, d) in pooled {
        latencies.extend(lats);
        delivered += d;
    }
    RunMeasure {
        served: latencies.len(),
        latencies,
        wall,
        delivered,
        epochs: service.epoch() - epoch_before,
    }
}

/// Serves the query mix once over **loopback TCP**: `clients` wire
/// clients against an already-running `sp-serve` server over the same
/// service, plus a background churner publishing through framed `MOVE`
/// batches when `movers` is set. Every reply is asserted against the
/// same epoch invariant the in-process rows check.
fn served_run(
    service: &RoutingService,
    addr: SocketAddr,
    queries: &[(NodeId, NodeId)],
    clients: usize,
    movers: Option<usize>,
) -> RunMeasure {
    let stop = AtomicBool::new(false);
    let epoch_before = service.epoch();
    let mut pooled: Vec<(Vec<f64>, usize)> = Vec::with_capacity(clients);
    let mut wall = 0.0f64;
    std::thread::scope(|s| {
        let churner = movers.map(|m| {
            let stop = &stop;
            s.spawn(move || {
                let mut mover = ServeClient::connect(addr).expect("churner connect");
                let mut round = service.epoch();
                let mut batch: Vec<(u32, f64, f64)> = Vec::with_capacity(m);
                while !stop.load(Ordering::Relaxed) {
                    batch.clear();
                    batch.extend(
                        churn_batch(service.snapshot().value.network(), round, m)
                            .into_iter()
                            .map(|(u, p)| (u.index() as u32, p.x, p.y)),
                    );
                    mover.move_batch(&batch).expect("wire MOVE");
                    round += 1;
                    std::thread::sleep(CHURN_PAUSE);
                }
            })
        });
        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|w| {
                s.spawn(move || {
                    let mut client = ServeClient::connect(addr).expect("client connect");
                    let mut lats = Vec::with_capacity(queries.len() / clients + 1);
                    let mut delivered = 0usize;
                    for &(src, dst) in queries.iter().skip(w).step_by(clients) {
                        let t = Instant::now();
                        let reply = client
                            .query(
                                src.index() as u32,
                                dst.index() as u32,
                                ServiceScheme::Slgf2,
                                false,
                            )
                            .expect("wire QUERY");
                        lats.push(t.elapsed().as_secs_f64());
                        assert!(
                            reply.epoch <= service.epoch(),
                            "reply epoch {} ran ahead of the service",
                            reply.epoch
                        );
                        delivered += usize::from(reply.delivered());
                    }
                    (lats, delivered)
                })
            })
            .collect();
        for h in handles {
            pooled.push(h.join().expect("wire client panicked"));
        }
        wall = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        if let Some(c) = churner {
            c.join().expect("wire churner panicked");
        }
    });
    let mut latencies = Vec::with_capacity(queries.len());
    let mut delivered = 0usize;
    for (lats, d) in pooled {
        latencies.extend(lats);
        delivered += d;
    }
    RunMeasure {
        served: latencies.len(),
        latencies,
        wall,
        delivered,
        epochs: service.epoch() - epoch_before,
    }
}

/// Runs one in-process row's configuration `RUNS` times and renders
/// its JSON row.
fn service_row(
    case: &str,
    service: &RoutingService,
    queries: &[(NodeId, NodeId)],
    workers: usize,
    movers: Option<usize>,
) -> String {
    let runs: Vec<RunMeasure> = (0..RUNS)
        .map(|_| measured_run(service, queries, workers, movers))
        .collect();
    render_row(case, &runs, workers, movers)
}

/// Runs one wire-path row's configuration `RUNS` times and renders its
/// JSON row with the same key shape (so the bench gate applies the
/// same qps + latency-slack treatment).
fn serve_row(
    case: &str,
    service: &RoutingService,
    addr: SocketAddr,
    queries: &[(NodeId, NodeId)],
    clients: usize,
    movers: Option<usize>,
) -> String {
    let runs: Vec<RunMeasure> = (0..RUNS)
        .map(|_| served_run(service, addr, queries, clients, movers))
        .collect();
    render_row(case, &runs, clients, movers)
}

/// Renders a row's pooled runs into its JSON object and progress line.
fn render_row(case: &str, runs: &[RunMeasure], workers: usize, movers: Option<usize>) -> String {
    let walls: Vec<f64> = runs.iter().map(|r| r.wall).collect();
    let wall = SampleStats::of(&walls);
    let all_lats: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.latencies.iter().copied())
        .collect();
    let lat = LatencyStats::of(&all_lats);
    let served: usize = runs.iter().map(|r| r.served).sum();
    let delivered: usize = runs.iter().map(|r| r.delivered).sum();
    let epochs: u64 = runs.iter().map(|r| r.epochs).sum();
    let ratio = delivered as f64 / served.max(1) as f64;
    assert!(ratio > 0.95, "{case}: delivery collapsed to {ratio:.3}");
    if movers.is_some() {
        assert!(epochs > 0, "{case}: churner never published an epoch");
    }
    let qps = runs[0].served as f64 / wall.median.max(1e-12);
    eprintln!(
        "{case:15} x{workers} workers: {qps:.0} q/s | p50 {:.1} µs | p95 {:.1} µs | p99 {:.1} µs | {} epochs | delivery {ratio:.3}",
        lat.p50 * 1e6,
        lat.p95 * 1e6,
        lat.p99 * 1e6,
        epochs,
    );
    format!(
        "    {{\"case\": \"{case}\", \"scheme\": \"SLGF2\", \"nodes\": {NODES}, \"queries\": {}, \"threads\": {workers}, \"runs\": {RUNS}, \"movers\": {}, \"epochs_advanced\": {epochs}, \"queries_per_sec\": {qps:.0}, \"delivery_ratio\": {ratio:.4}, {}, {}}}",
        runs[0].served,
        movers.unwrap_or(0),
        wall.json_fields("run"),
        lat.json_fields("query"),
    )
}

fn service_benches(c: &mut Criterion) {
    let cfg = DeploymentConfig::paper_density(NODES);
    let net = Network::from_positions(cfg.deploy_uniform(42), cfg.radius, cfg.area);
    let queries = query_mix(&net);
    let service = Arc::new(RoutingService::new(net.clone()));
    let workers = service.threads();
    let movers = churn_movers();

    // The wire rows hit the same service through a loopback sp-serve
    // front end with a matching worker-pool size.
    let server = serve_with(
        Arc::clone(&service),
        net.clone(),
        ServeConfig::ephemeral(workers),
    )
    .expect("bind loopback server");
    let addr = server.addr();

    let rows = [
        service_row("service_steady", &service, &queries, workers, None),
        service_row("service_churn", &service, &queries, workers, Some(movers)),
        serve_row("serve_steady", &service, addr, &queries, workers, None),
        serve_row(
            "serve_churn",
            &service,
            addr,
            &queries,
            workers,
            Some(movers),
        ),
    ];
    server.shutdown();
    server.join();

    let json = format!(
        "{{\n  \"benchmark\": \"service_latency\",\n  \"unit\": \"seconds (median over samples; percentiles over all queries)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json");
    std::fs::write(out, &json).expect("write BENCH_service.json");
    eprintln!("wrote {out}");

    let mut group = c.benchmark_group("service_latency");
    group.sample_size(10);
    group.bench_function("steady_batch", |b| {
        b.iter(|| service.run_batch(&queries).answers.len())
    });
    group.finish();
}

criterion_group!(benches, service_benches);
criterion_main!(benches);
