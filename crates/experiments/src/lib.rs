//! Reproduction harness for every figure of the straightpath paper.
//!
//! Pipeline: a [`SweepConfig`] describes the paper's §5 setup (node
//! counts 400–800, 100 seeded networks per point, IA or FA deployment);
//! [`run_sweep`] routes every [`Scheme`] over every instance in
//! parallel; [`figures`] folds the records into the exact curves of
//! Figs. 5–7 plus the ablations A1–A15 of `DESIGN.md`; [`scenarios`]
//! rebuilds the paper's hand-drawn figures as executable networks; and
//! [`workload`] streams flows against per-node batteries for the
//! lifetime experiment.
//!
//! The `repro-figures` binary drives the whole thing from the command
//! line and writes text/markdown/CSV/JSON (and `--svg`) outputs.
//!
//! ```
//! use sp_experiments::{run_sweep, Scheme, SweepConfig, DeploymentKind, figures};
//!
//! // A miniature IA sweep (the paper uses 100 networks per point).
//! let mut cfg = SweepConfig::quick(DeploymentKind::Ia);
//! cfg.node_counts = vec![400];
//! cfg.networks_per_point = 2;
//! let results = run_sweep(&cfg, &Scheme::PAPER_SET);
//! let fig6 = figures::fig6(&results);
//! assert_eq!(fig6.series.len(), 4);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod figures;
pub mod runner;
pub mod scenarios;
pub mod scheme;
pub mod workload;

pub use config::{DeploymentKind, SweepConfig};
pub use runner::{
    random_connected_pair, run_instance, run_sweep, RouteRecord, SchemePoint, SweepPoint,
    SweepResults,
};
pub use scenarios::{all_scenarios, Scenario};
pub use scheme::{PreparedNetwork, RouterContext, Scheme, SchemeBuild, SchemeRegistry};
pub use workload::{lifetime_figure, run_lifetime, LifetimeReport, StreamingConfig};
