//! Per-packet routing state and results.
//!
//! Every routing scheme in the paper is "presented via their forwarding
//! node selection at an intermediate node" (§3); the packet carries the
//! little state those selections need: the visited set (the perimeter
//! phase forwards to the "first *untried* node"), the committed hand rule
//! ("stick with the same hand-rule", Algo. 3), and the current phase.

use crate::Hand;
use sp_geom::{Point, Rect};
use sp_net::{Network, NodeId};

/// Which of the three SLGF2 phases (§4) produced a hop. LGF/SLGF use only
/// `Greedy` and `Perimeter`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutePhase {
    /// Greedy advance inside the request zone (safe forwarding for the
    /// safety-aware schemes).
    Greedy,
    /// Backup-path forwarding around an unsafe area (SLGF2 only).
    Backup,
    /// Perimeter routing.
    Perimeter,
}

/// Forwarding mode of the packet walker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Mode {
    /// Normal (safe/greedy) forwarding.
    Greedy,
    /// Escorting around an unsafe area on a committed hand (SLGF2).
    Backup,
    /// Perimeter routing; `entry_dist` is the distance to the
    /// destination at the stuck node where this phase began (the exit
    /// test of the LGF/SLGF recovery).
    Perimeter {
        /// `|L(u_stuck) - L(d)|` at perimeter entry.
        entry_dist: f64,
    },
}

/// Per-face-walk state for planar face routing (GPSR perimeter mode,
/// Bose et al. \[2\]). Carried by the packet while a face-routing scheme is
/// in its recovery phase; `None` otherwise.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaceState {
    /// `L_p`: where the packet entered perimeter mode (the stuck node's
    /// position). Face changes are tested against the segment from here
    /// to the destination, and greedy forwarding resumes once the packet
    /// is strictly closer to the destination than this anchor.
    pub anchor: Point,
    /// `L_f`: the point on the anchor-destination segment where the
    /// packet entered the current face. A face change requires the
    /// crossing to be strictly closer to the destination than this.
    pub crossing: Point,
    /// `e_0`: the first directed edge traversed on the current face;
    /// traversing it a second time means the destination is unreachable
    /// (the face tour closed without progress).
    pub entry_edge: Option<(NodeId, NodeId)>,
}

impl FaceState {
    /// Starts a face walk anchored at the stuck node's position.
    pub fn new(anchor: Point) -> FaceState {
        FaceState {
            anchor,
            crossing: anchor,
            entry_edge: None,
        }
    }
}

/// The packet's visited ("tried") set, generation-stamped so reuse
/// across packets is O(1): a slot counts as visited only when its stamp
/// equals the current epoch, and [`VisitedSet::reset`] starts a fresh
/// packet by bumping the epoch instead of clearing `n` slots. This is
/// what makes a reused [`crate::RouteBuffer`] cost O(path) per route
/// where a fresh `vec![false; n]` costs O(n).
#[derive(Debug, Clone, Default)]
pub struct VisitedSet {
    stamps: Vec<u32>,
    epoch: u32,
}

impl VisitedSet {
    /// An empty set sized for a network of `n` nodes.
    pub fn new(n: usize) -> VisitedSet {
        let mut set = VisitedSet::default();
        set.reset(n);
        set
    }

    /// Starts a new generation covering `n` nodes: every slot reads
    /// unvisited again. O(1) unless the set has to grow — or, once per
    /// `u32::MAX` resets, when the epoch counter wraps and the stamps
    /// are bulk-cleared to keep stale generations unreadable.
    pub fn reset(&mut self, n: usize) {
        if self.stamps.len() < n {
            self.stamps.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    /// Marks `v` visited in the current generation.
    #[inline]
    pub fn insert(&mut self, v: NodeId) {
        self.stamps[v.index()] = self.epoch;
    }

    /// Unmarks `v` (exposed for tests constructing packet states).
    #[inline]
    pub fn remove(&mut self, v: NodeId) {
        self.stamps[v.index()] = 0;
    }

    /// True when `v` was visited in the current generation.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        self.stamps[v.index()] == self.epoch
    }

    /// Slots the set can address (the `n` of the last reset or larger).
    pub fn capacity(&self) -> usize {
        self.stamps.len()
    }
}

/// Retained-capacity per-hop scratch vectors for forwarding policies.
///
/// A hop decision like [`crate::Slgf2Router`]'s safe forwarding filters
/// the zone candidates, collects nearby unsafe-area estimate
/// rectangles, and re-filters against them — three short-lived vectors
/// per hop. Routing millions of packets, those per-hop allocations
/// dominate the allocator traffic, so the scratch lives in the
/// [`crate::RouteBuffer`] alongside the visited set and rides into each
/// [`PacketState`] through [`crate::walk_into`]: each vector is cleared
/// (capacity retained) before reuse, so a warm buffer's hops allocate
/// nothing.
#[derive(Debug, Clone, Default)]
pub struct HopScratch {
    /// Primary candidate list (e.g. the safe zone candidates).
    pub ids: Vec<NodeId>,
    /// Secondary candidate list (e.g. the superseding-filtered subset).
    pub filtered: Vec<NodeId>,
    /// Unsafe-area estimate rectangles collected near the current node.
    pub rects: Vec<Rect>,
    /// Indexed candidate positions for angular-sweep hand ordering.
    pub points: Vec<(usize, Point)>,
}

/// Mutable state carried by one packet during a route computation.
#[derive(Debug, Clone)]
pub struct PacketState {
    /// The destination node.
    pub dst: NodeId,
    /// The node currently holding the packet.
    pub current: NodeId,
    /// The node the packet arrived from (`None` at the source) — face
    /// walks pivot around it.
    pub prev: Option<NodeId>,
    /// Nodes already visited ("tried") by this packet.
    pub visited: VisitedSet,
    /// The committed either-hand rule, once chosen.
    pub hand: Option<Hand>,
    /// Current forwarding mode.
    pub mode: Mode,
    /// Face-walk state while a planar face-routing scheme is recovering
    /// (`None` outside such a phase).
    pub face: Option<FaceState>,
    /// Phase of the hop most recently decided (set by the policy).
    pub phase: RoutePhase,
    /// How many times a perimeter phase was entered.
    pub perimeter_entries: usize,
    /// How many times a backup phase was entered (SLGF2).
    pub backup_entries: usize,
    /// Retained-capacity per-hop scratch for the forwarding policy.
    pub scratch: HopScratch,
}

impl PacketState {
    /// Fresh packet at `src` heading for `dst` in a network of `n` nodes.
    pub fn new(n: usize, src: NodeId, dst: NodeId) -> PacketState {
        PacketState::with_visited(VisitedSet::default(), n, src, dst)
    }

    /// Packet reusing a caller-owned [`VisitedSet`] (the allocation-free
    /// path of [`crate::walk_into`]): the set is re-generationed for `n`
    /// nodes, so nothing from earlier packets leaks through.
    pub fn with_visited(
        mut visited: VisitedSet,
        n: usize,
        src: NodeId,
        dst: NodeId,
    ) -> PacketState {
        visited.reset(n);
        visited.insert(src);
        PacketState {
            dst,
            current: src,
            prev: None,
            visited,
            hand: None,
            mode: Mode::Greedy,
            face: None,
            phase: RoutePhase::Greedy,
            perimeter_entries: 0,
            backup_entries: 0,
            scratch: HopScratch::default(),
        }
    }

    /// True when the packet already visited `v`.
    #[inline]
    pub fn tried(&self, v: NodeId) -> bool {
        self.visited.contains(v)
    }

    /// Switches to perimeter mode (counting the entry) anchored at the
    /// given stuck-node distance.
    pub fn enter_perimeter(&mut self, entry_dist: f64) {
        if !matches!(self.mode, Mode::Perimeter { .. }) {
            self.perimeter_entries += 1;
        }
        self.mode = Mode::Perimeter { entry_dist };
    }

    /// Switches to backup mode (counting the entry).
    pub fn enter_backup(&mut self) {
        if self.mode != Mode::Backup {
            self.backup_entries += 1;
        }
        self.mode = Mode::Backup;
    }

    /// Returns to greedy/safe forwarding, releasing the hand commitment
    /// ("until it escapes from the unsafe area and finds a safe
    /// forwarding") and any face-walk state.
    pub fn resume_greedy(&mut self) {
        self.mode = Mode::Greedy;
        self.hand = None;
        self.face = None;
    }
}

/// Why a route computation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteOutcome {
    /// The packet reached the destination.
    Delivered,
    /// The forwarding policy had no successor (local minimum with all
    /// recovery options exhausted).
    Stuck(NodeId),
    /// The hop budget ran out (treated as a loop/failure).
    TtlExhausted,
}

/// The full trace of one route computation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteResult {
    /// Terminal status.
    pub outcome: RouteOutcome,
    /// Visited node sequence from source (inclusive) to last holder.
    pub path: Vec<NodeId>,
    /// Phase that produced each hop (`path.len() - 1` entries).
    pub phases: Vec<RoutePhase>,
    /// Number of distinct perimeter-phase entries.
    pub perimeter_entries: usize,
    /// Number of distinct backup-phase entries.
    pub backup_entries: usize,
}

impl RouteResult {
    /// True when the packet was delivered.
    pub fn delivered(&self) -> bool {
        self.outcome == RouteOutcome::Delivered
    }

    /// Hop count of the path walked so far.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Euclidean length of the walked path in `net`.
    pub fn length(&self, net: &Network) -> f64 {
        net.path_length(&self.path)
    }

    /// Hops spent in a given phase.
    pub fn hops_in_phase(&self, phase: RoutePhase) -> usize {
        self.phases.iter().filter(|&&p| p == phase).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visited_set_reset_starts_a_new_generation() {
        let mut set = VisitedSet::new(4);
        set.insert(NodeId(1));
        assert!(set.contains(NodeId(1)));
        set.reset(4);
        assert!(!set.contains(NodeId(1)), "old generation must not leak");
        set.insert(NodeId(2));
        set.remove(NodeId(2));
        assert!(!set.contains(NodeId(2)));
        set.reset(6);
        assert_eq!(set.capacity(), 6);
        assert!(!set.contains(NodeId(5)));
    }

    #[test]
    fn visited_set_epoch_wraparound_clears_stale_stamps() {
        let mut set = VisitedSet::new(3);
        set.insert(NodeId(0));
        // Force the wrap: the next reset must bulk-clear, otherwise the
        // old stamp could alias a future epoch.
        set.epoch = u32::MAX;
        set.reset(3);
        assert!(!set.contains(NodeId(0)));
        set.insert(NodeId(1));
        assert!(set.contains(NodeId(1)));
    }

    #[test]
    fn reused_visited_set_is_indistinguishable_from_fresh() {
        let recycled = PacketState::new(5, NodeId(0), NodeId(4)).visited;
        let pkt = PacketState::with_visited(recycled, 5, NodeId(2), NodeId(4));
        assert!(pkt.tried(NodeId(2)));
        assert!(
            !pkt.tried(NodeId(0)),
            "previous packet's marks must be gone"
        );
    }

    #[test]
    fn new_packet_marks_source_tried() {
        let pkt = PacketState::new(5, NodeId(2), NodeId(4));
        assert!(pkt.tried(NodeId(2)));
        assert!(!pkt.tried(NodeId(4)));
        assert_eq!(pkt.mode, Mode::Greedy);
        assert_eq!(pkt.perimeter_entries, 0);
    }

    #[test]
    fn phase_entries_count_transitions_not_hops() {
        let mut pkt = PacketState::new(3, NodeId(0), NodeId(2));
        pkt.enter_perimeter(10.0);
        pkt.enter_perimeter(8.0); // still the same episode
        assert_eq!(pkt.perimeter_entries, 1);
        pkt.resume_greedy();
        pkt.enter_perimeter(6.0);
        assert_eq!(pkt.perimeter_entries, 2);
        pkt.enter_backup();
        pkt.enter_backup();
        assert_eq!(pkt.backup_entries, 1);
    }

    #[test]
    fn resume_greedy_releases_hand() {
        let mut pkt = PacketState::new(3, NodeId(0), NodeId(2));
        pkt.hand = Some(Hand::Cw);
        pkt.enter_backup();
        pkt.resume_greedy();
        assert_eq!(pkt.hand, None);
        assert_eq!(pkt.mode, Mode::Greedy);
    }

    #[test]
    fn result_accessors() {
        let r = RouteResult {
            outcome: RouteOutcome::Delivered,
            path: vec![NodeId(0), NodeId(1), NodeId(2)],
            phases: vec![RoutePhase::Greedy, RoutePhase::Perimeter],
            perimeter_entries: 1,
            backup_entries: 0,
        };
        assert!(r.delivered());
        assert_eq!(r.hops(), 2);
        assert_eq!(r.hops_in_phase(RoutePhase::Perimeter), 1);
        assert_eq!(r.hops_in_phase(RoutePhase::Backup), 0);
    }

    #[test]
    fn empty_result_is_zero_hops() {
        let r = RouteResult {
            outcome: RouteOutcome::Stuck(NodeId(0)),
            path: vec![NodeId(0)],
            phases: vec![],
            perimeter_entries: 0,
            backup_entries: 0,
        };
        assert_eq!(r.hops(), 0);
        assert!(!r.delivered());
    }
}
