//! The uniform-grid [`SpatialIndex`] behind every radius-bounded
//! neighbor query in the stack.
//!
//! Unit-disk-graph construction, planarization witness tests, and
//! mobility re-snapshots all need "the points within distance `r` of
//! here". Bucketing points into square cells whose side equals the
//! radio radius bounds each query to a 3×3 cell neighborhood, so graph
//! construction costs `O(n · k)` (k = mean cell occupancy) instead of
//! `O(n²)` — the difference between milliseconds and seconds at the
//! paper's 800-node, 100-network sweeps, and the enabling structure for
//! the 10⁴–10⁶-node deployments the roadmap targets.
//!
//! The index is exposed on every [`Network`](crate::Network) via
//! [`Network::index`](crate::Network::index), so routing layers and
//! deployment tooling share one structure instead of re-deriving ad hoc
//! scans.
//!
//! Three scale features keep topology refresh off the hot path of
//! large mobile sweeps: positions live in one structure-of-arrays
//! [`PositionTable`] so the cell-pair scan streams two dense `f64`
//! arrays; bulk adjacency construction emits straight into a
//! [`CsrAdjacency`] arena, sharding contiguous *bands* of cell rows
//! across threads ([`SpatialIndex::adjacency_within_threaded`],
//! automatic above [`PARALLEL_NODE_THRESHOLD`] nodes, `SP_NET_THREADS`
//! to pin) so each worker touches a disjoint cache range; and points
//! relocate incrementally in `O(1)` ([`SpatialIndex::move_point`]) so a
//! mobility tick re-buckets only the nodes that moved instead of
//! rebuilding the grid.

use crate::{CsrAdjacency, NodeId, PositionTable};
use sp_geom::{Point, Rect};
use sp_sync::WorkQueue;
use std::sync::Arc;

/// Node count at which [`SpatialIndex::auto_threads`] starts asking for
/// more than one thread. Below this the whole adjacency fits in cache
/// and thread spawn/merge overhead dominates any sharding win.
pub const PARALLEL_NODE_THRESHOLD: usize = 8_192;

/// The thread-count environment knob read by
/// [`SpatialIndex::auto_threads`].
pub const THREADS_ENV: &str = "SP_NET_THREADS";

/// Contiguous row-bands handed to each construction worker are sized
/// so roughly this many land on every thread: small enough to balance
/// uneven rows, large enough that a worker's touched cache range stays
/// contiguous.
const BANDS_PER_THREAD: usize = 4;

/// A uniform grid over a bounding rectangle with square cells.
///
/// Build once over a position snapshot, then issue any number of
/// *range* ([`within_radius`](SpatialIndex::within_radius)) and
/// *nearest* ([`nearest`](SpatialIndex::nearest),
/// [`k_nearest`](SpatialIndex::k_nearest)) queries. All queries compare
/// true Euclidean distances — the grid only prunes candidates — so
/// results are exact, not approximate.
///
/// ```
/// use sp_net::SpatialIndex;
/// use sp_geom::{Point, Rect};
///
/// let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
/// let pts = vec![Point::new(10.0, 10.0), Point::new(15.0, 10.0), Point::new(90.0, 90.0)];
/// let index = SpatialIndex::build(&pts, area, 20.0);
/// let near: Vec<usize> = index.within_radius(Point::new(12.0, 10.0), 20.0).map(|id| id.index()).collect();
/// assert!(near.contains(&0) && near.contains(&1) && !near.contains(&2));
/// assert_eq!(index.nearest(Point::new(80.0, 80.0)), Some(sp_net::NodeId(2)));
/// ```
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    cells: Vec<Vec<NodeId>>,
    // Shared with the owning Network (when built through one), so a
    // deployment's positions exist once no matter how many snapshots
    // or index clones reference them.
    positions: Arc<PositionTable>,
    origin: Point,
    cell_size: f64,
    cols: usize,
    rows: usize,
}

impl SpatialIndex {
    /// Builds the index over a copy of `points` with the given
    /// `cell_size` (normally the radio radius, so radius queries scan
    /// 3×3 cells).
    ///
    /// Points outside `bounds` are clamped into the border cells, so the
    /// index remains correct (queries still compare true distances).
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    pub fn build(points: &[Point], bounds: Rect, cell_size: f64) -> SpatialIndex {
        SpatialIndex::build_table(
            Arc::new(PositionTable::from_points(points)),
            bounds,
            cell_size,
        )
    }

    /// Builds the index over an already-shared position table without
    /// copying it — [`Network::from_positions`](crate::Network) uses
    /// this so the network and its index reference one allocation.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive.
    pub fn build_table(
        positions: Arc<PositionTable>,
        bounds: Rect,
        cell_size: f64,
    ) -> SpatialIndex {
        assert!(
            cell_size > 0.0,
            "spatial index cell size must be positive, got {cell_size}"
        );
        let cols = ((bounds.width() / cell_size).ceil() as usize).max(1);
        let rows = ((bounds.height() / cell_size).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); cols * rows];
        let origin = bounds.min();
        let mut index = SpatialIndex {
            cells: Vec::new(),
            positions,
            origin,
            cell_size,
            cols,
            rows,
        };
        for i in 0..index.positions.len() {
            let c = index.cell_of(index.positions.get(i));
            cells[c].push(NodeId::new(i));
        }
        index.cells = cells;
        index
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Side length of the square cells.
    pub fn cell_size(&self) -> f64 {
        self.cell_size
    }

    /// Grid dimensions as `(columns, rows)`.
    pub fn grid_shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// The indexed position of a node.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn position(&self, u: NodeId) -> Point {
        self.positions.get(u.index())
    }

    /// The structure-of-arrays position table, by node id.
    pub fn positions(&self) -> &PositionTable {
        &self.positions
    }

    /// The shared position table (one allocation no matter how many
    /// snapshots or index clones reference it).
    pub fn shared_positions(&self) -> Arc<PositionTable> {
        Arc::clone(&self.positions)
    }

    /// Relocates one point to `new_pos` in `O(1)`: the position table is
    /// updated in place and the point moves between grid cells (cells
    /// keep ascending id order, so range queries stay deterministic).
    ///
    /// When the position table is still shared with other index or
    /// network clones, the first move copies it once (copy-on-write);
    /// every subsequent move on this index is allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    // sp-analyze: allow(index, cell indices come from cell_of over the clamped grid; id is a live bounds-checked node)
    pub fn move_point(&mut self, id: NodeId, new_pos: Point) {
        let old_cell = self.cell_of(self.positions.get(id.index()));
        let new_cell = self.cell_of(new_pos);
        Arc::make_mut(&mut self.positions).set(id.index(), new_pos);
        if old_cell != new_cell {
            let cell = &mut self.cells[old_cell];
            let at = cell
                .binary_search(&id)
                .expect("moved point is bucketed in its old cell"); // sp-analyze: allow(panic, the grid invariant buckets every live id in its cell; checked by debug assertions in tests)
            cell.remove(at);
            let cell = &mut self.cells[new_cell];
            let at = cell
                .binary_search(&id)
                .expect_err("moved point cannot already be in its new cell");
            cell.insert(at, id);
        }
    }

    fn cell_coords(&self, p: Point) -> (usize, usize) {
        let cx = ((p.x - self.origin.x) / self.cell_size).floor();
        let cy = ((p.y - self.origin.y) / self.cell_size).floor();
        let cx = (cx.max(0.0) as usize).min(self.cols - 1);
        let cy = (cy.max(0.0) as usize).min(self.rows - 1);
        (cx, cy)
    }

    fn cell_of(&self, p: Point) -> usize {
        let (cx, cy) = self.cell_coords(p);
        cy * self.cols + cx
    }

    /// All indexed points within `radius` of `center` (inclusive), in
    /// ascending id order within each scanned cell.
    ///
    /// The query radius may differ from the build cell size; the scan
    /// window widens accordingly.
    pub fn within_radius(&self, center: Point, radius: f64) -> impl Iterator<Item = NodeId> + '_ {
        let reach = (radius / self.cell_size).ceil() as isize;
        let (cx, cy) = self.cell_coords(center);
        let (cx, cy) = (cx as isize, cy as isize);
        let r_sq = radius * radius;
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        (-reach..=reach)
            .flat_map(move |dy| (-reach..=reach).map(move |dx| (cx + dx, cy + dy)))
            .filter(move |&(x, y)| x >= 0 && x < cols && y >= 0 && y < rows)
            .flat_map(move |(x, y)| self.cells[(y * cols + x) as usize].iter().copied())
            .filter(move |id| self.positions.distance_sq_to(id.index(), center) <= r_sq)
    }

    /// The sorted CSR adjacency of the radius graph over all indexed
    /// points — the bulk form of [`within_radius`](Self::within_radius)
    /// that unit-disk-graph construction uses.
    ///
    /// Works cell-pairwise: points inside one cell are paired `i < j`,
    /// and each unordered pair of nearby cells is visited exactly once
    /// (cell pairs whose minimum separation exceeds `radius` are pruned
    /// up front), so every candidate pair costs one distance test and
    /// no per-point iterator setup. Self-loops are never produced. The
    /// pair stream lands directly in one [`CsrAdjacency`] arena
    /// (count → prefix-sum → scatter → per-range sort) — no per-node
    /// `Vec` is ever allocated.
    pub fn adjacency_within(&self, radius: f64) -> CsrAdjacency {
        self.adjacency_within_threaded(radius, 1)
    }

    /// [`adjacency_within`](Self::adjacency_within) sharded across
    /// `threads` worker threads by contiguous *bands* of grid rows.
    ///
    /// Workers pull row-bands from the shared [`sp_sync::WorkQueue`]
    /// (the workspace's one audited atomic-cursor primitive). Bands are
    /// contiguous spatial regions balanced by per-row point counts, so
    /// each worker streams a disjoint, cache-local range of the
    /// position table — the locality-aware partitioning that makes the
    /// construction-time spatial sort
    /// ([`Network::spatially_sorted`](crate::Network::spatially_sorted))
    /// pay off. Each band emits its edge pairs into per-row buffers;
    /// buffers are merged in row order and every arena range is sorted,
    /// so the output is bit-identical to the serial path at any thread
    /// count. `threads` is clamped to `[1, rows]`; `threads <= 1` runs
    /// inline without spawning.
    pub fn adjacency_within_threaded(&self, radius: f64, threads: usize) -> CsrAdjacency {
        let r_sq = radius * radius;
        let offsets = self.forward_offsets(radius);
        let threads = threads.clamp(1, self.rows.max(1));
        let bands = if threads <= 1 {
            vec![(0, self.rows)]
        } else {
            self.row_bands(threads * BANDS_PER_THREAD)
        };
        let per_band = WorkQueue::new().run(threads, bands.len(), |b| {
            let (start, end) = bands[b];
            let mut mine: Vec<(usize, Vec<(NodeId, NodeId)>)> = Vec::with_capacity(end - start);
            for cy in start..end {
                let mut buf = Vec::new();
                self.row_edges(cy as isize, &offsets, r_sq, &mut buf);
                mine.push((cy, buf));
            }
            mine
        });
        let mut row_bufs: Vec<Vec<(NodeId, NodeId)>> = Vec::new();
        row_bufs.resize_with(self.rows, Vec::new);
        for (cy, buf) in per_band.into_iter().flatten() {
            row_bufs[cy] = buf;
        }
        CsrAdjacency::from_pair_rows(self.positions.len(), &row_bufs)
    }

    /// The legacy per-node-`Vec` adjacency construction, accumulating
    /// and sorting one list per node.
    ///
    /// Kept *only* as the reference the CSR equivalence property tests
    /// and the memory-layout comparison measure against; production
    /// paths use [`adjacency_within`](Self::adjacency_within).
    #[doc(hidden)]
    pub fn adjacency_lists_within(&self, radius: f64) -> Vec<Vec<NodeId>> {
        let r_sq = radius * radius;
        let offsets = self.forward_offsets(radius);
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); self.positions.len()];
        let mut buf = Vec::new();
        for cy in 0..self.rows {
            buf.clear();
            self.row_edges(cy as isize, &offsets, r_sq, &mut buf);
            for &(u, v) in &buf {
                adj[u.index()].push(v);
                adj[v.index()].push(u);
            }
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        adj
    }

    /// Splits the grid rows into at most `parts` contiguous bands of
    /// roughly equal point count — the unit of work the threaded
    /// construction scan hands to each worker. Always covers
    /// `0..rows`; never returns an empty band.
    fn row_bands(&self, parts: usize) -> Vec<(usize, usize)> {
        let row_weight: Vec<usize> = (0..self.rows)
            .map(|cy| {
                self.cells[cy * self.cols..(cy + 1) * self.cols]
                    .iter()
                    .map(Vec::len)
                    .sum()
            })
            .collect();
        let total: usize = row_weight.iter().sum();
        let target = total.div_ceil(parts.max(1)).max(1);
        let mut bands = Vec::new();
        let mut start = 0;
        let mut acc = 0;
        for (cy, &w) in row_weight.iter().enumerate() {
            acc += w;
            if acc >= target {
                bands.push((start, cy + 1));
                start = cy + 1;
                acc = 0;
            }
        }
        if start < self.rows {
            bands.push((start, self.rows));
        }
        if bands.is_empty() {
            bands.push((0, self.rows));
        }
        bands
    }

    /// Node ids in row-major grid-cell order (ascending id inside each
    /// cell) — the placement order
    /// [`Network::spatially_sorted`](crate::Network::spatially_sorted)
    /// uses to map grid-row tiles onto contiguous id ranges.
    pub fn spatial_order(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.positions.len());
        for cell in &self.cells {
            order.extend_from_slice(cell);
        }
        order
    }

    /// The thread count [`Network::from_positions`](crate::Network)
    /// hands to [`adjacency_within_threaded`](Self::adjacency_within_threaded):
    /// 1 below [`PARALLEL_NODE_THRESHOLD`] nodes, otherwise the
    /// [`THREADS_ENV`] (`SP_NET_THREADS`) environment knob when set to a
    /// positive integer, otherwise [`std::thread::available_parallelism`].
    pub fn auto_threads(node_count: usize) -> usize {
        if node_count < PARALLEL_NODE_THRESHOLD {
            return 1;
        }
        SpatialIndex::configured_threads()
    }

    /// The raw thread-count policy behind [`auto_threads`], without the
    /// node-count gate: the [`THREADS_ENV`] (`SP_NET_THREADS`)
    /// environment knob when set to a positive integer, otherwise
    /// [`std::thread::available_parallelism`]. Used by callers whose
    /// parallelism trigger is not total node count (e.g. incremental
    /// repair keyed on mover-batch size).
    pub fn configured_threads() -> usize {
        SpatialIndex::configured_threads_for(THREADS_ENV)
    }

    /// [`configured_threads`](Self::configured_threads) parameterized
    /// by the environment knob, so every `*_THREADS` variable in the
    /// workspace (e.g. `sp-sim`'s `SP_SIM_THREADS`) shares one parsing
    /// and fallback policy — since the concurrency layer moved into
    /// `sp-sync`, this simply delegates to the workspace-wide
    /// [`sp_sync::configured_threads_for`] (the knob must be declared
    /// in [`sp_sync::knobs::ENV_KNOBS`]).
    pub fn configured_threads_for(env: &str) -> usize {
        sp_sync::configured_threads_for(env)
    }

    /// Forward cell offsets covering each unordered pair of nearby cells
    /// exactly once; `(0, 0)` is handled by the in-cell `i < j` loop.
    /// Cell pairs whose minimum separation exceeds `radius` are pruned.
    fn forward_offsets(&self, radius: f64) -> Vec<(isize, isize)> {
        let r_sq = radius * radius;
        let reach = (radius / self.cell_size).ceil() as isize;
        let mut offsets: Vec<(isize, isize)> = Vec::new();
        for dy in 0..=reach {
            let dxs = if dy == 0 { 1..=reach } else { -reach..=reach };
            for dx in dxs {
                // Minimum separation between cells (dx, dy) apart.
                let gx = (dx.abs() - 1).max(0) as f64 * self.cell_size;
                let gy = (dy - 1).max(0) as f64 * self.cell_size;
                if gx * gx + gy * gy <= r_sq {
                    offsets.push((dx, dy));
                }
            }
        }
        offsets
    }

    /// Emits every radius-edge whose *lower-numbered row* is `cy` as an
    /// unordered pair: in-cell `i < j` pairs plus each forward-offset
    /// cell pair, so the union over all rows is the full edge set with
    /// each edge produced exactly once.
    fn row_edges(
        &self,
        cy: isize,
        offsets: &[(isize, isize)],
        r_sq: f64,
        out: &mut Vec<(NodeId, NodeId)>,
    ) {
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        let pos = &*self.positions;
        for cx in 0..cols {
            let cell = &self.cells[(cy * cols + cx) as usize];
            for (i, &u) in cell.iter().enumerate() {
                let pu = pos.get(u.index());
                for &v in &cell[i + 1..] {
                    if pos.distance_sq_to(v.index(), pu) <= r_sq {
                        out.push((u, v));
                    }
                }
            }
            for &(dx, dy) in offsets {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || nx >= cols || ny < 0 || ny >= rows {
                    continue;
                }
                let other = &self.cells[(ny * cols + nx) as usize];
                for &u in cell {
                    let pu = pos.get(u.index());
                    for &v in other {
                        if pos.distance_sq_to(v.index(), pu) <= r_sq {
                            out.push((u, v));
                        }
                    }
                }
            }
        }
    }

    /// The indexed point closest to `center` (ties broken by lowest id),
    /// or `None` when the index is empty.
    ///
    /// Searches expanding cell rings outward from `center`, so the cost
    /// is proportional to the ring at which the first point appears —
    /// `O(1)` cells on dense deployments.
    pub fn nearest(&self, center: Point) -> Option<NodeId> {
        self.k_nearest(center, 1).into_iter().next()
    }

    /// The `k` indexed points closest to `center`, ascending by distance
    /// (ties broken by lowest id). Returns fewer than `k` when the index
    /// holds fewer points.
    pub fn k_nearest(&self, center: Point, k: usize) -> Vec<NodeId> {
        if k == 0 || self.positions.is_empty() {
            return Vec::new();
        }
        let (cx, cy) = self.cell_coords(center);
        let (cx, cy) = (cx as isize, cy as isize);
        let cols = self.cols as isize;
        let rows = self.rows as isize;
        let max_ring = self.cols.max(self.rows) as isize;
        // (distance², id) of the best candidates seen so far.
        let mut best: Vec<(f64, NodeId)> = Vec::new();
        for ring in 0..=max_ring {
            // Once k candidates are known, a farther ring can only help
            // if its nearest possible point beats the current k-th best:
            // every cell in ring r is at least (r-1)·cell away.
            if best.len() >= k {
                let ring_min = ((ring - 1).max(0) as f64) * self.cell_size;
                if ring_min * ring_min > best[k - 1].0 {
                    break;
                }
            }
            let mut grew = false;
            for (x, y) in ring_cells(cx, cy, ring) {
                if x < 0 || x >= cols || y < 0 || y >= rows {
                    continue;
                }
                for &id in &self.cells[(y * cols + x) as usize] {
                    let d = self.positions.distance_sq_to(id.index(), center);
                    best.push((d, id));
                    grew = true;
                }
            }
            if grew {
                best.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                best.truncate(k);
            }
        }
        best.into_iter().map(|(_, id)| id).collect()
    }

    /// Heap bytes held by the grid cells (headers plus bucketed ids).
    pub fn grid_heap_bytes(&self) -> usize {
        self.cells.len() * 3 * std::mem::size_of::<usize>()
            + self
                .cells
                .iter()
                .map(|c| c.len() * std::mem::size_of::<NodeId>())
                .sum::<usize>()
    }
}

/// The cells of the square ring at Chebyshev distance `ring` around
/// `(cx, cy)` (the single center cell for `ring == 0`).
fn ring_cells(cx: isize, cy: isize, ring: isize) -> Vec<(isize, isize)> {
    if ring == 0 {
        return vec![(cx, cy)];
    }
    let mut out = Vec::with_capacity((8 * ring) as usize);
    for dx in -ring..=ring {
        out.push((cx + dx, cy - ring));
        out.push((cx + dx, cy + ring));
    }
    for dy in (-ring + 1)..ring {
        out.push((cx - ring, cy + dy));
        out.push((cx + ring, cy + dy));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_area() -> Rect {
        Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// Deterministic pseudo-random scatter without pulling in rand.
    fn scatter(n: usize, seed: u64) -> Vec<Point> {
        let mut pts = Vec::new();
        let mut state = seed;
        for _ in 0..n {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = ((state >> 16) % 10000) as f64 / 100.0;
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = ((state >> 16) % 10000) as f64 / 100.0;
            pts.push(Point::new(x, y));
        }
        pts
    }

    #[test]
    fn matches_brute_force() {
        let pts = scatter(300, 12345);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        for (qi, &q) in pts.iter().enumerate().step_by(17) {
            let mut got: Vec<usize> = index.within_radius(q, 20.0).map(|n| n.index()).collect();
            got.sort_unstable();
            let mut want: Vec<usize> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.distance_sq(q) <= 400.0)
                .map(|(i, _)| i)
                .collect();
            want.sort_unstable();
            assert_eq!(got, want, "query {qi} mismatch");
        }
    }

    #[test]
    fn includes_center_point_itself() {
        let pts = vec![Point::new(50.0, 50.0)];
        let index = SpatialIndex::build(&pts, demo_area(), 10.0);
        let hits: Vec<NodeId> = index.within_radius(Point::new(50.0, 50.0), 10.0).collect();
        assert_eq!(hits, vec![NodeId(0)]);
    }

    #[test]
    fn radius_larger_than_cell_size() {
        let pts = vec![Point::new(5.0, 5.0), Point::new(95.0, 95.0)];
        let index = SpatialIndex::build(&pts, demo_area(), 10.0);
        let hits: Vec<NodeId> = index.within_radius(Point::new(50.0, 50.0), 200.0).collect();
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn out_of_bounds_points_still_found() {
        let pts = vec![Point::new(-5.0, -5.0), Point::new(105.0, 105.0)];
        let index = SpatialIndex::build(&pts, demo_area(), 10.0);
        let hits: Vec<NodeId> = index.within_radius(Point::new(-3.0, -3.0), 5.0).collect();
        assert_eq!(hits, vec![NodeId(0)]);
    }

    #[test]
    fn empty_index() {
        let index = SpatialIndex::build(&[], demo_area(), 10.0);
        assert!(index.is_empty());
        assert_eq!(index.within_radius(Point::new(1.0, 1.0), 50.0).count(), 0);
        assert_eq!(index.nearest(Point::new(1.0, 1.0)), None);
        assert!(index.k_nearest(Point::new(1.0, 1.0), 3).is_empty());
        assert!(index.spatial_order().is_empty());
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn zero_cell_size_rejected() {
        let _ = SpatialIndex::build(&[], demo_area(), 0.0);
    }

    #[test]
    fn nearest_matches_brute_force() {
        let pts = scatter(250, 99);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let queries = [
            Point::new(0.0, 0.0),
            Point::new(50.0, 50.0),
            Point::new(99.0, 1.0),
            Point::new(-10.0, 120.0),
            Point::new(33.3, 66.6),
        ];
        for q in queries {
            let want = pts
                .iter()
                .enumerate()
                .min_by(|(i, a), (j, b)| {
                    a.distance_sq(q).total_cmp(&b.distance_sq(q)).then(i.cmp(j))
                })
                .map(|(i, _)| NodeId::new(i));
            assert_eq!(index.nearest(q), want, "nearest mismatch at {q}");
        }
    }

    #[test]
    fn k_nearest_matches_brute_force_order() {
        let pts = scatter(180, 4242);
        let index = SpatialIndex::build(&pts, demo_area(), 15.0);
        for &q in &[Point::new(10.0, 90.0), Point::new(70.0, 20.0)] {
            for k in [1usize, 3, 7, 200] {
                let got = index.k_nearest(q, k);
                let mut want: Vec<(f64, NodeId)> = pts
                    .iter()
                    .enumerate()
                    .map(|(i, p)| (p.distance_sq(q), NodeId::new(i)))
                    .collect();
                want.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                let want: Vec<NodeId> = want.into_iter().take(k).map(|(_, id)| id).collect();
                assert_eq!(got, want, "k={k} at {q}");
            }
        }
    }

    #[test]
    fn threaded_adjacency_equals_serial() {
        let pts = scatter(400, 777);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let serial = index.adjacency_within(20.0);
        for threads in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                index.adjacency_within_threaded(20.0, threads),
                serial,
                "{threads}-thread shard diverged"
            );
        }
    }

    #[test]
    fn csr_adjacency_equals_legacy_lists() {
        let pts = scatter(350, 31337);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let csr = index.adjacency_within(20.0);
        assert_eq!(csr.to_lists(), index.adjacency_lists_within(20.0));
    }

    #[test]
    fn move_point_relocates_between_cells() {
        let pts = vec![Point::new(5.0, 5.0), Point::new(95.0, 95.0)];
        let mut index = SpatialIndex::build(&pts, demo_area(), 10.0);
        index.move_point(NodeId(0), Point::new(93.0, 93.0));
        assert_eq!(index.position(NodeId(0)), Point::new(93.0, 93.0));
        let mut near: Vec<NodeId> = index.within_radius(Point::new(94.0, 94.0), 5.0).collect();
        near.sort_unstable();
        assert_eq!(near, vec![NodeId(0), NodeId(1)]);
        assert_eq!(index.within_radius(Point::new(5.0, 5.0), 5.0).count(), 0);
    }

    #[test]
    fn move_point_copies_shared_points_once() {
        let pts = scatter(50, 31);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let mut moved = index.clone(); // shares the position table
        moved.move_point(NodeId(7), Point::new(1.0, 2.0));
        assert_eq!(moved.position(NodeId(7)), Point::new(1.0, 2.0));
        // The original never observes the move.
        assert_eq!(index.position(NodeId(7)), pts[7]);
        // Cells stay sorted so queries remain deterministic.
        let mut ids: Vec<NodeId> = moved.within_radius(Point::new(1.0, 2.0), 1.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![NodeId(7)]);
    }

    #[test]
    fn moved_index_adjacency_matches_fresh_build() {
        let mut pts = scatter(200, 55);
        let mut index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let mut state = 9000u64;
        for step in 0..60 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let id = (state >> 33) as usize % pts.len();
            let target = scatter(1, state ^ step)[0];
            pts[id] = target;
            index.move_point(NodeId::new(id), target);
        }
        let fresh = SpatialIndex::build(&pts, demo_area(), 20.0);
        assert_eq!(index.adjacency_within(20.0), fresh.adjacency_within(20.0));
    }

    #[test]
    fn spatial_order_is_a_permutation_in_row_major_cell_order() {
        let pts = scatter(150, 97);
        let index = SpatialIndex::build(&pts, demo_area(), 20.0);
        let order = index.spatial_order();
        assert_eq!(order.len(), pts.len());
        let mut seen = vec![false; pts.len()];
        let mut last_cell = 0usize;
        for &u in &order {
            assert!(!seen[u.index()], "{u} appeared twice");
            seen[u.index()] = true;
            let c = index.cell_of(pts[u.index()]);
            assert!(c >= last_cell, "order must walk cells row-major");
            last_cell = c;
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn row_bands_cover_all_rows_contiguously() {
        let pts = scatter(400, 2024);
        let index = SpatialIndex::build(&pts, demo_area(), 10.0);
        for parts in [1usize, 2, 3, 7, 100] {
            let bands = index.row_bands(parts);
            assert_eq!(bands.first().map(|b| b.0), Some(0));
            assert_eq!(bands.last().map(|b| b.1), Some(index.rows));
            for w in bands.windows(2) {
                assert_eq!(w[0].1, w[1].0, "bands must tile the rows");
            }
        }
    }

    #[test]
    fn auto_threads_serial_below_threshold() {
        assert_eq!(SpatialIndex::auto_threads(100), 1);
        assert_eq!(SpatialIndex::auto_threads(PARALLEL_NODE_THRESHOLD - 1), 1);
        assert!(SpatialIndex::auto_threads(PARALLEL_NODE_THRESHOLD) >= 1);
    }

    #[test]
    fn grid_shape_reflects_bounds() {
        let index = SpatialIndex::build(&[], demo_area(), 20.0);
        assert_eq!(index.grid_shape(), (5, 5));
        assert_eq!(index.cell_size(), 20.0);
    }
}
