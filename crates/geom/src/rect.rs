//! Axis-aligned rectangles in the paper's `[x1 : x2, y1 : y2]` notation.
//!
//! §3 of the paper defines `[x1 : x2, y1 : y2]` as the rectangle with the
//! four corners `(x1, y1)`, `(x1, y2)`, `(x2, y2)`, `(x2, y1)` — the corner
//! order is arbitrary, so the constructor normalizes. Rectangles appear in
//! two roles:
//!
//! * the **request zone** `Z_k(u, d) = [x_u : x_d, y_u : y_d]` of LAR
//!   scheme 1, with `u` and `d` at opposite corners;
//! * the **unsafe-area shape estimate**
//!   `E_i(u) = [x_u : x_{u(1)}, y_u : y_{u(2)}]` of Algo. 2.
//!
//! Membership is inclusive of the border, matching the paper's use of the
//! zone as the candidate filter `v ∈ Z_k(u, d) ∩ N(u)`.

use crate::{Point, Vec2};

/// An axis-aligned rectangle with inclusive borders.
///
/// ```
/// use sp_geom::{Point, Rect};
/// // Corners may come in any order; `[x_u : x_d, y_u : y_d]` notation.
/// let z = Rect::from_corners(Point::new(10.0, 2.0), Point::new(4.0, 8.0));
/// assert_eq!(z.min(), Point::new(4.0, 2.0));
/// assert_eq!(z.max(), Point::new(10.0, 8.0));
/// assert!(z.contains(Point::new(4.0, 8.0))); // borders inclusive
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Rectangle spanned by two opposite corners, in any order.
    pub fn from_corners(a: Point, b: Point) -> Rect {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Rectangle from its lower-left corner and extents.
    ///
    /// # Panics
    ///
    /// Panics if `width` or `height` is negative or NaN.
    pub fn from_origin_size(origin: Point, width: f64, height: f64) -> Rect {
        assert!(
            width >= 0.0 && height >= 0.0,
            "rect extents must be non-negative, got {width} x {height}"
        );
        Rect {
            min: origin,
            max: Point::new(origin.x + width, origin.y + height),
        }
    }

    /// The paper's request zone `Z_k(u, d)`: `u` and `d` at opposite
    /// corners. Alias of [`Rect::from_corners`] kept for call-site clarity.
    pub fn request_zone(u: Point, d: Point) -> Rect {
        Rect::from_corners(u, d)
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width (`x` extent), always `≥ 0`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (`y` extent), always `≥ 0`.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area. Zero for degenerate (segment or point) rectangles.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point.
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Half the diagonal; the circumradius of the rectangle.
    pub fn circumradius(&self) -> f64 {
        self.min.distance(self.max) / 2.0
    }

    /// The four corners in counter-clockwise order starting from `min`:
    /// `(x1,y1), (x2,y1), (x2,y2), (x1,y2)`.
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        2.0 * (self.width() + self.height())
    }

    /// Border-inclusive membership, matching `v ∈ Z_k(u, d)`.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Membership excluding the border.
    pub fn contains_strict(&self, p: Point) -> bool {
        p.x > self.min.x && p.x < self.max.x && p.y > self.min.y && p.y < self.max.y
    }

    /// True when the two rectangles share at least one point
    /// (borders count).
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// The intersection rectangle, or `None` when disjoint.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            min: Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y)),
            max: Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y)),
        })
    }

    /// Smallest rectangle containing both.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// True when `other` lies entirely inside `self` (borders allowed).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// The rectangle grown by `margin` on every side (shrunk when
    /// `margin < 0`; collapses to its center if over-shrunk).
    pub fn inflate(&self, margin: f64) -> Rect {
        let min = Point::new(self.min.x - margin, self.min.y - margin);
        let max = Point::new(self.max.x + margin, self.max.y + margin);
        if min.x > max.x || min.y > max.y {
            let c = self.center();
            Rect { min: c, max: c }
        } else {
            Rect { min, max }
        }
    }

    /// Closest point of the rectangle to `p` (is `p` itself when inside).
    pub fn clamp_point(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Distance from `p` to the rectangle; zero when `p` is inside.
    pub fn distance_to_point(&self, p: Point) -> f64 {
        p.distance(self.clamp_point(p))
    }

    /// Uniformly-spaced sample point by fractional coordinates
    /// (`fx`, `fy` in `[0, 1]`).
    pub fn lerp(&self, fx: f64, fy: f64) -> Point {
        Point::new(
            self.min.x + fx * self.width(),
            self.min.y + fy * self.height(),
        )
    }

    /// Translates the rectangle by `v`.
    pub fn translate(&self, v: Vec2) -> Rect {
        Rect {
            min: self.min + v,
            max: self.max + v,
        }
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{:.3}:{:.3}, {:.3}:{:.3}]",
            self.min.x, self.max.x, self.min.y, self.max.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corners_normalize() {
        let r1 = Rect::from_corners(Point::new(5.0, 1.0), Point::new(1.0, 5.0));
        let r2 = Rect::from_corners(Point::new(1.0, 1.0), Point::new(5.0, 5.0));
        assert_eq!(r1, r2);
        assert_eq!(r1.width(), 4.0);
        assert_eq!(r1.height(), 4.0);
        assert_eq!(r1.area(), 16.0);
    }

    #[test]
    fn request_zone_holds_endpoints() {
        let u = Point::new(12.0, 30.0);
        let d = Point::new(-3.0, 7.5);
        let z = Rect::request_zone(u, d);
        assert!(z.contains(u));
        assert!(z.contains(d));
        assert!(z.contains(u.midpoint(d)));
    }

    #[test]
    fn degenerate_rects_are_fine() {
        let p = Point::new(2.0, 3.0);
        let r = Rect::from_corners(p, p);
        assert_eq!(r.area(), 0.0);
        assert!(r.contains(p));
        assert!(!r.contains(Point::new(2.0, 3.1)));
    }

    #[test]
    fn border_inclusive_strict_exclusive() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        let edge = Point::new(0.0, 5.0);
        assert!(r.contains(edge));
        assert!(!r.contains_strict(edge));
        assert!(r.contains_strict(Point::new(5.0, 5.0)));
    }

    #[test]
    fn intersection_and_union() {
        let a = Rect::from_corners(Point::new(0.0, 0.0), Point::new(4.0, 4.0));
        let b = Rect::from_corners(Point::new(2.0, 2.0), Point::new(6.0, 6.0));
        let i = a.intersection(&b).unwrap();
        assert_eq!(
            i,
            Rect::from_corners(Point::new(2.0, 2.0), Point::new(4.0, 4.0))
        );
        let u = a.union(&b);
        assert_eq!(
            u,
            Rect::from_corners(Point::new(0.0, 0.0), Point::new(6.0, 6.0))
        );
        let far = Rect::from_corners(Point::new(9.0, 9.0), Point::new(10.0, 10.0));
        assert!(a.intersection(&far).is_none());
        assert!(!a.intersects(&far));
        // Touching borders count as intersecting.
        let touch = Rect::from_corners(Point::new(4.0, 0.0), Point::new(5.0, 4.0));
        assert!(a.intersects(&touch));
    }

    #[test]
    fn contains_rect_requires_full_inclusion() {
        let outer = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        let inner = Rect::from_corners(Point::new(1.0, 1.0), Point::new(9.0, 9.0));
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
    }

    #[test]
    fn inflate_grows_and_collapses() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(2.0, 2.0));
        let big = r.inflate(1.0);
        assert_eq!(big.min(), Point::new(-1.0, -1.0));
        assert_eq!(big.max(), Point::new(3.0, 3.0));
        let collapsed = r.inflate(-5.0);
        assert_eq!(collapsed.area(), 0.0);
        assert_eq!(collapsed.center(), r.center());
    }

    #[test]
    fn clamp_and_distance() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(10.0, 10.0));
        assert_eq!(r.distance_to_point(Point::new(5.0, 5.0)), 0.0);
        assert_eq!(r.distance_to_point(Point::new(13.0, 14.0)), 5.0);
        assert_eq!(r.clamp_point(Point::new(-3.0, 4.0)), Point::new(0.0, 4.0));
    }

    #[test]
    fn corners_are_ccw() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(4.0, 2.0));
        let c = r.corners();
        // Shoelace area of CCW polygon is positive.
        let mut twice_area = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            twice_area += p.x * q.y - q.x * p.y;
        }
        assert!(twice_area > 0.0);
        assert_eq!(twice_area / 2.0, r.area());
        assert_eq!(r.perimeter(), 12.0);
    }

    #[test]
    fn lerp_spans_rect() {
        let r = Rect::from_corners(Point::new(2.0, 4.0), Point::new(6.0, 8.0));
        assert_eq!(r.lerp(0.0, 0.0), r.min());
        assert_eq!(r.lerp(1.0, 1.0), r.max());
        assert_eq!(r.lerp(0.5, 0.5), r.center());
    }

    #[test]
    fn display_matches_paper_notation() {
        let r = Rect::from_corners(Point::ORIGIN, Point::new(1.0, 2.0));
        assert_eq!(r.to_string(), "[0.000:1.000, 0.000:2.000]");
    }
}
