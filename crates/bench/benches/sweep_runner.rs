//! The sweep runner end-to-end: spec-string resolution through both
//! registries plus the parallel `run_sweep` over each deployment
//! scenario, at smoke scale.
//!
//! Besides the criterion output, the measured repeat-sample statistics
//! (samples / median / stddev, ROADMAP "criterion stub fidelity") land
//! in `BENCH_sweep.json` at the workspace root, one row per scenario;
//! the committed copy is the CI `bench-gate` baseline.
//!
//! Run with: `cargo bench -p sp-bench --bench sweep_runner`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_bench::sample_stats;
use sp_experiments::SweepSpec;

/// One smoke sweep per scenario: 2 node counts × 4 networks, the
/// paper's four schemes (the CI spec run uses the corridor row).
const SPECS: [(&str, &str); 3] = [
    ("IA", "scenario=IA;nodes=400,600;nets=4;schemes=PAPER"),
    (
        "corridor",
        "scenario=corridor;nodes=400,600;nets=4;schemes=PAPER",
    ),
    (
        "clustered",
        "scenario=clustered;nodes=400,600;nets=4;schemes=PAPER",
    ),
];

fn sweep_benches(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("sweep_runner");
    group.sample_size(10);
    for (tag, spec_str) in SPECS {
        let spec = SweepSpec::parse(spec_str).expect("bench specs parse");
        let results = spec.run();
        let routes: usize = results
            .points
            .iter()
            .flat_map(|p| p.schemes.iter().map(|s| s.total))
            .sum();
        assert!(routes > 0, "{tag}: sweep produced no routes");

        let sweep_s = sample_stats(5, || spec.run());
        // The front end itself must stay out of the noise floor.
        let parse_s = sample_stats(64, || SweepSpec::parse(spec_str).unwrap());
        eprintln!(
            "{tag}: sweep {:.1} ms ({routes} routes) | parse {:.3} ms",
            sweep_s.median * 1e3,
            parse_s.median * 1e3
        );
        rows.push(format!(
            "    {{\"scenario\": \"{}\", \"routes\": {}, {}, {}}}",
            tag,
            routes,
            sweep_s.json_fields("sweep"),
            parse_s.json_fields("parse")
        ));

        group.bench_function(BenchmarkId::new("run", tag), |b| {
            b.iter(|| spec.run());
        });
    }
    group.finish();

    let json = format!(
        "{{\n  \"benchmark\": \"sweep_runner\",\n  \"unit\": \"seconds (median over samples)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(out, &json).expect("write BENCH_sweep.json");
    eprintln!("wrote {out}");
}

criterion_group!(benches, sweep_benches);
criterion_main!(benches);
