//! A1 — information-construction cost: the centralized Definition-1
//! fixed point versus the faithful distributed protocol (Algorithm 2),
//! across the paper's density range.
//!
//! Prints the regenerated A1 rows, then times both constructions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_core::{construct_distributed, SafetyInfo};
use sp_experiments::{figures, Scenario, SweepConfig};
use sp_metrics::render_text;
use sp_net::Network;
use std::hint::black_box;

fn construction_benches(c: &mut Criterion) {
    let cfg = SweepConfig::quick(Scenario::Ia);
    eprintln!(
        "{}",
        render_text(&figures::construction_cost_figure(&cfg, 2))
    );

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for n in [400usize, 600, 800] {
        let dc = cfg.deployment_config(n);
        let net = Network::from_positions(dc.deploy_uniform(5), dc.radius, dc.area);
        group.bench_function(BenchmarkId::new("centralized", n), |b| {
            b.iter(|| black_box(SafetyInfo::build(&net)));
        });
        group.bench_function(BenchmarkId::new("distributed", n), |b| {
            b.iter(|| black_box(construct_distributed(&net).expect("quiesces")));
        });
    }
    group.finish();
}

criterion_group!(benches, construction_benches);
criterion_main!(benches);
