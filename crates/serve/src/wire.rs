//! The `sp-serve` wire protocol: length-prefixed binary frames over
//! TCP.
//!
//! Every message is one **frame**: a little-endian `u32` payload
//! length followed by that many payload bytes, capped at
//! [`MAX_FRAME`]. Request payloads open with an opcode byte; response
//! payloads echo the request opcode as a tag byte, then a status byte
//! ([`ST_OK`] / [`ST_ERR`]).
//!
//! | Opcode | Request body | OK response body |
//! |---|---|---|
//! | `QUERY` (1) | `src u32, dst u32, scheme u8, flags u8` | `epoch u64, outcome u8, stuck u32, hops u32, length f64, perimeter u32, backup u32, traced u8 [, path_len u32, path u32×len]` |
//! | `MOVE` (2) | `count u32, count × (node u32, x f64, y f64)` | `epoch u64, applied u32` |
//! | `CHAOS` (3) | `round u32, seed u64, spec utf8…` | `epoch u64, clauses u32` |
//! | `STATS` (4) | — | `epoch u64,` [`StatsSnapshot`] fields |
//! | `SHUTDOWN` (5) | — | `epoch u64` |
//! | `INFO` (6) | — | `epoch u64, nodes u32, workers u32` |
//!
//! Malformed input of any shape — truncated frames, oversized length
//! headers, unknown opcodes, garbage bytes — decodes to a **named**
//! [`ProtocolError`], never a panic: the decoder touches bytes only
//! through checked cursors, and the fuzz/property tests in
//! `tests/wire_protocol.rs` hold it to that on arbitrary input.
//!
//! The decode → route → encode path is on the `sp-analyze`
//! hot-function manifest: [`decode_request`] borrows from the frame
//! (the `MOVE` batch stays raw until the server iterates it) and
//! [`encode_query_ok`] appends into a caller-reused buffer, so the
//! steady-state query path allocates nothing.

use crate::telemetry::StatsSnapshot;
use sp_core::RouteOutcome;
use sp_net::NodeId;

/// Hard cap on one frame's payload length: 1 MiB (a ~52k-node `MOVE`
/// batch). A longer length header is a [`ProtocolErrorKind::Oversized`]
/// protocol error, refused before any buffer grows to meet it.
pub const MAX_FRAME: usize = 1 << 20;

/// `QUERY` request opcode / response tag.
pub const OP_QUERY: u8 = 1;
/// `MOVE` request opcode / response tag.
pub const OP_MOVE: u8 = 2;
/// `CHAOS` request opcode / response tag.
pub const OP_CHAOS: u8 = 3;
/// `STATS` request opcode / response tag.
pub const OP_STATS: u8 = 4;
/// `SHUTDOWN` request opcode / response tag.
pub const OP_SHUTDOWN: u8 = 5;
/// `INFO` request opcode / response tag.
pub const OP_INFO: u8 = 6;

/// Response status byte: success.
pub const ST_OK: u8 = 0;
/// Response status byte: named protocol error follows.
pub const ST_ERR: u8 = 1;

/// `QUERY` flags bit: stream the full hop trace in the response.
pub const FLAG_TRACE: u8 = 1;

/// The named protocol-error families every malformed input maps to.
/// The discriminants are stable wire codes carried in error responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ProtocolErrorKind {
    /// Payload ended before a field it promised.
    Truncated = 1,
    /// Frame length header exceeds [`MAX_FRAME`].
    Oversized = 2,
    /// Opcode byte names no known request.
    UnknownOpcode = 3,
    /// Scheme code names no servable scheme.
    BadScheme = 4,
    /// Node id at or beyond the topology's node count.
    BadNodeId = 5,
    /// A spec field was not valid UTF-8.
    BadUtf8 = 6,
    /// A chaos spec failed to parse or build.
    BadSpec = 7,
    /// Payload carried bytes past the request's last field.
    TrailingBytes = 8,
    /// Response status/tag bytes that fit no known shape (client side).
    BadResponse = 9,
    /// A `MOVE` coordinate was NaN or infinite.
    BadCoordinate = 10,
}

impl ProtocolErrorKind {
    /// The stable wire code.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decodes a wire code; unknown codes collapse to
    /// [`ProtocolErrorKind::BadResponse`].
    pub fn from_code(code: u8) -> ProtocolErrorKind {
        match code {
            1 => ProtocolErrorKind::Truncated,
            2 => ProtocolErrorKind::Oversized,
            3 => ProtocolErrorKind::UnknownOpcode,
            4 => ProtocolErrorKind::BadScheme,
            5 => ProtocolErrorKind::BadNodeId,
            6 => ProtocolErrorKind::BadUtf8,
            7 => ProtocolErrorKind::BadSpec,
            8 => ProtocolErrorKind::TrailingBytes,
            10 => ProtocolErrorKind::BadCoordinate,
            _ => ProtocolErrorKind::BadResponse,
        }
    }

    /// The error family's name, as carried in error responses.
    pub fn name(self) -> &'static str {
        match self {
            ProtocolErrorKind::Truncated => "truncated",
            ProtocolErrorKind::Oversized => "oversized",
            ProtocolErrorKind::UnknownOpcode => "unknown-opcode",
            ProtocolErrorKind::BadScheme => "bad-scheme",
            ProtocolErrorKind::BadNodeId => "bad-node-id",
            ProtocolErrorKind::BadUtf8 => "bad-utf8",
            ProtocolErrorKind::BadSpec => "bad-spec",
            ProtocolErrorKind::TrailingBytes => "trailing-bytes",
            ProtocolErrorKind::BadResponse => "bad-response",
            ProtocolErrorKind::BadCoordinate => "bad-coordinate",
        }
    }
}

/// A named protocol error: the family plus one numeric context word
/// (the offending opcode, node id, or length — whatever the family
/// finds useful). Carrying a number instead of a rendered string keeps
/// the hot decode path allocation-free; [`ProtocolError::message`]
/// renders lazily on the cold reporting path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolError {
    /// The error family.
    pub kind: ProtocolErrorKind,
    /// Family-specific context (offending opcode / id / length; 0 when
    /// meaningless).
    pub context: u64,
}

impl ProtocolError {
    /// Builds an error with context.
    pub fn new(kind: ProtocolErrorKind, context: u64) -> ProtocolError {
        ProtocolError { kind, context }
    }

    /// A context-free error.
    pub fn bare(kind: ProtocolErrorKind) -> ProtocolError {
        ProtocolError { kind, context: 0 }
    }

    /// A human-readable rendering (cold path only).
    pub fn message(&self) -> String {
        format!("{} (context {})", self.kind.name(), self.context)
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} (context {})", self.kind.name(), self.context)
    }
}

impl std::error::Error for ProtocolError {}

/// A checked byte cursor: every read is bounds-checked and the only
/// failure mode is [`ProtocolErrorKind::Truncated`]. No indexing, no
/// panics.
struct Cur<'a> {
    rest: &'a [u8],
}

impl<'a> Cur<'a> {
    fn new(rest: &'a [u8]) -> Cur<'a> {
        Cur { rest }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtocolError> {
        if self.rest.len() < n {
            return Err(ProtocolError::new(
                ProtocolErrorKind::Truncated,
                self.rest.len() as u64,
            ));
        }
        let (head, tail) = self.rest.split_at(n);
        self.rest = tail;
        Ok(head)
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let b = self.take(4)?;
        let mut raw = [0u8; 4];
        raw.copy_from_slice(b);
        Ok(u32::from_le_bytes(raw))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let b = self.take(8)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(b);
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, ProtocolError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Everything left, consuming the cursor.
    fn rest(&mut self) -> &'a [u8] {
        std::mem::take(&mut self.rest)
    }

    /// Asserts the payload is fully consumed.
    fn done(&self) -> Result<(), ProtocolError> {
        if self.rest.is_empty() {
            Ok(())
        } else {
            Err(ProtocolError::new(
                ProtocolErrorKind::TrailingBytes,
                self.rest.len() as u64,
            ))
        }
    }
}

/// Bytes per `MOVE` entry: `node u32, x f64, y f64`.
const MOVE_ENTRY: usize = 4 + 8 + 8;

/// A `MOVE` request's batch, still in wire form: the server iterates
/// it into a reused scratch vector instead of the decoder allocating.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MoveBatch<'a> {
    count: u32,
    data: &'a [u8],
}

impl<'a> MoveBatch<'a> {
    /// Declared entry count (the byte length is validated against it
    /// at decode time).
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// True for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `(node, x, y)` entries, in wire order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f64, f64)> + 'a {
        self.data.chunks_exact(MOVE_ENTRY).map(|chunk| {
            let mut cur = Cur::new(chunk);
            // A chunks_exact chunk always holds one full entry, so
            // these reads cannot fail.
            let node = cur.u32().unwrap_or(0);
            let x = cur.f64().unwrap_or(0.0);
            let y = cur.f64().unwrap_or(0.0);
            (node, x, y)
        })
    }
}

/// One decoded request, borrowing from the frame payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Request<'a> {
    /// Route one query.
    Query {
        /// Source node id (validated against the topology upstream).
        src: u32,
        /// Destination node id.
        dst: u32,
        /// Scheme wire code ([`sp_core::ServiceScheme::from_code`]).
        scheme: u8,
        /// True when the response must stream the full hop trace.
        trace: bool,
    },
    /// Apply a mobility batch, publishing a new epoch.
    Move(MoveBatch<'a>),
    /// Apply a chaos recipe, publishing a new epoch.
    Chaos {
        /// Observation round the plan is evaluated at.
        round: u32,
        /// Seed for the recipe's randomized clauses.
        seed: u64,
        /// The chaos spec string (`class:k=v[@roundN]+…`).
        spec: &'a str,
    },
    /// Aggregate and return the telemetry counters.
    Stats,
    /// Begin graceful shutdown (drain, then exit).
    Shutdown,
    /// Topology and server facts.
    Info,
}

impl Request<'_> {
    /// The opcode this request answers under.
    pub fn tag(&self) -> u8 {
        match self {
            Request::Query { .. } => OP_QUERY,
            Request::Move(_) => OP_MOVE,
            Request::Chaos { .. } => OP_CHAOS,
            Request::Stats => OP_STATS,
            Request::Shutdown => OP_SHUTDOWN,
            Request::Info => OP_INFO,
        }
    }
}

/// Decodes one request payload. Never panics: every malformed shape
/// maps to a named [`ProtocolError`]. Borrows from `payload` — the
/// steady-state query path allocates nothing here.
pub fn decode_request(payload: &[u8]) -> Result<Request<'_>, ProtocolError> {
    let mut cur = Cur::new(payload);
    let op = cur.u8()?;
    match op {
        OP_QUERY => {
            let src = cur.u32()?;
            let dst = cur.u32()?;
            let scheme = cur.u8()?;
            let flags = cur.u8()?;
            cur.done()?;
            Ok(Request::Query {
                src,
                dst,
                scheme,
                trace: flags & FLAG_TRACE != 0,
            })
        }
        OP_MOVE => {
            let count = cur.u32()?;
            let data = cur.take((count as usize).saturating_mul(MOVE_ENTRY))?;
            cur.done()?;
            Ok(Request::Move(MoveBatch { count, data }))
        }
        OP_CHAOS => {
            let round = cur.u32()?;
            let seed = cur.u64()?;
            let raw = cur.rest();
            let spec = std::str::from_utf8(raw).map_err(|e| {
                ProtocolError::new(ProtocolErrorKind::BadUtf8, e.valid_up_to() as u64)
            })?;
            Ok(Request::Chaos { round, seed, spec })
        }
        OP_STATS => {
            cur.done()?;
            Ok(Request::Stats)
        }
        OP_SHUTDOWN => {
            cur.done()?;
            Ok(Request::Shutdown)
        }
        OP_INFO => {
            cur.done()?;
            Ok(Request::Info)
        }
        other => Err(ProtocolError::new(
            ProtocolErrorKind::UnknownOpcode,
            other as u64,
        )),
    }
}

/// Encodes a `QUERY` request payload into `out` (cleared first).
pub fn encode_query(out: &mut Vec<u8>, src: u32, dst: u32, scheme: u8, trace: bool) {
    out.clear();
    out.push(OP_QUERY);
    out.extend_from_slice(&src.to_le_bytes());
    out.extend_from_slice(&dst.to_le_bytes());
    out.push(scheme);
    out.push(if trace { FLAG_TRACE } else { 0 });
}

/// Encodes a `MOVE` request payload into `out` (cleared first).
pub fn encode_move(out: &mut Vec<u8>, moves: &[(u32, f64, f64)]) {
    out.clear();
    out.push(OP_MOVE);
    out.extend_from_slice(&(moves.len() as u32).to_le_bytes());
    for &(node, x, y) in moves {
        out.extend_from_slice(&node.to_le_bytes());
        out.extend_from_slice(&x.to_bits().to_le_bytes());
        out.extend_from_slice(&y.to_bits().to_le_bytes());
    }
}

/// Encodes a `CHAOS` request payload into `out` (cleared first).
pub fn encode_chaos(out: &mut Vec<u8>, round: u32, seed: u64, spec: &str) {
    out.clear();
    out.push(OP_CHAOS);
    out.extend_from_slice(&round.to_le_bytes());
    out.extend_from_slice(&seed.to_le_bytes());
    out.extend_from_slice(spec.as_bytes());
}

/// Encodes a bodyless request (`STATS` / `SHUTDOWN` / `INFO`) into
/// `out` (cleared first).
pub fn encode_bodyless(out: &mut Vec<u8>, op: u8) {
    out.clear();
    out.push(op);
}

/// Wire codes for [`RouteOutcome`].
fn outcome_code(outcome: RouteOutcome) -> (u8, u32) {
    match outcome {
        RouteOutcome::Delivered => (0, 0),
        RouteOutcome::Stuck(at) => (1, at.0),
        RouteOutcome::TtlExhausted => (2, 0),
    }
}

/// Decodes an outcome wire code pair.
fn outcome_from_code(code: u8, stuck: u32) -> Result<RouteOutcome, ProtocolError> {
    match code {
        0 => Ok(RouteOutcome::Delivered),
        1 => Ok(RouteOutcome::Stuck(NodeId(stuck))),
        2 => Ok(RouteOutcome::TtlExhausted),
        other => Err(ProtocolError::new(
            ProtocolErrorKind::BadResponse,
            other as u64,
        )),
    }
}

/// The fixed part of a `QUERY` response.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerWire {
    /// Epoch the answer was computed against.
    pub epoch: u64,
    /// Terminal route status.
    pub outcome: RouteOutcome,
    /// Hops walked.
    pub hops: u32,
    /// Euclidean path length.
    pub length: f64,
    /// Perimeter-phase entries.
    pub perimeter: u32,
    /// Backup-phase entries.
    pub backup: u32,
}

/// Encodes a successful `QUERY` response into `out` (cleared first),
/// streaming the hop trace when `path` is supplied. Appends into the
/// caller's reused buffer — zero allocation in the steady state.
pub fn encode_query_ok(out: &mut Vec<u8>, a: &AnswerWire, path: Option<&[NodeId]>) {
    out.clear();
    out.push(OP_QUERY);
    out.push(ST_OK);
    out.extend_from_slice(&a.epoch.to_le_bytes());
    let (code, stuck) = outcome_code(a.outcome);
    out.push(code);
    out.extend_from_slice(&stuck.to_le_bytes());
    out.extend_from_slice(&a.hops.to_le_bytes());
    out.extend_from_slice(&a.length.to_bits().to_le_bytes());
    out.extend_from_slice(&a.perimeter.to_le_bytes());
    out.extend_from_slice(&a.backup.to_le_bytes());
    match path {
        Some(path) => {
            out.push(1);
            out.extend_from_slice(&(path.len() as u32).to_le_bytes());
            for hop in path {
                out.extend_from_slice(&hop.0.to_le_bytes());
            }
        }
        None => out.push(0),
    }
}

/// Encodes an epoch-plus-count response (`MOVE` / `CHAOS`) into `out`
/// (cleared first).
pub fn encode_epoch_ok(out: &mut Vec<u8>, tag: u8, epoch: u64, count: u32) {
    out.clear();
    out.push(tag);
    out.push(ST_OK);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&count.to_le_bytes());
}

/// Encodes a `SHUTDOWN` acknowledgement into `out` (cleared first).
pub fn encode_shutdown_ok(out: &mut Vec<u8>, epoch: u64) {
    out.clear();
    out.push(OP_SHUTDOWN);
    out.push(ST_OK);
    out.extend_from_slice(&epoch.to_le_bytes());
}

/// Encodes an `INFO` response into `out` (cleared first).
pub fn encode_info_ok(out: &mut Vec<u8>, epoch: u64, nodes: u32, workers: u32) {
    out.clear();
    out.push(OP_INFO);
    out.push(ST_OK);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&nodes.to_le_bytes());
    out.extend_from_slice(&workers.to_le_bytes());
}

/// Encodes a `STATS` response into `out` (cleared first).
pub fn encode_stats_ok(out: &mut Vec<u8>, epoch: u64, s: &StatsSnapshot) {
    out.clear();
    out.push(OP_STATS);
    out.push(ST_OK);
    out.extend_from_slice(&epoch.to_le_bytes());
    out.extend_from_slice(&s.workers.to_le_bytes());
    for v in [
        s.queries,
        s.delivered,
        s.traced,
        s.protocol_errors,
        s.move_batches,
        s.moved_nodes,
        s.chaos_batches,
        s.latency_count,
    ] {
        out.extend_from_slice(&v.to_le_bytes());
    }
    for v in [s.latency_p50, s.latency_p95, s.latency_p99] {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out.extend_from_slice(&(s.hops_hist.len() as u32).to_le_bytes());
    for &b in &s.hops_hist {
        out.extend_from_slice(&b.to_le_bytes());
    }
}

/// Encodes a named protocol-error response into `out` (cleared
/// first): the tag it answers (0 when the request never decoded), the
/// error's wire code, its context word, and its family name. All
/// appends — no allocation, so even the error path stays reusable.
pub fn encode_error(out: &mut Vec<u8>, tag: u8, err: ProtocolError) {
    out.clear();
    out.push(tag);
    out.push(ST_ERR);
    out.push(err.kind.code());
    out.extend_from_slice(&err.context.to_le_bytes());
    out.extend_from_slice(err.kind.name().as_bytes());
}

/// A decoded `QUERY` response.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Epoch the answer was computed against.
    pub epoch: u64,
    /// Terminal route status.
    pub outcome: RouteOutcome,
    /// Hops walked.
    pub hops: u32,
    /// Euclidean path length.
    pub length: f64,
    /// Perimeter-phase entries.
    pub perimeter: u32,
    /// Backup-phase entries.
    pub backup: u32,
    /// The hop trace, when requested with [`FLAG_TRACE`].
    pub path: Option<Vec<NodeId>>,
}

impl QueryReply {
    /// True when the query's packet reached its destination.
    pub fn delivered(&self) -> bool {
        self.outcome == RouteOutcome::Delivered
    }
}

/// A decoded `STATS` response.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsReply {
    /// Epoch at aggregation time.
    pub epoch: u64,
    /// The aggregated counters.
    pub stats: StatsSnapshot,
}

/// One decoded response (client side; owns its data).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful `QUERY`.
    Query(QueryReply),
    /// Successful `MOVE`.
    Move {
        /// The epoch the batch published.
        epoch: u64,
        /// Nodes moved.
        applied: u32,
    },
    /// Successful `CHAOS`.
    Chaos {
        /// The epoch the chaos batch published.
        epoch: u64,
        /// Recipe clauses applied.
        clauses: u32,
    },
    /// Successful `STATS`.
    Stats(StatsReply),
    /// Successful `SHUTDOWN`.
    Shutdown {
        /// Epoch at shutdown.
        epoch: u64,
    },
    /// Successful `INFO`.
    Info {
        /// Current epoch.
        epoch: u64,
        /// Topology node count.
        nodes: u32,
        /// Server worker count.
        workers: u32,
    },
    /// A named protocol error from the server.
    Error {
        /// The tag of the request that failed (0 if it never decoded).
        tag: u8,
        /// The error, reconstructed from its wire code.
        error: ProtocolError,
        /// The family name as sent by the server.
        name: String,
    },
}

/// Decodes one response payload (client side — owned, cold path).
pub fn decode_response(payload: &[u8]) -> Result<Response, ProtocolError> {
    let mut cur = Cur::new(payload);
    let tag = cur.u8()?;
    let status = cur.u8()?;
    if status == ST_ERR {
        let code = cur.u8()?;
        let context = cur.u64()?;
        let name = String::from_utf8_lossy(cur.rest()).into_owned();
        return Ok(Response::Error {
            tag,
            error: ProtocolError::new(ProtocolErrorKind::from_code(code), context),
            name,
        });
    }
    if status != ST_OK {
        return Err(ProtocolError::new(
            ProtocolErrorKind::BadResponse,
            status as u64,
        ));
    }
    match tag {
        OP_QUERY => {
            let epoch = cur.u64()?;
            let code = cur.u8()?;
            let stuck = cur.u32()?;
            let hops = cur.u32()?;
            let length = cur.f64()?;
            let perimeter = cur.u32()?;
            let backup = cur.u32()?;
            let traced = cur.u8()?;
            let path = if traced != 0 {
                let len = cur.u32()? as usize;
                if len > MAX_FRAME / 4 {
                    return Err(ProtocolError::new(ProtocolErrorKind::Oversized, len as u64));
                }
                let mut path = Vec::with_capacity(len);
                for _ in 0..len {
                    path.push(NodeId(cur.u32()?));
                }
                Some(path)
            } else {
                None
            };
            cur.done()?;
            Ok(Response::Query(QueryReply {
                epoch,
                outcome: outcome_from_code(code, stuck)?,
                hops,
                length,
                perimeter,
                backup,
                path,
            }))
        }
        OP_MOVE => {
            let epoch = cur.u64()?;
            let applied = cur.u32()?;
            cur.done()?;
            Ok(Response::Move { epoch, applied })
        }
        OP_CHAOS => {
            let epoch = cur.u64()?;
            let clauses = cur.u32()?;
            cur.done()?;
            Ok(Response::Chaos { epoch, clauses })
        }
        OP_STATS => {
            let epoch = cur.u64()?;
            let workers = cur.u32()?;
            let mut fixed = [0u64; 8];
            for slot in &mut fixed {
                *slot = cur.u64()?;
            }
            let [queries, delivered, traced, protocol_errors, move_batches, moved_nodes, chaos_batches, latency_count] =
                fixed;
            let latency_p50 = cur.f64()?;
            let latency_p95 = cur.f64()?;
            let latency_p99 = cur.f64()?;
            let hist_len = cur.u32()? as usize;
            if hist_len > MAX_FRAME / 8 {
                return Err(ProtocolError::new(
                    ProtocolErrorKind::Oversized,
                    hist_len as u64,
                ));
            }
            let mut hops_hist = Vec::with_capacity(hist_len);
            for _ in 0..hist_len {
                hops_hist.push(cur.u64()?);
            }
            cur.done()?;
            Ok(Response::Stats(StatsReply {
                epoch,
                stats: StatsSnapshot {
                    workers,
                    queries,
                    delivered,
                    traced,
                    protocol_errors,
                    move_batches,
                    moved_nodes,
                    chaos_batches,
                    latency_count,
                    latency_p50,
                    latency_p95,
                    latency_p99,
                    hops_hist,
                },
            }))
        }
        OP_SHUTDOWN => {
            let epoch = cur.u64()?;
            cur.done()?;
            Ok(Response::Shutdown { epoch })
        }
        OP_INFO => {
            let epoch = cur.u64()?;
            let nodes = cur.u32()?;
            let workers = cur.u32()?;
            cur.done()?;
            Ok(Response::Info {
                epoch,
                nodes,
                workers,
            })
        }
        other => Err(ProtocolError::new(
            ProtocolErrorKind::BadResponse,
            other as u64,
        )),
    }
}

/// Writes one frame (length header + payload).
pub fn write_frame(w: &mut impl std::io::Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Incremental frame parser over a byte-stream transport. Bytes arrive
/// via [`FrameReader::extend`] in whatever chunks the socket yields;
/// [`FrameReader::next_frame`] hands back each complete frame's payload.
/// Robust to partial reads (a timeout mid-frame just means more bytes
/// later) and refuses oversized length headers before buffering toward
/// them.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
    start: usize,
}

impl FrameReader {
    /// An empty reader.
    pub fn new() -> FrameReader {
        FrameReader::default()
    }

    /// Appends freshly-read bytes, compacting consumed space first so
    /// the buffer's footprint tracks the in-flight data, not the
    /// connection's history.
    pub fn extend(&mut self, bytes: &[u8]) {
        if self.start > 0 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// The next complete frame's payload, or `None` until more bytes
    /// arrive. An oversized length header is a named protocol error —
    /// the connection is poisoned (framing can no longer be trusted)
    /// and the caller should close it after reporting.
    pub fn next_frame(&mut self) -> Result<Option<&[u8]>, ProtocolError> {
        let pending = self.buf.get(self.start..).unwrap_or(&[]);
        let Some(header) = pending.get(..4) else {
            return Ok(None);
        };
        let mut raw = [0u8; 4];
        raw.copy_from_slice(header);
        let len = u32::from_le_bytes(raw) as usize;
        if len > MAX_FRAME {
            return Err(ProtocolError::new(ProtocolErrorKind::Oversized, len as u64));
        }
        let Some(payload) = pending.get(4..4 + len) else {
            return Ok(None);
        };
        self.start += 4 + len;
        Ok(Some(payload))
    }

    /// Bytes buffered but not yet consumed (diagnostics).
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_request_roundtrips() {
        let mut out = Vec::new();
        encode_query(&mut out, 7, 942, 0, true);
        match decode_request(&out) {
            Ok(Request::Query {
                src,
                dst,
                scheme,
                trace,
            }) => {
                assert_eq!((src, dst, scheme, trace), (7, 942, 0, true));
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn move_request_roundtrips_entries() {
        let moves = [(3u32, 1.5f64, -2.5f64), (9, 0.0, 100.25)];
        let mut out = Vec::new();
        encode_move(&mut out, &moves);
        match decode_request(&out) {
            Ok(Request::Move(batch)) => {
                assert_eq!(batch.len(), 2);
                let got: Vec<_> = batch.iter().collect();
                assert_eq!(got, moves);
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn chaos_request_roundtrips_spec() {
        let mut out = Vec::new();
        encode_chaos(&mut out, 5, 99, "region:r=0.15@round5");
        match decode_request(&out) {
            Ok(Request::Chaos { round, seed, spec }) => {
                assert_eq!((round, seed, spec), (5, 99, "region:r=0.15@round5"));
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn truncated_and_trailing_payloads_are_named_errors() {
        let mut out = Vec::new();
        encode_query(&mut out, 1, 2, 0, false);
        for cut in 0..out.len() {
            let err = decode_request(&out[..cut]).expect_err("prefix must fail");
            assert_eq!(err.kind, ProtocolErrorKind::Truncated, "cut={cut}");
        }
        out.push(0xAB);
        let err = decode_request(&out).expect_err("trailing byte must fail");
        assert_eq!(err.kind, ProtocolErrorKind::TrailingBytes);
    }

    #[test]
    fn unknown_opcode_is_a_named_error() {
        let err = decode_request(&[0x7F]).expect_err("unknown opcode");
        assert_eq!(err.kind, ProtocolErrorKind::UnknownOpcode);
        assert_eq!(err.context, 0x7F);
    }

    #[test]
    fn query_response_roundtrips_with_and_without_trace() {
        let a = AnswerWire {
            epoch: 12,
            outcome: RouteOutcome::Delivered,
            hops: 4,
            length: 61.25,
            perimeter: 1,
            backup: 0,
        };
        let path = [NodeId(1), NodeId(5), NodeId(9)];
        let mut out = Vec::new();
        for trace in [Some(&path[..]), None] {
            encode_query_ok(&mut out, &a, trace);
            match decode_response(&out) {
                Ok(Response::Query(r)) => {
                    assert_eq!(r.epoch, 12);
                    assert_eq!(r.outcome, RouteOutcome::Delivered);
                    assert_eq!(r.hops, 4);
                    assert_eq!(r.length, 61.25);
                    assert_eq!(r.path.as_deref(), trace);
                }
                other => panic!("bad decode: {other:?}"),
            }
        }
    }

    #[test]
    fn stuck_outcome_carries_the_node() {
        let a = AnswerWire {
            epoch: 1,
            outcome: RouteOutcome::Stuck(NodeId(77)),
            hops: 9,
            length: 130.0,
            perimeter: 2,
            backup: 1,
        };
        let mut out = Vec::new();
        encode_query_ok(&mut out, &a, None);
        match decode_response(&out) {
            Ok(Response::Query(r)) => assert_eq!(r.outcome, RouteOutcome::Stuck(NodeId(77))),
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn error_response_roundtrips_kind_context_and_name() {
        let mut out = Vec::new();
        encode_error(
            &mut out,
            OP_QUERY,
            ProtocolError::new(ProtocolErrorKind::BadNodeId, 10_001),
        );
        match decode_response(&out) {
            Ok(Response::Error { tag, error, name }) => {
                assert_eq!(tag, OP_QUERY);
                assert_eq!(error.kind, ProtocolErrorKind::BadNodeId);
                assert_eq!(error.context, 10_001);
                assert_eq!(name, "bad-node-id");
            }
            other => panic!("bad decode: {other:?}"),
        }
    }

    #[test]
    fn frame_reader_reassembles_split_frames() {
        let mut wire = Vec::new();
        for payload in [&b"abc"[..], &b""[..], &b"defgh"[..]] {
            write_frame(&mut wire, payload).unwrap();
        }
        let mut reader = FrameReader::new();
        let mut got: Vec<Vec<u8>> = Vec::new();
        // Feed one byte at a time: every frame must still come out whole.
        for &b in &wire {
            reader.extend(&[b]);
            while let Some(frame) = reader.next_frame().unwrap() {
                got.push(frame.to_vec());
            }
        }
        assert_eq!(got, vec![b"abc".to_vec(), b"".to_vec(), b"defgh".to_vec()]);
        assert_eq!(reader.pending(), 0);
    }

    #[test]
    fn frame_reader_refuses_oversized_headers() {
        let mut reader = FrameReader::new();
        reader.extend(&(MAX_FRAME as u32 + 1).to_le_bytes());
        let err = reader.next_frame().expect_err("oversized header");
        assert_eq!(err.kind, ProtocolErrorKind::Oversized);
    }

    #[test]
    fn error_kinds_roundtrip_their_codes() {
        for kind in [
            ProtocolErrorKind::Truncated,
            ProtocolErrorKind::Oversized,
            ProtocolErrorKind::UnknownOpcode,
            ProtocolErrorKind::BadScheme,
            ProtocolErrorKind::BadNodeId,
            ProtocolErrorKind::BadUtf8,
            ProtocolErrorKind::BadSpec,
            ProtocolErrorKind::TrailingBytes,
            ProtocolErrorKind::BadResponse,
            ProtocolErrorKind::BadCoordinate,
        ] {
            assert_eq!(ProtocolErrorKind::from_code(kind.code()), kind);
            assert!(!kind.name().is_empty());
        }
    }
}
