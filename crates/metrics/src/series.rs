//! Figure series: one metric curve per routing scheme.

use crate::Summary;

/// One curve of a figure: `(x, y)` points, x ascending by construction
/// of the sweep (node count in the paper's figures).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Series {
    /// Curve label (scheme name: "GF", "LGF", "SLGF", "SLGF2").
    pub label: String,
    /// The `(x, y)` points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Empty series with a label.
    pub fn new(label: impl Into<String>) -> Series {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// The y value at a given x, if present (exact match).
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|(px, _)| *px == x).map(|&(_, y)| y)
    }

    /// Mean of the y values.
    pub fn mean_y(&self) -> f64 {
        Summary::of(&self.points.iter().map(|&(_, y)| y).collect::<Vec<_>>()).mean
    }
}

/// A complete figure: several series over a shared x axis.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Figure {
    /// Figure title ("Fig. 6(a) average hops, IA model").
    pub title: String,
    /// X-axis label ("nodes").
    pub x_label: String,
    /// Y-axis label ("hops", "meters").
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Empty figure with labeling.
    pub fn new(
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Figure {
        Figure {
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
        }
    }

    /// Adds a curve.
    pub fn push_series(&mut self, series: Series) {
        self.series.push(series);
    }

    /// Finds a curve by label.
    pub fn series_by_label(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// The sorted union of all x values across series.
    pub fn x_values(&self) -> Vec<f64> {
        let mut xs: Vec<f64> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(f64::total_cmp);
        xs.dedup();
        xs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_push_and_lookup() {
        let mut s = Series::new("SLGF2");
        s.push(400.0, 11.5);
        s.push(450.0, 10.2);
        assert_eq!(s.y_at(450.0), Some(10.2));
        assert_eq!(s.y_at(500.0), None);
        assert!((s.mean_y() - 10.85).abs() < 1e-12);
    }

    #[test]
    fn figure_collects_x_union() {
        let mut f = Figure::new("t", "nodes", "hops");
        let mut a = Series::new("A");
        a.push(400.0, 1.0);
        a.push(500.0, 2.0);
        let mut b = Series::new("B");
        b.push(450.0, 3.0);
        b.push(400.0, 4.0);
        f.push_series(a);
        f.push_series(b);
        assert_eq!(f.x_values(), vec![400.0, 450.0, 500.0]);
        assert_eq!(f.series_by_label("B").unwrap().y_at(450.0), Some(3.0));
        assert!(f.series_by_label("C").is_none());
    }
}
