//! A8 / A12 — the recovery-scheme family on one hard FA instance.
//!
//! Prints hops/delivery for every scheme (paper set + GFG + SLGF2-F) on
//! a forbidden-area network, then times a single route of each recovery
//! flavor — the per-packet cost the delivery guarantees are bought with.
//!
//! Full-scale figures: `repro-figures -- a8 a12`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_experiments::{random_connected_pair, PreparedNetwork, Scheme};
use sp_net::{DeploymentConfig, FaModel, Network};
use std::hint::black_box;

const ALL: [Scheme; 8] = [
    Scheme::Gf,
    Scheme::Lgf,
    Scheme::Slgf,
    Scheme::Slgf2,
    Scheme::Slgf2NoSuperseding,
    Scheme::Slgf2NoBackup,
    Scheme::Gfg,
    Scheme::Slgf2Face,
];

fn recovery_benches(c: &mut Criterion) {
    let cfg = DeploymentConfig::paper_default(550);
    let fa = FaModel {
        obstacle_count: 5,
        min_size_radii: 2.0,
        max_size_radii: 4.0,
    };
    let obstacles = fa.generate_obstacles(&cfg, 13);
    let net = Network::from_positions(
        cfg.deploy_with_obstacles(&obstacles, 13),
        cfg.radius,
        cfg.area,
    );
    let prepared = PreparedNetwork::new(net);
    let mut rng = StdRng::seed_from_u64(31);
    let (s, d) = random_connected_pair(&prepared.net, &mut rng).expect("connected");

    eprintln!("scheme      delivered  hops  perimeter");
    for scheme in ALL {
        let r = prepared.route(scheme, s, d);
        eprintln!(
            "{:<11} {:<9} {:>5} {:>6}",
            scheme.name(),
            r.delivered(),
            r.hops(),
            r.perimeter_entries
        );
    }

    let mut group = c.benchmark_group("recovery_route_fa550");
    for scheme in ALL {
        group.bench_function(BenchmarkId::new("route", scheme.name()), |b| {
            b.iter(|| black_box(prepared.route(scheme, s, d)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = recovery_benches
}
criterion_main!(benches);
