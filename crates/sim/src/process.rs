//! The per-node state-machine trait and its execution context.

use sp_geom::Point;
use sp_net::{Network, NodeId};

/// A local protocol instance running on one node.
///
/// Implementations see only local information: their own id/position,
/// their neighbor list, and the messages delivered this round — the
/// "fully-distributed manner" the paper's §1 requires of all schemes.
///
/// Inboxes hand out messages **by reference**: a broadcast is stored
/// once in the engine's per-round arena and every receiver observes the
/// same `&Msg`, so delivery never clones per edge. Processes that need
/// to retain a message clone it explicitly.
pub trait NodeProcess {
    /// The message type exchanged between neighbors.
    type Msg: Clone;

    /// Called once before the first round; typically seeds initial
    /// broadcasts (e.g. the initial safe-status announcements of
    /// Algo. 2 step 1).
    fn on_init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// Called every round with the messages delivered this round
    /// (sent by neighbors in the previous round), tagged by sender.
    fn on_round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(NodeId, &Self::Msg)]);

    /// Called when a neighbor is killed by failure injection. The default
    /// does nothing; re-labeling protocols react by re-evaluating local
    /// state.
    fn on_neighbor_failed(&mut self, ctx: &mut Ctx<'_, Self::Msg>, failed: NodeId) {
        let _ = (ctx, failed);
    }

    /// Called on a node when chaos injection revives it (flapping). The
    /// default does nothing; protocols typically reset local state and
    /// re-announce so neighbors re-learn them.
    fn on_rejoin(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        let _ = ctx;
    }

    /// Called on live neighbors of a node that just rejoined. The
    /// default does nothing; protocols typically re-announce so the
    /// rejoined node rebuilds its neighbor view.
    fn on_neighbor_recovered(&mut self, ctx: &mut Ctx<'_, Self::Msg>, recovered: NodeId) {
        let _ = (ctx, recovered);
    }
}

/// What a [`NodeProcess`] may observe and do during one callback.
///
/// Outgoing messages are buffered and delivered at the start of the next
/// round — classic synchronous semantics.
pub struct Ctx<'a, M> {
    pub(crate) id: NodeId,
    pub(crate) net: &'a Network,
    pub(crate) alive: &'a [bool],
    pub(crate) outbox: Vec<(Option<NodeId>, M)>,
}

impl<'a, M> Ctx<'a, M> {
    /// The node this callback runs on.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's location.
    pub fn position(&self) -> Point {
        self.net.position(self.id)
    }

    /// Location of any node — used for *neighbor* positions, which
    /// geographic routing assumes are known via the hello protocol.
    pub fn position_of(&self, v: NodeId) -> Point {
        self.net.position(v)
    }

    /// Live neighbors of this node (failed nodes excluded, matching what
    /// a hello protocol would observe).
    pub fn neighbors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.net
            .neighbors(self.id)
            .iter()
            .copied()
            .filter(|v| self.alive[v.index()])
    }

    /// Number of live neighbors.
    pub fn degree(&self) -> usize {
        self.neighbors().count()
    }

    /// Queues a broadcast to all live neighbors (one transmission).
    ///
    /// The engine stores the message once and delivers it to every
    /// neighbor by shared handle, so a broadcast costs one buffered
    /// message regardless of degree.
    pub fn broadcast(&mut self, msg: M) {
        self.outbox.push((None, msg));
    }

    /// Queues a unicast to one neighbor.
    ///
    /// Sends to dead or non-adjacent targets are dropped by the engine
    /// (the radio reaches no one), still costing one transmission.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((Some(to), msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn tiny_net() -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(50.0, 50.0));
        Network::from_positions(
            vec![
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(40.0, 40.0),
            ],
            15.0,
            area,
        )
    }

    #[test]
    fn ctx_filters_dead_neighbors() {
        let net = tiny_net();
        let alive = vec![true, false, true];
        let ctx: Ctx<'_, ()> = Ctx {
            id: NodeId(0),
            net: &net,
            alive: &alive,
            outbox: Vec::new(),
        };
        assert_eq!(ctx.degree(), 0, "only neighbor n1 is dead");
        assert_eq!(ctx.position(), Point::new(0.0, 0.0));
        assert_eq!(ctx.position_of(NodeId(2)), Point::new(40.0, 40.0));
    }

    #[test]
    fn outbox_accumulates() {
        let net = tiny_net();
        let alive = vec![true, true, true];
        let mut ctx: Ctx<'_, u32> = Ctx {
            id: NodeId(0),
            net: &net,
            alive: &alive,
            outbox: Vec::new(),
        };
        ctx.broadcast(7);
        ctx.send(NodeId(1), 8);
        assert_eq!(ctx.outbox.len(), 2);
        assert_eq!(ctx.outbox[0], (None, 7));
        assert_eq!(ctx.outbox[1], (Some(NodeId(1)), 8));
    }
}
