//! Fig. 6 — average hops of GF/LGF/SLGF/SLGF2 under IA and FA.
//!
//! Prints the regenerated rows from a reduced sweep, then times a
//! single route per scheme on one prepared 600-node network (the unit
//! of work the averages are made of).
//!
//! Full-scale: `cargo run -p sp-experiments --bin repro-figures -- 6a 6b`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_experiments::{
    figures, random_connected_pair, run_sweep, PreparedNetwork, Scenario, Scheme, SweepConfig,
};
use sp_metrics::render_text;
use sp_net::Network;
use std::hint::black_box;

fn fig6_benches(c: &mut Criterion) {
    for kind in [Scenario::Ia, Scenario::Fa] {
        let cfg = SweepConfig::quick(kind);
        let results = run_sweep(&cfg, &Scheme::PAPER_SET);
        eprintln!("{}", render_text(&figures::fig6(&results)));
    }

    // Route timing on a prepared network (IA, n=600).
    let cfg = SweepConfig::quick(Scenario::Ia);
    let dc = cfg.deployment_config(600);
    let net = Network::from_positions(cfg.deployment.deploy(&dc, 42), dc.radius, dc.area);
    let prepared = PreparedNetwork::new(net);
    let mut rng = StdRng::seed_from_u64(7);
    let (s, d) = random_connected_pair(&prepared.net, &mut rng).expect("connected pair");

    let mut group = c.benchmark_group("fig6_route");
    for scheme in Scheme::PAPER_SET {
        group.bench_function(BenchmarkId::new("route_n600", scheme.name()), |b| {
            b.iter(|| black_box(prepared.route(scheme, s, d)));
        });
    }
    group.finish();
}

criterion_group!(benches, fig6_benches);
criterion_main!(benches);
