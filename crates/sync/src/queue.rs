//! The chunked atomic-cursor work queue.
//!
//! Every threaded scan in the workspace has the same shape: a list of
//! independent work units, worker threads that claim ascending ranges
//! of them off one shared [`AtomicUsize`] cursor (dynamic load
//! balancing — a worker stuck behind a heavy unit never strands the
//! rest of the list), and per-worker output buffers merged back **in
//! claim-index order** so the threaded result is bit-identical to the
//! serial one. [`WorkQueue`] is that shape, once.
//!
//! The claim protocol (`fetch_add` hands each chunk index to exactly
//! one worker; the merge sees every chunk exactly once) is
//! exhaustively model-checked across all 2–3-thread schedules by the
//! [`crate::check`] interleaving explorer — see the crate's
//! `interleavings` test suite.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A chunked atomic-cursor work queue over indexed work units.
///
/// `chunk` is the number of consecutive indices one cursor claim hands
/// a worker: large enough that the cursor stays cold, small enough
/// that stragglers rebalance. Chunking only changes *claim*
/// granularity — output order is always index order, identical to
/// serial execution.
///
/// ```
/// use sp_sync::WorkQueue;
///
/// let squares = WorkQueue::new().run(4, 10, |i| i * i);
/// assert_eq!(squares, (0..10).map(|i| i * i).collect::<Vec<_>>());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkQueue {
    chunk: usize,
}

impl Default for WorkQueue {
    fn default() -> WorkQueue {
        WorkQueue::new()
    }
}

impl WorkQueue {
    /// A queue claiming one index per cursor fetch — the right
    /// granularity when each unit is already coarse (a grid row band,
    /// a sweep instance, a frontier chunk).
    pub const fn new() -> WorkQueue {
        WorkQueue { chunk: 1 }
    }

    /// A queue claiming `chunk` consecutive indices per cursor fetch —
    /// for fine-grained units (individual flows, movers) where a
    /// per-unit fetch would contend.
    ///
    /// # Panics
    ///
    /// Panics if `chunk` is zero.
    // sp-analyze: allow(panic, construction-time parameter validation, documented above)
    pub const fn chunked(chunk: usize) -> WorkQueue {
        assert!(chunk >= 1, "work-queue chunk size must be at least 1");
        WorkQueue { chunk }
    }

    /// Indices one cursor claim covers.
    pub const fn chunk_size(&self) -> usize {
        self.chunk
    }

    /// Runs `work` over every index in `0..count` on up to `threads`
    /// workers, returning the outputs **in index order** — the exact
    /// vector `(0..count).map(work).collect()` produces.
    ///
    /// `threads` is clamped to the number of chunks; `threads <= 1`
    /// (or a single chunk) runs inline without spawning.
    pub fn run<T, F>(&self, threads: usize, count: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_with(threads, count, || (), move |_, i| work(i))
    }

    /// [`run`](Self::run) with worker-local scratch state: each worker
    /// (and the serial path) calls `init` once and threads the state
    /// through every unit it claims — how a routing worker reuses one
    /// warm `RouteBuffer` across its whole share of a flow batch.
    ///
    /// Output order is still index order: state affects only *how* a
    /// unit computes, never *where* its output lands, so implementors
    /// keep the bit-identity guarantee as long as `work` is
    /// deterministic given a warmed-up state (the workspace parity
    /// tests enforce exactly that).
    pub fn run_with<S, T, G, F>(&self, threads: usize, count: usize, init: G, work: F) -> Vec<T>
    where
        T: Send,
        G: Fn() -> S + Sync,
        F: Fn(&mut S, usize) -> T + Sync,
    {
        let chunks = count.div_ceil(self.chunk);
        let workers = threads.clamp(1, chunks.max(1));
        if workers <= 1 {
            let mut state = init();
            return (0..count).map(|i| work(&mut state, i)).collect();
        }

        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<Vec<T>>> = (0..chunks).map(|_| None).collect();
        // sp-analyze: allow(concurrency, this IS the one blessed scope+cursor implementation)
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut state = init();
                        let mut mine: Vec<(usize, Vec<T>)> = Vec::new();
                        loop {
                            let c = cursor.fetch_add(1, Ordering::Relaxed);
                            if c >= chunks {
                                break;
                            }
                            let lo = c * self.chunk;
                            let hi = (lo + self.chunk).min(count);
                            let mut out = Vec::with_capacity(hi - lo);
                            for i in lo..hi {
                                out.push(work(&mut state, i));
                            }
                            mine.push((c, out));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                // sp-analyze: allow(panic, propagate a worker panic instead of losing output)
                for (c, out) in h.join().expect("work-queue worker panicked") {
                    slots[c] = Some(out);
                }
            }
        });
        slots
            .into_iter()
            .flat_map(|chunk| {
                // sp-analyze: allow(panic, the cursor hands every chunk index to exactly one worker — model-checked in check::tests)
                chunk.expect("every chunk index was claimed and produced output")
            })
            .collect()
    }

    /// Distributes *owned* work items: each item is claimed by exactly
    /// one worker, moved out, and mapped through `work`; outputs come
    /// back in item order.
    ///
    /// This is the entry point for work that cannot be expressed as a
    /// shared-`&self` scan — e.g. pre-partitioned disjoint `&mut`
    /// slices of a node array (the simulation engine's frontier
    /// chunks). Items are expected to be coarse, so claims are always
    /// one item per fetch regardless of [`chunked`](Self::chunked).
    ///
    /// `threads <= 1` (or a single item) consumes the items inline
    /// without spawning.
    pub fn run_owned<I, T, F>(&self, threads: usize, items: Vec<I>, work: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(I) -> T + Sync,
    {
        let count = items.len();
        let workers = threads.clamp(1, count.max(1));
        if workers <= 1 {
            return items.into_iter().map(work).collect();
        }

        // Each slot is locked exactly once, by the worker whose cursor
        // fetch returned its index; the mutex only exists to move the
        // item out under a shared reference.
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);
        let mut outs: Vec<Option<T>> = (0..count).map(|_| None).collect();
        // sp-analyze: allow(concurrency, this IS the one blessed scope+cursor implementation)
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut mine: Vec<(usize, T)> = Vec::new();
                        loop {
                            let k = cursor.fetch_add(1, Ordering::Relaxed);
                            if k >= count {
                                break;
                            }
                            let item = slots[k]
                                .lock()
                                .expect("work-item slot poisoned") // sp-analyze: allow(panic, poisoning implies a sibling worker already panicked)
                                .take()
                                .expect("cursor hands each item index to exactly one worker"); // sp-analyze: allow(panic, claim uniqueness is model-checked in check::tests)
                            mine.push((k, work(item)));
                        }
                        mine
                    })
                })
                .collect();
            for h in handles {
                // sp-analyze: allow(panic, propagate a worker panic instead of losing output)
                for (k, out) in h.join().expect("work-queue worker panicked") {
                    outs[k] = Some(out);
                }
            }
        });
        outs.into_iter()
            .map(|out| {
                // sp-analyze: allow(panic, every item index is claimed exactly once — model-checked in check::tests)
                out.expect("every work item was claimed and produced output")
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_matches_serial_map_at_any_thread_count() {
        let serial: Vec<usize> = (0..257).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 3, 8, 64] {
            assert_eq!(
                WorkQueue::new().run(threads, 257, |i| i * 3 + 1),
                serial,
                "{threads} threads diverged"
            );
        }
    }

    #[test]
    fn chunked_claims_do_not_change_output_order() {
        let serial: Vec<usize> = (0..100).collect();
        for chunk in [1, 2, 7, 64, 1000] {
            for threads in [1, 2, 3, 8] {
                assert_eq!(WorkQueue::chunked(chunk).run(threads, 100, |i| i), serial);
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert_eq!(WorkQueue::new().run(8, 0, |i| i), Vec::<usize>::new());
        assert_eq!(
            WorkQueue::new().run_owned(8, Vec::<u32>::new(), |i| i),
            Vec::<u32>::new()
        );
    }

    #[test]
    fn worker_state_is_initialized_per_worker() {
        let inits = AtomicUsize::new(0);
        let out = WorkQueue::chunked(4).run_with(
            3,
            64,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                0usize
            },
            |seen, i| {
                *seen += 1;
                i
            },
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
        let spawned = inits.load(Ordering::Relaxed);
        assert!(
            (1..=3).contains(&spawned),
            "one init per live worker, got {spawned}"
        );
    }

    #[test]
    fn run_owned_moves_each_item_exactly_once() {
        let items: Vec<Vec<usize>> = (0..37).map(|i| vec![i; i % 5]).collect();
        let want: Vec<usize> = items.iter().map(Vec::len).collect();
        for threads in [1, 2, 3, 8] {
            let got = WorkQueue::new().run_owned(threads, items.clone(), |v| v.len());
            assert_eq!(got, want, "{threads} threads diverged");
        }
    }

    #[test]
    fn run_owned_supports_mutable_borrows_as_items() {
        let mut data = [1u64, 2, 3, 4, 5, 6, 7, 8];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(3).collect();
        let sums = WorkQueue::new().run_owned(2, chunks, |chunk| {
            for x in chunk.iter_mut() {
                *x *= 10;
            }
            chunk.iter().sum::<u64>()
        });
        assert_eq!(sums, vec![60, 150, 150]);
        assert_eq!(data, [10, 20, 30, 40, 50, 60, 70, 80]);
    }

    #[test]
    #[should_panic(expected = "chunk size must be at least 1")]
    fn zero_chunk_rejected() {
        let _ = WorkQueue::chunked(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            WorkQueue::new().run(2, 8, |i| {
                assert!(i != 5, "boom at {i}");
                i
            })
        });
        assert!(caught.is_err(), "a worker panic must not be swallowed");
    }
}
