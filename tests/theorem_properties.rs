//! Cross-crate property tests for the paper's theorems and the
//! equivalence of the centralized and distributed constructions.

use proptest::prelude::*;
use straightpath::core::{construct_distributed, zone_type};
use straightpath::net::Network as Net;
use straightpath::prelude::*;

fn build_net(n: usize, seed: u64) -> Net {
    let cfg = DeploymentConfig::paper_default(n);
    Net::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Definition 1 fixed-point invariants on random networks of random
    /// density (the backbone of Theorem 1).
    #[test]
    fn labeling_fixed_point_holds(seed in 0u64..10_000, n in 120usize..500) {
        let net = build_net(n, seed);
        let info = SafetyInfo::build(&net);
        prop_assert!(info.safety().check_fixed_point(&net).is_none());
    }

    /// Theorem 1 (safe direction): a route whose every intermediate node
    /// is safe toward the destination is never blocked — SLGF/SLGF2
    /// routes that stay in the Greedy phase always deliver.
    #[test]
    fn safe_only_routes_always_deliver(seed in 0u64..10_000) {
        let net = build_net(420, seed);
        let info = SafetyInfo::build(&net);
        let comp = net.largest_component();
        prop_assume!(comp.len() >= 10);
        let router = Slgf2Router::new(&info);
        for (a, b) in [(0, comp.len() - 1), (1, comp.len() / 2), (2, comp.len() - 3)] {
            let (s, d) = (comp[a], comp[b]);
            if s == d {
                continue;
            }
            let r = router.route(&net, s, d);
            if r.phases.iter().all(|&p| p == RoutePhase::Greedy) {
                prop_assert!(
                    r.delivered(),
                    "pure safe forwarding blocked at {:?} (path {:?})",
                    r.outcome,
                    r.path
                );
            }
        }
    }

    /// Theorem 1 (unsafe direction): type-i forwarding from a type-i
    /// unsafe node can only reach type-i unsafe nodes and terminates
    /// blocked (the greedy region is closed and finite).
    #[test]
    fn unsafe_quadrant_forwarding_always_blocks(seed in 0u64..10_000) {
        let net = build_net(300, seed);
        let info = SafetyInfo::build(&net);
        for u in net.node_ids() {
            for q in Quadrant::ALL {
                if info.is_safe(u, q) {
                    continue;
                }
                // Every forwarding-zone neighbor is itself unsafe …
                let pu = net.position(u);
                for &v in net.neighbors(u) {
                    if Quadrant::of(pu, net.position(v)) == Some(q) {
                        prop_assert!(
                            !info.is_safe(v, q),
                            "unsafe {u} has safe {q} successor {v}"
                        );
                    }
                }
                // … and the greedy region is finite: it never contains a
                // safe node.
                for w in info.greedy_region(&net, u, q) {
                    prop_assert!(!info.is_safe(w, q));
                }
            }
        }
    }

    /// The distributed Algorithm 2 reproduces the centralized
    /// information exactly (tuples, estimates, chain endpoints).
    #[test]
    fn distributed_equals_centralized(seed in 0u64..10_000, n in 100usize..300) {
        let net = build_net(n, seed);
        let run = construct_distributed(&net).expect("quiesces");
        let central = SafetyInfo::build(&net);
        for u in net.node_ids() {
            prop_assert_eq!(run.info.tuple(u), central.tuple(u));
            for q in Quadrant::ALL {
                match (run.info.estimate(u, q), central.estimate(u, q)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.rect, b.rect);
                        prop_assert_eq!(a.first_far, b.first_far);
                        prop_assert_eq!(a.last_far, b.last_far);
                    }
                    (a, b) => prop_assert!(false, "presence mismatch {a:?} {b:?}"),
                }
            }
        }
    }

    /// Routing is a pure function: identical inputs give identical
    /// traces for every scheme.
    #[test]
    fn routing_is_deterministic(seed in 0u64..10_000) {
        let net = build_net(350, seed);
        let info = SafetyInfo::build(&net);
        let gf = GfRouter::new(&net);
        let comp = net.largest_component();
        prop_assume!(comp.len() >= 2);
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        let lgf = LgfRouter::new();
        let slgf = SlgfRouter::new(&info);
        let slgf2 = Slgf2Router::new(&info);
        let routers: [&dyn Routing; 4] = [&gf, &lgf, &slgf, &slgf2];
        for r in routers {
            let a = r.route(&net, s, d);
            let b = r.route(&net, s, d);
            prop_assert_eq!(a.path, b.path, "{} not deterministic", r.name());
            prop_assert_eq!(a.outcome, b.outcome);
        }
    }

    /// Greedy-phase hops strictly shrink the distance to the destination
    /// for the whole LGF family (the request zone guarantees it).
    #[test]
    fn zone_hops_strictly_approach(seed in 0u64..10_000) {
        let net = build_net(400, seed);
        let info = SafetyInfo::build(&net);
        let comp = net.largest_component();
        prop_assume!(comp.len() >= 2);
        let (s, d) = (comp[comp.len() / 3], comp[2 * comp.len() / 3]);
        prop_assume!(s != d);
        let pd = net.position(d);
        for r in [
            LgfRouter::new().route(&net, s, d),
            SlgfRouter::new(&info).route(&net, s, d),
            Slgf2Router::new(&info).route(&net, s, d),
        ] {
            for (i, phase) in r.phases.iter().enumerate() {
                if *phase == RoutePhase::Greedy {
                    let before = net.position(r.path[i]).distance(pd);
                    let after = net.position(r.path[i + 1]).distance(pd);
                    prop_assert!(
                        after < before + 1e-9,
                        "greedy hop moved away from d at step {i}"
                    );
                }
            }
        }
    }

    /// Perimeter entries in the LGF family happen at nodes that are
    /// genuinely blocked in their request zone (no zone candidate).
    #[test]
    fn perimeter_entries_are_zone_blocked(seed in 0u64..10_000) {
        let net = build_net(300, seed);
        let comp = net.largest_component();
        prop_assume!(comp.len() >= 2);
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        let r = LgfRouter::new().route(&net, s, d);
        for (i, phase) in r.phases.iter().enumerate() {
            let first_of_episode =
                *phase == RoutePhase::Perimeter && (i == 0 || r.phases[i - 1] != RoutePhase::Perimeter);
            if first_of_episode {
                let u = r.path[i];
                if net.has_edge(u, d) {
                    continue;
                }
                let zone_empty =
                    straightpath::core::zone_candidates(&net, u, d).next().is_none();
                prop_assert!(
                    zone_empty,
                    "perimeter entered at {u} though its zone has candidates"
                );
            }
        }
        // Sanity use of zone_type to keep the import exercised.
        let _ = zone_type(&net, s, d);
    }
}

/// Theorem 2 flavor: every estimate `E_q(u)` spans from `u` to the far
/// corner assembled from its chain endpoints — x extent from the
/// x-axis-hugging chain, y extent from the y-axis-hugging one
/// (`DESIGN.md` §2 item 4).
#[test]
fn estimates_assemble_far_corner_from_chains() {
    for seed in [3u64, 17, 99] {
        let net = build_net(450, seed);
        let info = SafetyInfo::build(&net);
        for u in net.node_ids() {
            for q in Quadrant::ALL {
                let Some(est) = info.estimate(u, q) else {
                    continue;
                };
                assert!(est.rect.contains(net.position(u)));
                assert!(est.rect.contains(est.far_corner));
                let pf = net.position(est.first_far);
                let pl = net.position(est.last_far);
                match q {
                    Quadrant::I | Quadrant::III => {
                        assert_eq!(est.far_corner.x, pf.x, "{u} {q}");
                        assert_eq!(est.far_corner.y, pl.y, "{u} {q}");
                    }
                    Quadrant::II | Quadrant::IV => {
                        assert_eq!(est.far_corner.x, pl.x, "{u} {q}");
                        assert_eq!(est.far_corner.y, pf.y, "{u} {q}");
                    }
                }
            }
        }
    }
}

/// Theorem 2 soundness as a routing filter: a neighbor of the unsafe
/// node `u` that lies strictly inside `E_q(u)` and in `Q_q(u)` is
/// itself type-q unsafe — using it blocks, exactly as the theorem
/// states. (A safe node strictly inside the estimate would contradict
/// the "blocked iff any node inside E_i(u) is used" claim.)
#[test]
fn estimate_interiors_contain_no_safe_forwarding() {
    for seed in [7u64, 23, 61] {
        let net = build_net(400, seed);
        let info = SafetyInfo::build(&net);
        for u in net.node_ids() {
            let pu = net.position(u);
            for q in Quadrant::ALL {
                let Some(est) = info.estimate(u, q) else {
                    continue;
                };
                for &v in net.neighbors(u) {
                    let pv = net.position(v);
                    if Quadrant::of(pu, pv) == Some(q) && est.rect.contains_strict(pv) {
                        assert!(
                            !info.is_safe(v, q),
                            "safe node {v} strictly inside E_{q}({u}) = {}",
                            est.rect
                        );
                    }
                }
            }
        }
    }
}

/// The exact greedy-region box always contains the two-chain estimate,
/// and both contain `u` — the §6 accuracy relationship (A14) stated as
/// an invariant.
#[test]
fn exact_region_boxes_contain_estimates() {
    use straightpath::core::{SafetyMap, ShapeMap};
    for seed in [5u64, 41] {
        let net = build_net(350, seed);
        let safety = SafetyMap::label(&net);
        let est = ShapeMap::build(&net, &safety);
        let exact = ShapeMap::build_exact(&net, &safety);
        for u in net.node_ids() {
            for q in Quadrant::ALL {
                match (est.estimate(u, q), exact.estimate(u, q)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        assert!(b.rect.contains_rect(&a.rect), "at {u} {q}");
                        assert!(a.rect.contains(net.position(u)));
                    }
                    _ => panic!("estimate presence mismatch at {u} {q}"),
                }
            }
        }
    }
}
