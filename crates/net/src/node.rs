//! Node identifiers.

/// Dense, zero-based identifier of a node in a [`Network`](crate::Network).
///
/// Node ids double as indices into position and adjacency arrays, so they
/// are cheap to store in packets, visited sets and safety tuples. The id is
/// deliberately `u32`-backed: a million-node topology's edge arena holds
/// tens of millions of ids, and halving their width halves the bytes every
/// neighbor scan streams through cache (see the README's "Topology at
/// scale" section for the migration notes).
///
/// ```
/// use sp_net::NodeId;
/// let id = NodeId(7);
/// assert_eq!(id.index(), 7);
/// assert_eq!(id.to_string(), "n7");
/// let same = NodeId::new(7usize);
/// assert_eq!(id, same);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Builds an id from a dense `usize` index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX` — topologies are capped at
    /// 2³²−1 nodes by the id width.
    #[inline]
    pub fn new(index: usize) -> NodeId {
        assert!(
            index <= u32::MAX as usize,
            "node index {index} overflows u32"
        );
        NodeId(index as u32)
    }

    /// The underlying dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for NodeId {
    fn from(value: usize) -> Self {
        NodeId::new(value)
    }
}

impl From<NodeId> for usize {
    fn from(value: NodeId) -> Self {
        value.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let id: NodeId = 42usize.into();
        assert_eq!(id, NodeId(42));
        let back: usize = id.into();
        assert_eq!(back, 42);
        assert_eq!(id.index(), 42);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId(3), NodeId(3));
    }

    #[test]
    fn id_is_four_bytes() {
        // The whole point of the u32 backing: edge arenas at 10⁶ nodes
        // hold ~1.6 × 10⁷ ids, and each one is exactly four bytes.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<NodeId>>(), 8);
    }
}
