//! Hole navigation: the paper's FA scenario with a single large
//! forbidden area between source and destination. Renders an ASCII map
//! of the deployment, the hole, and the paths GF and SLGF2 take around
//! it — the detour-avoidance story of Fig. 1/Fig. 4.
//!
//! ```sh
//! cargo run --example hole_navigation
//! ```

use straightpath::geom::Circle;
use straightpath::prelude::*;

const COLS: usize = 72;
const ROWS: usize = 30;

fn main() {
    let cfg = DeploymentConfig::paper_default(650);
    // One big forbidden disk in the middle of the interest area.
    let hole = Obstacle::Circle(Circle::new(Point::new(100.0, 100.0), 38.0));
    let obstacles = vec![hole];
    let positions = cfg.deploy_with_obstacles(&obstacles, 77);
    let net = Network::from_positions(positions, cfg.radius, cfg.area);

    // Pick a west-side source and an east-side destination so the hole
    // sits squarely on the straight line.
    let src = nearest_node(&net, Point::new(30.0, 100.0));
    let dst = nearest_node(&net, Point::new(170.0, 100.0));
    println!(
        "routing {src} {} -> {dst} {} around a r=38m forbidden disk\n",
        net.position(src),
        net.position(dst)
    );

    let info = SafetyInfo::build(&net);
    let gf = GfRouter::new(&net);
    let slgf2 = Slgf2Router::new(&info);
    let slgf2f = Slgf2FaceRouter::new(&net, &info);

    let r_gf = gf.route(&net, src, dst);
    let r_s2 = slgf2.route(&net, src, dst);
    let r_f = slgf2f.route(&net, src, dst);
    let ideal = net.shortest_path(src, dst).expect("connected");

    let mut canvas = vec![vec![' '; COLS]; ROWS];
    // Hole interior.
    for (r, row) in canvas.iter_mut().enumerate() {
        for (c, cell) in row.iter_mut().enumerate() {
            let p = cell_to_point(&net, c, r);
            if obstacles.iter().any(|o| o.contains(p)) {
                *cell = '.';
            }
        }
    }
    stamp_path(&net, &mut canvas, &ideal.0, '-');
    stamp_path(&net, &mut canvas, &r_gf.path, 'g');
    stamp_path(&net, &mut canvas, &r_s2.path, 'S');
    stamp_path(&net, &mut canvas, &r_f.path, 'F');
    stamp(&net, &mut canvas, net.position(src), '@');
    stamp(&net, &mut canvas, net.position(dst), '$');

    for row in &canvas {
        println!("{}", row.iter().collect::<String>());
    }
    println!("\n@ source  $ destination  . forbidden area");
    println!("- Dijkstra ideal  g GF  S SLGF2  F SLGF2-F (overlaps shown by last writer)\n");

    println!(
        "{:<22} {:>5}  {:>9}  {:>10}",
        "scheme", "hops", "length", "perimeter entries"
    );
    println!(
        "{:<22} {:>5}  {:>8.1}m  {:>10}",
        "ideal (Dijkstra)",
        ideal.0.len() - 1,
        ideal.1,
        "-"
    );
    for (name, r) in [
        ("GF + BOUNDHOLE", &r_gf),
        ("SLGF2", &r_s2),
        ("SLGF2-F (face recovery)", &r_f),
    ] {
        println!(
            "{:<22} {:>5}  {:>8.1}m  {:>10}{}",
            name,
            r.hops(),
            r.length(&net),
            r.perimeter_entries,
            if r.delivered() { "" } else { "  [FAILED]" }
        );
    }
    // Stretch is only meaningful for delivered routes.
    for (name, r) in [("GF", &r_gf), ("SLGF2", &r_s2), ("SLGF2-F", &r_f)] {
        if r.delivered() {
            println!(
                "{name} path stretch vs ideal: {:.2}x",
                r.length(&net) / ideal.1
            );
        } else {
            println!(
                "{name} lost the packet after {} hops (a hole this large \
                 defeats its recovery phase; only full face routing is \
                 guaranteed here)",
                r.hops()
            );
        }
    }
}

fn nearest_node(net: &Network, target: Point) -> NodeId {
    net.node_ids()
        .min_by(|&a, &b| {
            net.position(a)
                .distance_sq(target)
                .total_cmp(&net.position(b).distance_sq(target))
        })
        .expect("non-empty network")
}

fn cell_to_point(net: &Network, col: usize, row: usize) -> Point {
    let area = net.area();
    Point::new(
        area.min().x + (col as f64 + 0.5) / COLS as f64 * area.width(),
        // Row 0 is the top of the map (max y).
        area.max().y - (row as f64 + 0.5) / ROWS as f64 * area.height(),
    )
}

fn stamp(net: &Network, canvas: &mut [Vec<char>], p: Point, ch: char) {
    let area = net.area();
    let c = ((p.x - area.min().x) / area.width() * COLS as f64) as usize;
    let r = ((area.max().y - p.y) / area.height() * ROWS as f64) as usize;
    canvas[r.min(ROWS - 1)][c.min(COLS - 1)] = ch;
}

fn stamp_path(net: &Network, canvas: &mut [Vec<char>], path: &[NodeId], ch: char) {
    // Stamp intermediate sample points along each hop so the path reads
    // as a line.
    for w in path.windows(2) {
        let a = net.position(w[0]);
        let b = net.position(w[1]);
        let steps = (a.distance(b) / 2.0).ceil() as usize + 1;
        for i in 0..=steps {
            let t = i as f64 / steps as f64;
            let p = Point::new(a.x + t * (b.x - a.x), a.y + t * (b.y - a.y));
            stamp(net, canvas, p, ch);
        }
    }
}
