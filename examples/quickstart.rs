//! Quickstart: deploy the paper's network, build the safety
//! information, and compare all four routing schemes on one
//! source/destination pair.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use straightpath::prelude::*;

fn main() {
    // The paper's experimental setup (§5): 600 nodes with a 20 m radio
    // in a 200 m × 200 m interest area.
    let cfg = DeploymentConfig::paper_default(600);
    let positions = cfg.deploy_uniform(2024);
    let net = Network::from_positions(positions, cfg.radius, cfg.area);
    println!(
        "network: {} nodes, {} edges, avg degree {:.1}",
        net.len(),
        net.edge_count(),
        net.avg_degree()
    );

    // Construct the information each scheme needs (§5 does this before
    // measuring routing): safety tuples + shape estimates for
    // SLGF/SLGF2, hole boundaries for GF.
    let info = SafetyInfo::build(&net);
    println!(
        "safety information stabilized in {} rounds; {} nodes have an unsafe type",
        info.rounds(),
        net.node_ids()
            .filter(|&u| !info.tuple(u).fully_safe())
            .count()
    );
    let gf = GfRouter::new(&net);
    println!("hole atlas: {} boundaries detected", gf.atlas().len());

    // Route between two far-apart nodes of the giant component.
    let comp = net.largest_component();
    let (src, dst) = (comp[0], comp[comp.len() - 1]);
    println!(
        "\nrouting {} -> {} (straight-line {:.1} m)\n",
        src,
        dst,
        net.position(src).distance(net.position(dst))
    );

    let reference = net
        .shortest_path(src, dst)
        .expect("connected pair has a shortest path");
    println!(
        "{:<8} {:>5} {:>9}  phases (greedy/backup/perimeter)",
        "scheme", "hops", "length"
    );
    println!(
        "{:<8} {:>5} {:>8.1}m  (Dijkstra reference)",
        "ideal",
        reference.0.len() - 1,
        reference.1
    );

    let lgf = LgfRouter::new();
    let slgf = SlgfRouter::new(&info);
    let slgf2 = Slgf2Router::new(&info);
    let schemes: [(&str, &dyn Routing); 4] = [
        ("GF", &gf),
        ("LGF", &lgf),
        ("SLGF", &slgf),
        ("SLGF2", &slgf2),
    ];
    for (name, router) in schemes {
        let r = router.route(&net, src, dst);
        let status = if r.delivered() { "" } else { " [FAILED]" };
        println!(
            "{:<8} {:>5} {:>8.1}m  {}/{}/{}{}",
            name,
            r.hops(),
            r.length(&net),
            r.hops_in_phase(RoutePhase::Greedy),
            r.hops_in_phase(RoutePhase::Backup),
            r.hops_in_phase(RoutePhase::Perimeter),
            status,
        );
    }

    // The SLGF2 walk, hop by hop, with safety tuples.
    println!(
        "\n{}",
        sp_core::explain_route(&net, &slgf2.route(&net, src, dst), Some(&info))
    );
}
