//! Network substrate for the straightpath WASN routing stack.
//!
//! The paper models a WASN as "a simple undirected graph `G = (V, E)` …
//! each \[edge\] indicates two nodes are within the communication range of
//! each other" with identical radii — a **unit disk graph** (UDG). This
//! crate builds such graphs and everything the routing layers need from
//! them:
//!
//! * [`deploy`] — the deployment models: §5's uniform (**IA**) and
//!   forbidden-area (**FA**) plus the structured clustered / corridor /
//!   city-block generators, all with seeded reproducible randomness;
//! * [`spatial`] — the uniform-grid [`SpatialIndex`] making UDG
//!   construction, planarization, and mobility re-snapshots
//!   `O(n · density)` instead of `O(n²)`; every [`Network`] carries one
//!   ([`Network::index`]). Bulk adjacency shards cell rows across
//!   threads above [`PARALLEL_NODE_THRESHOLD`] nodes (`SP_NET_THREADS`
//!   to pin) and supports `O(1)` incremental point moves;
//! * [`csr`] — the cache-dense [`CsrAdjacency`] edge arena every
//!   [`Network`] stores its topology in (one contiguous `u32` offset
//!   table + [`NodeId`] arena), the [`CsrPatch`] overlay that keeps
//!   incremental repair `O(1)` per move, and the [`NodeRemap`]
//!   produced by the construction-time spatial sort
//!   ([`Network::spatially_sorted`]);
//! * [`positions`] — the structure-of-arrays [`PositionTable`]
//!   (`xs`/`ys` slices) every [`SpatialIndex`] owns, so range scans
//!   stream two dense `f64` arrays;
//! * [`graph`] — the [`Network`] type: adjacency, BFS hop counts,
//!   Dijkstra reference paths, connectivity;
//! * [`planar`] — Gabriel / RNG planarization plus the CCW/CW pivots that
//!   face routing ("right-hand rule" \[2\]) is built on;
//! * [`edge_nodes`] — the interest-area edge detection that pins hull
//!   nodes safe in the labeling process of §3;
//! * [`radio`] — first-order radio energy model and interference
//!   accounting (the intro's "energy wasted in detours" and "less
//!   interference … when fewer nodes are involved" claims, quantified);
//! * [`mobility`] — random-waypoint motion for the node-mobility dynamic
//!   factor of §1 (information staleness, experiment A13).
//!
//! # Example
//!
//! ```
//! use sp_net::{deploy::DeploymentConfig, Network};
//!
//! let cfg = DeploymentConfig::paper_default(500);
//! let positions = cfg.deploy_uniform(42);
//! let net = Network::from_positions(positions, cfg.radius, cfg.area);
//! assert_eq!(net.len(), 500);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csr;
pub mod deploy;
pub mod edge_nodes;
pub mod graph;
pub mod mobility;
pub mod node;
pub mod planar;
pub mod positions;
pub mod radio;
pub mod spatial;

pub use csr::{CsrAdjacency, CsrPatch, NodeRemap};
pub use deploy::{
    CityBlockModel, ClusterModel, CorridorModel, DeploymentConfig, FaModel, Obstacle,
};
pub use edge_nodes::edge_node_ids;
pub use graph::{Network, TopologyFootprint, PARALLEL_REPAIR_THRESHOLD};
pub use mobility::RandomWaypoint;
pub use node::NodeId;
pub use planar::{PlanarGraph, Planarization};
pub use positions::PositionTable;
pub use radio::{interference_count, interference_set, EnergyLedger, RadioModel};
pub use spatial::{SpatialIndex, PARALLEL_NODE_THRESHOLD, THREADS_ENV};
