//! The routing schemes under evaluation and a prepared-network wrapper.

use sp_baselines::{GfRouter, GfgRouter, Slgf2FaceRouter};
use sp_core::{LgfRouter, RouteResult, Routing, SafetyInfo, SlgfRouter, Slgf2Router};
use sp_net::{Network, NodeId};

/// A scheme of the paper's figures, plus the ablation variants of
/// `DESIGN.md` (A3/A4) and the GFG face-routing extension (A8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// Greedy forwarding with BOUNDHOLE recovery (baseline \[5\]/\[6\]).
    Gf,
    /// Limited greedy forwarding, Algo. 1.
    Lgf,
    /// Safety-information LGF of \[7\].
    Slgf,
    /// The paper's contribution, Algo. 3.
    Slgf2,
    /// SLGF2 without the either-hand superseding rule (ablation A3).
    Slgf2NoSuperseding,
    /// SLGF2 without the backup-path phase (ablation A4).
    Slgf2NoBackup,
    /// Greedy-Face-Greedy with full planar face changes (Bose et al.
    /// \[2\]) — the guaranteed-delivery comparison of ablation A8.
    Gfg,
    /// SLGF2 with FACE-2 recovery instead of the untried sweep — the
    /// paper's §6 future-work direction (ablation A12).
    Slgf2Face,
}

impl Scheme {
    /// The four curves of every figure in the paper, in its order.
    pub const PAPER_SET: [Scheme; 4] = [Scheme::Gf, Scheme::Lgf, Scheme::Slgf, Scheme::Slgf2];

    /// The paper's curves plus the GFG face-routing baseline (A8).
    pub const EXTENDED_SET: [Scheme; 5] = [
        Scheme::Gf,
        Scheme::Lgf,
        Scheme::Slgf,
        Scheme::Slgf2,
        Scheme::Gfg,
    ];

    /// Display name (figure legend).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::Gf => "GF",
            Scheme::Lgf => "LGF",
            Scheme::Slgf => "SLGF",
            Scheme::Slgf2 => "SLGF2",
            Scheme::Slgf2NoSuperseding => "SLGF2-noEH",
            Scheme::Slgf2NoBackup => "SLGF2-noBP",
            Scheme::Gfg => "GFG",
            Scheme::Slgf2Face => "SLGF2-F",
        }
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated network with every precomputed structure the schemes
/// need: the safety information for SLGF/SLGF2 and the GF recovery
/// structures (hole atlas + planarization) — mirroring §5's "before we
/// test the routing performance … boundary information is constructed
/// for GF routings, and safety information and estimated shape
/// information are constructed for our SLGF and SLGF2 routing".
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    /// The unit disk graph.
    pub net: Network,
    /// Safety + shape information (centralized construction).
    pub info: SafetyInfo,
    /// The GF baseline with its recovery structures.
    pub gf: GfRouter,
    /// The GFG face-routing baseline (shares nothing with GF's atlas).
    pub gfg: GfgRouter,
}

impl PreparedNetwork {
    /// Builds everything for a deployed point set.
    pub fn new(net: Network) -> PreparedNetwork {
        let info = SafetyInfo::build(&net);
        let gf = GfRouter::new(&net);
        let gfg = GfgRouter::new(&net);
        PreparedNetwork { net, info, gf, gfg }
    }

    /// Routes one packet under the given scheme.
    pub fn route(&self, scheme: Scheme, src: NodeId, dst: NodeId) -> RouteResult {
        match scheme {
            Scheme::Gf => self.gf.route(&self.net, src, dst),
            Scheme::Lgf => LgfRouter::new().route(&self.net, src, dst),
            Scheme::Slgf => SlgfRouter::new(&self.info).route(&self.net, src, dst),
            Scheme::Slgf2 => Slgf2Router::new(&self.info).route(&self.net, src, dst),
            Scheme::Slgf2NoSuperseding => Slgf2Router::new(&self.info)
                .without_superseding()
                .route(&self.net, src, dst),
            Scheme::Slgf2NoBackup => Slgf2Router::new(&self.info)
                .without_backup()
                .route(&self.net, src, dst),
            Scheme::Gfg => self.gfg.route(&self.net, src, dst),
            Scheme::Slgf2Face => {
                Slgf2FaceRouter::with_face_router(&self.info, self.gfg.clone())
                    .route(&self.net, src, dst)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::deploy::DeploymentConfig;

    #[test]
    fn names_are_unique() {
        let all = [
            Scheme::Gf,
            Scheme::Lgf,
            Scheme::Slgf,
            Scheme::Slgf2,
            Scheme::Slgf2NoSuperseding,
            Scheme::Slgf2NoBackup,
            Scheme::Gfg,
            Scheme::Slgf2Face,
        ];
        let mut names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), all.len());
        assert_eq!(Scheme::PAPER_SET.len(), 4);
    }

    #[test]
    fn all_schemes_route_on_a_dense_network() {
        let cfg = DeploymentConfig::paper_default(500);
        let net = Network::from_positions(cfg.deploy_uniform(21), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        for scheme in [
            Scheme::Gf,
            Scheme::Lgf,
            Scheme::Slgf,
            Scheme::Slgf2,
            Scheme::Slgf2NoSuperseding,
            Scheme::Slgf2NoBackup,
            Scheme::Gfg,
            Scheme::Slgf2Face,
        ] {
            let r = prepared.route(scheme, s, d);
            assert_eq!(r.path.first(), Some(&s), "{scheme}");
            assert!(r.hops() > 0, "{scheme}");
        }
    }
}
