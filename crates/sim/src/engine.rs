//! The lock-step round scheduler.

use crate::{Ctx, FailurePlan, NodeProcess, RoundLog, SimStats};
use sp_net::{Network, NodeId};

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The protocol was still exchanging messages when the round budget
    /// ran out — usually a non-terminating protocol bug.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// The asynchronous engine delivered `limit` events without draining
    /// its queue.
    EventLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} deliveries")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Synchronous executor of one [`NodeProcess`] instance per network node.
///
/// Semantics per round:
/// 1. scheduled failures (if any) are applied and neighbors notified;
/// 2. every message buffered in the previous round is delivered;
/// 3. every live node with a non-empty inbox runs
///    [`NodeProcess::on_round`]; its outgoing messages are buffered for
///    the next round.
///
/// The run quiesces when no messages are in flight and no failures
/// remain scheduled.
pub struct Engine<'n, P: NodeProcess> {
    net: &'n Network,
    nodes: Vec<P>,
    alive: Vec<bool>,
    inboxes: Vec<Vec<(NodeId, P::Msg)>>,
    pending: Vec<(NodeId, Option<NodeId>, P::Msg)>,
    stats: SimStats,
    log: RoundLog,
    failures: FailurePlan,
    round: usize,
    initialized: bool,
}

impl<'n, P: NodeProcess> Engine<'n, P> {
    /// Creates one process per node with the given factory.
    pub fn new(net: &'n Network, mut make: impl FnMut(NodeId) -> P) -> Engine<'n, P> {
        let n = net.len();
        Engine {
            net,
            nodes: (0..n).map(|i| make(NodeId(i))).collect(),
            alive: vec![true; n],
            inboxes: vec![Vec::new(); n],
            pending: Vec::new(),
            stats: SimStats::default(),
            log: RoundLog::new(),
            failures: FailurePlan::new(),
            round: 0,
            initialized: false,
        }
    }

    /// Installs a failure plan (replacing any previous one). Rounds are
    /// counted from the first [`Engine::step`] after initialization.
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failures = plan;
    }

    /// Immutable access to the per-node processes.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The process running on one node.
    pub fn node(&self, u: NodeId) -> &P {
        &self.nodes[u.index()]
    }

    /// Whether a node is still alive.
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-round transmission trace.
    pub fn round_log(&self) -> &RoundLog {
        &self.log
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Kills a node immediately and notifies its live neighbors.
    pub fn kill_node(&mut self, victim: NodeId) {
        if !self.alive[victim.index()] {
            return;
        }
        self.alive[victim.index()] = false;
        self.inboxes[victim.index()].clear();
        // Drop in-flight messages from/to the victim.
        self.pending
            .retain(|(from, to, _)| *from != victim && *to != Some(victim));
        let neighbors: Vec<NodeId> = self.net.neighbors(victim).to_vec();
        for v in neighbors {
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[v.index()].on_neighbor_failed(&mut ctx, victim);
            let outbox = ctx.outbox;
            self.queue_outbox(v, outbox);
        }
    }

    fn queue_outbox(&mut self, from: NodeId, outbox: Vec<(Option<NodeId>, P::Msg)>) {
        for (to, msg) in outbox {
            match to {
                None => self.stats.broadcasts += 1,
                Some(_) => self.stats.unicasts += 1,
            }
            self.pending.push((from, to, msg));
        }
    }

    /// Runs [`NodeProcess::on_init`] on every live node. Called
    /// automatically by the run/step methods; calling it twice is a no-op.
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.nodes.len() {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Ctx {
                id: NodeId(i),
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[i].on_init(&mut ctx);
            let outbox = ctx.outbox;
            self.queue_outbox(NodeId(i), outbox);
        }
    }

    /// Executes one round. Returns `true` while the system is still
    /// active (messages delivered or failures applied this round).
    pub fn step(&mut self) -> bool {
        self.init();
        let due: Vec<NodeId> = self.failures.due_at(self.round).to_vec();
        let had_failures = !due.is_empty();
        for v in due {
            self.kill_node(v);
        }

        if self.pending.is_empty() && !had_failures {
            // Idle round: if failures are still scheduled ahead, time
            // must advance toward them; otherwise the system is
            // quiescent.
            if self
                .failures
                .last_round()
                .is_some_and(|last| last > self.round)
            {
                self.round += 1;
                self.stats.rounds = self.round;
                self.log.record(0);
                return true;
            }
            return false;
        }
        self.round += 1;
        self.stats.rounds = self.round;

        // Deliver.
        let pending = std::mem::take(&mut self.pending);
        let tx_this_round = pending.len();
        for (from, to, msg) in pending {
            match to {
                None => {
                    for &v in self.net.neighbors(from) {
                        if self.alive[v.index()] {
                            self.inboxes[v.index()].push((from, msg.clone()));
                            self.stats.receptions += 1;
                        }
                    }
                }
                Some(v) => {
                    if self.alive[v.index()] && self.net.has_edge(from, v) {
                        self.inboxes[v.index()].push((from, msg));
                        self.stats.receptions += 1;
                    }
                }
            }
        }
        self.log.record(tx_this_round);

        // Process.
        for i in 0..self.nodes.len() {
            if !self.alive[i] || self.inboxes[i].is_empty() {
                continue;
            }
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let mut ctx = Ctx {
                id: NodeId(i),
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[i].on_round(&mut ctx, &inbox);
            let outbox = ctx.outbox;
            self.queue_outbox(NodeId(i), outbox);
        }
        true
    }

    /// Runs until quiescence (no in-flight messages, no pending
    /// failures) or until `max_rounds` is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] when the protocol is
    /// still active after `max_rounds` rounds.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<SimStats, SimError> {
        self.init();
        while self.pending_activity() {
            if self.round >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
        }
        self.stats.quiesced = true;
        Ok(self.stats)
    }

    fn pending_activity(&self) -> bool {
        !self.pending.is_empty()
            || self
                .failures
                .last_round()
                .is_some_and(|last| last >= self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn line_net(n: usize) -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1000.0, 10.0));
        Network::from_positions(
            (0..n).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
            15.0,
            area,
        )
    }

    /// Counts how many rounds until it saw a token passed hop by hop.
    struct Relay {
        has_token: bool,
    }

    impl NodeProcess for Relay {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.id() == NodeId(0) {
                self.has_token = true;
                // Unicast to the next node on the line.
                ctx.send(NodeId(1), 1);
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            if self.has_token {
                return;
            }
            if let Some(&(_, hops)) = inbox.first() {
                self.has_token = true;
                let next = NodeId(ctx.id().index() + 1);
                if next.index() < ctx.net_len() {
                    ctx.send(next, hops + 1);
                }
            }
        }
    }

    impl<'a, M> Ctx<'a, M> {
        fn net_len(&self) -> usize {
            self.net.len()
        }
    }

    #[test]
    fn token_relay_takes_one_round_per_hop() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |_| Relay { has_token: false });
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(engine.nodes().iter().all(|n| n.has_token));
        assert_eq!(stats.rounds, 5, "five hops of unicast");
        assert_eq!(stats.unicasts, 5);
        assert_eq!(stats.broadcasts, 0);
        assert!(stats.quiesced);
        assert_eq!(engine.round_log().per_round(), &[1, 1, 1, 1, 1]);
    }

    struct Gossip {
        value: u64,
    }

    impl NodeProcess for Gossip {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(self.value);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, u64)]) {
            let best = inbox.iter().map(|&(_, v)| v).max().unwrap_or(0);
            if best > self.value {
                self.value = best;
                ctx.broadcast(best);
            }
        }
    }

    #[test]
    fn max_gossip_converges_to_global_max() {
        let net = line_net(8);
        let mut engine = Engine::new(&net, |id| Gossip {
            value: (id.index() as u64) * 10,
        });
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        for n in engine.nodes() {
            assert_eq!(n.value, 70);
        }
    }

    #[test]
    fn killed_node_partitions_relay() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |_| Relay { has_token: false });
        let mut plan = FailurePlan::new();
        plan.kill_at(2, NodeId(3));
        engine.set_failure_plan(plan);
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        assert!(!engine.node(NodeId(4)).has_token, "token blocked at n3");
        assert!(!engine.is_alive(NodeId(3)));
        assert!(engine.node(NodeId(2)).has_token);
    }

    struct Chatterbox;
    impl NodeProcess for Chatterbox {
        type Msg = ();
        fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.broadcast(());
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, ())]) {
            ctx.broadcast(()); // never stops
        }
    }

    #[test]
    fn round_limit_detects_livelock() {
        let net = line_net(3);
        let mut engine = Engine::new(&net, |_| Chatterbox);
        let err = engine.run_until_quiescent(10).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
        assert!(err.to_string().contains("10 rounds"));
    }

    #[test]
    fn unicast_to_non_neighbor_is_dropped() {
        struct Shouter;
        impl NodeProcess for Shouter {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(2), ()); // two hops away: out of range
                }
            }
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, ())]) {}
        }
        let net = line_net(3);
        let mut engine = Engine::new(&net, |_| Shouter);
        let stats = engine.run_until_quiescent(10).unwrap();
        assert_eq!(stats.unicasts, 1, "transmission happened");
        assert_eq!(stats.receptions, 0, "but nobody heard it");
    }

    #[test]
    fn immediate_quiescence_when_nobody_talks() {
        struct Mute;
        impl NodeProcess for Mute {
            type Msg = ();
            fn on_init(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, ())]) {}
        }
        let net = line_net(4);
        let mut engine = Engine::new(&net, |_| Mute);
        let stats = engine.run_until_quiescent(10).unwrap();
        assert_eq!(stats.rounds, 0);
        assert!(stats.quiesced);
    }
}
