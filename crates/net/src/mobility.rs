//! Node mobility — the random-waypoint model.
//!
//! §1 of the paper lists "node mobility" among the dynamic factors that
//! create local minima at runtime. This module supplies the standard
//! random-waypoint generator so the harness can measure how fast the
//! safety information goes stale as nodes move (experiment A13): each
//! node picks a uniform waypoint in the interest area, travels toward it
//! at a uniformly-drawn speed, pauses, and repeats.
//!
//! The walker is deterministic per seed and steps in continuous time, so
//! topology snapshots can be taken at any elapsed time.

use crate::Network;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_geom::{Point, Rect, Vec2};

/// Per-node motion state.
#[derive(Debug, Clone, Copy)]
struct Motion {
    pos: Point,
    waypoint: Point,
    speed: f64,
    pause_left: f64,
}

/// A seeded random-waypoint mobility process over a fixed node set.
///
/// ```
/// use sp_net::{deploy::DeploymentConfig, mobility::RandomWaypoint, Network};
///
/// let cfg = DeploymentConfig::paper_default(100);
/// let start = cfg.deploy_uniform(7);
/// let mut rw = RandomWaypoint::new(start.clone(), cfg.area, 0.5, 1.5, 0.0, 7);
/// rw.step(10.0);
/// let net = rw.snapshot(cfg.radius);
/// assert_eq!(net.len(), 100);
/// // Nobody moved farther than max speed x elapsed time.
/// for (a, b) in start.iter().zip(rw.positions()) {
///     assert!(a.distance(b) <= 1.5 * 10.0 + 1e-9);
/// }
/// ```
#[derive(Debug)]
pub struct RandomWaypoint {
    area: Rect,
    speed_min: f64,
    speed_max: f64,
    pause: f64,
    rng: StdRng,
    motions: Vec<Motion>,
    elapsed: f64,
}

impl RandomWaypoint {
    /// Starts the process at `positions` inside `area`, with speeds
    /// uniform in `[speed_min, speed_max]` (distance per time unit) and
    /// a fixed `pause` at each waypoint.
    ///
    /// # Panics
    ///
    /// Panics if the speed range is empty, non-positive, or `pause` is
    /// negative.
    pub fn new(
        positions: Vec<Point>,
        area: Rect,
        speed_min: f64,
        speed_max: f64,
        pause: f64,
        seed: u64,
    ) -> RandomWaypoint {
        assert!(
            speed_min > 0.0 && speed_max >= speed_min,
            "speed range must satisfy 0 < min <= max"
        );
        assert!(pause >= 0.0, "pause must be non-negative");
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b11_e00b_11e0);
        let motions = positions
            .into_iter()
            .map(|pos| {
                let waypoint = sample_in(&mut rng, area);
                let speed = sample_speed(&mut rng, speed_min, speed_max);
                Motion {
                    pos,
                    waypoint,
                    speed,
                    pause_left: 0.0,
                }
            })
            .collect();
        RandomWaypoint {
            area,
            speed_min,
            speed_max,
            pause,
            rng,
            motions,
            elapsed: 0.0,
        }
    }

    /// Total time advanced so far.
    pub fn elapsed(&self) -> f64 {
        self.elapsed
    }

    /// Current node positions (same ids as the initial vector).
    pub fn positions(&self) -> Vec<Point> {
        self.motions.iter().map(|m| m.pos).collect()
    }

    /// Advances every node by `dt` time units.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is negative.
    pub fn step(&mut self, dt: f64) {
        assert!(dt >= 0.0, "time must not run backward");
        self.elapsed += dt;
        for i in 0..self.motions.len() {
            let mut remaining = dt;
            while remaining > 0.0 {
                let m = &mut self.motions[i];
                if m.pause_left > 0.0 {
                    let wait = m.pause_left.min(remaining);
                    m.pause_left -= wait;
                    remaining -= wait;
                    continue;
                }
                let to_goal = m.waypoint - m.pos;
                let dist = to_goal.norm();
                let reach = m.speed * remaining;
                if reach < dist {
                    // Travel and stop mid-leg.
                    let dir = Vec2::new(to_goal.x / dist, to_goal.y / dist);
                    m.pos = Point::new(m.pos.x + dir.x * reach, m.pos.y + dir.y * reach);
                    remaining = 0.0;
                } else {
                    // Arrive, pause, pick the next leg.
                    m.pos = m.waypoint;
                    remaining -= if m.speed > 0.0 { dist / m.speed } else { 0.0 };
                    m.pause_left = self.pause;
                    m.waypoint = sample_in(&mut self.rng, self.area);
                    m.speed = sample_speed(&mut self.rng, self.speed_min, self.speed_max);
                }
            }
        }
    }

    /// A unit-disk-graph snapshot of the current positions.
    ///
    /// Each snapshot re-buckets the moved positions through a fresh
    /// [`sp_net::SpatialIndex`](crate::SpatialIndex) (inside
    /// [`Network::from_positions`]), so taking frequent topology
    /// snapshots of a large mobile network stays `O(n · k)` per tick
    /// rather than `O(n²)`.
    pub fn snapshot(&self, radius: f64) -> Network {
        Network::from_positions(self.positions(), radius, self.area)
    }
}

fn sample_in(rng: &mut StdRng, area: Rect) -> Point {
    Point::new(
        rng.random_range(area.min().x..=area.max().x),
        rng.random_range(area.min().y..=area.max().y),
    )
}

fn sample_speed(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    if lo == hi {
        lo
    } else {
        rng.random_range(lo..hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeploymentConfig;

    fn start(n: usize, seed: u64) -> (Vec<Point>, Rect) {
        let cfg = DeploymentConfig::paper_default(n);
        (cfg.deploy_uniform(seed), cfg.area)
    }

    #[test]
    fn nodes_never_leave_the_area() {
        let (pos, area) = start(80, 1);
        let mut rw = RandomWaypoint::new(pos, area, 1.0, 3.0, 0.5, 1);
        for _ in 0..50 {
            rw.step(2.5);
            for p in rw.positions() {
                assert!(area.contains(p), "{p} escaped {area}");
            }
        }
        assert!((rw.elapsed() - 125.0).abs() < 1e-9);
    }

    #[test]
    fn displacement_respects_speed_limit() {
        let (pos, area) = start(60, 2);
        let mut rw = RandomWaypoint::new(pos.clone(), area, 0.5, 2.0, 0.0, 2);
        rw.step(7.0);
        for (a, b) in pos.iter().zip(rw.positions()) {
            // Path length >= displacement, so displacement <= v_max * t.
            assert!(a.distance(b) <= 2.0 * 7.0 + 1e-9);
        }
    }

    #[test]
    fn same_seed_same_trajectory() {
        let (pos, area) = start(40, 3);
        let mut a = RandomWaypoint::new(pos.clone(), area, 1.0, 2.0, 1.0, 9);
        let mut b = RandomWaypoint::new(pos, area, 1.0, 2.0, 1.0, 9);
        a.step(13.0);
        b.step(13.0);
        assert_eq!(a.positions(), b.positions());
    }

    #[test]
    fn stepping_in_pieces_equals_one_big_step() {
        let (pos, area) = start(40, 4);
        let mut a = RandomWaypoint::new(pos.clone(), area, 1.0, 2.0, 0.5, 11);
        let mut b = RandomWaypoint::new(pos, area, 1.0, 2.0, 0.5, 11);
        a.step(9.0);
        for _ in 0..9 {
            b.step(1.0);
        }
        // Waypoint resampling consumes RNG draws in arrival order, which
        // is identical for both; positions must agree to float noise.
        for (pa, pb) in a.positions().iter().zip(b.positions()) {
            assert!(pa.distance(pb) < 1e-6, "{pa} vs {pb}");
        }
    }

    #[test]
    fn pause_keeps_nodes_still() {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        // One node already at its waypoint-to-be: after arrival it must
        // hold for `pause` time.
        let mut rw = RandomWaypoint::new(vec![Point::new(5.0, 5.0)], area, 1.0, 1.0, 100.0, 5);
        rw.step(30.0); // long enough to arrive at the first waypoint
        let at_arrival = rw.positions()[0];
        rw.step(10.0); // well inside the 100-unit pause
        assert_eq!(rw.positions()[0], at_arrival);
    }

    #[test]
    fn snapshot_changes_topology_over_time() {
        let (pos, area) = start(150, 6);
        let mut rw = RandomWaypoint::new(pos, area, 1.0, 3.0, 0.0, 6);
        let before = rw.snapshot(20.0);
        rw.step(60.0);
        let after = rw.snapshot(20.0);
        let before_edges: std::collections::BTreeSet<_> = before.edges().collect();
        let after_edges: std::collections::BTreeSet<_> = after.edges().collect();
        assert_ne!(
            before_edges, after_edges,
            "an hour of motion rewires the UDG"
        );
    }

    #[test]
    #[should_panic(expected = "speed range")]
    fn zero_speed_rejected() {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let _ = RandomWaypoint::new(vec![Point::new(0.5, 0.5)], area, 0.0, 1.0, 0.0, 0);
    }
}
