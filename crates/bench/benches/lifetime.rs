//! A15 — the streaming-lifetime unit of work.
//!
//! Prints the per-scheme lifetime on one 400-node instance, then times
//! a short streaming burst (the inner loop of the A15 figure: route,
//! charge the ledger, repair on depletion).
//!
//! Full-scale figure: `cargo run -p sp-experiments --bin repro-figures -- a15`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_experiments::{run_lifetime, Scheme, StreamingConfig};
use sp_net::{DeploymentConfig, Network};
use std::hint::black_box;

fn lifetime_benches(c: &mut Criterion) {
    let dc = DeploymentConfig::paper_default(400);
    let net = Network::from_positions(dc.deploy_uniform(15), dc.radius, dc.area);
    let cfg = StreamingConfig {
        flows: 3,
        packet_bits: 1024.0,
        node_energy_nj: 2.0e6,
        max_rounds: 5_000,
    };

    eprintln!("scheme  packets  depleted  spent%");
    for scheme in [Scheme::Lgf, Scheme::Slgf2, Scheme::Gfg] {
        let r = run_lifetime(&net, scheme, &cfg, 15);
        eprintln!(
            "{:<7} {:>7} {:>9} {:>6.1}",
            scheme.name(),
            r.packets_delivered,
            r.nodes_depleted,
            100.0 * r.energy_spent
        );
    }

    let mut group = c.benchmark_group("a15_lifetime");
    group.sample_size(10);
    for scheme in [Scheme::Slgf2, Scheme::Gfg] {
        group.bench_function(BenchmarkId::new("stream_to_death", scheme.name()), |b| {
            b.iter(|| black_box(run_lifetime(&net, scheme, &cfg, 15)));
        });
    }
    group.finish();
}

criterion_group!(benches, lifetime_benches);
criterion_main!(benches);
