//! Deployment models: the paper's §5 pair — uniform (**IA**) and
//! forbidden-area (**FA**) — plus the structured generators the
//! experiment harness sweeps beyond the paper (clustered, corridor,
//! city-block).
//!
//! > "nodes with a transmission radius of 20 meters are deployed to cover
//! > an interest area of 200m × 200m … First, the nodes will be deployed
//! > uniformly \[IA\] … Secondly, we randomly set some forbidden areas
//! > inside interest area, where no nodes can be deployed. The forbidden
//! > areas, which may be irregular, are constructed to study the impact of
//! > larger holes \[FA\]."
//!
//! The structured generators model the deployments the obstacle-routing
//! literature studies beyond uniform scatter: sensor *clusters* around
//! drop points ([`ClusterModel`]), an L-shaped *corridor* such as a mine
//! gallery or building wing ([`CorridorModel`]), and a Manhattan street
//! grid ([`CityBlockModel`]).
//!
//! All generators are seeded ([`rand::rngs::StdRng`]) so every figure run
//! is reproducible from `(node count, seed)` alone, and all emit exactly
//! `node_count` points inside `area`.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_geom::{point_in_polygon, Circle, Point, Rect};

/// Shared deployment parameters (the paper's experimental constants by
/// default — see [`DeploymentConfig::paper_default`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeploymentConfig {
    /// The interest area nodes are deployed into.
    pub area: Rect,
    /// Number of nodes to deploy.
    pub node_count: usize,
    /// Communication radius, in the same units as `area`.
    pub radius: f64,
}

impl DeploymentConfig {
    /// The paper's setup: a 200 m × 200 m interest area and 20 m radius,
    /// with the given node count (the paper sweeps 400..=800 step 50).
    pub fn paper_default(node_count: usize) -> DeploymentConfig {
        DeploymentConfig {
            area: Rect::from_corners(Point::new(0.0, 0.0), Point::new(200.0, 200.0)),
            node_count,
            radius: 20.0,
        }
    }

    /// The paper's **density** at any scale: the square interest area
    /// grows with `node_count` so every instance keeps ~500 nodes per
    /// 200 m × 200 m at the 20 m radius — the deployment the scale
    /// benches and figures (grid-vs-bruteforce, mobility snapshots,
    /// distributed construction, `repro-figures a16`) share.
    pub fn paper_density(node_count: usize) -> DeploymentConfig {
        let side = 200.0 * (node_count as f64 / 500.0).sqrt();
        DeploymentConfig {
            area: Rect::from_corners(Point::new(0.0, 0.0), Point::new(side, side)),
            node_count,
            radius: 20.0,
        }
    }

    /// IA model: uniform deployment over the whole interest area.
    pub fn deploy_uniform(&self, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..self.node_count)
            .map(|_| sample_point(&mut rng, self.area))
            .collect()
    }

    /// FA model: uniform deployment avoiding `obstacles` by rejection
    /// sampling.
    ///
    /// # Panics
    ///
    /// Panics if the obstacles are so large that fewer than one in a
    /// thousand samples lands outside them (the deployment would not
    /// terminate meaningfully).
    pub fn deploy_with_obstacles(&self, obstacles: &[Obstacle], seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(self.node_count);
        let mut attempts: u64 = 0;
        let limit = (self.node_count as u64).max(1) * 1000;
        while out.len() < self.node_count {
            attempts += 1;
            assert!(
                attempts <= limit,
                "forbidden areas cover too much of the interest area \
                 (no free spot found in {attempts} samples)"
            );
            let p = sample_point(&mut rng, self.area);
            if !obstacles.iter().any(|o| o.contains(p)) {
                out.push(p);
            }
        }
        out
    }

    /// Clustered deployment: nodes pile up around a few drop points
    /// (aerial deployment, sensor pods). Every node picks one of the
    /// `model.clusters` seeded centers and lands uniformly in a disk of
    /// `model.spread_radii` radio ranges around it, clamped into the
    /// interest area.
    pub fn deploy_clustered(&self, model: &ClusterModel, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc1_0575_edc1_0575);
        let spread = model.spread_radii * self.radius;
        // Centers keep one spread clear of the border where possible so
        // clusters are not half-cropped.
        let core = self.area.inflate(-spread.min(self.area.width() / 4.0));
        let centers: Vec<Point> = (0..model.clusters.max(1))
            .map(|_| sample_point(&mut rng, core))
            .collect();
        (0..self.node_count)
            .map(|_| {
                let c = centers[rng.random_range(0..centers.len())];
                // Uniform in the disk: r = R√u, θ uniform.
                let r = spread * rng.random_range(0.0f64..=1.0).sqrt();
                let theta = rng.random_range(0.0f64..std::f64::consts::TAU);
                self.area
                    .clamp_point(Point::new(c.x + r * theta.cos(), c.y + r * theta.sin()))
            })
            .collect()
    }

    /// Corridor deployment: nodes confined to an L-shaped corridor (a
    /// horizontal gallery across the area joined by a vertical wing up
    /// from its middle), uniform within the corridor, area-weighted
    /// between the two legs.
    pub fn deploy_corridor(&self, model: &CorridorModel, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0_221d_02c0_221d);
        let w = (model.width_radii * self.radius)
            .min(self.area.height())
            .min(self.area.width());
        let mid_y = self.area.min().y + (self.area.height() - w) / 2.0;
        // Horizontal leg: full width, centered vertically.
        let horizontal =
            Rect::from_origin_size(Point::new(self.area.min().x, mid_y), self.area.width(), w);
        // Vertical leg: from the top of the horizontal leg to the area
        // top, centered horizontally.
        let mid_x = self.area.min().x + (self.area.width() - w) / 2.0;
        let vertical = Rect::from_origin_size(
            Point::new(mid_x, mid_y + w),
            w,
            (self.area.max().y - (mid_y + w)).max(0.0),
        );
        let total = horizontal.area() + vertical.area();
        (0..self.node_count)
            .map(|_| {
                let leg = if total <= 0.0 || rng.random_range(0.0f64..total) < horizontal.area() {
                    horizontal
                } else {
                    vertical
                };
                sample_point(&mut rng, leg)
            })
            .collect()
    }

    /// City-block deployment: nodes live on a Manhattan street grid —
    /// within `model.street_radii` radio ranges of a grid line spaced
    /// `model.block_radii` ranges apart — leaving the blocks in between
    /// empty (rejection sampling, like the FA model).
    ///
    /// # Panics
    ///
    /// Panics if the streets cover so little of the area that fewer
    /// than one in a thousand samples lands on one (degenerate models
    /// with near-zero street width).
    pub fn deploy_city_block(&self, model: &CityBlockModel, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc17_b10c_0c17_b10c);
        let period = (model.block_radii * self.radius).max(f64::EPSILON);
        let street = model.street_radii * self.radius;
        let on_street = |p: Point| {
            let fx = (p.x - self.area.min().x) % period;
            let fy = (p.y - self.area.min().y) % period;
            fx <= street || fy <= street
        };
        let mut out = Vec::with_capacity(self.node_count);
        let mut attempts: u64 = 0;
        let limit = (self.node_count as u64).max(1) * 1000;
        while out.len() < self.node_count {
            attempts += 1;
            assert!(
                attempts <= limit,
                "streets cover too little of the interest area \
                 (no street spot found in {attempts} samples)"
            );
            let p = sample_point(&mut rng, self.area);
            if on_street(p) {
                out.push(p);
            }
        }
        out
    }
}

/// The clustered deployment model: how many drop points and how far
/// nodes scatter around them, in multiples of the radio radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterModel {
    /// Number of cluster centers.
    pub clusters: usize,
    /// Scatter disk radius around each center, in radio ranges.
    pub spread_radii: f64,
}

impl ClusterModel {
    /// A handful of tight pods: 6 clusters, 1.5 radio ranges across —
    /// dense cores with sparse bridges, the regime where greedy routing
    /// starves between clusters.
    pub fn paper_default() -> ClusterModel {
        ClusterModel {
            clusters: 6,
            spread_radii: 1.5,
        }
    }
}

/// The corridor deployment model: the L-corridor's width in multiples
/// of the radio radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorridorModel {
    /// Corridor width, in radio ranges.
    pub width_radii: f64,
}

impl CorridorModel {
    /// A two-radio-range gallery: wide enough for parallel paths,
    /// narrow enough that every route is essentially one-dimensional.
    pub fn paper_default() -> CorridorModel {
        CorridorModel { width_radii: 2.0 }
    }
}

/// The city-block deployment model: street spacing and width in
/// multiples of the radio radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CityBlockModel {
    /// Distance between parallel streets (block pitch), in radio ranges.
    pub block_radii: f64,
    /// Street width, in radio ranges.
    pub street_radii: f64,
}

impl CityBlockModel {
    /// 3-range blocks with 1-range streets: blocks are radio-opaque, so
    /// routes must follow the street graph around every corner.
    pub fn paper_default() -> CityBlockModel {
        CityBlockModel {
            block_radii: 3.0,
            street_radii: 1.0,
        }
    }
}

/// A forbidden area: no node may be deployed inside it.
///
/// The paper describes forbidden areas as "may be irregular"; rectangles,
/// disks and simple polygons (used for the L-shaped "irregular" case) are
/// provided.
#[derive(Debug, Clone, PartialEq)]
pub enum Obstacle {
    /// Axis-aligned rectangular hole.
    Rect(Rect),
    /// Disk-shaped hole.
    Circle(Circle),
    /// Simple-polygon hole (vertex loop without the repeated first point).
    Polygon(Vec<Point>),
}

impl Obstacle {
    /// True when `p` lies inside the forbidden area (borders included).
    pub fn contains(&self, p: Point) -> bool {
        match self {
            Obstacle::Rect(r) => r.contains(p),
            Obstacle::Circle(c) => c.contains(p),
            Obstacle::Polygon(poly) => point_in_polygon(p, poly),
        }
    }

    /// A bounding rectangle of the obstacle (tight for rects, loose
    /// otherwise).
    pub fn bounding_rect(&self) -> Rect {
        match self {
            Obstacle::Rect(r) => *r,
            Obstacle::Circle(c) => Rect::from_corners(
                Point::new(c.center.x - c.radius, c.center.y - c.radius),
                Point::new(c.center.x + c.radius, c.center.y + c.radius),
            ),
            Obstacle::Polygon(poly) => {
                let mut min = Point::new(f64::INFINITY, f64::INFINITY);
                let mut max = Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY);
                for p in poly {
                    min = Point::new(min.x.min(p.x), min.y.min(p.y));
                    max = Point::new(max.x.max(p.x), max.y.max(p.y));
                }
                Rect::from_corners(min, max)
            }
        }
    }
}

/// The FA deployment model: how many random forbidden areas to place and
/// how large they may grow, in multiples of the communication radius.
///
/// ```
/// use sp_net::{deploy::DeploymentConfig, FaModel};
/// let cfg = DeploymentConfig::paper_default(400);
/// let fa = FaModel::paper_default();
/// let obstacles = fa.generate_obstacles(&cfg, 7);
/// let nodes = cfg.deploy_with_obstacles(&obstacles, 7);
/// assert_eq!(nodes.len(), 400);
/// for p in &nodes {
///     assert!(!obstacles.iter().any(|o| o.contains(*p)));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaModel {
    /// How many forbidden areas to scatter.
    pub obstacle_count: usize,
    /// Smallest obstacle extent, in multiples of the radio radius.
    pub min_size_radii: f64,
    /// Largest obstacle extent, in multiples of the radio radius.
    pub max_size_radii: f64,
}

impl FaModel {
    /// Defaults chosen to reproduce the paper's FA regime: a handful of
    /// holes, each a few radio ranges across — large enough that greedy
    /// routing must detour, small enough that the network stays connected
    /// at 400+ nodes.
    pub fn paper_default() -> FaModel {
        FaModel {
            obstacle_count: 3,
            min_size_radii: 1.5,
            max_size_radii: 3.0,
        }
    }

    /// Generates the random forbidden areas for one network instance.
    ///
    /// A third of obstacles (rounding up) are rectangles, a third disks,
    /// and the rest L-shaped polygons (the "irregular" case). Obstacles
    /// keep one radio radius clear of the interest-area border so that the
    /// network edge stays populated, matching the paper's assumption that
    /// the edge of the interest area is node-covered.
    pub fn generate_obstacles(&self, cfg: &DeploymentConfig, seed: u64) -> Vec<Obstacle> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0b57_ac1e_0b57_ac1e);
        let margin = cfg.radius;
        let inner = cfg.area.inflate(-margin);
        let mut out = Vec::with_capacity(self.obstacle_count);
        for k in 0..self.obstacle_count {
            let w = rng.random_range(self.min_size_radii..=self.max_size_radii) * cfg.radius;
            let h = rng.random_range(self.min_size_radii..=self.max_size_radii) * cfg.radius;
            let x = rng.random_range(inner.min().x..=(inner.max().x - w).max(inner.min().x));
            let y = rng.random_range(inner.min().y..=(inner.max().y - h).max(inner.min().y));
            let origin = Point::new(x, y);
            let obstacle = match k % 3 {
                0 => Obstacle::Rect(Rect::from_origin_size(origin, w, h)),
                1 => Obstacle::Circle(Circle::new(
                    Point::new(x + w / 2.0, y + h / 2.0),
                    w.min(h) / 2.0,
                )),
                _ => {
                    // L-shape: the rectangle minus its NE quarter.
                    Obstacle::Polygon(vec![
                        origin,
                        Point::new(x + w, y),
                        Point::new(x + w, y + h / 2.0),
                        Point::new(x + w / 2.0, y + h / 2.0),
                        Point::new(x + w / 2.0, y + h),
                        Point::new(x, y + h),
                    ])
                }
            };
            out.push(obstacle);
        }
        out
    }
}

fn sample_point(rng: &mut StdRng, area: Rect) -> Point {
    Point::new(
        rng.random_range(area.min().x..=area.max().x),
        rng.random_range(area.min().y..=area.max().y),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_deployment_is_seed_deterministic() {
        let cfg = DeploymentConfig::paper_default(100);
        let a = cfg.deploy_uniform(11);
        let b = cfg.deploy_uniform(11);
        let c = cfg.deploy_uniform(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 100);
        for p in a {
            assert!(cfg.area.contains(p));
        }
    }

    #[test]
    fn fa_deployment_avoids_all_obstacles() {
        let cfg = DeploymentConfig::paper_default(300);
        let fa = FaModel::paper_default();
        for seed in 0..5 {
            let obstacles = fa.generate_obstacles(&cfg, seed);
            assert_eq!(obstacles.len(), fa.obstacle_count);
            let nodes = cfg.deploy_with_obstacles(&obstacles, seed);
            assert_eq!(nodes.len(), 300);
            for p in &nodes {
                assert!(cfg.area.contains(*p));
                for o in &obstacles {
                    assert!(!o.contains(*p), "node {p} inside obstacle {o:?}");
                }
            }
        }
    }

    #[test]
    fn obstacles_stay_off_the_border() {
        let cfg = DeploymentConfig::paper_default(10);
        let fa = FaModel {
            obstacle_count: 12,
            ..FaModel::paper_default()
        };
        let inner = cfg.area.inflate(-cfg.radius);
        for o in fa.generate_obstacles(&cfg, 3) {
            let bb = o.bounding_rect();
            assert!(
                inner.intersects(&bb),
                "obstacle fully outside the shrunken area: {bb}"
            );
            // Rect obstacles must be fully inside the margin.
            if let Obstacle::Rect(r) = o {
                assert!(
                    inner.contains_rect(&r),
                    "rect {r} breaches the border margin"
                );
            }
        }
    }

    #[test]
    fn obstacle_membership_borders() {
        let r = Obstacle::Rect(Rect::from_corners(
            Point::new(0.0, 0.0),
            Point::new(2.0, 2.0),
        ));
        assert!(r.contains(Point::new(2.0, 2.0)));
        let c = Obstacle::Circle(Circle::new(Point::new(0.0, 0.0), 1.0));
        assert!(c.contains(Point::new(1.0, 0.0)));
        assert!(!c.contains(Point::new(1.01, 0.0)));
        let l = Obstacle::Polygon(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 2.0),
            Point::new(2.0, 2.0),
            Point::new(2.0, 4.0),
            Point::new(0.0, 4.0),
        ]);
        assert!(l.contains(Point::new(1.0, 3.0)));
        assert!(!l.contains(Point::new(3.0, 3.0)));
    }

    #[test]
    fn bounding_rect_covers_obstacle_samples() {
        let cfg = DeploymentConfig::paper_default(10);
        for o in FaModel::paper_default().generate_obstacles(&cfg, 9) {
            let bb = o.bounding_rect();
            // Sample the bb: every contained point must be in the bb.
            for fx in [0.0, 0.3, 0.5, 0.8, 1.0] {
                for fy in [0.0, 0.4, 0.9] {
                    let p = bb.lerp(fx, fy);
                    if o.contains(p) {
                        assert!(bb.contains(p));
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "forbidden areas cover too much")]
    fn impossible_deployment_panics() {
        let cfg = DeploymentConfig {
            area: Rect::from_corners(Point::new(0.0, 0.0), Point::new(10.0, 10.0)),
            node_count: 5,
            radius: 2.0,
        };
        let wall = Obstacle::Rect(Rect::from_corners(
            Point::new(-1.0, -1.0),
            Point::new(11.0, 11.0),
        ));
        let _ = cfg.deploy_with_obstacles(&[wall], 1);
    }
}
