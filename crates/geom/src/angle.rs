//! Angles normalized to `[0, 2π)` and deterministic angular orderings.
//!
//! Perimeter routing in the paper repeatedly "rotates a ray
//! counter-clockwise until the first untried node is hit" (Algo. 1 step 4),
//! and the information-construction process scans a forwarding zone "in
//! counter-clockwise order" (Algo. 2 step 3). Both need a single, total,
//! reproducible notion of angle, which this module provides.

use crate::Vec2;

/// One full turn, `2π`.
pub const TAU: f64 = std::f64::consts::TAU;

/// An angle normalized into `[0, 2π)`, measured counter-clockwise from
/// east, wrapped for deterministic comparison.
///
/// ```
/// use sp_geom::{Angle, Vec2};
/// let north = Angle::of_vec(Vec2::new(0.0, 1.0));
/// let east = Angle::of_vec(Vec2::new(1.0, 0.0));
/// assert!(east < north);
/// assert!((north.radians() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Angle(f64);

impl Angle {
    /// Wraps an arbitrary angle in radians into `[0, 2π)`.
    pub fn new(radians: f64) -> Self {
        Angle(normalize_angle(radians))
    }

    /// The direction of a vector. The zero vector maps to angle `0`.
    pub fn of_vec(v: Vec2) -> Self {
        Angle::new(v.angle())
    }

    /// The normalized value in `[0, 2π)`.
    #[inline]
    pub fn radians(self) -> f64 {
        self.0
    }

    /// Counter-clockwise angular distance from `from` to `self`,
    /// in `[0, 2π)`.
    ///
    /// This is the amount a ray pointing along `from` must rotate
    /// counter-clockwise before it hits `self`.
    pub fn ccw_from(self, from: Angle) -> f64 {
        normalize_angle(self.0 - from.0)
    }

    /// True when the angle lies in the counter-clockwise closed interval
    /// from `start` to `end` (which may wrap through `0`).
    pub fn in_ccw_range(self, start: Angle, end: Angle) -> bool {
        let span = end.ccw_from(start);
        let off = self.ccw_from(start);
        if span == 0.0 {
            // Degenerate range: only the start angle itself.
            off == 0.0
        } else {
            off <= span
        }
    }
}

impl Eq for Angle {}

impl PartialOrd for Angle {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Angle {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Normalized values are finite and non-NaN, so total_cmp agrees
        // with the mathematical order on [0, 2π).
        self.0.total_cmp(&other.0)
    }
}

impl std::fmt::Display for Angle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.4}rad", self.0)
    }
}

/// Wraps an angle in radians into `[0, 2π)`.
///
/// ```
/// use sp_geom::normalize_angle;
/// let a = normalize_angle(-std::f64::consts::FRAC_PI_2);
/// assert!((a - 3.0 * std::f64::consts::FRAC_PI_2).abs() < 1e-12);
/// ```
pub fn normalize_angle(radians: f64) -> f64 {
    let r = radians % TAU;
    if r < 0.0 {
        r + TAU
    } else if r == 0.0 {
        0.0 // collapse -0.0
    } else {
        r
    }
}

/// A monotone, trig-free stand-in for the polar angle.
///
/// `pseudo_angle(v)` increases strictly with the true polar angle of `v`
/// over `[0, 2π)` and costs one division instead of an `atan2`. Useful for
/// sorting large neighbor sets by angle; ties and exactness still follow
/// the true angle because the map is injective on directions.
///
/// The zero vector maps to `0.0`.
pub fn pseudo_angle(v: Vec2) -> f64 {
    if v.is_zero() {
        return 0.0;
    }
    // Map direction to [0, 4) by octant-free projective trick:
    // p = y/(|x|+|y|) gives [0,1] in quadrants I/II top half...
    let ax = v.x.abs();
    let ay = v.y.abs();
    let p = v.y / (ax + ay);
    if v.x >= 0.0 {
        // Quadrants I (p in [0,1]) and IV (p in [-1,0)) -> [0,1] and [3,4)
        if v.y >= 0.0 {
            p // [0, 1]
        } else {
            4.0 + p // [3, 4)
        }
    } else {
        // Quadrants II and III -> (1, 3)
        2.0 - p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI};

    #[test]
    fn normalize_wraps_negative_and_large() {
        assert!((normalize_angle(-FRAC_PI_2) - 1.5 * PI).abs() < 1e-12);
        assert!((normalize_angle(TAU + 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(normalize_angle(0.0), 0.0);
        assert_eq!(normalize_angle(TAU), 0.0);
        assert_eq!(normalize_angle(-0.0), 0.0);
    }

    #[test]
    fn ccw_from_measures_rotation() {
        let east = Angle::new(0.0);
        let north = Angle::new(FRAC_PI_2);
        assert!((north.ccw_from(east) - FRAC_PI_2).abs() < 1e-12);
        // East is 3/4 turn CCW from north.
        assert!((east.ccw_from(north) - 1.5 * PI).abs() < 1e-12);
    }

    #[test]
    fn in_ccw_range_handles_wraparound() {
        let a = Angle::new(7.0 * PI / 4.0); // 315°
        assert!(a.in_ccw_range(Angle::new(1.5 * PI), Angle::new(0.1)));
        assert!(!a.in_ccw_range(Angle::new(0.0), Angle::new(PI)));
        // Closed endpoints.
        assert!(Angle::new(PI).in_ccw_range(Angle::new(PI), Angle::new(1.5 * PI)));
        assert!(Angle::new(1.5 * PI).in_ccw_range(Angle::new(PI), Angle::new(1.5 * PI)));
    }

    #[test]
    fn angle_ordering_is_total_on_unit_circle() {
        let mut angles: Vec<Angle> = (0..16).map(|i| Angle::new(i as f64 * TAU / 16.0)).collect();
        let sorted = angles.clone();
        angles.reverse();
        angles.sort();
        assert_eq!(angles, sorted);
    }

    #[test]
    fn pseudo_angle_monotone_with_true_angle() {
        let dirs: Vec<Vec2> = (0..64)
            .map(|i| {
                let t = i as f64 * TAU / 64.0;
                Vec2::new(t.cos(), t.sin())
            })
            .collect();
        for w in dirs.windows(2) {
            assert!(
                pseudo_angle(w[0]) < pseudo_angle(w[1]),
                "pseudo angle must increase with polar angle: {:?} {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn pseudo_angle_zero_vector_is_zero() {
        assert_eq!(pseudo_angle(Vec2::ZERO), 0.0);
    }

    #[test]
    fn of_vec_matches_atan2() {
        let v = Vec2::new(-1.0, -1.0);
        let a = Angle::of_vec(v);
        assert!((a.radians() - 1.25 * PI).abs() < 1e-12);
    }
}
