//! End-to-end serving: concurrent wire clients racing live epoch
//! churn, with every answer checked against the service's consistency
//! contract — `answer.epoch <= service.epoch()`, traced paths valid
//! against exactly their stamped epoch's adjacency — plus graceful
//! shutdown that never drops an in-flight reply, and `STATS` that
//! agree with an external tally.

use sp_core::ServiceScheme;
use sp_geom::Point;
use sp_net::{deploy::DeploymentConfig, Network, NodeId};
use sp_serve::{serve, ServeClient, ServeConfig};
use std::collections::HashMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn make_net(n: usize, seed: u64) -> Network {
    let cfg = DeploymentConfig::paper_default(n);
    Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
}

/// A deterministic jitter batch: every `stride`-th node shifts a
/// little, staying inside the area.
fn jitter(net: &Network, stride: usize, magnitude: f64) -> Vec<(NodeId, Point)> {
    net.node_ids()
        .filter(|u| u.index() % stride == 0)
        .map(|u| {
            let p = net.position(u);
            let q = Point::new(
                (p.x + magnitude).min(net.area().max().x),
                (p.y + magnitude * 0.5).min(net.area().max().y),
            );
            (u, q)
        })
        .collect()
}

/// Waits (bounded) for the churn thread to record `epoch`'s topology.
/// The publish happens inside `apply_moves`, the recording just after
/// it returns, so an answer can briefly outrun the map.
fn net_for_epoch(nets: &Mutex<HashMap<u64, Network>>, epoch: u64) -> Network {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Some(n) = nets.lock().unwrap().get(&epoch) {
            return n.clone();
        }
        assert!(
            Instant::now() < deadline,
            "epoch {epoch} was answered but never recorded by the churner"
        );
        std::thread::yield_now();
    }
}

/// Validates a traced path against the stamped epoch's adjacency.
fn assert_path_valid(net: &Network, src: u32, dst: u32, delivered: bool, path: &[NodeId]) {
    assert!(!path.is_empty(), "trace always includes the source");
    assert_eq!(path[0], NodeId(src), "trace starts at the source");
    for pair in path.windows(2) {
        assert!(
            net.neighbors(pair[0]).contains(&pair[1]),
            "hop {:?} -> {:?} is not an edge in the stamped epoch",
            pair[0],
            pair[1]
        );
    }
    if delivered {
        assert_eq!(*path.last().unwrap(), NodeId(dst), "delivered ends at dst");
    }
}

/// The headline race: three wire clients stream queries (every third
/// traced) while a churn thread publishes thirty mobility epochs
/// underneath them. Every answer must respect the epoch bound; every
/// traced path must be walkable in exactly its stamped epoch.
#[test]
fn concurrent_clients_stay_consistent_under_churn() {
    let base = make_net(300, 11);
    // Two workers, three client connections: more connections than
    // workers, so this also holds the stint multiplexing to account —
    // every connection must keep making progress.
    let handle = serve(base.clone(), ServeConfig::ephemeral(2)).expect("bind");
    let service = handle.service().clone();
    let nets: Mutex<HashMap<u64, Network>> = Mutex::new(HashMap::from([(0, base.clone())]));
    let nodes = base.len() as u32;

    std::thread::scope(|s| {
        let service_ref = &service;
        let nets_ref = &nets;
        s.spawn(move || {
            for _round in 0..30 {
                let snap = service_ref.snapshot();
                let moves = jitter(snap.value.network(), 9, 0.7);
                let epoch = service_ref.apply_moves(&moves);
                // Sole publisher: the snapshot right after a publish is
                // exactly that epoch's world.
                let published = service_ref.snapshot();
                assert_eq!(published.epoch, epoch);
                nets_ref
                    .lock()
                    .unwrap()
                    .insert(epoch, published.value.network().clone());
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        for c in 0..3u64 {
            let addr = handle.addr();
            s.spawn(move || {
                let mut client = ServeClient::connect(addr).expect("connect");
                let mut state = 0x1234_5678u64.wrapping_mul(c + 1);
                let mut lcg = move || {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    state >> 11
                };
                let mut last_epoch = 0u64;
                for k in 0..150usize {
                    let src = (lcg() % nodes as u64) as u32;
                    let dst = (lcg() % nodes as u64) as u32;
                    let trace = k % 3 == 0;
                    let scheme = ServiceScheme::ALL[k % 3];
                    let reply = client.query(src, dst, scheme, trace).expect("query");
                    // The wire-visible consistency contract.
                    assert!(
                        reply.epoch <= service_ref.epoch(),
                        "answer epoch {} outran service epoch",
                        reply.epoch
                    );
                    assert!(
                        reply.epoch >= last_epoch,
                        "per-connection epochs must be nondecreasing"
                    );
                    last_epoch = reply.epoch;
                    if trace {
                        let path = reply.path.as_deref().expect("trace requested");
                        assert_eq!(reply.hops as usize, path.len() - 1);
                        let world = net_for_epoch(nets_ref, reply.epoch);
                        assert_path_valid(&world, src, dst, reply.delivered(), path);
                    } else {
                        assert!(reply.path.is_none(), "no trace unless asked");
                    }
                }
            });
        }
    });

    let stats = handle.stats();
    assert_eq!(stats.queries, 3 * 150);
    assert_eq!(stats.traced, 3 * 50);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(stats.latency_count, 3 * 150);
    assert!(service.epoch() >= 30);

    handle.shutdown();
    handle.join();
}

/// Wire-driven churn: `MOVE` and `CHAOS` frames publish epochs whose
/// answers validate against the published snapshots, and the node-id
/// space never changes (ids stay index-aligned across chaos).
#[test]
fn wire_moves_and_chaos_publish_epochs() {
    let base = make_net(200, 23);
    let handle = serve(base.clone(), ServeConfig::ephemeral(2)).expect("bind");
    let service = handle.service().clone();
    let mut client = ServeClient::connect(handle.addr()).expect("connect");

    let (epoch0, nodes, workers) = client.info().expect("info");
    assert_eq!((epoch0, nodes as usize, workers), (0, base.len(), 2));

    // A wire MOVE batch: relocate three nodes, epoch rolls to 1.
    let moves: Vec<(u32, f64, f64)> = [4u32, 40, 140]
        .iter()
        .map(|&id| {
            let p = base.position(NodeId(id));
            (id, (p.x + 1.5).min(199.0), p.y)
        })
        .collect();
    let (epoch, applied) = client.move_batch(&moves).expect("move");
    assert_eq!((epoch, applied), (1, 3));
    assert_eq!(service.epoch(), 1);
    let world = service.snapshot();
    for &(id, x, y) in &moves {
        let p = world.value.network().position(NodeId(id));
        assert_eq!((p.x, p.y), (x, y), "wire move landed");
    }

    // A traced query on the new epoch walks the new adjacency.
    let reply = client
        .query(0, 199, ServiceScheme::Slgf2, true)
        .expect("query");
    assert_eq!(reply.epoch, 1);
    assert_path_valid(
        world.value.network(),
        0,
        199,
        reply.delivered(),
        reply.path.as_deref().unwrap(),
    );

    // A wire CHAOS recipe: epoch rolls again, node count is stable.
    let (epoch, clauses) = client.chaos(5, 99, "region:r=0.2@round5").expect("chaos");
    assert_eq!((epoch, clauses), (2, 1));
    let (_, nodes_after, _) = client.info().expect("info");
    assert_eq!(nodes_after, nodes, "ids stay index-aligned under chaos");
    let reply = client
        .query(0, 199, ServiceScheme::Slgf2, false)
        .expect("query");
    assert_eq!(reply.epoch, 2);

    let stats = client.stats().expect("stats");
    assert_eq!(stats.epoch, 2);
    assert_eq!(stats.stats.move_batches, 1);
    assert_eq!(stats.stats.moved_nodes, 3);
    assert_eq!(stats.stats.chaos_batches, 1);
    assert_eq!(stats.stats.queries, 2);

    handle.shutdown();
    drop(client);
    handle.join();
}

/// Graceful shutdown: the `SHUTDOWN` requester is acknowledged, and a
/// connection that was already open keeps getting replies while it
/// drains — no in-flight request is ever dropped.
#[test]
fn shutdown_drains_open_connections() {
    let base = make_net(150, 31);
    let handle = serve(base, ServeConfig::ephemeral(2)).expect("bind");

    let mut survivor = ServeClient::connect(handle.addr()).expect("connect");
    survivor
        .query(0, 149, ServiceScheme::Slgf2, false)
        .expect("pre-shutdown query");

    let mut terminator = ServeClient::connect(handle.addr()).expect("connect");
    let epoch = terminator.shutdown().expect("shutdown acknowledged");
    assert_eq!(epoch, 0);
    assert!(handle.stopping());

    // The already-open connection still gets answers while draining.
    for k in 0..5 {
        let reply = survivor
            .query(k, 100 + k, ServiceScheme::Lgf, false)
            .expect("in-flight replies survive shutdown");
        assert_eq!(reply.epoch, 0);
    }

    let stats = handle.stats();
    assert_eq!(stats.queries, 6);

    drop(survivor);
    drop(terminator);
    let joined_by = Instant::now() + Duration::from_secs(10);
    handle.join();
    assert!(
        Instant::now() < joined_by,
        "join returned promptly after EOF"
    );
}

/// `STATS` agree with an external tally across two clients, and the
/// hop histogram + latency reservoir account for every query.
#[test]
fn stats_match_an_external_tally() {
    let base = make_net(180, 41);
    let handle = serve(base, ServeConfig::ephemeral(3)).expect("bind");

    let mut delivered = 0u64;
    let mut hops_hist = vec![0u64; sp_serve::telemetry::HOP_BUCKETS];
    for c in 0..2u32 {
        let mut client = ServeClient::connect(handle.addr()).expect("connect");
        for k in 0..60u32 {
            let (src, dst) = ((c * 61 + k * 7) % 180, (k * 13 + 5) % 180);
            let reply = client
                .query(src, dst, ServiceScheme::Slgf2, false)
                .expect("query");
            if reply.delivered() {
                delivered += 1;
            }
            let bucket = (reply.hops as usize).min(sp_serve::telemetry::HOP_BUCKETS - 1);
            hops_hist[bucket] += 1;
        }
    }

    let stats = handle.stats();
    assert_eq!(stats.queries, 120);
    assert_eq!(stats.delivered, delivered);
    assert_eq!(stats.routing_failures(), 120 - delivered);
    assert_eq!(stats.hops_hist, hops_hist);
    assert_eq!(stats.latency_count, 120);
    assert!(stats.latency_p50 >= 0.0 && stats.latency_p50 <= stats.latency_p99);

    // The wire STATS frame carries the same aggregation.
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    let wire_stats = client.stats().expect("stats");
    assert_eq!(wire_stats.stats.queries, 120);
    assert_eq!(wire_stats.stats.delivered, delivered);
    assert_eq!(wire_stats.stats.hops_hist, hops_hist);

    handle.shutdown();
    drop(client);
    handle.join();
}

/// The telemetry exporter appends JSONL lines with the documented
/// fields, including a final line at shutdown.
#[test]
fn telemetry_exporter_writes_jsonl() {
    let path = std::env::temp_dir().join(format!(
        "sp-serve-telemetry-{}-{:?}.jsonl",
        std::process::id(),
        std::thread::current().id()
    ));
    drop(std::fs::remove_file(&path));

    let base = make_net(150, 51);
    let cfg = ServeConfig::ephemeral(2).with_telemetry(
        path.to_string_lossy().into_owned(),
        Duration::from_millis(40),
    );
    let handle = serve(base, cfg).expect("bind");
    let mut client = ServeClient::connect(handle.addr()).expect("connect");
    for k in 0..25u32 {
        client
            .query(k % 150, (k * 11) % 150, ServiceScheme::Slgf2, false)
            .expect("query");
    }
    std::thread::sleep(Duration::from_millis(120));
    handle.shutdown();
    drop(client);
    handle.join();

    let text = std::fs::read_to_string(&path).expect("exporter wrote the file");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "at least one export line");
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "JSONL shape: {line}"
        );
        for key in [
            "\"ts_ms\":",
            "\"epoch\":",
            "\"queries\":",
            "\"latency_p99_s\":",
            "\"hops_hist\":[",
        ] {
            assert!(line.contains(key), "missing {key} in {line}");
        }
    }
    // The final line saw every query.
    assert!(
        lines.last().unwrap().contains("\"queries\":25"),
        "final line accounts for all queries: {:?}",
        lines.last()
    );
    drop(std::fs::remove_file(&path));
}
