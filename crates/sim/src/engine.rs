//! The lock-step round scheduler.
//!
//! This is the scale-optimized engine: broadcasts are delivered by
//! shared handle out of a per-round message arena (one buffered message
//! per transmission, never per edge), rounds only visit the *frontier*
//! of nodes that actually received mail, steady-state rounds reuse all
//! scratch buffers, and large frontiers can be sharded across threads
//! with output bit-identical to the serial path. The pre-optimization
//! engine survives as [`crate::LegacyEngine`] so benchmarks and
//! equivalence tests can always compare against it.

use crate::{ChaosPlan, Ctx, FailurePlan, NodeProcess, RoundLog, SimStats};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sp_net::{Network, NodeId};
use sp_sync::WorkQueue;

/// Node count at which [`auto_threads`] starts asking for more than one
/// thread. Below this, rounds are small enough that thread spawn and
/// merge overhead dominates any sharding win.
pub const PARALLEL_NODE_THRESHOLD: usize = 8_192;

/// Frontier size below which a round is processed inline even when the
/// engine is configured with multiple threads — quiescing-tail rounds
/// with a handful of active nodes never pay a thread spawn.
const MIN_PARALLEL_FRONTIER: usize = 32;

/// The thread-count environment knob read by [`auto_threads`]
/// (mirroring `SP_NET_THREADS` for the spatial index).
pub const THREADS_ENV: &str = "SP_SIM_THREADS";

/// Most recycled outbox buffers the engine retains. The serial path
/// cycles one buffer per callback, but the threaded merge returns a
/// whole frontier's worth per round; the cap keeps that from
/// accumulating unboundedly across rounds.
const OUTBOX_POOL_CAP: usize = 64;

/// The thread count [`Engine::new`] configures by default: 1 below
/// [`PARALLEL_NODE_THRESHOLD`] nodes, otherwise the [`THREADS_ENV`]
/// (`SP_SIM_THREADS`) environment knob when set to a positive integer,
/// otherwise [`std::thread::available_parallelism`]. Any count yields
/// bit-identical results; the knob only trades wall-clock.
pub fn auto_threads(node_count: usize) -> usize {
    if node_count < PARALLEL_NODE_THRESHOLD {
        return 1;
    }
    sp_net::SpatialIndex::configured_threads_for(THREADS_ENV)
}

/// An outbox drained by a worker shard, tagged with the node that
/// emitted it (merged back in ascending node order).
type TaggedOutbox<M> = (u32, Vec<(Option<NodeId>, M)>);

/// Errors the engine can report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The protocol was still exchanging messages when the round budget
    /// ran out — usually a non-terminating protocol bug.
    RoundLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
    /// The asynchronous engine delivered `limit` events without draining
    /// its queue.
    EventLimitExceeded {
        /// The budget that was exhausted.
        limit: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} rounds")
            }
            SimError::EventLimitExceeded { limit } => {
                write!(f, "protocol did not quiesce within {limit} deliveries")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Synchronous executor of one [`NodeProcess`] instance per network node.
///
/// Semantics per round:
/// 1. scheduled failures (if any) are applied and neighbors notified;
/// 2. every message buffered in the previous round is delivered;
/// 3. every live node with a non-empty inbox runs
///    [`NodeProcess::on_round`]; its outgoing messages are buffered for
///    the next round.
///
/// The run quiesces when no messages are in flight and no failures
/// remain scheduled.
///
/// # Delivery layer
///
/// Buffered messages live in a per-round arena (`one` entry per
/// broadcast or unicast); inboxes record `(sender, arena index)`
/// handles, so delivering a broadcast to `d` neighbors costs `d` small
/// handle pushes instead of `d` message clones. Only nodes that
/// received mail (the *frontier*) are visited in the processing phase,
/// and all per-round buffers (inboxes, outboxes, the arena) are
/// recycled, so steady-state rounds allocate nothing per message or
/// per node — a single pre-sized inbox-ref scratch per round aside
/// (it borrows the round's arena, so it cannot outlive the round).
///
/// # Threaded rounds
///
/// With [`Engine::set_threads`] (or the [`THREADS_ENV`] knob picked up
/// by [`auto_threads`]) above 1, the processing phase shards the
/// frontier across scoped worker threads over disjoint
/// `split_at_mut` node ranges and merges outboxes in ascending node
/// order — the buffered-message order, [`SimStats`], [`RoundLog`], and
/// every process state are bit-identical to the serial path at any
/// thread count (property-tested against [`crate::LegacyEngine`]).
///
/// Because stepping *may* shard, [`Engine::step`] and
/// [`Engine::run_until_quiescent`] require `P: Send` and
/// `P::Msg: Send + Sync` even at one thread (the bounds live on those
/// methods only — construction, accessors, and failure injection have
/// none). A process built on `Rc`/`RefCell` state cannot step this
/// engine; make its state thread-safe (every process in this
/// workspace already is).
pub struct Engine<'n, P: NodeProcess> {
    net: &'n Network,
    nodes: Vec<P>,
    alive: Vec<bool>,
    /// Messages buffered during the current round, delivered at the
    /// start of the next one. One entry per transmission.
    pending: Vec<(NodeId, Option<NodeId>, P::Msg)>,
    /// The arena of messages being delivered this round (last round's
    /// `pending`); the two buffers swap each round so neither is ever
    /// reallocated in steady state.
    delivering: Vec<(NodeId, Option<NodeId>, P::Msg)>,
    /// Per-node `(sender, arena index)` handles into `delivering`.
    inboxes: Vec<Vec<(NodeId, u32)>>,
    /// Nodes with a non-empty inbox this round, sorted ascending before
    /// processing.
    frontier: Vec<u32>,
    in_frontier: Vec<bool>,
    /// Recycled outbox buffers handed to `Ctx`.
    outbox_pool: Vec<Vec<(Option<NodeId>, P::Msg)>>,
    neighbor_scratch: Vec<NodeId>,
    due_scratch: Vec<NodeId>,
    /// Capacity carried between rounds for the per-round inbox-ref
    /// scratch (the vector itself borrows the round's arena, so it
    /// cannot be stored; re-allocating at the remembered capacity
    /// avoids growth reallocations).
    refs_capacity: usize,
    threads: usize,
    stats: SimStats,
    log: RoundLog,
    failures: FailurePlan,
    chaos: ChaosPlan,
    /// Dedicated RNG for chaos drop sampling. Created lazily by
    /// [`Engine::set_chaos_plan`], so a chaos-free engine never owns an
    /// RNG and the delivery path stays draw-free.
    chaos_rng: Option<StdRng>,
    round: usize,
    initialized: bool,
}

impl<'n, P: NodeProcess> Engine<'n, P> {
    /// Creates one process per node with the given factory. The thread
    /// count defaults to [`auto_threads`]; pin it with
    /// [`Engine::set_threads`].
    pub fn new(net: &'n Network, mut make: impl FnMut(NodeId) -> P) -> Engine<'n, P> {
        let n = net.len();
        Engine {
            net,
            nodes: (0..n).map(|i| make(NodeId::new(i))).collect(),
            alive: vec![true; n],
            pending: Vec::new(),
            delivering: Vec::new(),
            inboxes: vec![Vec::new(); n],
            frontier: Vec::new(),
            in_frontier: vec![false; n],
            outbox_pool: Vec::new(),
            neighbor_scratch: Vec::new(),
            due_scratch: Vec::new(),
            refs_capacity: 0,
            threads: auto_threads(n),
            stats: SimStats::default(),
            log: RoundLog::new(),
            failures: FailurePlan::new(),
            chaos: ChaosPlan::new(),
            chaos_rng: None,
            round: 0,
            initialized: false,
        }
    }

    /// Installs a failure plan (replacing any previous one). Rounds are
    /// counted from the first [`Engine::step`] after initialization.
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failures = plan;
    }

    /// Installs a chaos plan (replacing any previous one): scheduled
    /// kills and revivals, partition cut windows, and per-delivery
    /// drops, all sampled from a dedicated RNG seeded by the plan — the
    /// engine's own behavior at any thread count is unchanged by a
    /// quiet plan ([`ChaosPlan::is_quiet`]).
    pub fn set_chaos_plan(&mut self, plan: ChaosPlan) {
        self.chaos_rng = if plan.drop_p() > 0.0 {
            Some(StdRng::seed_from_u64(plan.seed() ^ 0xc4a0_5eed))
        } else {
            None
        };
        self.chaos = plan;
    }

    /// The installed chaos plan (quiet by default).
    pub fn chaos_plan(&self) -> &ChaosPlan {
        &self.chaos
    }

    /// Pins the number of worker threads the processing phase may use
    /// (clamped to at least 1). Results are identical at every count.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Immutable access to the per-node processes.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The process running on one node.
    pub fn node(&self, u: NodeId) -> &P {
        &self.nodes[u.index()]
    }

    /// Whether a node is still alive.
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-round transmission trace.
    pub fn round_log(&self) -> &RoundLog {
        &self.log
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Kills a node immediately and notifies its live neighbors.
    pub fn kill_node(&mut self, victim: NodeId) {
        if !self.alive[victim.index()] {
            return;
        }
        self.alive[victim.index()] = false;
        self.inboxes[victim.index()].clear();
        // Drop in-flight messages from/to the victim.
        self.pending
            .retain(|(from, to, _)| *from != victim && *to != Some(victim));
        self.neighbor_scratch.clear();
        self.neighbor_scratch
            .extend_from_slice(self.net.neighbors(victim));
        for k in 0..self.neighbor_scratch.len() {
            let v = self.neighbor_scratch[k];
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[v.index()].on_neighbor_failed(&mut ctx, victim);
            let mut outbox = ctx.outbox;
            queue_outbox(&mut self.pending, &mut self.stats, v, &mut outbox);
            self.outbox_pool.push(outbox);
        }
    }

    /// Revives a previously-killed node (flapping recovery): the node
    /// runs [`NodeProcess::on_rejoin`], then its live neighbors run
    /// [`NodeProcess::on_neighbor_recovered`] — the same local-repair
    /// path `on_neighbor_failed` uses, in the other direction. Reviving
    /// a live node is a no-op.
    pub fn revive_node(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            return;
        }
        self.alive[node.index()] = true;
        debug_assert!(self.inboxes[node.index()].is_empty());
        let mut ctx = Ctx {
            id: node,
            net: self.net,
            alive: &self.alive,
            outbox: self.outbox_pool.pop().unwrap_or_default(),
        };
        self.nodes[node.index()].on_rejoin(&mut ctx);
        let mut outbox = ctx.outbox;
        queue_outbox(&mut self.pending, &mut self.stats, node, &mut outbox);
        self.outbox_pool.push(outbox);
        self.neighbor_scratch.clear();
        self.neighbor_scratch
            .extend_from_slice(self.net.neighbors(node));
        for k in 0..self.neighbor_scratch.len() {
            let v = self.neighbor_scratch[k];
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[v.index()].on_neighbor_recovered(&mut ctx, node);
            let mut outbox = ctx.outbox;
            queue_outbox(&mut self.pending, &mut self.stats, v, &mut outbox);
            self.outbox_pool.push(outbox);
        }
    }

    /// Runs [`NodeProcess::on_init`] on every live node. Called
    /// automatically by the run/step methods; calling it twice is a no-op.
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.nodes.len() {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Ctx {
                id: NodeId::new(i),
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[i].on_init(&mut ctx);
            let mut outbox = ctx.outbox;
            queue_outbox(
                &mut self.pending,
                &mut self.stats,
                NodeId::new(i),
                &mut outbox,
            );
            self.outbox_pool.push(outbox);
        }
    }

    fn pending_activity(&self) -> bool {
        !self.pending.is_empty()
            || self
                .failures
                .last_round()
                .is_some_and(|last| last >= self.round)
            || self
                .chaos
                .last_round()
                .is_some_and(|last| last >= self.round)
    }
}

/// The stepping methods. Only these carry `Send`/`Sync` bounds — they
/// are where rounds may shard across threads; construction, accessors,
/// and failure injection stay available to any process type.
impl<'n, P> Engine<'n, P>
where
    P: NodeProcess + Send,
    P::Msg: Send + Sync,
{
    /// Executes one round. Returns `true` while the system is still
    /// active (messages delivered or failures applied this round).
    // sp-analyze: allow(index, all indices are u32 node ids bounded by the construction-time node count; per-node arrays share that length)
    pub fn step(&mut self) -> bool {
        self.init();
        let chaos_round = self.round;
        self.due_scratch.clear();
        self.due_scratch
            .extend_from_slice(self.failures.due_at(self.round));
        self.due_scratch
            .extend_from_slice(self.chaos.kills_due_at(self.round));
        let mut had_events = !self.due_scratch.is_empty();
        for k in 0..self.due_scratch.len() {
            let v = self.due_scratch[k];
            self.kill_node(v);
        }
        // Flapping recovery: revivals fire after this round's kills, so
        // a node killed and revived at the same round ends up alive.
        self.due_scratch.clear();
        self.due_scratch
            .extend_from_slice(self.chaos.revivals_due_at(self.round));
        had_events |= !self.due_scratch.is_empty();
        for k in 0..self.due_scratch.len() {
            let v = self.due_scratch[k];
            self.revive_node(v);
        }

        if self.pending.is_empty() && !had_events {
            // Idle round: if failures or chaos events are still
            // scheduled ahead, time must advance toward them; otherwise
            // the system is quiescent.
            let future = |last: usize| last > chaos_round;
            if self.failures.last_round().is_some_and(future)
                || self.chaos.last_round().is_some_and(future)
            {
                self.round += 1;
                self.stats.rounds = self.round;
                self.log.record(0);
                return true;
            }
            return false;
        }
        self.round += 1;
        self.stats.rounds = self.round;

        // Deliver: this round's transmissions become the message arena;
        // receivers get (sender, arena index) handles, so a broadcast
        // costs one buffered message no matter the degree. Nodes that
        // receive mail enter the frontier exactly once.
        std::mem::swap(&mut self.pending, &mut self.delivering);
        debug_assert!(self.pending.is_empty());
        assert!(
            self.delivering.len() <= u32::MAX as usize,
            "more than u32::MAX transmissions in one round"
        );
        let tx_this_round = self.delivering.len();
        // Link chaos gates the delivery path only when the plan is
        // active this round, so a quiet plan leaves the hot loop (and
        // the RNG stream: no draws happen) untouched. Delivery is
        // serial, so drop draws occur in arena order at every thread
        // count.
        let perturbed = self.chaos.links_perturbed_at(chaos_round);
        let drop_p = self.chaos.drop_p();
        for (idx, (from, to, _)) in self.delivering.iter().enumerate() {
            match *to {
                None => {
                    for &v in self.net.neighbors(*from) {
                        if self.alive[v.index()] {
                            if perturbed {
                                if self.chaos.severed_at(
                                    chaos_round,
                                    self.net.position(*from),
                                    self.net.position(v),
                                ) {
                                    continue;
                                }
                                if drop_p > 0.0
                                    && self
                                        .chaos_rng
                                        .as_mut()
                                        .is_some_and(|rng| rng.random_bool(drop_p))
                                {
                                    continue;
                                }
                            }
                            self.inboxes[v.index()].push((*from, idx as u32));
                            self.stats.receptions += 1;
                            if !self.in_frontier[v.index()] {
                                self.in_frontier[v.index()] = true;
                                self.frontier.push(v.index() as u32);
                            }
                        }
                    }
                }
                Some(v) => {
                    if self.alive[v.index()] && self.net.has_edge(*from, v) {
                        if perturbed {
                            if self.chaos.severed_at(
                                chaos_round,
                                self.net.position(*from),
                                self.net.position(v),
                            ) {
                                continue;
                            }
                            if drop_p > 0.0
                                && self
                                    .chaos_rng
                                    .as_mut()
                                    .is_some_and(|rng| rng.random_bool(drop_p))
                            {
                                continue;
                            }
                        }
                        self.inboxes[v.index()].push((*from, idx as u32));
                        self.stats.receptions += 1;
                        if !self.in_frontier[v.index()] {
                            self.in_frontier[v.index()] = true;
                            self.frontier.push(v.index() as u32);
                        }
                    }
                }
            }
        }
        self.log.record(tx_this_round);

        // Process only the frontier, in ascending node order (the same
        // order the full scan used to visit).
        self.frontier.sort_unstable();
        if self.threads > 1 && self.frontier.len() >= MIN_PARALLEL_FRONTIER {
            self.process_frontier_threaded();
        } else {
            self.process_frontier_serial();
        }

        // Reset per-round state, retaining every allocation.
        for k in 0..self.frontier.len() {
            let i = self.frontier[k] as usize;
            self.inboxes[i].clear();
            self.in_frontier[i] = false;
        }
        self.frontier.clear();
        self.delivering.clear();
        true
    }

    fn process_frontier_serial(&mut self) {
        let mut refs: Vec<(NodeId, &P::Msg)> = Vec::with_capacity(self.refs_capacity);
        for k in 0..self.frontier.len() {
            let i = self.frontier[k] as usize;
            if !self.alive[i] || self.inboxes[i].is_empty() {
                continue;
            }
            refs.clear();
            refs.extend(
                self.inboxes[i]
                    .iter()
                    .map(|&(from, m)| (from, &self.delivering[m as usize].2)),
            );
            let mut ctx = Ctx {
                id: NodeId::new(i),
                net: self.net,
                alive: &self.alive,
                outbox: self.outbox_pool.pop().unwrap_or_default(),
            };
            self.nodes[i].on_round(&mut ctx, &refs);
            let mut outbox = ctx.outbox;
            queue_outbox(
                &mut self.pending,
                &mut self.stats,
                NodeId::new(i),
                &mut outbox,
            );
            self.outbox_pool.push(outbox);
        }
        self.refs_capacity = refs.capacity();
    }

    /// The processing phase sharded across worker threads. The sorted
    /// frontier is cut into contiguous chunks; each chunk *owns* the
    /// `split_at_mut` node range covering it (ranges are disjoint
    /// because the frontier is sorted and deduplicated), so no two
    /// workers claiming chunks off the shared [`sp_sync::WorkQueue`]
    /// ever touch the same process. Outboxes are merged in chunk order
    /// — ascending node order — which reproduces the serial
    /// buffered-message order exactly.
    fn process_frontier_threaded(&mut self) {
        let threads = self.threads.min(self.frontier.len());
        let chunk_len = self.frontier.len().div_ceil(threads);
        let frontier = &self.frontier;
        let inboxes = &self.inboxes;
        let delivering = &self.delivering;
        let alive = &self.alive;
        let net = self.net;
        // One owned work item per chunk: its frontier ids, the disjoint
        // mutable node range covering them, and the range's base id.
        let mut chunks: Vec<(&[u32], &mut [P], usize)> = Vec::with_capacity(threads);
        let mut rest: &mut [P] = &mut self.nodes;
        let mut offset = 0usize;
        for ids in frontier.chunks(chunk_len) {
            let lo = ids[0] as usize;
            let hi = *ids.last().expect("chunks are non-empty") as usize; // sp-analyze: allow(panic, chunks() never yields an empty slice)
            let tail = rest.split_at_mut(lo - offset).1;
            let (mine, tail) = tail.split_at_mut(hi - lo + 1);
            rest = tail;
            offset = hi + 1;
            chunks.push((ids, mine, lo));
        }
        let mut merged: Vec<Vec<TaggedOutbox<P::Msg>>> =
            WorkQueue::new().run_owned(threads, chunks, |(ids, mine, lo)| {
                let mut out: Vec<TaggedOutbox<P::Msg>> = Vec::with_capacity(ids.len());
                let mut refs: Vec<(NodeId, &P::Msg)> = Vec::new();
                for &id in ids {
                    let i = id as usize;
                    if !alive[i] || inboxes[i].is_empty() {
                        continue;
                    }
                    refs.clear();
                    refs.extend(
                        inboxes[i]
                            .iter()
                            .map(|&(from, m)| (from, &delivering[m as usize].2)),
                    );
                    let mut ctx = Ctx {
                        id: NodeId::new(i),
                        net,
                        alive,
                        outbox: Vec::new(),
                    };
                    mine[i - lo].on_round(&mut ctx, &refs);
                    if !ctx.outbox.is_empty() {
                        out.push((id, ctx.outbox));
                    }
                }
                out
            });
        for shard in &mut merged {
            for (id, outbox) in shard.iter_mut() {
                queue_outbox(
                    &mut self.pending,
                    &mut self.stats,
                    NodeId::new(*id as usize),
                    outbox,
                );
                // Workers allocate their own buffers; recycle a bounded
                // number into the pool for the serial paths and drop
                // the rest.
                if self.outbox_pool.len() < OUTBOX_POOL_CAP {
                    self.outbox_pool.push(std::mem::take(outbox));
                }
            }
        }
    }

    /// Runs until quiescence (no in-flight messages, no pending
    /// failures) or until `max_rounds` is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] when the protocol is
    /// still active after `max_rounds` rounds.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<SimStats, SimError> {
        self.init();
        while self.pending_activity() {
            if self.round >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
        }
        self.stats.quiesced = true;
        Ok(self.stats)
    }
}

/// Drains `outbox` into the engine's buffered-message queue, counting
/// transmissions. A free function so callers can hold disjoint borrows
/// of other engine fields (e.g. the message arena) while queueing.
pub(crate) fn queue_outbox<M>(
    pending: &mut Vec<(NodeId, Option<NodeId>, M)>,
    stats: &mut SimStats,
    from: NodeId,
    outbox: &mut Vec<(Option<NodeId>, M)>,
) {
    for (to, msg) in outbox.drain(..) {
        match to {
            None => stats.broadcasts += 1,
            Some(_) => stats.unicasts += 1,
        }
        pending.push((from, to, msg));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LegacyEngine;
    use sp_geom::{Point, Rect};

    fn line_net(n: usize) -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1000.0, 10.0));
        Network::from_positions(
            (0..n).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
            15.0,
            area,
        )
    }

    /// Counts how many rounds until it saw a token passed hop by hop.
    struct Relay {
        has_token: bool,
    }

    impl NodeProcess for Relay {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.id() == NodeId(0) {
                self.has_token = true;
                // Unicast to the next node on the line.
                ctx.send(NodeId(1), 1);
            }
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, &u64)]) {
            if self.has_token {
                return;
            }
            if let Some(&(_, &hops)) = inbox.first() {
                self.has_token = true;
                let next = NodeId::new(ctx.id().index() + 1);
                if next.index() < ctx.net_len() {
                    ctx.send(next, hops + 1);
                }
            }
        }
    }

    impl<'a, M> Ctx<'a, M> {
        fn net_len(&self) -> usize {
            self.net.len()
        }
    }

    #[test]
    fn token_relay_takes_one_round_per_hop() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |_| Relay { has_token: false });
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(engine.nodes().iter().all(|n| n.has_token));
        assert_eq!(stats.rounds, 5, "five hops of unicast");
        assert_eq!(stats.unicasts, 5);
        assert_eq!(stats.broadcasts, 0);
        assert!(stats.quiesced);
        assert_eq!(engine.round_log().per_round(), &[1, 1, 1, 1, 1]);
    }

    struct Gossip {
        value: u64,
    }

    impl NodeProcess for Gossip {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(self.value);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, &u64)]) {
            let best = inbox.iter().map(|&(_, &v)| v).max().unwrap_or(0);
            if best > self.value {
                self.value = best;
                ctx.broadcast(best);
            }
        }
    }

    #[test]
    fn max_gossip_converges_to_global_max() {
        let net = line_net(8);
        let mut engine = Engine::new(&net, |id| Gossip {
            value: (id.index() as u64) * 10,
        });
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        for n in engine.nodes() {
            assert_eq!(n.value, 70);
        }
    }

    #[test]
    fn killed_node_partitions_relay() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |_| Relay { has_token: false });
        let mut plan = FailurePlan::new();
        plan.kill_at(2, NodeId(3));
        engine.set_failure_plan(plan);
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        assert!(!engine.node(NodeId(4)).has_token, "token blocked at n3");
        assert!(!engine.is_alive(NodeId(3)));
        assert!(engine.node(NodeId(2)).has_token);
    }

    struct Chatterbox;
    impl NodeProcess for Chatterbox {
        type Msg = ();
        fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
            ctx.broadcast(());
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {
            ctx.broadcast(()); // never stops
        }
    }

    #[test]
    fn round_limit_detects_livelock() {
        let net = line_net(3);
        let mut engine = Engine::new(&net, |_| Chatterbox);
        let err = engine.run_until_quiescent(10).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
        assert!(err.to_string().contains("10 rounds"));
    }

    #[test]
    fn unicast_to_non_neighbor_is_dropped() {
        struct Shouter;
        impl NodeProcess for Shouter {
            type Msg = ();
            fn on_init(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.id() == NodeId(0) {
                    ctx.send(NodeId(2), ()); // two hops away: out of range
                }
            }
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {}
        }
        let net = line_net(3);
        let mut engine = Engine::new(&net, |_| Shouter);
        let stats = engine.run_until_quiescent(10).unwrap();
        assert_eq!(stats.unicasts, 1, "transmission happened");
        assert_eq!(stats.receptions, 0, "but nobody heard it");
    }

    #[test]
    fn immediate_quiescence_when_nobody_talks() {
        struct Mute;
        impl NodeProcess for Mute {
            type Msg = ();
            fn on_init(&mut self, _ctx: &mut Ctx<'_, ()>) {}
            fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {}
        }
        let net = line_net(4);
        let mut engine = Engine::new(&net, |_| Mute);
        let stats = engine.run_until_quiescent(10).unwrap();
        assert_eq!(stats.rounds, 0);
        assert!(stats.quiesced);
    }

    /// The tentpole invariant at unit-test scale: every thread count
    /// (including ones far above the frontier size) reproduces the
    /// legacy engine's stats, round log, and final states, with and
    /// without failures.
    #[test]
    fn threaded_engine_matches_legacy_bit_for_bit() {
        let net = line_net(40);
        let run_legacy = |plan: &FailurePlan| {
            let mut engine = LegacyEngine::new(&net, |id| Gossip {
                value: (id.index() as u64) * 3,
            });
            engine.set_failure_plan(plan.clone());
            let stats = engine.run_until_quiescent(1000).unwrap();
            let values: Vec<u64> = engine.nodes().iter().map(|g| g.value).collect();
            (stats, engine.round_log().per_round().to_vec(), values)
        };
        let run_new = |plan: &FailurePlan, threads: usize| {
            let mut engine = Engine::new(&net, |id| Gossip {
                value: (id.index() as u64) * 3,
            });
            engine.set_failure_plan(plan.clone());
            engine.set_threads(threads);
            let stats = engine.run_until_quiescent(1000).unwrap();
            let values: Vec<u64> = engine.nodes().iter().map(|g| g.value).collect();
            (stats, engine.round_log().per_round().to_vec(), values)
        };
        let mut plans = vec![FailurePlan::new()];
        let mut failing = FailurePlan::new();
        failing.kill_at(2, NodeId(7));
        failing.kill_at(5, NodeId(20));
        plans.push(failing);
        for plan in &plans {
            let want = run_legacy(plan);
            for threads in [1usize, 2, 3, 8, 64] {
                assert_eq!(run_new(plan, threads), want, "threads={threads}");
            }
        }
    }

    #[test]
    fn quiet_chaos_plan_is_bit_identical_to_no_plan() {
        let net = line_net(30);
        let run = |with_plan: bool| {
            let mut engine = Engine::new(&net, |id| Gossip {
                value: (id.index() as u64) * 5,
            });
            if with_plan {
                engine.set_chaos_plan(ChaosPlan::new().with_seed(42));
            }
            let stats = engine.run_until_quiescent(1000).unwrap();
            let values: Vec<u64> = engine.nodes().iter().map(|g| g.value).collect();
            (stats, engine.round_log().per_round().to_vec(), values)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn drop_probability_one_blackholes_every_delivery() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |id| Gossip {
            value: id.index() as u64,
        });
        engine.set_chaos_plan(ChaosPlan::new().with_drop(1.0));
        let stats = engine.run_until_quiescent(100).unwrap();
        assert_eq!(stats.receptions, 0, "every delivery dropped");
        assert_eq!(engine.node(NodeId(0)).value, 0, "nothing propagated");
    }

    #[test]
    fn cut_window_partitions_the_line_while_active() {
        let net = line_net(6);
        let mut engine = Engine::new(&net, |_| Relay { has_token: false });
        let mut plan = ChaosPlan::new();
        // Sever the link between x=20 and x=30 for the whole run.
        plan.add_cut(crate::CutWindow {
            a: Point::new(25.0, -5.0),
            b: Point::new(25.0, 5.0),
            from_round: 0,
            until_round: 8,
        });
        engine.set_chaos_plan(plan);
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        assert!(engine.node(NodeId(2)).has_token, "west side relayed");
        assert!(!engine.node(NodeId(3)).has_token, "cut blocked the token");
    }

    struct FlapProbe {
        rejoined: usize,
        recovered: Vec<NodeId>,
    }
    impl NodeProcess for FlapProbe {
        type Msg = ();
        fn on_init(&mut self, _ctx: &mut Ctx<'_, ()>) {}
        fn on_round(&mut self, _ctx: &mut Ctx<'_, ()>, _inbox: &[(NodeId, &())]) {}
        fn on_rejoin(&mut self, ctx: &mut Ctx<'_, ()>) {
            self.rejoined += 1;
            ctx.broadcast(());
        }
        fn on_neighbor_recovered(&mut self, _ctx: &mut Ctx<'_, ()>, recovered: NodeId) {
            self.recovered.push(recovered);
        }
    }

    #[test]
    fn flapping_node_rejoins_and_neighbors_hear_about_it() {
        let net = line_net(5);
        let mut engine = Engine::new(&net, |_| FlapProbe {
            rejoined: 0,
            recovered: Vec::new(),
        });
        let mut plan = ChaosPlan::new();
        plan.kill_at(1, NodeId(2));
        plan.revive_at(3, NodeId(2));
        engine.set_chaos_plan(plan);
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        assert!(engine.is_alive(NodeId(2)), "revived");
        assert_eq!(engine.node(NodeId(2)).rejoined, 1);
        assert_eq!(engine.node(NodeId(1)).recovered, vec![NodeId(2)]);
        assert_eq!(engine.node(NodeId(3)).recovered, vec![NodeId(2)]);
        assert!(
            stats.broadcasts >= 1,
            "the rejoin announcement was transmitted"
        );
        assert!(stats.receptions >= 2, "both neighbors heard the rejoin");
    }

    #[test]
    fn chaos_drops_are_deterministic_per_seed_and_thread_count() {
        let net = line_net(40);
        let run = |threads: usize| {
            let mut engine = Engine::new(&net, |id| Gossip {
                value: (id.index() as u64) * 3,
            });
            let mut plan = ChaosPlan::new().with_seed(7).with_drop(0.3);
            plan.kill_at(2, NodeId(11));
            plan.revive_at(5, NodeId(11));
            engine.set_chaos_plan(plan);
            engine.set_threads(threads);
            let stats = engine.run_until_quiescent(1000).unwrap();
            let values: Vec<u64> = engine.nodes().iter().map(|g| g.value).collect();
            (stats, engine.round_log().per_round().to_vec(), values)
        };
        let want = run(1);
        for threads in [2usize, 3, 8] {
            assert_eq!(run(threads), want, "threads={threads}");
        }
    }
}
