//! Scenario tests reconstructing the situations the paper argues with:
//! the intertwined blocking areas of Fig. 1(a), the safe/backup/perimeter
//! phases of Fig. 4, and FA deployments with a dominating hole.

use straightpath::geom::Circle;
use straightpath::net::Network as Net;
use straightpath::prelude::*;

/// Fig. 1(a): two blocking areas in sequence. A routing without area
/// shape information detours into the pocket between them; SLGF2's
/// information model should never do *worse* than LGF here, and both
/// must deliver.
#[test]
fn intertwined_blocking_areas_fig1a() {
    let cfg = DeploymentConfig::paper_default(600);
    // Two staggered forbidden bars force an S-shaped corridor.
    let obstacles = vec![
        Obstacle::Rect(Rect::from_corners(
            Point::new(60.0, 40.0),
            Point::new(90.0, 150.0),
        )),
        Obstacle::Rect(Rect::from_corners(
            Point::new(120.0, 50.0),
            Point::new(150.0, 160.0),
        )),
    ];
    let mut delivered_slgf2 = 0;
    let mut hop_diffs: Vec<i64> = Vec::new();
    for seed in 0..12u64 {
        let pos = cfg.deploy_with_obstacles(&obstacles, seed);
        let net = Net::from_positions(pos, cfg.radius, cfg.area);
        let src = nearest(&net, Point::new(30.0, 100.0));
        let dst = nearest(&net, Point::new(180.0, 100.0));
        if !net.connected(src, dst) {
            continue;
        }
        let info = SafetyInfo::build(&net);
        let r2 = Slgf2Router::new(&info).route(&net, src, dst);
        if r2.delivered() {
            delivered_slgf2 += 1;
        }
        let r1 = LgfRouter::new().route(&net, src, dst);
        if r1.delivered() && r2.delivered() {
            hop_diffs.push(r2.hops() as i64 - r1.hops() as i64);
        }
    }
    assert!(
        delivered_slgf2 >= 10,
        "SLGF2 must deliver across the double bar: {delivered_slgf2}/12"
    );
    assert!(
        hop_diffs.len() >= 5,
        "need joint deliveries to compare ({})",
        hop_diffs.len()
    );
    // Compare the *median* per-seed hop difference: both recovery-based
    // schemes occasionally take a long escort around the bars on one
    // unlucky deployment, and a single such ~60-hop outlier would
    // dominate a sum over only 12 seeds. The paper's claim is about the
    // typical case, which the median captures robustly.
    hop_diffs.sort_unstable();
    let median = hop_diffs[hop_diffs.len() / 2];
    assert!(
        median <= 2,
        "SLGF2 should not typically lose to LGF on Fig. 1(a): median hop diff {median}, diffs {hop_diffs:?}"
    );
}

/// Fig. 4(a)-(c): on a dense safe network, SLGF2 routes purely in the
/// safe forwarding phase and matches plain greedy hop counts.
#[test]
fn safe_forwarding_matches_greedy_on_dense_network() {
    let cfg = DeploymentConfig::paper_default(800);
    let net = Net::from_positions(cfg.deploy_uniform(5), cfg.radius, cfg.area);
    let info = SafetyInfo::build(&net);
    let gf = GfRouter::new(&net);
    let slgf2 = Slgf2Router::new(&info);
    let comp = net.largest_component();
    let mut diffs = 0i64;
    let mut n = 0;
    for k in 1..8 {
        let s = comp[k * comp.len() / 9];
        let d = comp[comp.len() - 1 - k * comp.len() / 11];
        if s == d {
            continue;
        }
        let rg = gf.route(&net, s, d);
        let r2 = slgf2.route(&net, s, d);
        if rg.delivered() && r2.delivered() {
            diffs += r2.hops() as i64 - rg.hops() as i64;
            n += 1;
        }
    }
    assert!(n >= 5);
    // On dense IA networks the two schemes should be within ~2 hops of
    // each other on average.
    assert!(
        (diffs as f64 / n as f64).abs() <= 2.0,
        "SLGF2 vs GF hop difference too large: {diffs}/{n}"
    );
}

/// A single dominating central hole (the FA regime): SLGF2's average
/// path must not be longer than LGF's average, and its perimeter usage
/// must be lower — the headline claim of the paper.
#[test]
fn central_hole_headline_comparison() {
    let cfg = DeploymentConfig::paper_default(650);
    let obstacles = vec![Obstacle::Circle(Circle::new(
        Point::new(100.0, 100.0),
        35.0,
    ))];
    let mut len_lgf = 0.0f64;
    let mut len_slgf2 = 0.0f64;
    let mut per_lgf = 0usize;
    let mut per_slgf2 = 0usize;
    let mut n = 0;
    for seed in 0..15u64 {
        let pos = cfg.deploy_with_obstacles(&obstacles, seed);
        let net = Net::from_positions(pos, cfg.radius, cfg.area);
        let src = nearest(&net, Point::new(25.0, 100.0));
        let dst = nearest(&net, Point::new(175.0, 100.0));
        if !net.connected(src, dst) {
            continue;
        }
        let info = SafetyInfo::build(&net);
        let r1 = LgfRouter::new().route(&net, src, dst);
        let r2 = Slgf2Router::new(&info).route(&net, src, dst);
        if r1.delivered() && r2.delivered() {
            len_lgf += r1.length(&net);
            len_slgf2 += r2.length(&net);
            per_lgf += r1.perimeter_entries;
            per_slgf2 += r2.perimeter_entries;
            n += 1;
        }
    }
    assert!(n >= 8, "need joint deliveries, got {n}");
    assert!(
        len_slgf2 <= len_lgf * 1.05,
        "SLGF2 avg length {:.1} vs LGF {:.1} over {n} runs",
        len_slgf2 / n as f64,
        len_lgf / n as f64
    );
    assert!(
        per_slgf2 <= per_lgf,
        "SLGF2 perimeter entries {per_slgf2} vs LGF {per_lgf}"
    );
}

/// Unsafe sources are exactly the case SLGF2's backup phase targets
/// (Fig. 4(d)): find unsafe sources in FA networks and verify SLGF2
/// still delivers from them.
#[test]
fn unsafe_sources_are_routable() {
    let cfg = DeploymentConfig::paper_default(500);
    let fa = FaModel::paper_default();
    let mut tested = 0;
    let mut delivered = 0;
    for seed in 40..52u64 {
        let obstacles = fa.generate_obstacles(&cfg, seed);
        let pos = cfg.deploy_with_obstacles(&obstacles, seed);
        let net = Net::from_positions(pos, cfg.radius, cfg.area);
        let info = SafetyInfo::build(&net);
        let comp = net.largest_component();
        // An unsafe (but not fully-unsafe) source, the backup-phase
        // precondition.
        let Some(&src) = comp.iter().find(|&&u| {
            let t = info.tuple(u);
            !t.fully_safe() && t.any_safe()
        }) else {
            continue;
        };
        let dst = comp[comp.len() - 1];
        if src == dst {
            continue;
        }
        tested += 1;
        if Slgf2Router::new(&info).route(&net, src, dst).delivered() {
            delivered += 1;
        }
    }
    assert!(tested >= 6, "not enough unsafe-source cases ({tested})");
    assert!(
        delivered * 10 >= tested * 8,
        "SLGF2 from unsafe sources: {delivered}/{tested}"
    );
}

fn nearest(net: &Net, target: Point) -> NodeId {
    net.node_ids()
        .min_by(|&a, &b| {
            net.position(a)
                .distance_sq(target)
                .total_cmp(&net.position(b).distance_sq(target))
        })
        .expect("non-empty network")
}
