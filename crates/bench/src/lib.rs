//! Benchmark-only crate: see the `benches/` directory. Each bench
//! regenerates one of the paper's figures at reduced scale and times
//! the pipeline that produces it; `repro-figures` (in
//! `sp-experiments`) produces the full-scale tables.
