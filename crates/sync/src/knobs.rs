//! The declared registry of every `SP_*` environment knob the
//! workspace reads, and the one thread-count policy behind the
//! `SP_*_THREADS` family.
//!
//! Knobs used to be scattered string literals — easy to add, easy to
//! leave undocumented, impossible to audit. Now every knob is one row
//! in [`ENV_KNOBS`], every read goes through [`env_var`] /
//! [`env_flag`] / [`configured_threads_for`] (which refuse
//! unregistered names), and the `sp-analyze` CI pass fails the build
//! when an `SP_*` literal appears outside this file or is missing
//! from the README's generated knob table ([`markdown_table`]).

/// One declared environment knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnvKnob {
    /// The environment variable name (`SP_…`).
    pub name: &'static str,
    /// What the knob controls, for the generated README table.
    pub summary: &'static str,
    /// Behavior when the variable is unset.
    pub default: &'static str,
}

/// Every `SP_*` environment variable the workspace reads. Add a row
/// here (and regenerate the README table with
/// `cargo run -p sp-analyze -- --knob-table`) before reading a new
/// knob anywhere — `sp-analyze` enforces both.
pub const ENV_KNOBS: &[EnvKnob] = &[
    EnvKnob {
        name: "SP_NET_THREADS",
        summary: "Worker threads for spatial-index adjacency construction and \
                  incremental mobility repair (sp-net).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_SIM_THREADS",
        summary: "Worker threads for distributed-construction round processing (sp-sim).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_TRAFFIC_THREADS",
        summary: "Worker threads for `TrafficEngine` flow batches (sp-core).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_SWEEP_THREADS",
        summary: "Worker threads for sweep instance jobs (sp-experiments).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_SERVICE_THREADS",
        summary: "Worker threads for `RoutingService` query batches and the \
                  `service_latency` bench's session workers (sp-core).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_SERVICE_CHURN",
        summary: "Movers per background epoch publish in the `service_latency` \
                  bench's churn thread.",
        default: "100",
    },
    EnvKnob {
        name: "SP_CHAOS_SPEC",
        summary: "Chaos recipe (grammar: `class:k=v[@roundN]+…`) injected by the \
                  `chaos_resilience` bench's delivery and construction rows.",
        default: "region:r=0.15@round5+drop:p=0.01",
    },
    EnvKnob {
        name: "SP_SERVE_THREADS",
        summary: "Worker threads in the `sp-serve` TCP front end's connection pool \
                  (one `ServiceSession` + reused route buffer per worker).",
        default: "available parallelism",
    },
    EnvKnob {
        name: "SP_SERVE_ADDR",
        summary: "Listen address for the `sp-served` binary (`host:port`; port 0 \
                  picks an ephemeral port).",
        default: "127.0.0.1:4617",
    },
    EnvKnob {
        name: "SP_SERVE_TELEMETRY",
        summary: "Path of the `sp-serve` periodic telemetry JSONL export; unset \
                  disables the exporter thread.",
        default: "unset (no export)",
    },
    EnvKnob {
        name: "SP_BENCH_SCALE",
        summary: "Set to `large` to include the million-node bench rows \
                  (`construct_1m`, `local_1m`) in sp-bench runs.",
        default: "unset (small-scale rows only)",
    },
];

/// The registry row for `name`, or `None` for unregistered names.
pub fn knob(name: &str) -> Option<&'static EnvKnob> {
    ENV_KNOBS.iter().find(|k| k.name == name)
}

/// Reads a **registered** knob from the environment.
///
/// # Panics
///
/// Panics when `name` is not in [`ENV_KNOBS`] — an unregistered read
/// is exactly the drift this registry exists to stop, and `sp-analyze`
/// keeps it from ever reaching a release build.
pub fn env_var(name: &str) -> Option<String> {
    // sp-analyze: allow(panic, unregistered knob reads must fail loudly in tests rather than ship)
    assert!(
        knob(name).is_some(),
        "environment knob {name} is not declared in sp_sync::knobs::ENV_KNOBS"
    );
    // sp-analyze: allow(env, this is the single blessed env read behind the registry)
    std::env::var(name).ok()
}

/// True when the registered knob `name` is set to exactly `value`.
pub fn env_flag(name: &str, value: &str) -> bool {
    env_var(name).is_some_and(|v| v == value)
}

/// The workspace-wide thread-count policy, parameterized by the
/// `SP_*_THREADS` knob that pins it: the knob's value when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`].
///
/// Every thread-count decision in the workspace routes through here
/// (enforced by `sp-analyze`'s concurrency rule), so pinning a knob to
/// `1` always yields the serial path and the parity tests can sweep
/// thread counts deterministically.
///
/// # Panics
///
/// Panics when `env` is not a registered knob (see [`env_var`]).
pub fn configured_threads_for(env: &str) -> usize {
    if let Some(raw) = env_var(env) {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    // sp-analyze: allow(concurrency, this is the single blessed available_parallelism fallback)
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The generated markdown knob table the README embeds between its
/// `<!-- sp-analyze:knobs -->` markers; `sp-analyze` regenerates and
/// cross-checks it so the docs can never drift from the registry.
pub fn markdown_table() -> String {
    let mut out = String::from("| Knob | Default | Controls |\n|---|---|---|\n");
    for k in ENV_KNOBS {
        let squash = |s: &str| s.split_whitespace().collect::<Vec<_>>().join(" ");
        out.push_str(&format!(
            "| `{}` | {} | {} |\n",
            k.name,
            squash(k.default),
            squash(k.summary)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_knob_is_unique_and_sp_prefixed() {
        for (i, k) in ENV_KNOBS.iter().enumerate() {
            assert!(k.name.starts_with("SP_"), "{} must be SP_-prefixed", k.name);
            assert!(!k.summary.is_empty() && !k.default.is_empty());
            assert!(
                ENV_KNOBS[i + 1..].iter().all(|o| o.name != k.name),
                "duplicate knob {}",
                k.name
            );
        }
    }

    #[test]
    fn lookup_finds_registered_knobs_only() {
        assert!(knob("SP_NET_THREADS").is_some());
        assert!(knob("SP_NOT_A_KNOB").is_none());
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn unregistered_read_panics() {
        let _ = env_var("SP_NOT_A_KNOB");
    }

    #[test]
    fn thread_policy_reads_the_pin_knob() {
        // Serializes with other env-reading tests via a throwaway var:
        // the test suite only mutates this one knob.
        std::env::set_var("SP_SWEEP_THREADS", "3");
        assert_eq!(configured_threads_for("SP_SWEEP_THREADS"), 3);
        std::env::set_var("SP_SWEEP_THREADS", "0");
        assert!(configured_threads_for("SP_SWEEP_THREADS") >= 1);
        std::env::set_var("SP_SWEEP_THREADS", "nonsense");
        assert!(configured_threads_for("SP_SWEEP_THREADS") >= 1);
        std::env::remove_var("SP_SWEEP_THREADS");
        assert!(configured_threads_for("SP_SWEEP_THREADS") >= 1);
    }

    #[test]
    fn markdown_table_lists_every_knob() {
        let table = markdown_table();
        for k in ENV_KNOBS {
            assert!(table.contains(k.name), "table must list {}", k.name);
        }
        assert_eq!(table.lines().count(), 2 + ENV_KNOBS.len());
    }
}
