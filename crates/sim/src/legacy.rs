//! The pre-optimization lock-step scheduler, frozen.
//!
//! [`LegacyEngine`] is the engine as it existed before the zero-copy /
//! frontier / threaded-round rework of [`crate::Engine`]: broadcasts
//! are cloned **once per neighbor edge** at delivery, every round scans
//! all `n` nodes, and each callback gets freshly allocated inbox and
//! outbox buffers. It is kept (not doc-hidden) for two jobs:
//!
//! * the `distributed_construction` benchmark measures the optimized
//!   engine's speedup against it — the committed
//!   `BENCH_distributed.json` baseline records the ratio on every CI
//!   run, so the "pre-PR engine" stays measurable forever;
//! * the engine-parity property tests assert that [`crate::Engine`]
//!   reproduces its [`SimStats`], [`RoundLog`], and final process
//!   states bit-for-bit at every thread count.
//!
//! Production call sites must use [`crate::Engine`]. The only
//! departure from the historical code is forced by the by-reference
//! inbox API: messages are still cloned per edge into owned inboxes,
//! and a per-node reference slice is built on top before each
//! [`NodeProcess::on_round`] call.

use crate::{Ctx, FailurePlan, NodeProcess, RoundLog, SimError, SimStats};
use sp_net::{Network, NodeId};

/// The seed synchronous executor: clone-per-edge delivery, full-table
/// round scans, no buffer reuse. See the module docs for why it is
/// retained.
pub struct LegacyEngine<'n, P: NodeProcess> {
    net: &'n Network,
    nodes: Vec<P>,
    alive: Vec<bool>,
    inboxes: Vec<Vec<(NodeId, P::Msg)>>,
    pending: Vec<(NodeId, Option<NodeId>, P::Msg)>,
    stats: SimStats,
    log: RoundLog,
    failures: FailurePlan,
    round: usize,
    initialized: bool,
}

impl<'n, P: NodeProcess> LegacyEngine<'n, P> {
    /// Creates one process per node with the given factory.
    pub fn new(net: &'n Network, mut make: impl FnMut(NodeId) -> P) -> LegacyEngine<'n, P> {
        let n = net.len();
        LegacyEngine {
            net,
            nodes: (0..n).map(|i| make(NodeId::new(i))).collect(),
            alive: vec![true; n],
            inboxes: vec![Vec::new(); n],
            pending: Vec::new(),
            stats: SimStats::default(),
            log: RoundLog::new(),
            failures: FailurePlan::new(),
            round: 0,
            initialized: false,
        }
    }

    /// Installs a failure plan (replacing any previous one).
    pub fn set_failure_plan(&mut self, plan: FailurePlan) {
        self.failures = plan;
    }

    /// Immutable access to the per-node processes.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The process running on one node.
    pub fn node(&self, u: NodeId) -> &P {
        &self.nodes[u.index()]
    }

    /// Whether a node is still alive.
    pub fn is_alive(&self, u: NodeId) -> bool {
        self.alive[u.index()]
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> SimStats {
        self.stats
    }

    /// Per-round transmission trace.
    pub fn round_log(&self) -> &RoundLog {
        &self.log
    }

    /// The network being simulated.
    pub fn network(&self) -> &Network {
        self.net
    }

    /// Kills a node immediately and notifies its live neighbors.
    pub fn kill_node(&mut self, victim: NodeId) {
        if !self.alive[victim.index()] {
            return;
        }
        self.alive[victim.index()] = false;
        self.inboxes[victim.index()].clear();
        self.pending
            .retain(|(from, to, _)| *from != victim && *to != Some(victim));
        let neighbors: Vec<NodeId> = self.net.neighbors(victim).to_vec();
        for v in neighbors {
            if !self.alive[v.index()] {
                continue;
            }
            let mut ctx = Ctx {
                id: v,
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[v.index()].on_neighbor_failed(&mut ctx, victim);
            let outbox = ctx.outbox;
            self.queue_outbox(v, outbox);
        }
    }

    fn queue_outbox(&mut self, from: NodeId, outbox: Vec<(Option<NodeId>, P::Msg)>) {
        for (to, msg) in outbox {
            match to {
                None => self.stats.broadcasts += 1,
                Some(_) => self.stats.unicasts += 1,
            }
            self.pending.push((from, to, msg));
        }
    }

    /// Runs [`NodeProcess::on_init`] on every live node (idempotent).
    pub fn init(&mut self) {
        if self.initialized {
            return;
        }
        self.initialized = true;
        for i in 0..self.nodes.len() {
            if !self.alive[i] {
                continue;
            }
            let mut ctx = Ctx {
                id: NodeId::new(i),
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[i].on_init(&mut ctx);
            let outbox = ctx.outbox;
            self.queue_outbox(NodeId::new(i), outbox);
        }
    }

    /// Executes one round. Returns `true` while the system is still
    /// active.
    pub fn step(&mut self) -> bool {
        self.init();
        let due: Vec<NodeId> = self.failures.due_at(self.round).to_vec();
        let had_failures = !due.is_empty();
        for v in due {
            self.kill_node(v);
        }

        if self.pending.is_empty() && !had_failures {
            if self
                .failures
                .last_round()
                .is_some_and(|last| last > self.round)
            {
                self.round += 1;
                self.stats.rounds = self.round;
                self.log.record(0);
                return true;
            }
            return false;
        }
        self.round += 1;
        self.stats.rounds = self.round;

        // Deliver: one message clone per receiving edge.
        let pending = std::mem::take(&mut self.pending);
        let tx_this_round = pending.len();
        for (from, to, msg) in pending {
            match to {
                None => {
                    for &v in self.net.neighbors(from) {
                        if self.alive[v.index()] {
                            self.inboxes[v.index()].push((from, msg.clone()));
                            self.stats.receptions += 1;
                        }
                    }
                }
                Some(v) => {
                    if self.alive[v.index()] && self.net.has_edge(from, v) {
                        self.inboxes[v.index()].push((from, msg));
                        self.stats.receptions += 1;
                    }
                }
            }
        }
        self.log.record(tx_this_round);

        // Process: full scan over all n nodes.
        for i in 0..self.nodes.len() {
            if !self.alive[i] || self.inboxes[i].is_empty() {
                continue;
            }
            let inbox = std::mem::take(&mut self.inboxes[i]);
            let refs: Vec<(NodeId, &P::Msg)> = inbox.iter().map(|(f, m)| (*f, m)).collect();
            let mut ctx = Ctx {
                id: NodeId::new(i),
                net: self.net,
                alive: &self.alive,
                outbox: Vec::new(),
            };
            self.nodes[i].on_round(&mut ctx, &refs);
            let outbox = ctx.outbox;
            self.queue_outbox(NodeId::new(i), outbox);
        }
        true
    }

    /// Runs until quiescence or until `max_rounds` is exceeded.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::RoundLimitExceeded`] when the protocol is
    /// still active after `max_rounds` rounds.
    pub fn run_until_quiescent(&mut self, max_rounds: usize) -> Result<SimStats, SimError> {
        self.init();
        while self.pending_activity() {
            if self.round >= max_rounds {
                return Err(SimError::RoundLimitExceeded { limit: max_rounds });
            }
            self.step();
        }
        self.stats.quiesced = true;
        Ok(self.stats)
    }

    fn pending_activity(&self) -> bool {
        !self.pending.is_empty()
            || self
                .failures
                .last_round()
                .is_some_and(|last| last >= self.round)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn line_net(n: usize) -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(1000.0, 10.0));
        Network::from_positions(
            (0..n).map(|i| Point::new(10.0 * i as f64, 0.0)).collect(),
            15.0,
            area,
        )
    }

    struct Gossip {
        value: u64,
    }

    impl NodeProcess for Gossip {
        type Msg = u64;
        fn on_init(&mut self, ctx: &mut Ctx<'_, u64>) {
            ctx.broadcast(self.value);
        }
        fn on_round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(NodeId, &u64)]) {
            let best = inbox.iter().map(|&(_, &v)| v).max().unwrap_or(0);
            if best > self.value {
                self.value = best;
                ctx.broadcast(best);
            }
        }
    }

    #[test]
    fn legacy_gossip_still_converges() {
        let net = line_net(8);
        let mut engine = LegacyEngine::new(&net, |id| Gossip {
            value: (id.index() as u64) * 10,
        });
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        for n in engine.nodes() {
            assert_eq!(n.value, 70);
        }
    }

    #[test]
    fn legacy_failure_plan_still_applies() {
        let net = line_net(5);
        let mut engine = LegacyEngine::new(&net, |id| Gossip {
            value: id.index() as u64,
        });
        let mut plan = FailurePlan::new();
        plan.kill_at(1, NodeId(2));
        engine.set_failure_plan(plan);
        let stats = engine.run_until_quiescent(100).unwrap();
        assert!(stats.quiesced);
        assert!(!engine.is_alive(NodeId(2)));
        assert!(engine.node(NodeId(0)).value < 4, "line cut at node 2");
        assert_eq!(engine.network().len(), 5);
    }
}
