//! Micro-benchmarks of the substrate: geometry primitives, UDG
//! construction, planarization, hole-boundary construction, labeling,
//! and one route per scheme.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sp_baselines::HoleAtlas;
use sp_core::{SafetyInfo, SafetyMap, ShapeMap};
use sp_experiments::{random_connected_pair, PreparedNetwork, Scheme};
use sp_geom::{ccw_order_in_quadrant, Point, Quadrant};
use sp_net::{deploy::DeploymentConfig, Network, PlanarGraph, Planarization};
use std::hint::black_box;

fn geometry_benches(c: &mut Criterion) {
    let origin = Point::new(100.0, 100.0);
    let candidates: Vec<(usize, Point)> = (0..24)
        .map(|i| {
            let t = i as f64 * std::f64::consts::TAU / 24.0;
            (
                i,
                Point::new(100.0 + 15.0 * t.cos(), 100.0 + 15.0 * t.sin()),
            )
        })
        .collect();
    c.bench_function("geom/quadrant_of", |b| {
        b.iter(|| {
            for &(_, p) in &candidates {
                black_box(Quadrant::of(origin, p));
            }
        });
    });
    c.bench_function("geom/ccw_order_in_quadrant_24", |b| {
        b.iter(|| {
            black_box(ccw_order_in_quadrant(
                origin,
                Quadrant::I,
                candidates.iter().copied(),
            ))
        });
    });
}

fn substrate_benches(c: &mut Criterion) {
    let cfg = DeploymentConfig::paper_default(600);
    let positions = cfg.deploy_uniform(3);
    let net = Network::from_positions(positions.clone(), cfg.radius, cfg.area);

    let mut group = c.benchmark_group("substrate_n600");
    group.sample_size(20);
    group.bench_function("udg_build", |b| {
        b.iter(|| {
            black_box(Network::from_positions(
                positions.clone(),
                cfg.radius,
                cfg.area,
            ))
        });
    });
    group.bench_function("gabriel_planarize", |b| {
        b.iter(|| black_box(PlanarGraph::build(&net, Planarization::Gabriel)));
    });
    group.bench_function("hole_atlas", |b| {
        b.iter(|| black_box(HoleAtlas::build(&net)));
    });
    group.bench_function("safety_labeling", |b| {
        b.iter(|| black_box(SafetyMap::label(&net)));
    });
    let safety = SafetyMap::label(&net);
    group.bench_function("shape_map", |b| {
        b.iter(|| black_box(ShapeMap::build(&net, &safety)));
    });
    group.bench_function("safety_info_full", |b| {
        b.iter(|| black_box(SafetyInfo::build(&net)));
    });
    group.finish();
}

fn route_benches(c: &mut Criterion) {
    let cfg = DeploymentConfig::paper_default(600);
    let net = Network::from_positions(cfg.deploy_uniform(8), cfg.radius, cfg.area);
    let prepared = PreparedNetwork::new(net);
    let mut rng = StdRng::seed_from_u64(1);
    let (s, d) = random_connected_pair(&prepared.net, &mut rng).expect("pair");
    let mut group = c.benchmark_group("route_n600");
    for scheme in Scheme::PAPER_SET {
        group.bench_function(BenchmarkId::new("single", scheme.name()), |b| {
            b.iter(|| black_box(prepared.route(scheme, s, d)));
        });
    }
    group.finish();
}

criterion_group!(benches, geometry_benches, substrate_benches, route_benches);
criterion_main!(benches);
