//! The routing schemes under evaluation: an open [`SchemeRegistry`]
//! plus the [`PreparedNetwork`] wrapper the sweeps route on.
//!
//! # Adding a scheme
//!
//! Historically every scheme lived in an enum whose `match` arms were
//! duplicated across the sweep runner and the streaming workload;
//! adding an ablation variant meant touching every dispatch site. Now a
//! scheme is a [`Scheme`] handle into the registry, and adding one is
//! **one registration call** — no other file changes:
//!
//! ```
//! use sp_core::Routing;
//! use sp_experiments::{RouterContext, Scheme};
//!
//! // A new curve for the figures: SLGF2 with the backup phase ablated
//! // *and* the superseding rule ablated (nothing else to edit — the
//! // sweeps, figures, and workloads all dispatch through the handle).
//! let scheme = Scheme::register("SLGF2-bare", |ctx: &RouterContext<'_>| {
//!     Box::new(
//!         sp_core::Slgf2Router::new(ctx.info)
//!             .without_superseding()
//!             .without_backup(),
//!     )
//! });
//! assert_eq!(scheme.name(), "SLGF2-bare");
//! assert_eq!(Scheme::by_name("SLGF2-bare"), Some(scheme));
//! ```

use sp_baselines::{GfRouter, GfgRouter, Slgf2FaceRouter};
use sp_core::{LgfRouter, RouteResult, Routing, SafetyInfo, Slgf2Router, SlgfRouter};
use sp_net::{Network, NodeId};
use std::sync::{OnceLock, RwLock};

/// Everything a scheme's router may borrow when it is constructed: the
/// topology to route on plus the precomputed per-network structures.
///
/// The topology is carried separately from the structures so callers
/// like the lifetime workload can route on a *degraded* snapshot while
/// reusing incrementally-repaired safety information.
#[derive(Debug, Clone, Copy)]
pub struct RouterContext<'a> {
    /// The unit disk graph to route on.
    pub net: &'a Network,
    /// Safety + shape information for the SLGF family.
    pub info: &'a SafetyInfo,
    /// The prebuilt GF baseline (hole atlas + recovery structures).
    pub gf: &'a GfRouter,
    /// The prebuilt GFG face-routing baseline (planarization).
    pub gfg: &'a GfgRouter,
}

/// Constructs a boxed router borrowing from the context.
pub type SchemeBuild = for<'a> fn(&RouterContext<'a>) -> Box<dyn Routing + 'a>;

struct SchemeEntry {
    name: &'static str,
    build: SchemeBuild,
}

/// The process-wide table mapping [`Scheme`] handles to names and
/// router builders.
///
/// All built-in schemes are registered in [`SchemeRegistry::builtin`] —
/// the **single registration site** — and ablation variants can be
/// appended at runtime with [`Scheme::register`]. Handles are plain
/// `Copy` indices, so they flow through sweep records and thread pools
/// exactly like the old enum did.
pub struct SchemeRegistry {
    entries: Vec<SchemeEntry>,
}

impl SchemeRegistry {
    /// Names of every registered scheme, in registration order
    /// (parallel to [`Scheme::all`]).
    pub fn names() -> Vec<&'static str> {
        read_registry().entries.iter().map(|e| e.name).collect()
    }

    /// Number of registered schemes.
    pub fn len() -> usize {
        read_registry().entries.len()
    }

    /// The built-in schemes: the paper's four curves, the A3/A4
    /// ablations, and the two face-routing baselines/hybrids.
    ///
    /// This function is the only place a built-in scheme is declared;
    /// the `Scheme` constants below are fixed indices into this table
    /// (in registration order).
    fn builtin() -> SchemeRegistry {
        let mut reg = SchemeRegistry {
            entries: Vec::new(),
        };
        // === The scheme registration table ====================[order matters]
        reg.add("GF", |ctx| Box::new(ctx.gf)); // Scheme::Gf
        reg.add("LGF", |_| Box::new(LgfRouter::new())); // Scheme::Lgf
        reg.add("SLGF", |ctx| Box::new(SlgfRouter::new(ctx.info))); // Scheme::Slgf
        reg.add("SLGF2", |ctx| Box::new(Slgf2Router::new(ctx.info))); // Scheme::Slgf2
        reg.add("SLGF2-noEH", |ctx| {
            Box::new(Slgf2Router::new(ctx.info).without_superseding()) // Scheme::Slgf2NoSuperseding
        });
        reg.add("SLGF2-noBP", |ctx| {
            Box::new(Slgf2Router::new(ctx.info).without_backup()) // Scheme::Slgf2NoBackup
        });
        reg.add("GFG", |ctx| Box::new(ctx.gfg)); // Scheme::Gfg
        reg.add("SLGF2-F", |ctx| {
            Box::new(Slgf2FaceRouter::with_face_router(ctx.info, ctx.gfg.clone()))
            // Scheme::Slgf2Face
        });
        // ======================================================================
        reg
    }

    fn add(&mut self, name: &'static str, build: SchemeBuild) -> Scheme {
        self.try_add(name, build).unwrap_or_else(|e| panic!("{e}"))
    }

    fn try_add(&mut self, name: &'static str, build: SchemeBuild) -> Result<Scheme, String> {
        if self.entries.iter().any(|e| e.name == name) {
            return Err(format!("scheme {name:?} registered twice"));
        }
        if self.entries.len() >= u16::MAX as usize {
            return Err("scheme registry full".to_owned());
        }
        self.entries.push(SchemeEntry { name, build });
        Ok(Scheme((self.entries.len() - 1) as u16))
    }
}

/// Reads the global registry, recovering from a poisoned lock — the
/// registry is append-only, so a panic mid-registration cannot leave a
/// torn entry behind.
fn read_registry() -> std::sync::RwLockReadGuard<'static, SchemeRegistry> {
    registry()
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn registry() -> &'static RwLock<SchemeRegistry> {
    static GLOBAL: OnceLock<RwLock<SchemeRegistry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(SchemeRegistry::builtin()))
}

/// A handle to one registered routing scheme.
///
/// `Copy`, order-stable, and cheap to compare — records, sweep points,
/// and figures carry it by value. The associated constants name the
/// built-in schemes of [`SchemeRegistry::builtin`]; further schemes get
/// their handles from [`Scheme::register`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Scheme(u16);

#[allow(non_upper_case_globals)] // named like the enum variants they replaced
impl Scheme {
    /// Greedy forwarding with BOUNDHOLE recovery (baseline \[5\]/\[6\]).
    pub const Gf: Scheme = Scheme(0);
    /// Limited greedy forwarding, Algo. 1.
    pub const Lgf: Scheme = Scheme(1);
    /// Safety-information LGF of \[7\].
    pub const Slgf: Scheme = Scheme(2);
    /// The paper's contribution, Algo. 3.
    pub const Slgf2: Scheme = Scheme(3);
    /// SLGF2 without the either-hand superseding rule (ablation A3).
    pub const Slgf2NoSuperseding: Scheme = Scheme(4);
    /// SLGF2 without the backup-path phase (ablation A4).
    pub const Slgf2NoBackup: Scheme = Scheme(5);
    /// Greedy-Face-Greedy with full planar face changes (Bose et al.
    /// \[2\]) — the guaranteed-delivery comparison of ablation A8.
    pub const Gfg: Scheme = Scheme(6);
    /// SLGF2 with FACE-2 recovery instead of the untried sweep — the
    /// paper's §6 future-work direction (ablation A12).
    pub const Slgf2Face: Scheme = Scheme(7);

    /// The four curves of every figure in the paper, in its order.
    pub const PAPER_SET: [Scheme; 4] = [Scheme::Gf, Scheme::Lgf, Scheme::Slgf, Scheme::Slgf2];

    /// The paper's curves plus the GFG face-routing baseline (A8).
    pub const EXTENDED_SET: [Scheme; 5] = [
        Scheme::Gf,
        Scheme::Lgf,
        Scheme::Slgf,
        Scheme::Slgf2,
        Scheme::Gfg,
    ];

    /// Registers a new scheme under `name` and returns its handle.
    ///
    /// This is the *only* edit needed to add a scheme: everything
    /// downstream (sweeps, figures, workloads, benches) dispatches
    /// through the handle. Names must be unique; registering a
    /// duplicate name panics.
    pub fn register(name: &'static str, build: SchemeBuild) -> Scheme {
        let result = registry()
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .try_add(name, build);
        // Panic only after the lock guard is released, so a rejected
        // registration cannot poison the registry for other threads.
        result.unwrap_or_else(|e| panic!("{e}"))
    }

    /// Looks a scheme up by its display name.
    pub fn by_name(name: &str) -> Option<Scheme> {
        let reg = read_registry();
        reg.entries
            .iter()
            .position(|e| e.name == name)
            .map(|i| Scheme(i as u16))
    }

    /// Every currently registered scheme, in registration order.
    pub fn all() -> Vec<Scheme> {
        let reg = read_registry();
        (0..reg.entries.len() as u16).map(Scheme).collect()
    }

    /// Display name (figure legend).
    pub fn name(&self) -> &'static str {
        read_registry().entries[self.0 as usize].name
    }

    /// Constructs this scheme's router over the given context.
    pub fn build<'a>(&self, ctx: &RouterContext<'a>) -> Box<dyn Routing + 'a> {
        let build = read_registry().entries[self.0 as usize].build;
        build(ctx)
    }

    /// Routes one packet under this scheme.
    pub fn route(&self, ctx: &RouterContext<'_>, src: NodeId, dst: NodeId) -> RouteResult {
        self.build(ctx).route(ctx.net, src, dst)
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One generated network with every precomputed structure the schemes
/// need: the safety information for SLGF/SLGF2 and the GF recovery
/// structures (hole atlas + planarization) — mirroring §5's "before we
/// test the routing performance … boundary information is constructed
/// for GF routings, and safety information and estimated shape
/// information are constructed for our SLGF and SLGF2 routing".
#[derive(Debug, Clone)]
pub struct PreparedNetwork {
    /// The unit disk graph.
    pub net: Network,
    /// Safety + shape information (centralized construction).
    pub info: SafetyInfo,
    /// The GF baseline with its recovery structures.
    pub gf: GfRouter,
    /// The GFG face-routing baseline (shares nothing with GF's atlas).
    pub gfg: GfgRouter,
}

impl PreparedNetwork {
    /// Builds everything for a deployed point set.
    pub fn new(net: Network) -> PreparedNetwork {
        let info = SafetyInfo::build(&net);
        let gf = GfRouter::new(&net);
        let gfg = GfgRouter::new(&net);
        PreparedNetwork { net, info, gf, gfg }
    }

    /// The borrow bundle scheme builders construct routers from.
    pub fn ctx(&self) -> RouterContext<'_> {
        RouterContext {
            net: &self.net,
            info: &self.info,
            gf: &self.gf,
            gfg: &self.gfg,
        }
    }

    /// Routes one packet under the given scheme.
    pub fn route(&self, scheme: Scheme, src: NodeId, dst: NodeId) -> RouteResult {
        scheme.route(&self.ctx(), src, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_net::deploy::DeploymentConfig;

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Scheme::all().iter().map(|s| s.name()).collect();
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total);
        assert!(total >= 8, "all built-ins registered");
        assert_eq!(Scheme::PAPER_SET.len(), 4);
        assert_eq!(Scheme::Slgf2.name(), "SLGF2");
        assert_eq!(Scheme::by_name("GFG"), Some(Scheme::Gfg));
        assert_eq!(Scheme::by_name("no-such-scheme"), None);
        assert_eq!(SchemeRegistry::len(), Scheme::all().len());
        let listed: Vec<&str> = Scheme::all().iter().map(|s| s.name()).collect();
        assert_eq!(SchemeRegistry::names(), listed);
    }

    #[test]
    fn all_schemes_route_on_a_dense_network() {
        let cfg = DeploymentConfig::paper_default(500);
        let net = Network::from_positions(cfg.deploy_uniform(21), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        let (s, d) = (comp[0], comp[comp.len() - 1]);
        for scheme in [
            Scheme::Gf,
            Scheme::Lgf,
            Scheme::Slgf,
            Scheme::Slgf2,
            Scheme::Slgf2NoSuperseding,
            Scheme::Slgf2NoBackup,
            Scheme::Gfg,
            Scheme::Slgf2Face,
        ] {
            let r = prepared.route(scheme, s, d);
            assert_eq!(r.path.first(), Some(&s), "{scheme}");
            assert!(r.hops() > 0, "{scheme}");
        }
    }

    /// The registry's acceptance criterion: a new scheme is ONE
    /// registration call, after which every downstream consumer (here:
    /// the prepared-network dispatch the sweeps use) handles it with no
    /// further edits.
    #[test]
    fn registering_a_scheme_is_a_single_site_change() {
        let scheme = Scheme::register("TEST-always-left", |ctx| {
            Box::new(Slgf2Router::new(ctx.info).without_superseding())
        });
        assert_eq!(scheme.name(), "TEST-always-left");
        assert!(Scheme::all().contains(&scheme));

        let cfg = DeploymentConfig::paper_default(400);
        let net = Network::from_positions(cfg.deploy_uniform(3), cfg.radius, cfg.area);
        let comp = net.largest_component();
        let prepared = PreparedNetwork::new(net);
        let r = prepared.route(scheme, comp[0], comp[comp.len() - 1]);
        assert_eq!(r.path.first(), Some(&comp[0]));
        assert!(r.delivered());
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_names_are_rejected() {
        let _ = Scheme::register("SLGF2", |ctx| Box::new(Slgf2Router::new(ctx.info)));
    }
}
