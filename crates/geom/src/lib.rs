//! 2-D geometry kernel for the straightpath WASN routing stack.
//!
//! This crate supplies every geometric primitive the paper
//! ("A Straightforward Path Routing in Wireless Ad Hoc Sensor Networks",
//! Jiang et al., ICDCS Workshops 2009) relies on:
//!
//! * [`Point`] / [`Vec2`] — node locations `L(u)` and displacement vectors;
//! * [`Rect`] — the `[x1 : x2, y1 : y2]` rectangle notation of §3, used for
//!   request zones and unsafe-area shape estimates `E_i(u)`;
//! * [`Quadrant`] — the four forwarding-zone types `Q_1..Q_4` (§3, Fig. 2);
//! * [`Ray`] with left/right side tests — the critical/forbidden split and
//!   the "either-hand rule" of §4;
//! * counter-clockwise angular scans ([`scan`]) — successor selection in the
//!   perimeter phase ("rotate the ray `ud` counter-clockwise until the first
//!   untried node is hit") and the first/last-neighbor chains of Algo. 2;
//! * [`hull`] — the "hull algorithm" used to pin interest-area edge nodes;
//! * [`Segment`] / [`Circle`] — planarization witnesses (Gabriel / RNG) for
//!   the perimeter-routing substrate.
//!
//! Everything is plain `f64` Euclidean geometry. Orderings that must be
//! deterministic across platforms use [`f64::total_cmp`].
//!
//! # Example
//!
//! ```
//! use sp_geom::{Point, Quadrant, Rect};
//!
//! let u = Point::new(0.0, 0.0);
//! let d = Point::new(30.0, 40.0);
//! assert_eq!(u.distance(d), 50.0);
//! assert_eq!(Quadrant::of(u, d), Some(Quadrant::I));
//!
//! // The request zone of LAR scheme 1: u and d at opposite corners.
//! let zone = Rect::from_corners(u, d);
//! assert!(zone.contains(Point::new(10.0, 10.0)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod angle;
pub mod circle;
pub mod hull;
pub mod point;
pub mod quadrant;
pub mod ray;
pub mod rect;
pub mod scan;
pub mod segment;

pub use angle::{normalize_angle, pseudo_angle, Angle, TAU};
pub use circle::{in_gabriel_disk, in_rng_lune, Circle};
pub use hull::{convex_hull, point_in_polygon, polygon_area};
pub use point::{Point, Vec2};
pub use quadrant::Quadrant;
pub use ray::{Ray, Side};
pub use rect::Rect;
pub use scan::{ccw_order_in_quadrant, ccw_scan_from, AngularSweep};
pub use segment::Segment;
