//! A small blocking client for the `sp-serve` wire protocol — the
//! load generator, the benches, and the end-to-end tests all speak
//! through it.
//!
//! One [`ServeClient`] owns one connection and reuses its encode /
//! frame buffers across requests (requests are serial per client;
//! concurrency comes from running many clients).

use crate::wire::{
    decode_response, encode_bodyless, encode_chaos, encode_move, encode_query, write_frame,
    FrameReader, ProtocolError, QueryReply, Response, StatsReply, OP_INFO, OP_SHUTDOWN, OP_STATS,
};
use sp_core::ServiceScheme;
use std::io::Read;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Everything a request can fail with on the client side.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The peer's bytes did not decode (or ours were refused
    /// structurally while framing).
    Protocol(ProtocolError),
    /// The server answered with a named protocol error.
    Server {
        /// Tag of the failed request (0 when it never decoded).
        tag: u8,
        /// The error, reconstructed from its wire code.
        error: ProtocolError,
        /// The family name as the server sent it.
        name: String,
    },
    /// The server answered with the wrong response variant.
    Unexpected(&'static str),
    /// The connection closed before a full response arrived.
    Disconnected,
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport: {e}"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server { tag, error, name } => {
                write!(f, "server error on tag {tag}: {name} ({error})")
            }
            ClientError::Unexpected(what) => write!(f, "unexpected response: wanted {what}"),
            ClientError::Disconnected => write!(f, "connection closed mid-response"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        ClientError::Protocol(e)
    }
}

/// One connection to an `sp-serve` server.
pub struct ServeClient {
    stream: TcpStream,
    reader: FrameReader,
    out: Vec<u8>,
    chunk: Vec<u8>,
}

impl ServeClient {
    /// Connects (Nagle off — requests are small and latency-bound).
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        drop(stream.set_nodelay(true));
        Ok(ServeClient {
            stream,
            reader: FrameReader::new(),
            out: Vec::new(),
            chunk: vec![0u8; 16 * 1024],
        })
    }

    /// Bounds every blocking read (`None` blocks forever).
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends an already-encoded request payload and reads one
    /// response. The escape hatch the fuzz tests use to put arbitrary
    /// bytes on the wire.
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, payload)?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<Response, ClientError> {
        loop {
            if let Some(frame) = self.reader.next_frame()? {
                return Ok(decode_response(frame)?);
            }
            let n = self.stream.read(&mut self.chunk)?;
            if n == 0 {
                return Err(ClientError::Disconnected);
            }
            self.reader.extend(self.chunk.get(..n).unwrap_or(&[]));
        }
    }

    fn round_trip(&mut self) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &self.out)?;
        match self.read_response()? {
            Response::Error { tag, error, name } => Err(ClientError::Server { tag, error, name }),
            ok => Ok(ok),
        }
    }

    /// Routes one query; `trace` asks for the full hop path.
    pub fn query(
        &mut self,
        src: u32,
        dst: u32,
        scheme: ServiceScheme,
        trace: bool,
    ) -> Result<QueryReply, ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_query(&mut out, src, dst, scheme.code(), trace);
        self.out = out;
        match self.round_trip()? {
            Response::Query(reply) => Ok(reply),
            _ => Err(ClientError::Unexpected("QUERY reply")),
        }
    }

    /// Applies a mobility batch; returns `(epoch, nodes_moved)`.
    pub fn move_batch(&mut self, moves: &[(u32, f64, f64)]) -> Result<(u64, u32), ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_move(&mut out, moves);
        self.out = out;
        match self.round_trip()? {
            Response::Move { epoch, applied } => Ok((epoch, applied)),
            _ => Err(ClientError::Unexpected("MOVE reply")),
        }
    }

    /// Applies a chaos recipe; returns `(epoch, clauses)`.
    pub fn chaos(&mut self, round: u32, seed: u64, spec: &str) -> Result<(u64, u32), ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_chaos(&mut out, round, seed, spec);
        self.out = out;
        match self.round_trip()? {
            Response::Chaos { epoch, clauses } => Ok((epoch, clauses)),
            _ => Err(ClientError::Unexpected("CHAOS reply")),
        }
    }

    /// Fetches the aggregated telemetry counters.
    pub fn stats(&mut self) -> Result<StatsReply, ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_bodyless(&mut out, OP_STATS);
        self.out = out;
        match self.round_trip()? {
            Response::Stats(reply) => Ok(reply),
            _ => Err(ClientError::Unexpected("STATS reply")),
        }
    }

    /// Fetches `(epoch, nodes, workers)`.
    pub fn info(&mut self) -> Result<(u64, u32, u32), ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_bodyless(&mut out, OP_INFO);
        self.out = out;
        match self.round_trip()? {
            Response::Info {
                epoch,
                nodes,
                workers,
            } => Ok((epoch, nodes, workers)),
            _ => Err(ClientError::Unexpected("INFO reply")),
        }
    }

    /// Requests graceful shutdown; returns the epoch at shutdown. The
    /// acknowledgement is sent before the server begins draining, so
    /// this never races the stop.
    pub fn shutdown(&mut self) -> Result<u64, ClientError> {
        let mut out = std::mem::take(&mut self.out);
        encode_bodyless(&mut out, OP_SHUTDOWN);
        self.out = out;
        match self.round_trip()? {
            Response::Shutdown { epoch } => Ok(epoch),
            _ => Err(ClientError::Unexpected("SHUTDOWN reply")),
        }
    }
}
