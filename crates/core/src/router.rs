//! The routing trait and the shared packet walker.
//!
//! All schemes — GF in `sp-baselines`, LGF/SLGF/SLGF2 here — expose the
//! same [`Routing`] interface so the experiment harness can sweep them
//! uniformly. The LGF family shares the [`HopPolicy`] walker: a policy
//! picks one successor per hop from purely local state, and
//! [`walk_into`] moves the packet until delivery, a dead end, or TTL
//! exhaustion.
//!
//! Routing is buffered: [`Routing::route_into`] writes the trace into a
//! caller-owned [`RouteBuffer`] and returns a borrowed [`RouteRef`], so
//! a streaming workload routing millions of packets reuses one
//! generation-stamped visited set and two retained-capacity vectors
//! instead of allocating an O(n) `PacketState` per packet.
//! [`Routing::route`] stays as the one-shot convenience wrapper.

use crate::{HopScratch, Mode, PacketState, RouteOutcome, RoutePhase, RouteResult, VisitedSet};
use sp_geom::{Point, Quadrant, Rect};
use sp_net::{Network, NodeId};

/// Reusable per-packet scratch: the generation-stamped visited set,
/// retained-capacity path/phase vectors, and the [`HopScratch`] the
/// hop policies decide successors with. One buffer serves any number
/// of consecutive [`Routing::route_into`] calls (on any networks — it
/// regrows as needed); reuse costs O(path walked), not O(n).
#[derive(Debug, Clone, Default)]
pub struct RouteBuffer {
    pub(crate) visited: VisitedSet,
    pub(crate) path: Vec<NodeId>,
    pub(crate) phases: Vec<RoutePhase>,
    pub(crate) scratch: HopScratch,
}

impl RouteBuffer {
    /// An empty buffer; it sizes itself on first use.
    pub fn new() -> RouteBuffer {
        RouteBuffer::default()
    }

    /// A buffer whose visited set is pre-sized for networks of `n`
    /// nodes, so the first route pays no O(n) growth. The path/phase
    /// vectors still size themselves on first use (a route's length
    /// isn't known up front) and retain that capacity afterwards.
    pub fn with_capacity(n: usize) -> RouteBuffer {
        RouteBuffer {
            visited: VisitedSet::new(n),
            path: Vec::new(),
            phases: Vec::new(),
            scratch: HopScratch::default(),
        }
    }

    /// The path of the route most recently written into this buffer.
    pub fn path(&self) -> &[NodeId] {
        &self.path
    }

    /// Moves the buffered trace out as an owned [`RouteResult`],
    /// leaving the buffer's vectors empty (the visited set is kept).
    /// Used by the one-shot [`Routing::route`] wrapper so the compat
    /// path clones nothing.
    pub(crate) fn take_result(
        &mut self,
        outcome: RouteOutcome,
        perimeter_entries: usize,
        backup_entries: usize,
    ) -> RouteResult {
        RouteResult {
            outcome,
            path: std::mem::take(&mut self.path),
            phases: std::mem::take(&mut self.phases),
            perimeter_entries,
            backup_entries,
        }
    }
}

/// A borrowed view of one route trace inside a [`RouteBuffer`] — what
/// [`Routing::route_into`] returns. Copyable and cheap; call
/// [`RouteRef::to_result`] only when an owned [`RouteResult`] must
/// outlive the buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteRef<'a> {
    /// Terminal status.
    pub outcome: RouteOutcome,
    /// Visited node sequence from source (inclusive) to last holder.
    pub path: &'a [NodeId],
    /// Phase that produced each hop (`path.len() - 1` entries).
    pub phases: &'a [RoutePhase],
    /// Number of distinct perimeter-phase entries.
    pub perimeter_entries: usize,
    /// Number of distinct backup-phase entries.
    pub backup_entries: usize,
}

impl RouteRef<'_> {
    /// True when the packet was delivered.
    pub fn delivered(&self) -> bool {
        self.outcome == RouteOutcome::Delivered
    }

    /// Hop count of the path walked.
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }

    /// Euclidean length of the walked path in `net`.
    pub fn length(&self, net: &Network) -> f64 {
        net.path_length(self.path)
    }

    /// Hops spent in a given phase.
    pub fn hops_in_phase(&self, phase: RoutePhase) -> usize {
        self.phases.iter().filter(|&&p| p == phase).count()
    }

    /// Clones the borrowed trace into an owned [`RouteResult`].
    pub fn to_result(&self) -> RouteResult {
        RouteResult {
            outcome: self.outcome,
            path: self.path.to_vec(),
            phases: self.phases.to_vec(),
            perimeter_entries: self.perimeter_entries,
            backup_entries: self.backup_entries,
        }
    }
}

/// A complete routing scheme: source to destination, full trace out.
pub trait Routing {
    /// Scheme name as used in the paper's figures ("GF", "LGF", …).
    fn name(&self) -> &'static str;

    /// Routes one packet into a caller-owned buffer; never panics on
    /// disconnected pairs (reports [`RouteOutcome::Stuck`] or TTL
    /// exhaustion instead). This is the hot-path entry: reusing `buf`
    /// across calls makes routing allocation-free after warm-up.
    fn route_into<'b>(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        buf: &'b mut RouteBuffer,
    ) -> RouteRef<'b>;

    /// One-shot convenience: routes through a fresh [`RouteBuffer`] and
    /// returns the owned trace. Prefer [`Routing::route_into`] (or a
    /// [`crate::RouteSession`]) anywhere more than one packet flows.
    fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> RouteResult {
        let mut buf = RouteBuffer::new();
        let r = self.route_into(net, src, dst, &mut buf);
        let (outcome, pe, be) = (r.outcome, r.perimeter_entries, r.backup_entries);
        buf.take_result(outcome, pe, be)
    }
}

/// References to routers route too — this lets registries hand out
/// `Box<dyn Routing + 'a>` over routers owned elsewhere (e.g. the
/// prebuilt GF/GFG recovery structures of a prepared network) without
/// cloning them.
impl<T: Routing + ?Sized> Routing for &T {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route_into<'b>(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        buf: &'b mut RouteBuffer,
    ) -> RouteRef<'b> {
        (**self).route_into(net, src, dst, buf)
    }

    fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> RouteResult {
        (**self).route(net, src, dst)
    }
}

/// Boxed routers (what the scheme registry builds) route directly too.
impl<T: Routing + ?Sized> Routing for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn route_into<'b>(
        &self,
        net: &Network,
        src: NodeId,
        dst: NodeId,
        buf: &'b mut RouteBuffer,
    ) -> RouteRef<'b> {
        (**self).route_into(net, src, dst, buf)
    }

    fn route(&self, net: &Network, src: NodeId, dst: NodeId) -> RouteResult {
        (**self).route(net, src, dst)
    }
}

/// Per-hop successor policy for the LGF-family walker.
pub trait HopPolicy {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Chooses the successor at `pkt.current`, mutating packet mode /
    /// hand / phase bookkeeping. `None` means stuck: no recovery option
    /// remains at this node.
    fn next_hop(&self, net: &Network, pkt: &mut PacketState) -> Option<NodeId>;
}

/// Default hop budget: generous enough that only genuine loops hit it.
pub fn default_ttl(net: &Network) -> usize {
    4 * net.len().max(1)
}

/// Drives a [`HopPolicy`] from `src` to `dst` into a caller-owned
/// buffer — the engine behind every scheme's
/// [`Routing::route_into`]. The buffer's visited set is re-generationed
/// (not cleared) and its vectors keep their capacity, so a warm buffer
/// allocates nothing.
pub fn walk_into<'b>(
    policy: &dyn HopPolicy,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    ttl: usize,
    buf: &'b mut RouteBuffer,
) -> RouteRef<'b> {
    let visited = std::mem::take(&mut buf.visited);
    let mut pkt = PacketState::with_visited(visited, net.len(), src, dst);
    pkt.scratch = std::mem::take(&mut buf.scratch);
    buf.path.clear();
    buf.phases.clear();
    buf.path.push(src);
    let mut outcome = RouteOutcome::TtlExhausted;
    if src == dst {
        outcome = RouteOutcome::Delivered;
    } else {
        for _ in 0..ttl {
            match policy.next_hop(net, &mut pkt) {
                None => {
                    outcome = RouteOutcome::Stuck(pkt.current);
                    break;
                }
                Some(next) => {
                    debug_assert!(
                        net.has_edge(pkt.current, next),
                        "{}: illegal hop {} -> {}",
                        policy.name(),
                        pkt.current,
                        next
                    );
                    buf.phases.push(pkt.phase);
                    pkt.visited.insert(next);
                    pkt.prev = Some(pkt.current);
                    pkt.current = next;
                    buf.path.push(next);
                    if next == dst {
                        outcome = RouteOutcome::Delivered;
                        break;
                    }
                }
            }
        }
    }
    buf.visited = pkt.visited; // hand the set back for the next packet
    buf.scratch = pkt.scratch; // and the hop scratch with it
    RouteRef {
        outcome,
        path: &buf.path,
        phases: &buf.phases,
        perimeter_entries: pkt.perimeter_entries,
        backup_entries: pkt.backup_entries,
    }
}

/// One-shot [`walk_into`]: routes through a fresh buffer and moves the
/// trace out (the compat shape every scheme's [`Routing::route`] had
/// before buffered routing).
pub fn walk(
    policy: &dyn HopPolicy,
    net: &Network,
    src: NodeId,
    dst: NodeId,
    ttl: usize,
) -> RouteResult {
    let mut buf = RouteBuffer::new();
    let r = walk_into(policy, net, src, dst, ttl, &mut buf);
    let (outcome, pe, be) = (r.outcome, r.perimeter_entries, r.backup_entries);
    buf.take_result(outcome, pe, be)
}

/// Neighbors of `u` inside the request zone `Z_k(u, d)` (LAR scheme 1):
/// the rectangle with `u` and `d` at opposite corners, borders inclusive,
/// `u` itself excluded.
pub fn zone_candidates<'a>(
    net: &'a Network,
    u: NodeId,
    d: NodeId,
) -> impl Iterator<Item = NodeId> + 'a {
    let pu = net.position(u);
    let pd = net.position(d);
    let zone = Rect::request_zone(pu, pd);
    net.neighbors(u)
        .iter()
        .copied()
        .filter(move |&v| v != u && zone.contains(net.position(v)))
}

/// Greedy pick: the candidate closest to the destination, ties broken by
/// id (the "greedy advance" inside the request zone).
pub fn greedy_pick(
    net: &Network,
    d: NodeId,
    candidates: impl IntoIterator<Item = NodeId>,
) -> Option<NodeId> {
    let pd = net.position(d);
    candidates.into_iter().min_by(|&a, &b| {
        net.position(a)
            .distance_sq(pd)
            .total_cmp(&net.position(b).distance_sq(pd))
            .then_with(|| a.cmp(&b))
    })
}

/// The forwarding type at `u` toward `d`: the quadrant of the request
/// zone `Z_k(u, d)`. `None` when the two locations coincide exactly.
pub fn zone_type(net: &Network, u: NodeId, d: NodeId) -> Option<Quadrant> {
    Quadrant::of(net.position(u), net.position(d))
}

/// The perimeter-phase sweep of Algo. 1 step 4: rotate the ray `ud`
/// counter-clockwise (or clockwise, per the committed hand) and take the
/// first *untried* neighbor hit.
pub fn perimeter_sweep(net: &Network, pkt: &PacketState, hand: crate::Hand) -> Option<NodeId> {
    let u = pkt.current;
    let pu = net.position(u);
    let pd = net.position(pkt.dst);
    let candidates: Vec<(usize, Point)> = net
        .neighbor_points(u)
        .filter(|&(v, _)| !pkt.tried(NodeId::new(v)))
        .collect();
    crate::hand_order(pu, pd, hand, candidates)
        .first()
        .map(|&id| NodeId::new(id))
}

/// Shared perimeter-exit test of the LGF/SLGF recovery: leave perimeter
/// mode when strictly closer to the destination than at the stuck node.
pub fn closer_than_entry(net: &Network, pkt: &PacketState) -> bool {
    match pkt.mode {
        Mode::Perimeter { entry_dist } => {
            net.position(pkt.current).distance(net.position(pkt.dst)) < entry_dist
        }
        _ => false,
    }
}

/// Marks the hop being decided with its phase (helper keeping policies
/// terse).
pub fn set_phase(pkt: &mut PacketState, phase: RoutePhase) {
    pkt.phase = phase;
}

#[cfg(test)]
mod tests {
    use super::*;
    use sp_geom::{Point, Rect};

    fn net() -> Network {
        let area = Rect::from_corners(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        Network::from_positions(
            vec![
                Point::new(10.0, 10.0), // 0
                Point::new(20.0, 12.0), // 1 in zone toward 3
                Point::new(14.0, 22.0), // 2 in zone toward 3 (farther from d)
                Point::new(40.0, 40.0), // 3 destination
                Point::new(4.0, 4.0),   // 4 behind u (not in zone)
            ],
            16.0,
            area,
        )
    }

    #[test]
    fn zone_candidates_respect_rectangle() {
        let n = net();
        let got: Vec<NodeId> = zone_candidates(&n, NodeId(0), NodeId(3)).collect();
        assert_eq!(got, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn greedy_pick_takes_closest_to_destination() {
        let n = net();
        let pick = greedy_pick(&n, NodeId(3), zone_candidates(&n, NodeId(0), NodeId(3)));
        // |1 - 3| = |(20,12)-(40,40)| = sqrt(400+784) ≈ 34.4
        // |2 - 3| = |(14,22)-(40,40)| = sqrt(676+324) ≈ 31.6 -> closer
        assert_eq!(pick, Some(NodeId(2)));
        assert_eq!(greedy_pick(&n, NodeId(3), std::iter::empty()), None);
    }

    #[test]
    fn zone_type_matches_quadrant() {
        let n = net();
        assert_eq!(zone_type(&n, NodeId(0), NodeId(3)), Some(Quadrant::I));
        assert_eq!(zone_type(&n, NodeId(3), NodeId(0)), Some(Quadrant::III));
        assert_eq!(zone_type(&n, NodeId(0), NodeId(0)), None);
    }

    #[test]
    fn walk_trivial_same_node() {
        struct Never;
        impl HopPolicy for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn next_hop(&self, _net: &Network, _pkt: &mut PacketState) -> Option<NodeId> {
                None
            }
        }
        let n = net();
        let r = walk(&Never, &n, NodeId(0), NodeId(0), 10);
        assert!(r.delivered());
        assert_eq!(r.hops(), 0);
    }

    #[test]
    fn walk_stuck_reports_position() {
        struct Never;
        impl HopPolicy for Never {
            fn name(&self) -> &'static str {
                "never"
            }
            fn next_hop(&self, _net: &Network, _pkt: &mut PacketState) -> Option<NodeId> {
                None
            }
        }
        let n = net();
        let r = walk(&Never, &n, NodeId(0), NodeId(3), 10);
        assert_eq!(r.outcome, RouteOutcome::Stuck(NodeId(0)));
        assert_eq!(r.path, vec![NodeId(0)]);
    }

    #[test]
    fn walk_ttl_stops_loops() {
        struct PingPong;
        impl HopPolicy for PingPong {
            fn name(&self) -> &'static str {
                "pingpong"
            }
            fn next_hop(&self, _net: &Network, pkt: &mut PacketState) -> Option<NodeId> {
                // Bounce between 0 and 1 forever.
                Some(if pkt.current == NodeId(0) {
                    NodeId(1)
                } else {
                    NodeId(0)
                })
            }
        }
        let n = net();
        let r = walk(&PingPong, &n, NodeId(0), NodeId(3), 7);
        assert_eq!(r.outcome, RouteOutcome::TtlExhausted);
        assert_eq!(r.hops(), 7);
    }

    #[test]
    fn perimeter_sweep_skips_tried() {
        let n = net();
        let mut pkt = PacketState::new(n.len(), NodeId(0), NodeId(3));
        // Mark the straight-ahead candidate as tried.
        pkt.visited.insert(NodeId(2));
        pkt.visited.remove(NodeId(1));
        let nxt = perimeter_sweep(&n, &pkt, crate::Hand::Ccw).unwrap();
        assert_ne!(nxt, NodeId(2));
        // Everything tried -> None.
        for v in 0..n.len() {
            pkt.visited.insert(NodeId::new(v));
        }
        assert_eq!(perimeter_sweep(&n, &pkt, crate::Hand::Ccw), None);
    }
}
