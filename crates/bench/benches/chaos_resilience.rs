//! Chaos resilience: what failure injection costs the stack, in the
//! three currencies the chaos engine exists to measure.
//!
//! * **Delivery** — `chaos_delivery`: a streaming lifetime workload
//!   (`run_lifetime_with_chaos`) under the `SP_CHAOS_SPEC` recipe vs
//!   the identical clean run. Reports the chaotic `delivery_ratio`
//!   (delivered / attempted) next to the clean one, plus the wall
//!   median for both runs.
//! * **Re-stabilization** — `chaos_construction`: the distributed
//!   construction engine (`construct_with_chaos`) with the recipe's
//!   strikes landing mid-protocol. `restabilize_rounds` is the extra
//!   rounds the chaotic run needs to quiesce beyond the clean
//!   construction on the same network; `chaos_extra_messages` the
//!   extra transmissions.
//! * **Recovery** — `chaos_recovery`: the incremental maintenance
//!   path (`InfoMaintainer::kill_many` + per-node `revive`) absorbing
//!   a correlated regional outage and the subsequent rejoin.
//!   `messages_per_recovery` is repair-worklist entries per victim —
//!   the maintenance engine's unit of protocol work.
//!
//! Medians (`*_seconds`) are gated by `ci/bench_gate` against the
//! committed BENCH_chaos.json; the ratio/round/message keys are
//! informational. Knob: `SP_CHAOS_SPEC` swaps the injected recipe.
//!
//! Run with: `cargo bench -p sp-bench --bench chaos_resilience`

use criterion::{criterion_group, criterion_main, Criterion};
use sp_bench::SampleStats;
use sp_core::{construct_with_chaos, construct_with_threads, InfoMaintainer};
use sp_experiments::{run_lifetime, run_lifetime_with_chaos, ChaosRecipe, Scheme, StreamingConfig};
use sp_net::edge_nodes::edge_node_mask;
use sp_net::{deploy::DeploymentConfig, Network};
use sp_sim::FailurePlan;
use std::time::Instant;

const NODES: usize = 1_000;
const RUNS: usize = 5;
const SEED: u64 = 0xc4a0;

/// The injected recipe: `SP_CHAOS_SPEC`, defaulting to a correlated
/// regional outage at round 5 on top of 1% lossy links.
fn chaos_spec() -> String {
    sp_sync::env_var("SP_CHAOS_SPEC")
        .filter(|v| !v.trim().is_empty())
        .unwrap_or_else(|| "region:r=0.15@round5+drop:p=0.01".to_string())
}

fn bench_net() -> Network {
    let cfg = DeploymentConfig::paper_density(NODES);
    Network::from_positions(cfg.deploy_uniform(SEED), cfg.radius, cfg.area)
}

/// Times `f` `RUNS` times, returning the wall stats and the last value.
fn timed<R>(mut f: impl FnMut() -> R) -> (SampleStats, R) {
    let mut walls = Vec::with_capacity(RUNS);
    let mut last = None;
    for _ in 0..RUNS {
        let t = Instant::now();
        last = Some(f());
        walls.push(t.elapsed().as_secs_f64());
    }
    // sp-analyze: allow(panic, RUNS >= 1 so the loop always stores a value)
    (SampleStats::of(&walls), last.expect("RUNS >= 1"))
}

/// Row 1: streaming delivery under chaos vs the identical clean run.
fn delivery_row(net: &Network, spec: &str) -> String {
    let plan = ChaosRecipe::parse(spec)
        // sp-analyze: allow(panic, the spec was validated before any row ran)
        .expect("validated spec")
        .build(net, SEED);
    let cfg = StreamingConfig::default_for_lifetime();
    let (clean_wall, clean) = timed(|| run_lifetime(net, Scheme::Slgf2, &cfg, SEED));
    let (wall, chaotic) = timed(|| run_lifetime_with_chaos(net, Scheme::Slgf2, &cfg, &plan, SEED));
    let ratio = |r: &sp_experiments::LifetimeReport| {
        let attempted = r.packets_delivered + r.packets_lost;
        if attempted == 0 {
            0.0
        } else {
            r.packets_delivered as f64 / attempted as f64
        }
    };
    assert!(
        ratio(&chaotic) <= ratio(&clean) + 1e-9,
        "chaos must not improve delivery"
    );
    format!(
        "    {{\"case\": \"chaos_delivery\", \"scheme\": \"SLGF2\", \"nodes\": {NODES}, \"runs\": {RUNS}, \"spec\": \"{spec}\", \"delivery_ratio\": {:.4}, \"clean_delivery_ratio\": {:.4}, \"rounds\": {}, {}, {}}}",
        ratio(&chaotic),
        ratio(&clean),
        chaotic.rounds,
        wall.json_fields("run"),
        clean_wall.json_fields("clean_run"),
    )
}

/// Row 2: distributed construction with mid-protocol strikes.
fn construction_row(net: &Network, spec: &str) -> String {
    let plan = ChaosRecipe::parse(spec)
        // sp-analyze: allow(panic, the spec was validated before any row ran)
        .expect("validated spec")
        .build(net, SEED);
    let pinned = edge_node_mask(net, net.radius());
    let threads = sp_sync::configured_threads_for("SP_SIM_THREADS");
    let (clean_wall, clean) = timed(|| {
        construct_with_threads(net, pinned.clone(), FailurePlan::new(), threads)
            // sp-analyze: allow(panic, a bench cannot proceed past a failed construction)
            .expect("clean construction")
    });
    let (wall, chaotic) = timed(|| {
        construct_with_chaos(net, pinned.clone(), plan.clone(), threads)
            // sp-analyze: allow(panic, a bench cannot proceed past a failed construction)
            .expect("chaotic construction")
    });
    assert!(chaotic.stats.quiesced, "chaotic construction must quiesce");
    let extra_rounds = chaotic.stats.rounds.saturating_sub(clean.stats.rounds);
    let extra_msgs = chaotic
        .stats
        .transmissions()
        .saturating_sub(clean.stats.transmissions());
    format!(
        "    {{\"case\": \"chaos_construction\", \"nodes\": {NODES}, \"runs\": {RUNS}, \"spec\": \"{spec}\", \"restabilize_rounds\": {extra_rounds}, \"chaos_extra_messages\": {extra_msgs}, {}, {}}}",
        wall.json_fields("run"),
        clean_wall.json_fields("clean_run"),
    )
}

/// Row 3: incremental maintenance absorbing a regional outage + rejoin.
fn recovery_row(net: &Network) -> String {
    let victims: Vec<_> = ChaosRecipe::parse("region:r=0.15@round1")
        // sp-analyze: allow(panic, static spec validated by the chaos grammar tests)
        .expect("static region spec")
        .build(net, SEED)
        .kills()
        .entries()
        .iter()
        .flat_map(|(_, vs)| vs.iter().copied())
        .collect();
    assert!(!victims.is_empty(), "the outage region must hit someone");
    let (wall, work) = timed(|| {
        let mut maint = InfoMaintainer::new(net.clone());
        let report = maint.kill_many(&victims);
        for &v in &victims {
            maint.revive(v);
        }
        report.work_items
    });
    format!(
        "    {{\"case\": \"chaos_recovery\", \"nodes\": {NODES}, \"runs\": {RUNS}, \"victims\": {}, \"messages_per_recovery\": {:.1}, {}}}",
        victims.len(),
        work as f64 / victims.len() as f64,
        wall.json_fields("run"),
    )
}

fn chaos_benches(c: &mut Criterion) {
    let net = bench_net();
    let spec = chaos_spec();
    ChaosRecipe::parse(&spec)
        // sp-analyze: allow(panic, a bench with an unparseable knob value must fail loudly)
        .unwrap_or_else(|e| panic!("SP_CHAOS_SPEC {spec:?}: {e}"));

    let rows = [
        delivery_row(&net, &spec),
        construction_row(&net, &spec),
        recovery_row(&net),
    ];

    let json = format!(
        "{{\n  \"benchmark\": \"chaos_resilience\",\n  \"unit\": \"seconds (median over samples)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_chaos.json");
    std::fs::write(out, &json).expect("write BENCH_chaos.json");
    eprintln!("wrote {out}");

    let plan = ChaosRecipe::parse(&spec)
        // sp-analyze: allow(panic, validated above)
        .expect("validated spec")
        .build(&net, SEED);
    let cfg = StreamingConfig::default_for_lifetime();
    let mut group = c.benchmark_group("chaos_resilience");
    group.sample_size(10);
    group.bench_function("lifetime_under_chaos", |b| {
        b.iter(|| run_lifetime_with_chaos(&net, Scheme::Slgf2, &cfg, &plan, SEED).packets_delivered)
    });
    group.finish();
}

criterion_group!(benches, chaos_benches);
criterion_main!(benches);
