//! Visualization for the straightpath WASN routing stack.
//!
//! Two output formats, both dependency-free:
//!
//! * [`svg`] — publication-style SVG scenes of a deployment: nodes
//!   colored by safety tuple, UDG edges, forbidden-area obstacles,
//!   unsafe-area shape estimates `E_i(u)`, and route paths with
//!   per-phase coloring (greedy / backup / perimeter). This is the
//!   picture Figs. 1–4 of the paper sketch by hand.
//! * [`ascii`] — terminal line charts of the reproduction figures
//!   ([`sp_metrics::Figure`]), so `repro-figures` can show the curve
//!   shapes of Figs. 5–7 without leaving the shell;
//! * [`chart`] — the same figures as standalone SVG line charts with
//!   axes, ticks, markers, and a legend.
//!
//! # Example
//!
//! ```
//! use sp_net::{deploy::DeploymentConfig, Network, NodeId};
//! use sp_viz::svg::{SceneOptions, Scene};
//!
//! let cfg = DeploymentConfig::paper_default(120);
//! let net = Network::from_positions(cfg.deploy_uniform(1), cfg.radius, cfg.area);
//! let svg = Scene::new(&net, SceneOptions::default()).render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ascii;
pub mod chart;
pub mod svg;

pub use ascii::{render_chart, ChartOptions};
pub use chart::{render_figure_svg, FigureSvgOptions};
pub use svg::{Scene, SceneOptions};
