//! Property tests: incremental repair of the safety information under
//! node failures is indistinguishable from a full rebuild.
//!
//! `InfoMaintainer::kill` repairs the Definition-1 labeling with a
//! monotone worklist; these tests drive it with randomized deployments
//! and kill sequences and compare against `SafetyMap::label_with_pinned`
//! on the degraded (ghost) network, for both tuples and the derived
//! shape estimates.

use proptest::prelude::*;
use sp_core::{InfoMaintainer, SafetyInfo, SafetyMap};
use sp_geom::Quadrant;
use sp_net::{DeploymentConfig, Network, NodeId};

fn network(n: usize, seed: u64) -> Network {
    let cfg = DeploymentConfig::paper_default(n);
    Network::from_positions(cfg.deploy_uniform(seed), cfg.radius, cfg.area)
}

fn ghost_pinned(maint: &InfoMaintainer) -> Vec<bool> {
    // The maintainer unpins dead nodes; mirror that for the rebuild.
    maint
        .network()
        .node_ids()
        .map(|u| !maint.is_dead(u) && maint.info().safety().is_pinned(u))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Tuples after arbitrary kill sequences equal a fresh rebuild.
    #[test]
    fn incremental_tuples_match_rebuild(
        seed in 0u64..500,
        n in 120usize..280,
        kills in prop::collection::vec(0usize..120, 1..10),
    ) {
        let net = network(n, seed);
        let mut maint = InfoMaintainer::new(net.clone());
        for k in kills {
            maint.kill(NodeId::new(k % n));
        }
        let rebuilt = SafetyMap::label_with_pinned(maint.network(), ghost_pinned(&maint));
        for u in maint.network().node_ids() {
            if maint.is_dead(u) {
                prop_assert!(maint.tuple(u).fully_unsafe());
            } else {
                prop_assert_eq!(maint.tuple(u), rebuilt.tuple(u), "at {}", u);
            }
        }
    }

    /// The assembled info (estimates included) matches a centralized
    /// build over the ghost network.
    #[test]
    fn incremental_estimates_match_rebuild(
        seed in 0u64..200,
        kills in prop::collection::vec(0usize..150, 1..6),
    ) {
        let n = 150;
        let net = network(n, seed);
        let mut maint = InfoMaintainer::new(net);
        for k in kills {
            maint.kill(NodeId::new(k % n));
        }
        let info = maint.info();
        let central = SafetyInfo::build_with_pinned(
            maint.network(),
            ghost_pinned(&maint),
        );
        for u in maint.network().node_ids() {
            if maint.is_dead(u) {
                continue;
            }
            for q in Quadrant::ALL {
                match (info.estimate(u, q), central.estimate(u, q)) {
                    (None, None) => {}
                    (Some(a), Some(b)) => {
                        prop_assert_eq!(a.rect, b.rect, "estimate at {} {}", u, q);
                        prop_assert_eq!(a.first_far, b.first_far);
                        prop_assert_eq!(a.last_far, b.last_far);
                    }
                    (a, b) => {
                        prop_assert!(false, "presence mismatch at {} {}: {:?} vs {:?}", u, q, a, b);
                    }
                }
            }
        }
    }

    /// Kill order never matters (the fixed point is unique).
    #[test]
    fn kill_order_is_irrelevant(
        seed in 0u64..200,
        mut victims in prop::collection::btree_set(0usize..140, 2..8),
    ) {
        let n = 140;
        let net = network(n, seed);
        let forward: Vec<NodeId> = victims.iter().map(|&v| NodeId::new(v)).collect();
        let mut a = InfoMaintainer::new(net.clone());
        a.kill_many(&forward);
        let backward: Vec<NodeId> = victims.iter().rev().map(|&v| NodeId::new(v)).collect();
        let mut b = InfoMaintainer::new(net);
        b.kill_many(&backward);
        for u in a.network().node_ids() {
            prop_assert_eq!(a.tuple(u), b.tuple(u), "at {}", u);
        }
        victims.clear(); // silence unused-mut lint paths
    }
}

/// The distributed on_neighbor_failed repair and the centralized
/// maintainer agree after the same failure.
#[test]
fn distributed_and_centralized_repair_agree() {
    use sp_core::construct_with;
    use sp_net::edge_nodes::edge_node_mask;
    use sp_sim::FailurePlan;

    let net = network(220, 9);
    let pinned = edge_node_mask(&net, net.radius());
    let victim = net
        .node_ids()
        .find(|&u| !pinned[u.index()] && net.degree(u) > 4)
        .expect("interior node");

    // Distributed: kill after stabilization (round 200 >> diameter).
    let mut plan = FailurePlan::new();
    plan.kill_at(200, victim);
    let dist = construct_with(&net, pinned.clone(), plan).expect("quiesces");

    // Centralized maintainer.
    let mut maint = InfoMaintainer::with_pinned(net, pinned);
    maint.kill(victim);

    for u in maint.network().node_ids() {
        if u == victim {
            continue;
        }
        assert_eq!(
            dist.info.tuple(u),
            maint.tuple(u),
            "distributed vs maintained tuple at {u}"
        );
    }
}
