//! Circles and the proximity witnesses used by graph planarization.
//!
//! The Gabriel graph keeps edge `(u, v)` only when no witness node lies in
//! the closed disk with diameter `uv`; the relative neighborhood graph
//! (RNG) uses the lune `max(|uw|, |wv|) < |uv|`. Both predicates live here
//! so the planarizer in `sp-net` stays purely combinatorial.

use crate::Point;

/// A circle (or closed disk, depending on the predicate used).
///
/// ```
/// use sp_geom::{Circle, Point};
/// let c = Circle::new(Point::new(0.0, 0.0), 5.0);
/// assert!(c.contains(Point::new(3.0, 4.0)));       // on boundary
/// assert!(!c.contains_strict(Point::new(3.0, 4.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius; must be non-negative.
    pub radius: f64,
}

impl Circle {
    /// Circle from center and radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or NaN.
    pub fn new(center: Point, radius: f64) -> Circle {
        assert!(
            radius >= 0.0,
            "circle radius must be non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// The circle having segment `ab` as a diameter — the Gabriel-graph
    /// witness region for edge `(a, b)`.
    pub fn with_diameter(a: Point, b: Point) -> Circle {
        Circle {
            center: a.midpoint(b),
            radius: a.distance(b) / 2.0,
        }
    }

    /// Closed-disk membership (boundary included).
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Open-disk membership (boundary excluded).
    pub fn contains_strict(&self, p: Point) -> bool {
        self.center.distance_sq(p) < self.radius * self.radius
    }

    /// Area of the disk.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// True when the two closed disks share at least one point.
    pub fn intersects(&self, other: &Circle) -> bool {
        let r = self.radius + other.radius;
        self.center.distance_sq(other.center) <= r * r
    }
}

/// The RNG lune witness predicate: is `w` strictly inside the lune of edge
/// `(a, b)`, i.e. `max(|aw|, |wb|) < |ab|`?
///
/// An edge with such a witness is removed by relative-neighborhood-graph
/// planarization.
pub fn in_rng_lune(a: Point, b: Point, w: Point) -> bool {
    let d = a.distance(b);
    a.distance(w) < d && b.distance(w) < d
}

/// The Gabriel witness predicate: is `w` strictly inside the open disk with
/// diameter `(a, b)`?
///
/// Formulated via the dot product so no square roots are taken:
/// `w` is inside iff the angle `a-w-b` is obtuse.
pub fn in_gabriel_disk(a: Point, b: Point, w: Point) -> bool {
    (a - w).dot(b - w) < 0.0
}

impl std::fmt::Display for Circle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "circle({}, r={:.3})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diameter_circle_spans_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(6.0, 8.0);
        let c = Circle::with_diameter(a, b);
        assert_eq!(c.radius, 5.0);
        assert!(c.contains(a));
        assert!(c.contains(b));
        assert!(c.contains(a.midpoint(b)));
    }

    #[test]
    fn gabriel_predicate_matches_disk() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        let disk = Circle::with_diameter(a, b);
        let inside = Point::new(5.0, 2.0);
        let outside = Point::new(5.0, 6.0);
        let boundary = Point::new(5.0, 5.0);
        assert!(in_gabriel_disk(a, b, inside));
        assert!(disk.contains_strict(inside));
        assert!(!in_gabriel_disk(a, b, outside));
        assert!(!disk.contains_strict(outside));
        // The boundary is excluded: right angle at w.
        assert!(!in_gabriel_disk(a, b, boundary));
    }

    #[test]
    fn rng_lune_is_wider_than_gabriel_disk() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // This witness is outside the Gabriel disk but inside the lune.
        let w = Point::new(5.0, 6.0);
        assert!(!in_gabriel_disk(a, b, w));
        assert!(in_rng_lune(a, b, w));
        // Everything in the Gabriel disk is in the lune.
        for i in 0..50 {
            let t = i as f64 / 50.0;
            let p = Point::new(1.0 + 8.0 * t, 2.0 * (0.5 - (t - 0.5).abs()));
            if in_gabriel_disk(a, b, p) {
                assert!(in_rng_lune(a, b, p), "disk point {p} not in lune");
            }
        }
    }

    #[test]
    fn endpoints_are_not_their_own_witnesses() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        assert!(!in_gabriel_disk(a, b, a));
        assert!(!in_rng_lune(a, b, a));
        assert!(!in_rng_lune(a, b, b));
    }

    #[test]
    fn circle_intersection() {
        let a = Circle::new(Point::new(0.0, 0.0), 2.0);
        let b = Circle::new(Point::new(3.0, 0.0), 1.0);
        let c = Circle::new(Point::new(10.0, 0.0), 1.0);
        assert!(a.intersects(&b)); // touching counts
        assert!(!a.intersects(&c));
    }

    #[test]
    #[should_panic(expected = "radius must be non-negative")]
    fn negative_radius_rejected() {
        let _ = Circle::new(Point::ORIGIN, -1.0);
    }
}
