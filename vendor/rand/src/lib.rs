//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: a seeded
//! deterministic generator ([`rngs::StdRng`]), the [`SeedableRng`]
//! constructor, uniform range sampling via [`RngExt::random_range`],
//! and [`seq::SliceRandom::shuffle`]. The generator is SplitMix64 —
//! statistically solid for simulation workloads and fully reproducible
//! per seed, which is all the experiment harness requires. It is *not*
//! cryptographically secure.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let x = rng.random_range(0..10usize);
//! assert!(x < 10);
//! let y = rng.random_range(0.0..1.0f64);
//! assert!((0.0..1.0).contains(&y));
//! ```

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed. Identical seeds produce
    /// identical streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Deterministic generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Passes through every 64-bit state exactly once per period and has
    /// no weak low bits, unlike a raw LCG.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // One mixing round so that nearby seeds diverge immediately.
            let mut rng = StdRng { state: seed };
            let _ = rng.next_u64();
            rng
        }
    }
}

/// A type that can be sampled uniformly from a range by an RNG.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift bounding: unbiased enough for simulation
                // use and branch-free.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
            fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo < hi, "empty sample range");
                // 53 high bits -> uniform in [0, 1).
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                let v = lo as f64 + unit * (hi as f64 - lo as f64);
                // Guard against rounding up to the open bound.
                if v as $t >= hi { lo } else { v as $t }
            }
            fn sample_inclusive(rng: &mut impl RngCore, lo: Self, hi: Self) -> Self {
                debug_assert!(lo <= hi, "empty sample range");
                let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                (lo as f64 + unit * (hi as f64 - lo as f64)) as $t
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        assert!(self.start < self.end, "cannot sample from an empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from an empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Convenience sampling methods on any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform draw from `range` (half-open or inclusive).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform boolean.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random_range(0.0..1.0f64) < p
    }
}

impl<R: RngCore> RngExt for R {}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle(&mut self, rng: &mut impl RngCore);

        /// A uniformly random element, `None` when empty.
        fn choose(&self, rng: &mut impl RngCore) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle(&mut self, rng: &mut impl RngCore) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_inclusive(rng, 0, i);
                self.swap(i, j);
            }
        }

        fn choose(&self, rng: &mut impl RngCore) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_half_open(rng, 0, self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0..1_000_000u64),
                b.random_range(0..1_000_000u64)
            );
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..20usize);
            assert!((10..20).contains(&v));
            let w = rng.random_range(0..=5u8);
            assert!(w <= 5);
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let v = rng.random_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v));
            let w = rng.random_range(0.0..=1.0f64);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_sampling_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_returns_member() {
        let mut rng = StdRng::seed_from_u64(7);
        let v = [10, 20, 30];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
