//! The spec-string front end: one line of text → a resolved sweep.
//!
//! A spec is a `;`-separated list of `key=value` clauses:
//!
//! ```text
//! scenario=corridor;nodes=400..800:50;nets=100;schemes=PAPER+SLGF2-noBP
//! ```
//!
//! | key        | value                                            | default |
//! |------------|--------------------------------------------------|---------|
//! | `scenario` | a registered scenario name (`IA`, `FA`, …)       | `IA`    |
//! | `nodes`    | `lo..hi:step` (inclusive), a comma list, or one value | the paper's `400..800:50` |
//! | `nets`     | networks per node count                          | `100`   |
//! | `pairs`    | source/destination pairs per network             | `1`     |
//! | `flows`    | concurrent flows per network, routed as one batched `TrafficEngine` pass per scheme (supersedes `pairs`) | unset |
//! | `seed`     | base seed (decimal or `0x…`)                     | the paper sweeps' seed |
//! | `schemes`  | `+`-separated scheme names; `PAPER`, `EXTENDED`, and `ALL` expand to the corresponding sets | `PAPER` |
//!
//! Scenario and scheme names resolve through the **open registries**,
//! so a scenario or scheme family registered at runtime is immediately
//! addressable from a spec with no parser changes.

use crate::{run_sweep, Scenario, Scheme, SweepConfig, SweepResults};

/// A parse or resolution failure, with the offending clause quoted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad sweep spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// A fully resolved sweep: the configuration plus the scheme set, ready
/// for [`run_sweep`].
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The sweep configuration (scenario resolved to a registry handle).
    pub config: SweepConfig,
    /// The schemes to route, in spec order.
    pub schemes: Vec<Scheme>,
}

impl SweepSpec {
    /// Parses a spec string, resolving scenario and scheme names
    /// through their registries.
    pub fn parse(spec: &str) -> Result<SweepSpec, SpecError> {
        let mut config = SweepConfig::paper_ia();
        let mut schemes: Vec<Scheme> = Scheme::PAPER_SET.to_vec();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| SpecError(format!("clause {clause:?} is not key=value")))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "scenario" => {
                    config.deployment = Scenario::by_name(value).ok_or_else(|| {
                        SpecError(format!(
                            "unknown scenario {value:?} (registered: {})",
                            crate::ScenarioRegistry::names().join(", ")
                        ))
                    })?;
                }
                "nodes" => config.node_counts = parse_nodes(value)?,
                "nets" => config.networks_per_point = parse_count(key, value)?,
                "pairs" => config.pairs_per_network = parse_count(key, value)?,
                "flows" => config.flows_per_network = parse_count(key, value)?,
                "seed" => {
                    config.base_seed = parse_u64(value)
                        .ok_or_else(|| SpecError(format!("seed {value:?} is not a number")))?;
                }
                "schemes" => schemes = parse_schemes(value)?,
                other => {
                    return Err(SpecError(format!(
                    "unknown key {other:?} (expected scenario/nodes/nets/pairs/flows/seed/schemes)"
                )))
                }
            }
        }
        if config.node_counts.is_empty() {
            return Err(SpecError("nodes resolved to an empty list".to_owned()));
        }
        Ok(SweepSpec { config, schemes })
    }

    /// Runs the resolved sweep.
    pub fn run(&self) -> SweepResults {
        run_sweep(&self.config, &self.schemes)
    }
}

/// `lo..hi:step` (both ends inclusive), a comma list, or one value.
fn parse_nodes(value: &str) -> Result<Vec<usize>, SpecError> {
    if let Some((range, step)) = value.split_once(':') {
        let (lo, hi) = range
            .split_once("..")
            .ok_or_else(|| SpecError(format!("nodes {value:?}: expected lo..hi:step")))?;
        let lo = parse_usize(lo)
            .filter(|&n| n > 0)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: bad lower bound")))?;
        let hi = parse_usize(hi)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: bad upper bound")))?;
        let step = parse_usize(step)
            .filter(|&s| s > 0)
            .ok_or_else(|| SpecError(format!("nodes {value:?}: step must be a positive number")))?;
        if lo > hi {
            return Err(SpecError(format!("nodes {value:?}: empty range")));
        }
        return Ok((lo..=hi).step_by(step).collect());
    }
    if value.contains("..") {
        return Err(SpecError(format!(
            "nodes {value:?}: a range needs a step, e.g. 400..800:50"
        )));
    }
    value
        .split(',')
        .map(|tok| {
            parse_usize(tok)
                .filter(|&n| n > 0)
                .ok_or_else(|| SpecError(format!("nodes {value:?}: bad count {tok:?}")))
        })
        .collect()
}

/// `+`-separated scheme names with the `PAPER`/`EXTENDED`/`ALL` macros.
fn parse_schemes(value: &str) -> Result<Vec<Scheme>, SpecError> {
    let mut out = Vec::new();
    for tok in value.split('+') {
        let tok = tok.trim();
        match tok {
            "" => return Err(SpecError(format!("schemes {value:?}: empty name"))),
            "PAPER" => out.extend(Scheme::PAPER_SET),
            "EXTENDED" => out.extend(Scheme::EXTENDED_SET),
            "ALL" => out.extend(Scheme::all()),
            name => out.push(Scheme::by_name(name).ok_or_else(|| {
                SpecError(format!(
                    "unknown scheme {name:?} (registered: {})",
                    crate::SchemeRegistry::names().join(", ")
                ))
            })?),
        }
    }
    // Membership dedup (macros overlap, e.g. PAPER+SLGF2): a repeated
    // scheme would be routed twice and plotted as two identical curves.
    let mut seen = std::collections::BTreeSet::new();
    out.retain(|s| seen.insert(*s));
    Ok(out)
}

fn parse_count(key: &str, value: &str) -> Result<usize, SpecError> {
    parse_usize(value)
        .filter(|&n| n > 0)
        .ok_or_else(|| SpecError(format!("{key} {value:?} is not a positive number")))
}

fn parse_usize(tok: &str) -> Option<usize> {
    tok.trim().parse().ok()
}

fn parse_u64(tok: &str) -> Option<u64> {
    let tok = tok.trim();
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16).ok()
    } else {
        tok.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_the_paper_ia_sweep() {
        let spec = SweepSpec::parse("").unwrap();
        assert_eq!(spec.config, SweepConfig::paper_ia());
        assert_eq!(spec.schemes, Scheme::PAPER_SET.to_vec());
    }

    #[test]
    fn full_spec_resolves_every_clause() {
        let spec = SweepSpec::parse(
            "scenario=corridor;nodes=400..800:50;nets=12;pairs=2;seed=0xabc;schemes=PAPER+SLGF2-noBP",
        )
        .unwrap();
        assert_eq!(spec.config.deployment, Scenario::Corridor);
        assert_eq!(
            spec.config.node_counts,
            vec![400, 450, 500, 550, 600, 650, 700, 750, 800]
        );
        assert_eq!(spec.config.networks_per_point, 12);
        assert_eq!(spec.config.pairs_per_network, 2);
        assert_eq!(spec.config.base_seed, 0xabc);
        let mut want = Scheme::PAPER_SET.to_vec();
        want.push(Scheme::Slgf2NoBackup);
        assert_eq!(spec.schemes, want);
    }

    #[test]
    fn node_lists_and_single_values_parse() {
        assert_eq!(
            SweepSpec::parse("nodes=400,600")
                .unwrap()
                .config
                .node_counts,
            vec![400, 600]
        );
        assert_eq!(
            SweepSpec::parse("nodes=500").unwrap().config.node_counts,
            vec![500]
        );
        // The range end is inclusive, mirroring the paper's 400..=800.
        assert_eq!(
            SweepSpec::parse("nodes=400..500:50")
                .unwrap()
                .config
                .node_counts,
            vec![400, 450, 500]
        );
    }

    #[test]
    fn flows_clause_enables_batched_workloads() {
        let spec = SweepSpec::parse("flows=64").unwrap();
        assert_eq!(spec.config.flows_per_network, 64);
        assert_eq!(spec.config.flow_count(), 64);
        // Unset flows fall back to the per-pair setup.
        let spec = SweepSpec::parse("pairs=3").unwrap();
        assert_eq!(spec.config.flows_per_network, 0);
        assert_eq!(spec.config.flow_count(), 3);
        assert!(SweepSpec::parse("flows=0").is_err());
    }

    #[test]
    fn flows_spec_runs_a_batched_sweep() {
        let spec = SweepSpec::parse("scenario=IA;nodes=400;nets=2;flows=12;schemes=SLGF2").unwrap();
        let results = spec.run();
        // Every instance routes the whole 12-flow batch.
        assert_eq!(results.points[0].schemes[0].total, 24);
    }

    #[test]
    fn scheme_macros_expand() {
        let all = SweepSpec::parse("schemes=ALL").unwrap().schemes;
        assert_eq!(all, Scheme::all());
        let ext = SweepSpec::parse("schemes=EXTENDED").unwrap().schemes;
        assert_eq!(ext, Scheme::EXTENDED_SET.to_vec());
        // Duplicates collapse even when non-adjacent (macro overlap):
        // a repeat would be routed twice and plotted as twin curves.
        let dedup = SweepSpec::parse("schemes=SLGF2+PAPER+GFG+GFG")
            .unwrap()
            .schemes;
        assert_eq!(
            dedup,
            vec![
                Scheme::Slgf2,
                Scheme::Gf,
                Scheme::Lgf,
                Scheme::Slgf,
                Scheme::Gfg
            ]
        );
    }

    #[test]
    fn errors_name_the_offending_clause() {
        for (spec, needle) in [
            ("scenario=nowhere", "unknown scenario"),
            ("schemes=NOPE", "unknown scheme"),
            ("nodes=", "bad count"),
            ("nodes=0", "bad count"),
            ("nodes=0..100:100", "bad lower bound"),
            ("nodes=400..300:50", "empty range"),
            ("nodes=400..800", "needs a step"),
            ("nodes=400..800:0", "step must be"),
            ("nets=0", "positive number"),
            ("seed=zebra", "not a number"),
            ("bogus=1", "unknown key"),
            ("scenario", "not key=value"),
        ] {
            let err = SweepSpec::parse(spec).expect_err(spec);
            assert!(err.to_string().contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn spec_runs_through_the_registries_end_to_end() {
        let spec = SweepSpec::parse("scenario=clustered;nodes=400;nets=2;schemes=SLGF2").unwrap();
        let results = spec.run();
        assert_eq!(results.deployment_tag, "clustered");
        assert_eq!(results.points.len(), 1);
        assert_eq!(results.points[0].schemes[0].total, 2);
    }
}
