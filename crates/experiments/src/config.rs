//! Sweep configurations reproducing the paper's experimental setup (§5).
//!
//! > "nodes with a transmission radius of 20 meters are deployed to cover
//! > an interest area of 200m × 200m … we test the networks when the
//! > number of nodes in the interest area is varied from 400 to 800 in
//! > increments of 50. For each case, 100 networks are randomly
//! > generated, and the average routing performance over all of these
//! > randomly sampled networks is reported."
//!
//! The deployment model of a sweep is a [`Scenario`] handle into the
//! open scenario registry — the paper's IA/FA pair are the first two
//! built-ins, and any registered scenario (clustered, corridor,
//! city-block, or a runtime registration) sweeps identically.

use crate::{ChaosRecipe, MobilityRecipe, Scenario};
use sp_net::deploy::DeploymentConfig;

/// A full figure sweep: node counts × seeded network instances.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepConfig {
    /// The x axis: node counts to test.
    pub node_counts: Vec<usize>,
    /// Random networks generated per node count.
    pub networks_per_point: usize,
    /// Random source/destination pairs routed per network.
    pub pairs_per_network: usize,
    /// Concurrent flows routed per network as **one batched
    /// [`sp_core::TrafficEngine`] pass** per scheme (the `flows=` spec
    /// clause). `0` (the default) routes `pairs_per_network` flows —
    /// the paper's per-pair setup; a positive value supersedes it for
    /// mixed streaming workloads.
    pub flows_per_network: usize,
    /// Deployment scenario (resolved through the scenario registry).
    pub deployment: Scenario,
    /// Base seed; instance seeds derive deterministically from it.
    pub base_seed: u64,
    /// Chaos recipe applied to every instance (the `chaos=` spec
    /// clause): failures strike before routing, so delivery degrades
    /// under the recipe's outages/partitions/drops. `None` routes the
    /// pristine topology.
    pub chaos: Option<ChaosRecipe>,
    /// Mobility recipe perturbing every deployed instance before
    /// routing (the `mobility=` spec clause). Composes with `chaos`:
    /// motion first, failures strike the moved topology.
    pub mobility: Option<MobilityRecipe>,
}

impl SweepConfig {
    /// The paper's IA sweep: 400..=800 step 50, 100 networks per point.
    pub fn paper_ia() -> SweepConfig {
        SweepConfig {
            node_counts: (400..=800).step_by(50).collect(),
            networks_per_point: 100,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment: Scenario::Ia,
            base_seed: 0x5eed_0001,
            chaos: None,
            mobility: None,
        }
    }

    /// The paper's FA sweep.
    pub fn paper_fa() -> SweepConfig {
        SweepConfig {
            deployment: Scenario::Fa,
            ..SweepConfig::paper_ia()
        }
    }

    /// A reduced sweep for tests and smoke benchmarks: three node
    /// counts, a handful of networks.
    pub fn quick(deployment: Scenario) -> SweepConfig {
        SweepConfig {
            node_counts: vec![400, 600, 800],
            networks_per_point: 8,
            pairs_per_network: 1,
            flows_per_network: 0,
            deployment,
            base_seed: 0x5eed_0002,
            chaos: None,
            mobility: None,
        }
    }

    /// The deployment constants for one node count (the paper's area
    /// and radius).
    pub fn deployment_config(&self, node_count: usize) -> DeploymentConfig {
        DeploymentConfig::paper_default(node_count)
    }

    /// Flows drawn per network instance: `flows_per_network` when set,
    /// otherwise `pairs_per_network`.
    pub fn flow_count(&self) -> usize {
        if self.flows_per_network > 0 {
            self.flows_per_network
        } else {
            self.pairs_per_network
        }
    }

    /// The deterministic seed of instance `k` at node count index `i`.
    pub fn instance_seed(&self, i: usize, k: usize) -> u64 {
        self.base_seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((i as u64) << 32)
            .wrapping_add(k as u64)
    }

    /// Total number of network instances in the sweep.
    pub fn total_instances(&self) -> usize {
        self.node_counts.len() * self.networks_per_point
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sweeps_match_section5() {
        let ia = SweepConfig::paper_ia();
        assert_eq!(
            ia.node_counts,
            vec![400, 450, 500, 550, 600, 650, 700, 750, 800]
        );
        assert_eq!(ia.networks_per_point, 100);
        assert_eq!(ia.deployment.tag(), "IA");
        let fa = SweepConfig::paper_fa();
        assert_eq!(fa.deployment.tag(), "FA");
        assert_eq!(fa.node_counts, ia.node_counts);
        let cfg = ia.deployment_config(500);
        assert_eq!(cfg.radius, 20.0);
        assert_eq!(cfg.area.width(), 200.0);
    }

    #[test]
    fn instance_seeds_are_distinct_and_deterministic() {
        let cfg = SweepConfig::paper_ia();
        let a = cfg.instance_seed(0, 0);
        let b = cfg.instance_seed(0, 1);
        let c = cfg.instance_seed(1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, cfg.instance_seed(0, 0));
    }

    #[test]
    fn deploy_scenarios_generate_right_counts() {
        let sweep = SweepConfig::quick(Scenario::Fa);
        let cfg = sweep.deployment_config(400);
        let pts = sweep.deployment.deploy(&cfg, 3);
        assert_eq!(pts.len(), 400);
        assert_eq!(sweep.total_instances(), 24);
    }
}
