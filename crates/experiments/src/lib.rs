//! Reproduction harness for every figure of the straightpath paper.
//!
//! Pipeline: a [`SweepConfig`] describes the paper's §5 setup (node
//! counts 400–800, 100 seeded networks per point, a registered
//! deployment [`Scenario`]); [`run_sweep`] routes every [`Scheme`] over
//! every instance in parallel; [`figures`] folds the records into the
//! exact curves of Figs. 5–7 plus the ablations A1–A15 of `DESIGN.md`;
//! [`scenarios`] rebuilds the paper's hand-drawn figures as executable
//! networks; and [`workload`] streams flows against per-node batteries
//! for the lifetime experiment.
//!
//! Both experiment axes are **open registries**: schemes register
//! closure builders carrying config payloads ([`Scheme::register`],
//! [`SchemeFamily`]), deployments register generator closures
//! ([`Scenario::register`]), and the spec-string front end
//! ([`SweepSpec`]) resolves a one-line description through both.
//!
//! The `repro-figures` binary drives the whole thing from the command
//! line (including `--spec`) and writes text/markdown/CSV/JSON (and
//! `--svg`) outputs.
//!
//! ```
//! use sp_experiments::{run_sweep, Scheme, SweepConfig, Scenario, figures};
//!
//! // A miniature IA sweep (the paper uses 100 networks per point).
//! let mut cfg = SweepConfig::quick(Scenario::Ia);
//! cfg.node_counts = vec![400];
//! cfg.networks_per_point = 2;
//! let results = run_sweep(&cfg, &Scheme::PAPER_SET);
//! let fig6 = figures::fig6(&results);
//! assert_eq!(fig6.series.len(), 4);
//! ```
//!
//! Or, equivalently, through the spec-string front end:
//!
//! ```
//! use sp_experiments::SweepSpec;
//!
//! let spec = SweepSpec::parse("scenario=IA;nodes=400;nets=2;schemes=PAPER").unwrap();
//! let results = spec.run();
//! assert_eq!(results.points.len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chaos;
pub mod config;
pub mod figures;
pub mod mobility_model;
pub mod runner;
pub mod scenario;
pub mod scenarios;
pub mod scheme;
pub mod spec;
pub mod workload;

pub use chaos::{ChaosArgs, ChaosBuild, ChaosClass, ChaosClause, ChaosRecipe, ChaosRegistry};
pub use config::SweepConfig;
pub use mobility_model::{
    MobilityArgs, MobilityBuild, MobilityModel, MobilityRecipe, MobilityRegistry,
};
pub use runner::{
    random_connected_pair, run_instance, run_sweep, RouteRecord, SchemePoint, SweepPoint,
    SweepResults, SWEEP_THREADS_ENV,
};
pub use scenario::{Scenario, ScenarioBuild, ScenarioRegistry};
pub use scenarios::{all_scenarios, PaperScenario};
pub use scheme::{
    PreparedNetwork, RouterContext, Scheme, SchemeBuild, SchemeFamily, SchemeRegistry,
};
pub use spec::{SpecError, SweepSpec};
pub use workload::{
    lifetime_figure, run_lifetime, run_lifetime_with_chaos, LifetimeReport, StreamingConfig,
};
