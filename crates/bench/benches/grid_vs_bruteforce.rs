//! Unit-disk-graph construction: the `SpatialIndex` grid path versus
//! the `O(n²)` brute-force reference, at paper scale and beyond.
//!
//! Deployments keep the paper's density (radius 20 m, ~500 nodes per
//! 200 m × 200 m) while the area grows with `n`, so the comparison
//! reflects scaling the *network*, not packing one arena ever denser.
//! Besides the criterion output, the measured repeat-sample statistics
//! (samples / median / stddev, ROADMAP "criterion stub fidelity") land
//! in `BENCH_construction.json` at the workspace root, including the
//! speedup the tentpole acceptance criterion reads (≥ 5× at
//! n = 10000). The committed copy is the CI `bench-gate` baseline.
//!
//! Run with: `cargo bench -p sp-bench --bench grid_vs_bruteforce`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sp_bench::{memory_json_fields, sample_stats};
use sp_net::{DeploymentConfig, Network};

const SIZES: [usize; 3] = [500, 2000, 10_000];

/// The paper's density at scale `n` (area grows with the node count).
fn deployment(n: usize) -> DeploymentConfig {
    DeploymentConfig::paper_density(n)
}

fn construction_benches(c: &mut Criterion) {
    let mut rows = Vec::new();
    let mut group = c.benchmark_group("construction");
    for n in SIZES {
        let cfg = deployment(n);
        let positions = cfg.deploy_uniform(7);

        // Sanity: both paths must produce the identical graph.
        let grid = Network::from_positions(positions.clone(), cfg.radius, cfg.area);
        let brute = Network::from_positions_brute_force(positions.clone(), cfg.radius, cfg.area);
        assert_eq!(
            grid.edge_count(),
            brute.edge_count(),
            "paths diverge at n={n}"
        );

        let runs = if n >= 10_000 { 5 } else { 7 };
        let grid_s = sample_stats(runs, || {
            Network::from_positions(positions.clone(), cfg.radius, cfg.area)
        });
        let brute_s = sample_stats(runs, || {
            Network::from_positions_brute_force(positions.clone(), cfg.radius, cfg.area)
        });
        let speedup = brute_s.median / grid_s.median;
        // Memory estimator: the CSR arena must strictly undercut the
        // legacy per-node-Vec layout at every benchmarked size.
        let footprint = grid.memory_footprint();
        assert!(
            footprint.adjacency_bytes_per_node() < footprint.legacy_adjacency_bytes_per_node(),
            "CSR ({:.1} B/node) must beat the per-node-Vec layout ({:.1} B/node) at n={n}",
            footprint.adjacency_bytes_per_node(),
            footprint.legacy_adjacency_bytes_per_node()
        );
        eprintln!(
            "n={n}: grid {:.3} ms | brute {:.3} ms | speedup {speedup:.1}x | {:.1} B/node CSR vs {:.1} legacy",
            grid_s.median * 1e3,
            brute_s.median * 1e3,
            footprint.adjacency_bytes_per_node(),
            footprint.legacy_adjacency_bytes_per_node()
        );
        rows.push(format!(
            "    {{\"n\": {}, \"edges\": {}, {}, {}, \"speedup\": {:.2}, {}}}",
            n,
            grid.edge_count(),
            grid_s.json_fields("grid"),
            brute_s.json_fields("bruteforce"),
            speedup,
            memory_json_fields("", &footprint)
        ));

        // Criterion lines for the same comparison (its own timing loop).
        group.bench_function(BenchmarkId::new("grid", n), |b| {
            b.iter(|| Network::from_positions(positions.clone(), cfg.radius, cfg.area));
        });
        if n <= 2000 {
            group.bench_function(BenchmarkId::new("bruteforce", n), |b| {
                b.iter(|| {
                    Network::from_positions_brute_force(positions.clone(), cfg.radius, cfg.area)
                });
            });
        }
    }
    group.finish();

    let json = format!(
        "{{\n  \"benchmark\": \"grid_vs_bruteforce\",\n  \"unit\": \"seconds (median over samples)\",\n  \"results\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_construction.json");
    std::fs::write(out, &json).expect("write BENCH_construction.json");
    eprintln!("wrote {out}");
}

criterion_group!(benches, construction_benches);
criterion_main!(benches);
