//! Exhaustive interleaving checks for the workspace's four lock-free
//! protocols, driven by the [`sp_sync::check`] mini-loom.
//!
//! Each model mirrors one real protocol at the granularity of its
//! atomic actions:
//!
//! 1. [`QueueClaimMerge`] — [`sp_sync::WorkQueue`]: workers `fetch_add`
//!    a shared cursor to claim chunks, process them, and the merge
//!    reassembles outputs in chunk order.
//! 2. [`VisitedWraparound`] — `sp_core`'s `VisitedSet` generation
//!    stamps behind a CAS-claimed buffer pool, with the epoch width
//!    shrunk so every exploration crosses the wrap-and-bulk-clear path.
//! 3. [`CowSwap`] — the epoch-versioned `Arc` copy-on-write position
//!    table: a writer builds a private copy and publishes it with one
//!    atomic pointer swap while readers load concurrently.
//! 4. [`EpochSwap`] — [`sp_sync::EpochCell`]'s publish protocol behind
//!    `sp_core`'s `RoutingService`: fill the snapshot off to the side,
//!    then bump the epoch counter and swap the slot inside the write
//!    critical section, while readers pin `(epoch, Arc)` pairs and
//!    probe the counter wait-free.
//!
//! The explorer walks **every** schedule of 2–3 modeled threads and
//! checks the invariants at every reachable state, so a pass here is a
//! proof over the modeled state space, not a lucky sample.

use sp_sync::check::{explore, Interleave, Report};

fn assert_explored(name: &str, report: Report) {
    assert!(
        report.schedules > 0,
        "{name}: explorer must complete at least one schedule"
    );
    assert!(
        report.steps >= report.schedules,
        "{name}: steps {} < schedules {}",
        report.steps,
        report.schedules
    );
    eprintln!(
        "{name}: {} schedules, {} steps, deepest {}",
        report.schedules, report.steps, report.deepest
    );
}

// ---------------------------------------------------------------------
// Model 1: WorkQueue chunk claiming and ordered merge.
// ---------------------------------------------------------------------

/// Per-worker program counter for [`QueueClaimMerge`].
#[derive(Clone, Copy, PartialEq)]
enum WorkerPc {
    /// About to `fetch_add` the shared cursor.
    Claim,
    /// Claimed this chunk; about to process and write its output slot.
    Process(usize),
    /// Cursor ran past the chunk count.
    Finished,
}

/// Workers race a shared cursor for chunks, then the in-order merge is
/// checked against the serial result.
///
/// `fetch_add` is a single atomic action in the real queue, so it is a
/// single step here; processing + slot write is the second step. The
/// invariants catch a chunk claimed twice (slot written twice), a chunk
/// skipped, or a merge that fails to reconstruct chunk order.
#[derive(Clone)]
struct QueueClaimMerge {
    cursor: usize,
    chunks: usize,
    pcs: Vec<WorkerPc>,
    /// `slots[c]` = how many times chunk `c`'s output was written, and
    /// the value written (chunk id, so the merged output must be the
    /// identity sequence).
    slots: Vec<(usize, usize)>,
}

impl QueueClaimMerge {
    fn new(workers: usize, chunks: usize) -> QueueClaimMerge {
        QueueClaimMerge {
            cursor: 0,
            chunks,
            pcs: vec![WorkerPc::Claim; workers],
            slots: vec![(0, usize::MAX); chunks],
        }
    }
}

impl Interleave for QueueClaimMerge {
    fn runnable(&self) -> Vec<usize> {
        (0..self.pcs.len())
            .filter(|&t| self.pcs[t] != WorkerPc::Finished)
            .collect()
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            WorkerPc::Claim => {
                let c = self.cursor;
                self.cursor += 1;
                self.pcs[tid] = if c < self.chunks {
                    WorkerPc::Process(c)
                } else {
                    WorkerPc::Finished
                };
            }
            WorkerPc::Process(c) => {
                self.slots[c].0 += 1;
                self.slots[c].1 = c;
                self.pcs[tid] = WorkerPc::Claim;
            }
            WorkerPc::Finished => unreachable!("finished workers are not runnable"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|&pc| pc == WorkerPc::Finished)
    }

    fn invariants(&self) -> Result<(), String> {
        for (c, &(writes, value)) in self.slots.iter().enumerate() {
            if writes > 1 {
                return Err(format!("chunk {c} claimed {writes} times"));
            }
            if writes == 1 && value != c {
                return Err(format!("chunk {c} slot holds {value}: merge order broken"));
            }
        }
        if self.done() {
            if let Some(c) = self.slots.iter().position(|&(writes, _)| writes == 0) {
                return Err(format!("chunk {c} never processed"));
            }
        }
        Ok(())
    }
}

#[test]
fn work_queue_claims_every_chunk_exactly_once_in_order() {
    for (workers, chunks) in [(2, 3), (3, 2), (3, 3)] {
        let report = explore(&QueueClaimMerge::new(workers, chunks))
            .unwrap_or_else(|v| panic!("{workers} workers / {chunks} chunks: {v}"));
        assert_explored(&format!("queue {workers}w/{chunks}c"), report);
    }
}

#[test]
fn work_queue_model_catches_a_non_atomic_cursor() {
    /// The same protocol with the claim split into a racy load and a
    /// separate store — the bug the real `fetch_add` exists to prevent.
    #[derive(Clone)]
    struct TornClaim {
        inner: QueueClaimMerge,
        /// Thread ids mid-claim: loaded the cursor, not yet stored.
        loaded: Vec<Option<usize>>,
    }

    impl Interleave for TornClaim {
        fn runnable(&self) -> Vec<usize> {
            self.inner.runnable()
        }
        fn step(&mut self, tid: usize) {
            match self.inner.pcs[tid] {
                WorkerPc::Claim => match self.loaded[tid] {
                    None => self.loaded[tid] = Some(self.inner.cursor),
                    Some(c) => {
                        self.inner.cursor = c + 1;
                        self.loaded[tid] = None;
                        self.inner.pcs[tid] = if c < self.inner.chunks {
                            WorkerPc::Process(c)
                        } else {
                            WorkerPc::Finished
                        };
                    }
                },
                _ => self.inner.step(tid),
            }
        }
        fn done(&self) -> bool {
            self.inner.done()
        }
        fn invariants(&self) -> Result<(), String> {
            self.inner.invariants()
        }
    }

    let err = explore(&TornClaim {
        inner: QueueClaimMerge::new(2, 2),
        loaded: vec![None; 2],
    })
    .expect_err("a load/store claim must double-claim under some schedule");
    assert!(err.message.contains("claimed 2 times"), "{err}");
}

// ---------------------------------------------------------------------
// Model 2: VisitedSet generation stamps behind a CAS-claimed pool.
// ---------------------------------------------------------------------

/// Epoch width of the modeled `VisitedSet`. The real counter is `u32`;
/// shrinking it to wrap after two resets forces every exploration
/// through the wrap-and-bulk-clear branch that production code reaches
/// once per `u32::MAX` routes.
const EPOCH_MAX: u8 = 2;

/// Modeled node count. Node 1 carries a stale stamp from a previous
/// generation; node 0 is the one each packet actually visits.
const NODES: usize = 2;

#[derive(Clone, Copy)]
struct ModelVisited {
    stamps: [u8; NODES],
    epoch: u8,
}

impl ModelVisited {
    /// `VisitedSet::reset`, with the modeled epoch width: wraps
    /// bulk-clear the stamps so stale generations stay unreadable.
    fn reset(&mut self) {
        if self.epoch == EPOCH_MAX {
            self.stamps = [0; NODES];
            self.epoch = 0;
        }
        self.epoch += 1;
    }

    fn insert(&mut self, v: usize) {
        self.stamps[v] = self.epoch;
    }

    fn contains(&self, v: usize) -> bool {
        self.stamps[v] == self.epoch
    }
}

/// Per-thread program counter for [`VisitedWraparound`].
#[derive(Clone, Copy, PartialEq)]
enum RoutePc {
    /// Compare-and-swap the pool's `free` flag to claim the shared set.
    TryClaim,
    /// Start a fresh generation in the owned set (`true` = the shared
    /// pooled set, `false` = a private fallback set).
    Reset(bool),
    /// Mark node 0 visited.
    Insert(bool),
    /// Read both nodes back; the invariant checks the observation.
    Check(bool),
    /// Return the shared set to the pool (fallback sets are dropped).
    Release(bool),
    Done,
}

/// Two packets race to reuse one pooled `VisitedSet` across the epoch
/// wrap.
///
/// The pool hands the set out through a CAS on `free`; a loser takes a
/// fresh private set (the pool's allocate-on-empty path) instead of
/// spinning, which keeps the schedule space finite. The pooled set
/// starts one reset away from the wrap with a stale stamp planted on
/// node 1 — exactly the stamp that would alias a future epoch if the
/// wrap failed to bulk-clear.
#[derive(Clone)]
struct VisitedWraparound {
    pool: ModelVisited,
    free: bool,
    pcs: [RoutePc; 2],
    privs: [ModelVisited; 2],
    /// `(saw_inserted, saw_stale)` per thread, recorded at `Check`.
    observed: [Option<(bool, bool)>; 2],
}

impl VisitedWraparound {
    fn new() -> VisitedWraparound {
        VisitedWraparound {
            // One reset away from the wrap; node 1's stamp is stale
            // residue from the "previous" packet's generation.
            pool: ModelVisited {
                stamps: [0, 1],
                epoch: 1,
            },
            free: true,
            pcs: [RoutePc::TryClaim; 2],
            privs: [ModelVisited {
                stamps: [0; NODES],
                epoch: 0,
            }; 2],
            observed: [None; 2],
        }
    }

    fn set_mut(&mut self, tid: usize, pooled: bool) -> &mut ModelVisited {
        if pooled {
            &mut self.pool
        } else {
            &mut self.privs[tid]
        }
    }
}

impl Interleave for VisitedWraparound {
    fn runnable(&self) -> Vec<usize> {
        (0..2).filter(|&t| self.pcs[t] != RoutePc::Done).collect()
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            RoutePc::TryClaim => {
                // CAS(free, true -> false): one atomic action.
                let won = std::mem::replace(&mut self.free, false);
                self.pcs[tid] = RoutePc::Reset(won);
            }
            RoutePc::Reset(pooled) => {
                self.set_mut(tid, pooled).reset();
                self.pcs[tid] = RoutePc::Insert(pooled);
            }
            RoutePc::Insert(pooled) => {
                self.set_mut(tid, pooled).insert(0);
                self.pcs[tid] = RoutePc::Check(pooled);
            }
            RoutePc::Check(pooled) => {
                let set = if pooled { &self.pool } else { &self.privs[tid] };
                self.observed[tid] = Some((set.contains(0), set.contains(1)));
                self.pcs[tid] = RoutePc::Release(pooled);
            }
            RoutePc::Release(pooled) => {
                if pooled {
                    self.free = true;
                }
                self.pcs[tid] = RoutePc::Done;
            }
            RoutePc::Done => unreachable!("done threads are not runnable"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|&pc| pc == RoutePc::Done)
    }

    fn invariants(&self) -> Result<(), String> {
        // Mutual exclusion: at most one thread may hold the pooled set
        // between claim and release.
        let holders = self
            .pcs
            .iter()
            .filter(|pc| {
                matches!(
                    pc,
                    RoutePc::Reset(true)
                        | RoutePc::Insert(true)
                        | RoutePc::Check(true)
                        | RoutePc::Release(true)
                )
            })
            .count();
        if holders > 1 {
            return Err(format!("{holders} threads hold the pooled set at once"));
        }
        for (tid, obs) in self.observed.iter().enumerate() {
            match obs {
                Some((false, _)) => {
                    return Err(format!("thread {tid}: inserted node reads unvisited"));
                }
                Some((_, true)) => {
                    return Err(format!("thread {tid}: stale stamp survived the epoch wrap"));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

#[test]
fn visited_set_epoch_wrap_never_leaks_stale_stamps() {
    let report = explore(&VisitedWraparound::new()).unwrap_or_else(|v| panic!("{v}"));
    assert_explored("visited wraparound", report);
}

#[test]
fn visited_model_catches_a_wrap_without_bulk_clear() {
    /// The same protocol with the bulk-clear dropped from the wrap —
    /// the bug the `stamps.fill(0)` in `VisitedSet::reset` prevents.
    #[derive(Clone)]
    struct NoClear(VisitedWraparound);

    impl Interleave for NoClear {
        fn runnable(&self) -> Vec<usize> {
            self.0.runnable()
        }
        fn step(&mut self, tid: usize) {
            if let RoutePc::Reset(pooled) = self.0.pcs[tid] {
                let set = self.0.set_mut(tid, pooled);
                // BUG: wrap the epoch without clearing the stamps.
                if set.epoch == EPOCH_MAX {
                    set.epoch = 0;
                }
                set.epoch += 1;
                self.0.pcs[tid] = RoutePc::Insert(pooled);
            } else {
                self.0.step(tid);
            }
        }
        fn done(&self) -> bool {
            self.0.done()
        }
        fn invariants(&self) -> Result<(), String> {
            self.0.invariants()
        }
    }

    let err = explore(&NoClear(VisitedWraparound::new()))
        .expect_err("a wrap without bulk-clear must alias a stale stamp");
    assert!(err.message.contains("stale stamp"), "{err}");
}

// ---------------------------------------------------------------------
// Model 3: the Arc copy-on-write position-table swap.
// ---------------------------------------------------------------------

/// Per-thread program counter for [`CowSwap`]: pc 0 is the writer,
/// pcs 1.. are readers.
#[derive(Clone, Copy, PartialEq)]
enum CowPc {
    /// Writer: clone the current table into private storage.
    Clone,
    /// Writer: apply the position update to the private copy.
    Mutate,
    /// Writer: publish the new table with one atomic pointer store.
    Publish,
    /// Reader: atomically load the table pointer.
    Load,
    /// Reader: read positions through the loaded pointer.
    Read,
    Done,
}

/// A modeled position table: an epoch and the data that must always
/// agree with it. `data == epoch` is the "fully initialized" condition;
/// a torn publication breaks it.
#[derive(Clone, Copy, PartialEq)]
struct Table {
    epoch: u8,
    data: u8,
}

/// One writer swaps in an updated table while two readers load
/// concurrently: no reader may ever observe a table whose data does not
/// match its epoch, whichever side of the swap it lands on.
#[derive(Clone)]
struct CowSwap {
    /// The published `Arc` pointer (modeled by value: readers holding a
    /// clone of the old table keep it alive, exactly like `Arc`).
    published: Table,
    /// The writer's private copy-in-progress.
    private: Option<Table>,
    pcs: Vec<CowPc>,
    /// Each reader's loaded pointer (its `Arc` clone).
    loaded: Vec<Option<Table>>,
    /// Each reader's final observation.
    observed: Vec<Option<Table>>,
}

impl CowSwap {
    fn new(readers: usize) -> CowSwap {
        let mut pcs = vec![CowPc::Clone];
        pcs.extend(std::iter::repeat_n(CowPc::Load, readers));
        CowSwap {
            published: Table { epoch: 1, data: 1 },
            private: None,
            pcs,
            loaded: vec![None; readers + 1],
            observed: vec![None; readers + 1],
        }
    }
}

impl Interleave for CowSwap {
    fn runnable(&self) -> Vec<usize> {
        (0..self.pcs.len())
            .filter(|&t| self.pcs[t] != CowPc::Done)
            .collect()
    }

    fn step(&mut self, tid: usize) {
        match self.pcs[tid] {
            CowPc::Clone => {
                self.private = Some(self.published);
                self.pcs[tid] = CowPc::Mutate;
            }
            CowPc::Mutate => {
                // The COW discipline: epoch and data advance together
                // on the *private* copy, before publication.
                if let Some(t) = self.private.as_mut() {
                    t.epoch += 1;
                    t.data = t.epoch;
                }
                self.pcs[tid] = CowPc::Publish;
            }
            CowPc::Publish => {
                self.published = self.private.take().expect("mutated before publishing");
                self.pcs[tid] = CowPc::Done;
            }
            CowPc::Load => {
                self.loaded[tid] = Some(self.published);
                self.pcs[tid] = CowPc::Read;
            }
            CowPc::Read => {
                self.observed[tid] = self.loaded[tid];
                self.pcs[tid] = CowPc::Done;
            }
            CowPc::Done => unreachable!("done threads are not runnable"),
        }
    }

    fn done(&self) -> bool {
        self.pcs.iter().all(|&pc| pc == CowPc::Done)
    }

    fn invariants(&self) -> Result<(), String> {
        for (tid, obs) in self.observed.iter().enumerate() {
            if let Some(t) = obs {
                if t.data != t.epoch {
                    return Err(format!(
                        "reader {tid} observed epoch {} with data {}",
                        t.epoch, t.data
                    ));
                }
            }
        }
        Ok(())
    }
}

#[test]
fn cow_swap_readers_never_observe_a_torn_table() {
    for readers in [1, 2] {
        let report =
            explore(&CowSwap::new(readers)).unwrap_or_else(|v| panic!("{readers} readers: {v}"));
        assert_explored(&format!("cow swap {readers}r"), report);
    }
}

#[test]
fn cow_model_catches_in_place_mutation() {
    /// The same writer mutating the *published* table in place instead
    /// of a private copy — the bug the COW clone exists to prevent.
    #[derive(Clone)]
    struct InPlace(CowSwap);

    impl Interleave for InPlace {
        fn runnable(&self) -> Vec<usize> {
            self.0.runnable()
        }
        fn step(&mut self, tid: usize) {
            match self.0.pcs[tid] {
                // BUG: skip the clone; bump epoch and data as two
                // separate writes to the shared published table.
                CowPc::Clone => {
                    self.0.published.epoch += 1;
                    self.0.pcs[tid] = CowPc::Mutate;
                }
                CowPc::Mutate => {
                    self.0.published.data = self.0.published.epoch;
                    self.0.pcs[tid] = CowPc::Done;
                }
                _ => self.0.step(tid),
            }
        }
        fn done(&self) -> bool {
            self.0.done()
        }
        fn invariants(&self) -> Result<(), String> {
            self.0.invariants()
        }
    }

    let err = explore(&InPlace(CowSwap::new(1)))
        .expect_err("in-place mutation must show a reader a torn table");
    assert!(err.message.contains("observed epoch"), "{err}");
}

// ---------------------------------------------------------------------
// Model 4: the EpochCell fill -> bump -> swap publish protocol.
// ---------------------------------------------------------------------

/// A modeled snapshot value: its intended epoch id and whether the
/// writer finished building it. Publishing an unfilled value is the
/// fill-then-publish violation the protocol exists to prevent.
#[derive(Clone, Copy, PartialEq)]
struct Snap {
    id: u8,
    filled: bool,
}

/// Writer program counter for [`EpochSwap`]. The real `publish` holds
/// the write lock across the counter bump and the slot swap; the model
/// keeps them separate steps with the lock flag raised, so the
/// wait-free counter probe (which takes no lock) can interleave between
/// them but a pinning load cannot.
#[derive(Clone, Copy, PartialEq)]
enum WriterPc {
    /// Allocate the next snapshot off to the side (not yet filled).
    Alloc,
    /// Finish building it — after this, and only after, it may publish.
    Fill,
    /// Take the write lock.
    Acquire,
    /// Advance the epoch counter (atomic store, lock held).
    Bump,
    /// Swap the slot pointer (lock still held).
    Swap,
    /// Drop the write lock.
    Release,
    Done,
}

/// Reader program counter: pin the `(epoch, value)` pair under the
/// read lock, then probe the counter wait-free — the exact steady-state
/// sequence of a `ServiceSession`.
#[derive(Clone, Copy, PartialEq)]
enum ReaderPc {
    /// `EpochCell::load`: read counter + slot together (read-locked).
    Load,
    /// `EpochCell::epoch`: the lock-free staleness probe.
    Probe,
    Done,
}

/// One writer publishes epoch 2 while readers pin and probe. Invariants
/// at every reachable state:
///
/// * a pinned snapshot is always fully built (fill-then-publish);
/// * a pinned pair is internally consistent (`value.id == epoch`);
/// * a counter probed *after* pinning is never behind the pinned stamp
///   (`answer.epoch <= service.epoch()`, the service invariant).
#[derive(Clone)]
struct EpochSwap {
    counter: u8,
    slot: Snap,
    private: Option<Snap>,
    write_locked: bool,
    writer_pc: WriterPc,
    reader_pcs: Vec<ReaderPc>,
    pinned: Vec<Option<(u8, Snap)>>,
    probed: Vec<Option<u8>>,
}

impl EpochSwap {
    fn new(readers: usize) -> EpochSwap {
        EpochSwap {
            counter: 1,
            slot: Snap {
                id: 1,
                filled: true,
            },
            private: None,
            write_locked: false,
            writer_pc: WriterPc::Alloc,
            reader_pcs: vec![ReaderPc::Load; readers],
            pinned: vec![None; readers],
            probed: vec![None; readers],
        }
    }

    fn step_reader(&mut self, r: usize) {
        match self.reader_pcs[r] {
            ReaderPc::Load => {
                self.pinned[r] = Some((self.counter, self.slot));
                self.reader_pcs[r] = ReaderPc::Probe;
            }
            ReaderPc::Probe => {
                self.probed[r] = Some(self.counter);
                self.reader_pcs[r] = ReaderPc::Done;
            }
            ReaderPc::Done => unreachable!("done readers are not runnable"),
        }
    }

    fn check_observations(&self) -> Result<(), String> {
        for (r, pin) in self.pinned.iter().enumerate() {
            let Some((stamp, snap)) = pin else { continue };
            if !snap.filled {
                return Err(format!("reader {r} pinned a half-built snapshot"));
            }
            if snap.id != *stamp {
                return Err(format!(
                    "reader {r} pinned snapshot {} stamped epoch {stamp}",
                    snap.id
                ));
            }
            if let Some(probe) = self.probed[r] {
                if probe < *stamp {
                    return Err(format!(
                        "reader {r}: pinned stamp {stamp} ran ahead of probed counter {probe}"
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Interleave for EpochSwap {
    fn runnable(&self) -> Vec<usize> {
        let mut r = Vec::new();
        if self.writer_pc != WriterPc::Done {
            r.push(0);
        }
        for (i, &pc) in self.reader_pcs.iter().enumerate() {
            // A pinning load blocks on the write lock; the probe never
            // does.
            let blocked = pc == ReaderPc::Load && self.write_locked;
            if pc != ReaderPc::Done && !blocked {
                r.push(i + 1);
            }
        }
        r
    }

    fn step(&mut self, tid: usize) {
        if tid > 0 {
            return self.step_reader(tid - 1);
        }
        match self.writer_pc {
            WriterPc::Alloc => {
                self.private = Some(Snap {
                    id: 2,
                    filled: false,
                });
                self.writer_pc = WriterPc::Fill;
            }
            WriterPc::Fill => {
                if let Some(s) = self.private.as_mut() {
                    s.filled = true;
                }
                self.writer_pc = WriterPc::Acquire;
            }
            WriterPc::Acquire => {
                self.write_locked = true;
                self.writer_pc = WriterPc::Bump;
            }
            WriterPc::Bump => {
                self.counter += 1;
                self.writer_pc = WriterPc::Swap;
            }
            WriterPc::Swap => {
                self.slot = self.private.take().expect("allocated before swapping");
                self.writer_pc = WriterPc::Release;
            }
            WriterPc::Release => {
                self.write_locked = false;
                self.writer_pc = WriterPc::Done;
            }
            WriterPc::Done => unreachable!("a done writer is not runnable"),
        }
    }

    fn done(&self) -> bool {
        self.writer_pc == WriterPc::Done && self.reader_pcs.iter().all(|&pc| pc == ReaderPc::Done)
    }

    fn invariants(&self) -> Result<(), String> {
        self.check_observations()
    }
}

#[test]
fn epoch_cell_publish_never_exposes_torn_or_future_snapshots() {
    for readers in [1, 2] {
        let report =
            explore(&EpochSwap::new(readers)).unwrap_or_else(|v| panic!("{readers} readers: {v}"));
        assert_explored(&format!("epoch swap {readers}r"), report);
    }
}

#[test]
fn epoch_model_catches_publish_before_fill() {
    /// The same writer publishing first and filling the snapshot last —
    /// the bug the fill-then-publish discipline (build the whole
    /// `Network` + `SafetyInfo` before `EpochCell::publish`) prevents.
    #[derive(Clone)]
    struct PublishBeforeFill(EpochSwap);

    impl Interleave for PublishBeforeFill {
        fn runnable(&self) -> Vec<usize> {
            self.0.runnable()
        }
        fn step(&mut self, tid: usize) {
            if tid > 0 {
                return self.0.step_reader(tid - 1);
            }
            match self.0.writer_pc {
                // BUG: swap the unfilled snapshot in and fill it only
                // after the lock is gone — readers in between pin a
                // half-built value.
                WriterPc::Alloc => {
                    self.0.private = Some(Snap {
                        id: 2,
                        filled: false,
                    });
                    self.0.writer_pc = WriterPc::Acquire;
                }
                WriterPc::Release => {
                    self.0.write_locked = false;
                    self.0.writer_pc = WriterPc::Fill;
                }
                WriterPc::Fill => {
                    self.0.slot.filled = true;
                    self.0.writer_pc = WriterPc::Done;
                }
                _ => self.0.step(tid),
            }
        }
        fn done(&self) -> bool {
            self.0.done()
        }
        fn invariants(&self) -> Result<(), String> {
            self.0.invariants()
        }
    }

    let err = explore(&PublishBeforeFill(EpochSwap::new(1)))
        .expect_err("publishing before filling must expose a half-built snapshot");
    assert!(err.message.contains("half-built"), "{err}");
}

#[test]
fn epoch_model_catches_swap_before_bump() {
    /// The same writer swapping the slot *before* bumping the counter —
    /// with the pinning load modeled lock-free (two separate reads), a
    /// reader can pin the new snapshot while the counter still reads
    /// the old epoch, breaking `answer.epoch <= service.epoch()`. This
    /// is why `EpochCell::publish` bumps first and `load` reads the
    /// pair under the lock.
    #[derive(Clone)]
    struct SwapBeforeBump(EpochSwap);

    impl Interleave for SwapBeforeBump {
        fn runnable(&self) -> Vec<usize> {
            // BUG (part 2): loads ignore the write lock, as if `load`
            // were two independent atomic reads.
            let mut r = Vec::new();
            if self.0.writer_pc != WriterPc::Done {
                r.push(0);
            }
            for (i, &pc) in self.0.reader_pcs.iter().enumerate() {
                if pc != ReaderPc::Done {
                    r.push(i + 1);
                }
            }
            r
        }
        fn step(&mut self, tid: usize) {
            if tid > 0 {
                return self.0.step_reader(tid - 1);
            }
            match self.0.writer_pc {
                // BUG (part 1): slot swap precedes the counter bump.
                WriterPc::Bump => {
                    self.0.slot = self.0.private.take().expect("allocated before swapping");
                    self.0.writer_pc = WriterPc::Swap;
                }
                WriterPc::Swap => {
                    self.0.counter += 1;
                    self.0.writer_pc = WriterPc::Release;
                }
                _ => self.0.step(tid),
            }
        }
        fn done(&self) -> bool {
            self.0.done()
        }
        fn invariants(&self) -> Result<(), String> {
            self.0.invariants()
        }
    }

    let err = explore(&SwapBeforeBump(EpochSwap::new(1)))
        .expect_err("swapping before bumping must let a stamp outrun the counter");
    assert!(err.message.contains("stamped epoch"), "{err}");
}
